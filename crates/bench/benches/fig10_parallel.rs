//! Figure 10 (ours, fig7-style) — ParTopk shard scalability over the
//! GS family: wall time per query at 1/2/4/8 shards, plus the graph-size
//! sweep at a fixed shard count. The `experiments -- par` section prints
//! the same data as a table; this bench gives it criterion sampling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ktpm_bench::{prepare_dataset, queries_for, run_par};
use ktpm_exec::WorkerPool;
use ktpm_workload::{gs_family, GraphSpec};
use std::sync::Arc;
use std::time::Duration;

fn parallel_scalability(c: &mut Criterion) {
    let pool = Arc::new(WorkerPool::new(8));
    let k = 1000;

    // Vary shard count on a mid-size GS graph.
    let ds = prepare_dataset("FIG10", &GraphSpec::power_law(2000, 0xF10));
    let queries = queries_for(&ds, 10, 3, true);
    assert!(!queries.is_empty());
    let mut group = c.benchmark_group("fig10_vary_shards");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(2));
    for shards in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("ParTopk", shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    queries
                        .iter()
                        .map(|q| run_par(&ds, q, k, shards, &pool).produced)
                        .sum::<usize>()
                })
            },
        );
    }
    group.finish();

    // Vary graph size at 4 shards (the paper's fig7(e)/(f) axis). The
    // first three GS members keep the bench short; `experiments -- par`
    // covers the full family.
    let mut group = c.benchmark_group("fig10_vary_graph");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(2));
    for (name, spec) in gs_family().into_iter().take(3) {
        let ds = prepare_dataset(name, &spec);
        let queries = queries_for(&ds, 10, 3, true);
        if queries.is_empty() {
            continue;
        }
        group.bench_with_input(BenchmarkId::new("ParTopk4", name), &(), |b, _| {
            b.iter(|| {
                queries
                    .iter()
                    .map(|q| run_par(&ds, q, k, 4, &pool).produced)
                    .sum::<usize>()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, parallel_scalability);
criterion_main!(benches);
