//! Figure 6 — the four-system comparison (DP-B, DP-P, Topk, Topk-EN).
//!
//! Total time for top-k (T20 queries, k = 20) on a scaled GD-style
//! dataset. The shape to reproduce: Topk ≪ DP-B, Topk-EN ≪ DP-P, with
//! Topk-EN fastest end-to-end for small k.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ktpm_bench::{paper_name, prepare_dataset, queries_for, run_algo, FIG6};
use ktpm_workload::GraphSpec;
use std::time::Duration;

fn four_systems(c: &mut Criterion) {
    let ds = prepare_dataset("FIG6", &GraphSpec::citation(2000, 0xF16));
    let queries = queries_for(&ds, 20, 3, true);
    assert!(!queries.is_empty(), "query extraction failed");
    let mut group = c.benchmark_group("fig6_total_time_k20");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3));
    for algo in FIG6 {
        group.bench_with_input(
            BenchmarkId::new(paper_name(algo), "T20"),
            &algo,
            |b, &algo| {
                b.iter(|| {
                    queries
                        .iter()
                        .map(|q| run_algo(&ds, q, 20, algo).produced)
                        .sum::<usize>()
                })
            },
        );
    }
    group.finish();

    // Top-1 only (Figure 6(c)/(d)).
    let mut group = c.benchmark_group("fig6_top1_time");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3));
    for algo in FIG6 {
        group.bench_with_input(
            BenchmarkId::new(paper_name(algo), "T20"),
            &algo,
            |b, &algo| {
                b.iter(|| {
                    queries
                        .iter()
                        .map(|q| run_algo(&ds, q, 1, algo).produced)
                        .sum::<usize>()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, four_systems);
criterion_main!(benches);
