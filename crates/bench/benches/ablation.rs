//! Ablations beyond the paper's figures, for the design choices called
//! out in DESIGN.md:
//!
//! * `side_queues` — Algorithm 1 with and without the per-round `Q_l`
//!   side queues (§3.3's Q-maintenance trick);
//! * `bound_mode` — the priority loader's tight (§4.2) vs loose (DP-P)
//!   trigger, measured as end-to-end Topk-EN time;
//! * `block_size` — cursor block granularity of the on-disk store;
//! * `distance_index` — closure point lookups vs the 2-hop PLL index
//!   (§5 "Managing Closure Size").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ktpm_bench::{prepare_dataset, queries_for};
use ktpm_closure::{pll::PllIndex, ClosureTables};
use ktpm_core::{BoundMode, TopkEnEnumerator, TopkEnumerator};
use ktpm_graph::NodeId;
use ktpm_runtime::RuntimeGraph;
use ktpm_storage::MemStore;
use ktpm_workload::{generate, GraphSpec};
use std::time::Duration;

fn side_queues(c: &mut Criterion) {
    let ds = prepare_dataset("ABL", &GraphSpec::citation(2000, 0xAB1));
    let queries = queries_for(&ds, 20, 3, true);
    let rgs: Vec<_> = queries
        .iter()
        .map(|q| RuntimeGraph::load(q, ds.store.as_ref()))
        .collect();
    let mut group = c.benchmark_group("ablation_side_queues");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(2));
    for (name, on) in [("with_Ql", true), ("without_Ql", false)] {
        group.bench_with_input(BenchmarkId::new("topk_k100", name), &on, |b, &on| {
            b.iter(|| {
                rgs.iter()
                    .map(|rg| TopkEnumerator::with_side_queues(rg, on).take(100).count())
                    .sum::<usize>()
            })
        });
    }
    group.finish();
}

fn bound_mode(c: &mut Criterion) {
    let ds = prepare_dataset("ABL", &GraphSpec::citation(2000, 0xAB1));
    let queries = queries_for(&ds, 20, 3, true);
    let mut group = c.benchmark_group("ablation_bound_mode");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(2));
    for (name, mode) in [("tight", BoundMode::Tight), ("loose", BoundMode::Loose)] {
        group.bench_with_input(BenchmarkId::new("topk_en_k20", name), &mode, |b, &mode| {
            b.iter(|| {
                queries
                    .iter()
                    .map(|q| {
                        TopkEnEnumerator::with_bound(q, ds.store.as_ref(), mode)
                            .take(20)
                            .count()
                    })
                    .sum::<usize>()
            })
        });
    }
    group.finish();
}

fn block_size(c: &mut Criterion) {
    let g = generate(&GraphSpec::citation(1500, 0xAB2));
    let tables = ClosureTables::compute(&g);
    let query = ktpm_workload::random_tree_query(
        &g,
        ktpm_workload::QuerySpec {
            size: 15,
            distinct_labels: true,
            seed: 3,
        },
    )
    .expect("query")
    .resolve(g.interner());
    let mut group = c.benchmark_group("ablation_block_size");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(2));
    for block in [8usize, 64, 512] {
        let store = MemStore::with_block_edges(tables.clone(), block);
        group.bench_with_input(
            BenchmarkId::new("topk_en_k20", block),
            &store,
            |b, store| b.iter(|| TopkEnEnumerator::new(&query, store).take(20).count()),
        );
    }
    group.finish();
}

fn distance_index(c: &mut Criterion) {
    let g = generate(&GraphSpec::power_law(1200, 0xAB3));
    let tables = ClosureTables::compute(&g);
    let pll = PllIndex::build(&g);
    let pairs: Vec<(NodeId, NodeId)> = (0..2000u32)
        .map(|i| {
            (
                NodeId((i * 7919) % g.num_nodes() as u32),
                NodeId((i * 104729) % g.num_nodes() as u32),
            )
        })
        .collect();
    let mut group = c.benchmark_group("ablation_distance_index");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("closure_tables", |b| {
        b.iter(|| {
            pairs
                .iter()
                .filter(|&&(u, v)| tables.dist(u, v).is_some())
                .count()
        })
    });
    group.bench_function("pll_2hop", |b| {
        b.iter(|| {
            pairs
                .iter()
                .filter(|&&(u, v)| pll.dist(u, v).is_some())
                .count()
        })
    });
    group.finish();
}

criterion_group!(benches, side_queues, bound_mode, block_size, distance_index);
criterion_main!(benches);
