//! Table 2 — transitive closure pre-computation cost.
//!
//! Benchmarks the offline phase (SSSP-per-source closure + label-pair
//! table assembly) on the two smallest family members of each dataset
//! kind. The experiments binary prints the full family sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ktpm_closure::ClosureTables;
use ktpm_workload::{generate, GraphSpec};
use std::time::Duration;

fn closure_precompute(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_closure");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3));
    for (name, spec) in [
        ("GD1", GraphSpec::citation(1000, 0xD1)),
        ("GD2", GraphSpec::citation(2500, 0xD2)),
        ("GS1", GraphSpec::power_law(1000, 0x51)),
        ("GS2", GraphSpec::power_law(2500, 0x52)),
    ] {
        let g = generate(&spec);
        group.bench_with_input(BenchmarkId::new("compute", name), &g, |b, g| {
            b.iter(|| ClosureTables::compute(g).num_edges())
        });
    }
    group.finish();
}

criterion_group!(benches, closure_precompute);
criterion_main!(benches);
