//! Figure 9 — kGPM: mtree (DP-B driver) vs mtree+ (Topk-EN driver).
//!
//! Both run the registry's `Algo::Kgpm` engine over ONE shared pattern
//! plan per query — decomposition and lower bounds are paid once
//! (`prepare`), the measured loop is the stream half, exactly the
//! warm-open shape serving sessions see.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ktpm_bench::{run_plan_stream, Algo};
use ktpm_closure::ClosureTables;
use ktpm_core::{ParallelPolicy, QueryPlan, ShardEngine};
use ktpm_storage::MemStore;
use ktpm_workload::{generate, pattern_family, pattern_set, GraphSpec};
use std::time::Duration;

fn kgpm(c: &mut Criterion) {
    let g = generate(&GraphSpec::power_law(800, 0xF19));
    let ug = ktpm_graph::undirect(&g);
    let store = MemStore::new(ClosureTables::compute(&g))
        .with_graph(g.clone())
        .into_shared();
    let plans: Vec<_> = pattern_family()
        .into_iter()
        .filter_map(|(name, spec)| {
            pattern_set(&ug, spec, 1, 300).into_iter().next().map(|q| {
                let plan = QueryPlan::new_pattern(q, g.interner(), &store)
                    .expect("graph-attached store supports pattern plans");
                (name, plan)
            })
        })
        .collect();
    assert!(!plans.is_empty(), "pattern extraction failed");
    let pool = ktpm_exec::default_pool();
    let mut group = c.benchmark_group("fig9_kgpm_k20");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3));
    for (name, plan) in &plans {
        for (mname, engine) in [("mtree", ShardEngine::Full), ("mtree+", ShardEngine::Lazy)] {
            let policy = ParallelPolicy {
                shards: 1,
                engine,
                ..ParallelPolicy::default()
            };
            group.bench_with_input(
                BenchmarkId::new(mname, *name),
                &(plan, policy),
                |b, (plan, policy)| {
                    b.iter(|| run_plan_stream(&store, plan, 20, Algo::Kgpm, policy, &pool).produced)
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, kgpm);
criterion_main!(benches);
