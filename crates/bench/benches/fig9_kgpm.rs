//! Figure 9 — kGPM: mtree (DP-B inside) vs mtree+ (Topk-EN inside).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ktpm_kgpm::{KgpmContext, TreeMatcher};
use ktpm_workload::{generate, random_graph_query, GraphSpec};
use std::time::Duration;

fn kgpm(c: &mut Criterion) {
    let g = generate(&GraphSpec::power_law(800, 0xF19));
    let ctx = KgpmContext::new(&g);
    let patterns: Vec<_> = [(4usize, 1usize), (5, 2)]
        .iter()
        .enumerate()
        .filter_map(|(i, &(n, e))| {
            random_graph_query(ctx.graph(), n, e, 300 + i as u64)
                .map(|q| (format!("Q{}", i + 1), q))
        })
        .collect();
    assert!(!patterns.is_empty(), "pattern extraction failed");
    let mut group = c.benchmark_group("fig9_kgpm_k20");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3));
    for (name, q) in &patterns {
        for (mname, matcher) in [("mtree", TreeMatcher::DpB), ("mtree+", TreeMatcher::TopkEn)] {
            group.bench_with_input(
                BenchmarkId::new(mname, name),
                &(q, matcher),
                |b, (q, matcher)| b.iter(|| ctx.topk(q, 20, *matcher).len()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, kgpm);
criterion_main!(benches);
