//! Figure 8 — general twig-pattern matching (duplicate labels, Topk-GT).
//!
//! Topk-GT is Topk-EN over the per-query-node run-time graph; the bench
//! compares duplicate-label query sets against distinct-label ones of
//! the same size (the paper's claim: "the average performance ... will
//! be not worse than that for queries with distinct labels").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ktpm_bench::{prepare_dataset, queries_for, run_algo, Algo};
use ktpm_workload::GraphSpec;
use std::time::Duration;

fn general_twig(c: &mut Criterion) {
    let ds = prepare_dataset("FIG8", &GraphSpec::citation(2000, 0xF18));
    let mut group = c.benchmark_group("fig8_topk_gt");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(2));
    for (label, distinct) in [("distinct", true), ("duplicates", false)] {
        let queries = queries_for(&ds, 20, 3, distinct);
        if queries.is_empty() {
            continue;
        }
        group.bench_with_input(BenchmarkId::new("Topk-GT", label), &queries, |b, qs| {
            b.iter(|| {
                qs.iter()
                    .map(|q| run_algo(&ds, q, 20, Algo::TopkEn).produced)
                    .sum::<usize>()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, general_twig);
criterion_main!(benches);
