//! Figure 7 — scalability of Topk and Topk-EN against k and query size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ktpm_bench::{prepare_dataset, queries_for, run_algo, Algo};
use ktpm_workload::GraphSpec;
use std::time::Duration;

fn scalability(c: &mut Criterion) {
    let ds = prepare_dataset("FIG7", &GraphSpec::power_law(2000, 0xF17));

    // Vary k (T20 to keep query extraction robust at this scale).
    let queries = queries_for(&ds, 20, 3, true);
    assert!(!queries.is_empty());
    let mut group = c.benchmark_group("fig7_vary_k");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(2));
    for k in [10usize, 100] {
        for algo in [Algo::Topk, Algo::TopkEn] {
            group.bench_with_input(
                BenchmarkId::new(algo.name(), k),
                &(k, algo),
                |b, &(k, algo)| {
                    b.iter(|| {
                        queries
                            .iter()
                            .map(|q| run_algo(&ds, q, k, algo).produced)
                            .sum::<usize>()
                    })
                },
            );
        }
    }
    group.finish();

    // Vary query size (k = 20).
    let mut group = c.benchmark_group("fig7_vary_T");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(2));
    for size in [10usize, 30, 50] {
        let queries = queries_for(&ds, size, 3, true);
        if queries.is_empty() {
            continue;
        }
        for algo in [Algo::Topk, Algo::TopkEn] {
            group.bench_with_input(
                BenchmarkId::new(algo.name(), format!("T{size}")),
                &algo,
                |b, &algo| {
                    b.iter(|| {
                        queries
                            .iter()
                            .map(|q| run_algo(&ds, q, 20, algo).produced)
                            .sum::<usize>()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, scalability);
criterion_main!(benches);
