//! # ktpm-bench
//!
//! The experiment harness behind `cargo run --release -p ktpm-bench --bin
//! experiments` and the criterion benches: dataset preparation (with an
//! on-disk closure cache under `target/ktpm-data/`), query-set
//! generation, and one measurement routine per algorithm. Every table
//! and figure of the paper's §6 maps to a function here; the
//! `experiments` binary prints them in the paper's layout.

#[cfg(feature = "count-allocs")]
mod counting_alloc {
    //! A counting wrapper around the system allocator: every `alloc`
    //! and `realloc` bumps one relaxed atomic. The smoke harness diffs
    //! the counter around enumeration loops to report allocations/op —
    //! the metric the arena-backed deviation encoding is gated on.

    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    pub(crate) static ALLOCS: AtomicU64 = AtomicU64::new(0);

    pub(crate) struct CountingAlloc;

    // SAFETY: delegates verbatim to `System`; the counter has no effect
    // on allocation behavior.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;
}

/// Heap allocation events (alloc + realloc) since process start.
/// Always 0 when the `count-allocs` feature is off.
pub fn alloc_count() -> u64 {
    #[cfg(feature = "count-allocs")]
    {
        counting_alloc::ALLOCS.load(std::sync::atomic::Ordering::Relaxed)
    }
    #[cfg(not(feature = "count-allocs"))]
    {
        0
    }
}

use ktpm_closure::ClosureTables;
use ktpm_core::{build_stream, MatchStream, ParallelPolicy, QueryPlan};
use ktpm_exec::WorkerPool;
use ktpm_graph::LabeledGraph;
use ktpm_query::ResolvedQuery;
use ktpm_runtime::RuntimeGraph;
use ktpm_storage::{open_store_auto, write_store, MemStore, SharedSource};
use ktpm_workload::{generate, query_set, GraphSpec};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// The engine registry the harness measures — the same [`Algo`] the
/// facade, the CLI and the serving tier dispatch on. The bench crate
/// adds nothing on top: every measurement routes through the one
/// [`build_stream`] entry point.
pub use ktpm_core::Algo;

/// The four systems of Figure 6, in the paper's legend order.
pub const FIG6: [Algo; 4] = [Algo::DpB, Algo::DpP, Algo::Topk, Algo::TopkEn];

/// Display name as used in the paper's figures (the registry's
/// [`Algo::name`] is the wire/CLI spelling).
pub fn paper_name(algo: Algo) -> &'static str {
    match algo {
        Algo::DpB => "DP-B",
        Algo::DpP => "DP-P",
        Algo::Topk => "Topk",
        Algo::TopkEn => "Topk-EN",
        Algo::Par => "Par-Topk",
        Algo::Brute => "Brute",
        Algo::Kgpm => "kGPM",
    }
}

/// A prepared dataset: graph + on-disk closure store + offline stats.
pub struct Dataset {
    /// Family name (`GD3`, `GS1`, ...).
    pub name: String,
    /// The data graph.
    pub graph: LabeledGraph,
    /// The opened on-disk closure store, behind a shared handle so
    /// parallel runs can clone it per shard.
    pub store: SharedSource,
    /// Closure computation wall time (seconds); 0 when served from cache.
    pub closure_secs: f64,
    /// Closure edge count.
    pub closure_edges: usize,
    /// Size of the store file in bytes.
    pub file_bytes: u64,
    /// Path of the store file, so benchmarks can re-open it with
    /// explicit backends or cache budgets (cold/warm paged-store runs).
    pub path: PathBuf,
}

fn cache_dir() -> PathBuf {
    let mut p = std::env::current_dir().expect("cwd");
    // Walk up to the workspace root if invoked from a member dir.
    while !p.join("Cargo.toml").exists() && p.pop() {}
    p.push("target");
    p.push("ktpm-data");
    std::fs::create_dir_all(&p).expect("create cache dir");
    p
}

/// Prepares (or re-opens from cache) the dataset for `spec`. The cache
/// key fingerprints every generator parameter so preset changes
/// invalidate stale closures.
pub fn prepare_dataset(name: &str, spec: &GraphSpec) -> Dataset {
    let graph = generate(spec);
    let fingerprint = format!(
        "{}-{}-{}-{}-{}-{}-{}-{}-{}",
        spec.nodes,
        spec.seed,
        spec.labels,
        (spec.label_skew * 100.0) as u32,
        (spec.avg_out_degree * 100.0) as u32,
        spec.community,
        (spec.cross_fraction * 1000.0) as u32,
        spec.weight_range.0,
        spec.weight_range.1,
    );
    let mut path = cache_dir();
    // The filename carries the store format version so a checkout that
    // changes the default output format never re-opens a stale cache
    // file written in the old one (the paged-store smoke section needs
    // `path` to really be v3).
    path.push(format!("{name}-{fingerprint}-v3.tc"));
    let (closure_secs, closure_edges) = if path.exists() {
        (0.0, 0)
    } else {
        let t = Instant::now();
        let tables = ClosureTables::compute(&graph);
        let secs = t.elapsed().as_secs_f64();
        let edges = tables.num_edges();
        write_store(&tables, &path).expect("write closure store");
        (secs, edges)
    };
    let file_bytes = std::fs::metadata(&path).expect("store file").len();
    // Version-sniffing open (v3 paged with the default cache budget
    // here; the helper keeps working if the default format moves).
    let store: SharedSource = open_store_auto(&path, None).expect("open closure store");
    let closure_edges = if closure_edges == 0 {
        // Served from cache: recount cheaply from the index.
        store
            .pair_keys()
            .iter()
            .map(|&(a, b)| store.load_d(a, b).len())
            .sum::<usize>()
            .max(1) // D undercounts edges; only used for display when cached
    } else {
        closure_edges
    };
    Dataset {
        name: name.to_string(),
        graph,
        store,
        closure_secs,
        closure_edges,
        file_bytes,
        path,
    }
}

/// Forces a fresh closure computation (Table 2 timing), without cache.
pub fn closure_cost(spec: &GraphSpec) -> (f64, ktpm_closure::ClosureStats) {
    let graph = generate(spec);
    let t = Instant::now();
    let tables = ClosureTables::compute(&graph);
    (t.elapsed().as_secs_f64(), tables.stats())
}

/// Resolved query set of `count` trees with `size` nodes.
pub fn queries_for(ds: &Dataset, size: usize, count: usize, distinct: bool) -> Vec<ResolvedQuery> {
    query_set(&ds.graph, size, count, distinct, 0xBEEF + size as u64)
        .into_iter()
        .map(|q| q.resolve(ds.graph.interner()))
        .collect()
}

/// A match-dense `root -> *#1, ..., *#fanout` wildcard star (the §5
/// general-twig workload). Wildcard children multiply the branching
/// under every root candidate, so total matches grow combinatorially
/// while the run-time graph stays linear in the root label's tables —
/// the large-k regime where enumeration dominates loading, which is
/// exactly what partitioned execution parallelizes. Returns `None` if
/// the label does not occur in the dataset.
pub fn wildcard_star(ds: &Dataset, root_label: &str, fanout: usize) -> Option<ResolvedQuery> {
    ds.graph.interner().get(root_label)?;
    let text: String = (1..=fanout)
        .map(|i| format!("{root_label} -> *#{i}\n"))
        .collect();
    ktpm_query::TreeQuery::parse(&text)
        .ok()
        .map(|q| q.resolve(ds.graph.interner()))
}

/// One algorithm measurement over a single query.
#[derive(Debug, Clone, Copy, Default)]
pub struct Measurement {
    /// Wall time to produce the top-1 match (including loading), seconds.
    pub top1_secs: f64,
    /// Wall time for the remaining k-1 matches, seconds.
    pub enum_secs: f64,
    /// Closure edges read from storage.
    pub edges_loaded: u64,
    /// Bytes read from storage.
    pub bytes_read: u64,
    /// Matches actually produced (may be < k).
    pub produced: usize,
}

impl Measurement {
    /// Total wall time.
    pub fn total_secs(&self) -> f64 {
        self.top1_secs + self.enum_secs
    }
}

/// Measures one facade stream — the same execution path `ktpm::api`,
/// `ktpm query` and serving sessions run: the engine is selected by
/// [`Algo`] through the single [`build_stream`] dispatch, top-1 is one
/// pull, and the remaining `k-1` matches arrive in ONE batched
/// `next_batch` call (the shape a `NEXT <s> k` serves).
pub fn run_stream(
    ds: &Dataset,
    query: &ResolvedQuery,
    k: usize,
    algo: Algo,
    policy: &ParallelPolicy,
    pool: &Arc<WorkerPool>,
) -> Measurement {
    ds.store.reset_io();
    let mut m = Measurement::default();
    let t0 = Instant::now();
    let plan = QueryPlan::new(query.clone(), Arc::clone(&ds.store));
    let mut it = build_stream(algo, &plan, policy, Arc::clone(pool));
    let first = MatchStream::next(&mut *it);
    m.top1_secs = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let mut rest = Vec::new();
    if first.is_some() {
        it.next_batch(k.saturating_sub(1), &mut rest);
    }
    m.produced = usize::from(first.is_some()) + rest.len();
    m.enum_secs = t1.elapsed().as_secs_f64();
    let io = ds.store.io();
    m.edges_loaded = io.edges_read;
    m.bytes_read = io.bytes_read;
    m
}

/// As [`run_stream`], but over a pre-built plan — the warm-open shape,
/// where the plan half (candidate discovery, or a pattern's
/// decomposition and lower bounds) is amortized across opens and only
/// the stream half is on the clock. `store` must be the source the
/// plan was built over (its I/O counters are reset and read).
pub fn run_plan_stream(
    store: &SharedSource,
    plan: &QueryPlan,
    k: usize,
    algo: Algo,
    policy: &ParallelPolicy,
    pool: &Arc<WorkerPool>,
) -> Measurement {
    store.reset_io();
    let mut m = Measurement::default();
    let t0 = Instant::now();
    let mut it = build_stream(algo, plan, policy, Arc::clone(pool));
    let first = MatchStream::next(&mut *it);
    m.top1_secs = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let mut rest = Vec::new();
    if first.is_some() {
        it.next_batch(k.saturating_sub(1), &mut rest);
    }
    m.produced = usize::from(first.is_some()) + rest.len();
    m.enum_secs = t1.elapsed().as_secs_f64();
    let io = store.io();
    m.edges_loaded = io.edges_read;
    m.bytes_read = io.bytes_read;
    m
}

/// Runs `algo` for the top-`k` matches of `query`, measuring phases
/// and I/O against the dataset's disk store. Every engine — the DP
/// baselines included — goes through the facade stream
/// ([`run_stream`]); there is no per-algorithm constructor dispatch
/// left in the harness.
pub fn run_algo(ds: &Dataset, query: &ResolvedQuery, k: usize, algo: Algo) -> Measurement {
    run_stream(
        ds,
        query,
        k,
        algo,
        &ParallelPolicy::default(),
        &ktpm_exec::default_pool(),
    )
}

/// A graph-attached in-memory source over the dataset's graph: what
/// kGPM pattern plans need (the undirected mirror is derived from the
/// attached graph; the on-disk [`Dataset::store`] is closure-only).
/// Recomputes the closure, so reserve it for kGPM-sized graphs.
pub fn pattern_store(ds: &Dataset) -> SharedSource {
    MemStore::new(ClosureTables::compute(&ds.graph))
        .with_graph(ds.graph.clone())
        .into_shared()
}

/// Runs `ParTopk` with `shards` shards for the top-`k` matches of
/// `query` on `pool` — [`run_stream`] with [`ktpm_core::Algo::Par`].
/// With `shards == 1` this is the sequential canonical-order baseline
/// the speedup figures compare against.
pub fn run_par(
    ds: &Dataset,
    query: &ResolvedQuery,
    k: usize,
    shards: usize,
    pool: &Arc<WorkerPool>,
) -> Measurement {
    run_stream(
        ds,
        query,
        k,
        ktpm_core::Algo::Par,
        &ParallelPolicy::with_shards(shards),
        pool,
    )
}

/// Averages [`run_par`] over a query set (same shape as
/// [`run_algo_avg`], including the warm-up run).
pub fn run_par_avg(
    ds: &Dataset,
    queries: &[ResolvedQuery],
    k: usize,
    shards: usize,
    pool: &Arc<WorkerPool>,
) -> Measurement {
    run_avg(queries, k, |q, k| run_par(ds, q, k, shards, pool))
}

/// Averages `run_algo` over a query set.
pub fn run_algo_avg(ds: &Dataset, queries: &[ResolvedQuery], k: usize, algo: Algo) -> Measurement {
    run_avg(queries, k, |q, k| run_algo(ds, q, k, algo))
}

/// Averages a per-query measurement over a query set, after one k=1
/// warm-up run (page cache / allocator, so the first k doesn't pay
/// setup).
fn run_avg(
    queries: &[ResolvedQuery],
    k: usize,
    mut run: impl FnMut(&ResolvedQuery, usize) -> Measurement,
) -> Measurement {
    let mut acc = Measurement::default();
    if queries.is_empty() {
        return acc;
    }
    let _ = run(&queries[0], 1);
    for q in queries {
        let m = run(q, k);
        acc.top1_secs += m.top1_secs;
        acc.enum_secs += m.enum_secs;
        acc.edges_loaded += m.edges_loaded;
        acc.bytes_read += m.bytes_read;
        acc.produced += m.produced;
    }
    let n = queries.len() as f64;
    acc.top1_secs /= n;
    acc.enum_secs /= n;
    acc.edges_loaded = (acc.edges_loaded as f64 / n) as u64;
    acc.bytes_read = (acc.bytes_read as f64 / n) as u64;
    acc.produced /= queries.len();
    acc
}

/// Average run-time graph sizes over a query set (Table 3).
pub fn runtime_graph_sizes(ds: &Dataset, queries: &[ResolvedQuery]) -> (f64, f64) {
    if queries.is_empty() {
        return (0.0, 0.0);
    }
    let (mut nodes, mut edges) = (0usize, 0usize);
    for q in queries {
        let rg = RuntimeGraph::load(q, ds.store.as_ref());
        let s = rg.stats();
        nodes += s.nodes;
        edges += s.edges;
    }
    (
        nodes as f64 / queries.len() as f64,
        edges as f64 / queries.len() as f64,
    )
}

/// Pretty-prints seconds with a stable unit.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}µs", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ktpm_core::{TopkEnEnumerator, TopkEnumerator};

    #[test]
    fn prepare_and_measure_smoke() {
        let ds = prepare_dataset("SMOKE", &GraphSpec::citation(400, 123));
        assert!(ds.file_bytes > 0);
        let queries = queries_for(&ds, 6, 3, true);
        assert!(!queries.is_empty());
        // Every tree-capable registry engine runs through the one
        // facade path; kGPM needs a pattern plan (covered below).
        for algo in Algo::ALL.into_iter().filter(|&a| a != Algo::Kgpm) {
            let m = run_algo_avg(&ds, &queries, 5, algo);
            assert!(m.produced >= 1, "{algo:?} produced nothing");
        }
        let (n, e) = runtime_graph_sizes(&ds, &queries);
        assert!(n > 0.0 && e > 0.0);
    }

    #[test]
    fn kgpm_measures_over_a_pattern_plan() {
        let ds = prepare_dataset("SMOKE", &GraphSpec::citation(400, 123));
        let store = pattern_store(&ds);
        let ug = ktpm_graph::undirect(&ds.graph);
        let q = ktpm_workload::random_graph_query(&ug, 4, 1, 11).expect("pattern extraction");
        let plan = QueryPlan::new_pattern(q, ds.graph.interner(), &store)
            .expect("graph-attached store supports pattern plans");
        let pool = ktpm_exec::default_pool();
        let seq = run_plan_stream(
            &store,
            &plan,
            8,
            Algo::Kgpm,
            &ParallelPolicy::default(),
            &pool,
        );
        assert!(seq.produced >= 1, "kGPM produced nothing");
        // Sharding must not change what the stream yields.
        let sharded = run_plan_stream(
            &store,
            &plan,
            8,
            Algo::Kgpm,
            &ParallelPolicy::with_shards(3),
            &pool,
        );
        assert_eq!(sharded.produced, seq.produced);
    }

    #[test]
    fn algorithms_agree_on_prepared_dataset() {
        let ds = prepare_dataset("SMOKE2", &GraphSpec::power_law(400, 5));
        let queries = queries_for(&ds, 5, 3, true);
        for q in &queries {
            let rg = RuntimeGraph::load(q, ds.store.as_ref());
            let a: Vec<_> = TopkEnumerator::new(&rg).take(10).map(|m| m.score).collect();
            let b: Vec<_> = TopkEnEnumerator::new(q, ds.store.as_ref())
                .take(10)
                .map(|m| m.score)
                .collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn par_topk_agrees_with_sequential_on_prepared_dataset() {
        let ds = prepare_dataset("SMOKE2", &GraphSpec::power_law(400, 5));
        let queries = queries_for(&ds, 5, 2, true);
        let pool = ktpm_exec::default_pool();
        for q in &queries {
            let want = ktpm_core::topk_full(q, ds.store.as_ref(), 25);
            for shards in [1usize, 2, 4] {
                let m = run_par(&ds, q, 25, shards, &pool);
                assert_eq!(m.produced, want.len().min(25), "shards {shards}");
                let got = ktpm_core::par_topk(
                    q,
                    Arc::clone(&ds.store),
                    25,
                    &ParallelPolicy::with_shards(shards),
                    Arc::clone(&pool),
                );
                assert_eq!(got, want, "shards {shards}");
            }
        }
    }

    #[test]
    fn fmt_secs_units() {
        assert_eq!(fmt_secs(2.5), "2.50s");
        assert_eq!(fmt_secs(0.0025), "2.50ms");
        assert_eq!(fmt_secs(0.0000025), "2.5µs");
    }
}
