//! Regenerates every table and figure of the paper's §6 evaluation.
//!
//! ```text
//! cargo run --release -p ktpm-bench --bin experiments -- all
//! cargo run --release -p ktpm-bench --bin experiments -- table2 fig6
//! cargo run --release -p ktpm-bench --bin experiments -- --quick all
//! cargo run --release -p ktpm-bench --bin experiments -- --smoke
//! ```
//!
//! Sections: `table2` (closure costs), `table3` (run-time graph sizes),
//! `fig6` (four-system comparison), `fig7` (Topk/Topk-EN scalability),
//! `fig8` (general twigs / Topk-GT), `fig9` (kGPM mtree vs mtree+),
//! `par` (ParTopk shard scalability over the GS family).
//! Absolute numbers are machine- and scale-dependent; EXPERIMENTS.md
//! records the shape comparison against the paper.
//!
//! `--smoke` runs the short deterministic perf harness CI wires into
//! its `bench-smoke` job: per-algorithm wall times (Topk, Topk-EN and
//! 1/2/4-shard ParTopk) on the default GS3 workload, plus a
//! `plan_open` section measuring cold-open vs warm-open latency over a
//! shared `QueryPlan` (warm opens do zero candidate discovery —
//! asserted via `iostats`), the service plan-cache hit rate, an
//! `api_batched_pull` section comparing per-item vs batched pull delay
//! through the `MatchStream` surface (CI asserts batched ≤ per-item),
//! a `graph_update` section comparing the live-update warm path
//! (incremental closure repair + delta-aware invalidation + warm
//! re-open) against a cold rebuild of the mutated graph (CI asserts
//! the warm path wins and the re-open is a plan hit), a `kgpm` section
//! (cold vs warm pattern-plan opens, mtree vs mtree+ drivers, and a
//! service re-open that CI asserts is a plan hit), a `paged_store`
//! section over the on-disk v3 store (cold open + verified lazy block
//! streaming vs a warm re-open served from the LRU block cache; CI
//! asserts warm hit rate ≥ 0.9 and zero checksum-scrub failures), and
//! the `deviation_encoding` allocations/op gate. Written to
//! `BENCH_parallel.json` at the workspace root and uploaded as a
//! workflow artifact — the repo's perf trajectory, one point per CI
//! run.

use ktpm_bench::*;
use ktpm_core::{KgpmStream, MatchStream, ParallelPolicy, QueryPlan, ShardEngine};
use ktpm_exec::WorkerPool;
use ktpm_storage::ClosureSource;
use ktpm_workload::{gd_family, gs_family, query_sizes, GraphSpec, DEFAULT_GD, DEFAULT_GS};
use std::sync::Arc;
use std::time::Instant;

/// Figure 9's two kGPM configurations: mtree drives enumeration with
/// the DP-B matcher (full-loading engine), mtree+ with this paper's
/// Topk-EN (lazy engine). Same registry engine (`Algo::Kgpm`), same
/// plan — only the tree driver differs.
const KGPM_DRIVERS: [(&str, ShardEngine); 2] =
    [("mtree", ShardEngine::Full), ("mtree+", ShardEngine::Lazy)];

fn kgpm_policy(engine: ShardEngine) -> ParallelPolicy {
    ParallelPolicy {
        shards: 1,
        engine,
        ..ParallelPolicy::default()
    }
}

struct Config {
    queries_per_set: usize,
    ks: Vec<usize>,
    kgpm_nodes: usize,
    /// `k` for the ParTopk scalability section (large enough that
    /// enumeration, the part sharding parallelizes, dominates).
    par_k: usize,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let cfg = if quick {
        Config {
            queries_per_set: 3,
            ks: vec![10, 20, 100],
            kgpm_nodes: 600,
            par_k: 1000,
        }
    } else {
        Config {
            queries_per_set: 10,
            ks: vec![10, 20, 100],
            kgpm_nodes: 1200,
            par_k: 4000,
        }
    };
    if args.iter().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let mut sections: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    if sections.is_empty() || sections.contains(&"all") {
        sections = vec!["table2", "table3", "fig6", "fig7", "fig8", "fig9", "par"];
    }
    let t0 = Instant::now();
    for s in sections {
        match s {
            "table2" => table2(),
            "table3" => table3(&cfg),
            "fig6" => fig6(&cfg),
            "fig7" => fig7(&cfg),
            "fig8" => fig8(&cfg),
            "fig9" => fig9(&cfg),
            "par" => par(&cfg),
            other => eprintln!("unknown section {other:?}"),
        }
    }
    println!("\n[experiments completed in {:?}]", t0.elapsed());
}

/// Table 2: computational costs of transitive closures.
fn table2() {
    println!("== Table 2: transitive closure pre-computation (scaled families) ==");
    println!(
        "{:<6} {:>8} {:>10} {:>12} {:>12} {:>8}",
        "Graph", "nodes", "TC time", "TC edges", "TC size", "theta"
    );
    for (name, spec) in gd_family().iter().chain(gs_family().iter()) {
        let (secs, stats) = closure_cost(spec);
        println!(
            "{:<6} {:>8} {:>10} {:>12} {:>12} {:>8.0}",
            name,
            spec.nodes,
            fmt_secs(secs),
            stats.edges,
            fmt_bytes(stats.approx_bytes),
            stats.theta
        );
    }
    println!();
}

/// Table 3: average run-time graph sizes on the default datasets.
fn table3(cfg: &Config) {
    println!("== Table 3: average run-time graph sizes (GR) ==");
    println!(
        "{:<8} {:<6} {:>12} {:>12}",
        "Dataset", "T", "#nodes(GR)", "#edges(GR)"
    );
    for (synthetic, (name, spec)) in [
        (false, gd_family()[DEFAULT_GD].clone()),
        (true, gs_family()[DEFAULT_GS].clone()),
    ] {
        let ds = prepare_dataset(name, &spec);
        for size in query_sizes(synthetic) {
            let queries = queries_for(&ds, size, cfg.queries_per_set, true);
            if queries.is_empty() {
                println!("{:<8} T{:<5} {:>12} {:>12}", ds.name, size, "-", "-");
                continue;
            }
            let (n, e) = runtime_graph_sizes(&ds, &queries);
            println!("{:<8} T{:<5} {:>12.0} {:>12.0}", ds.name, size, n, e);
        }
    }
    println!();
}

/// Figure 6: DP-B / DP-P / Topk / Topk-EN on the default datasets, T20.
fn fig6(cfg: &Config) {
    println!("== Figure 6: comparison with DP-B and DP-P (T = T20, vary k) ==");
    for (name, spec) in [
        gd_family()[DEFAULT_GD].clone(),
        gs_family()[DEFAULT_GS].clone(),
    ] {
        let ds = prepare_dataset(name, &spec);
        let queries = queries_for(&ds, 20, cfg.queries_per_set, true);
        println!("-- {} ({} queries of 20 nodes) --", ds.name, queries.len());
        println!(
            "{:<4} {:<8} {:>12} {:>12} {:>12} {:>12} {:>12}",
            "k", "algo", "total", "top-1", "enum", "edges", "bytes"
        );
        for &k in &cfg.ks {
            for algo in FIG6 {
                let m = run_algo_avg(&ds, &queries, k, algo);
                println!(
                    "{:<4} {:<8} {:>12} {:>12} {:>12} {:>12} {:>12}",
                    k,
                    paper_name(algo),
                    fmt_secs(m.total_secs()),
                    fmt_secs(m.top1_secs),
                    fmt_secs(m.enum_secs),
                    m.edges_loaded,
                    m.bytes_read
                );
            }
        }
    }
    println!();
}

/// Figure 7: scalability of Topk / Topk-EN.
fn fig7(cfg: &Config) {
    println!("== Figure 7: scalability of Topk and Topk-EN ==");
    // (a)/(b): vary k with T50.
    for (name, spec) in [
        gd_family()[DEFAULT_GD].clone(),
        gs_family()[DEFAULT_GS].clone(),
    ] {
        let ds = prepare_dataset(name, &spec);
        let queries = queries_for(&ds, 50, cfg.queries_per_set, true);
        println!(
            "-- vary k on {} (T50, {} queries) --",
            ds.name,
            queries.len()
        );
        println!("{:<4} {:>12} {:>12}", "k", "Topk", "Topk-EN");
        for &k in &cfg.ks {
            let a = run_algo_avg(&ds, &queries, k, Algo::Topk);
            let b = run_algo_avg(&ds, &queries, k, Algo::TopkEn);
            println!(
                "{:<4} {:>12} {:>12}",
                k,
                fmt_secs(a.total_secs()),
                fmt_secs(b.total_secs())
            );
        }
    }
    // (c)/(d): vary query size.
    for (synthetic, (name, spec)) in [
        (false, gd_family()[DEFAULT_GD].clone()),
        (true, gs_family()[DEFAULT_GS].clone()),
    ] {
        let ds = prepare_dataset(name, &spec);
        println!("-- vary |T| on {} (k = 20) --", ds.name);
        println!("{:<6} {:>12} {:>12}", "T", "Topk", "Topk-EN");
        for size in query_sizes(synthetic) {
            let queries = queries_for(&ds, size, cfg.queries_per_set, true);
            if queries.is_empty() {
                println!("T{:<5} {:>12} {:>12}", size, "-", "-");
                continue;
            }
            let a = run_algo_avg(&ds, &queries, 20, Algo::Topk);
            let b = run_algo_avg(&ds, &queries, 20, Algo::TopkEn);
            println!(
                "T{:<5} {:>12} {:>12}",
                size,
                fmt_secs(a.total_secs()),
                fmt_secs(b.total_secs())
            );
        }
    }
    // (e)/(f): vary graph size.
    for family in [gd_family(), gs_family()] {
        println!("-- vary graph ({}) (T50, k = 20) --", family[0].0);
        println!("{:<6} {:>12} {:>12}", "graph", "Topk", "Topk-EN");
        for (name, spec) in family {
            let ds = prepare_dataset(name, &spec);
            let queries = queries_for(&ds, 50, cfg.queries_per_set, true);
            if queries.is_empty() {
                println!("{:<6} {:>12} {:>12}", name, "-", "-");
                continue;
            }
            let a = run_algo_avg(&ds, &queries, 20, Algo::Topk);
            let b = run_algo_avg(&ds, &queries, 20, Algo::TopkEn);
            println!(
                "{:<6} {:>12} {:>12}",
                name,
                fmt_secs(a.total_secs()),
                fmt_secs(b.total_secs())
            );
        }
    }
    println!();
}

/// Figure 8: general twig-pattern matching (duplicate labels, Topk-GT).
fn fig8(cfg: &Config) {
    println!("== Figure 8: general twigs (duplicate labels, Topk-GT = Topk-EN) ==");
    for (synthetic, (name, spec)) in [
        (false, gd_family()[DEFAULT_GD].clone()),
        (true, gs_family()[DEFAULT_GS].clone()),
    ] {
        let ds = prepare_dataset(name, &spec);
        // (a) vary k with T50 duplicate-label queries.
        let queries = queries_for(&ds, 50, cfg.queries_per_set, false);
        let dup_ratio = |qs: &[ktpm_query::ResolvedQuery]| -> f64 {
            if qs.is_empty() {
                return 0.0;
            }
            let r: f64 = qs
                .iter()
                .map(|q| {
                    let names: std::collections::HashSet<_> = q
                        .tree()
                        .node_ids()
                        .filter_map(|u| q.tree().label_name(u))
                        .collect();
                    1.0 - names.len() as f64 / q.len() as f64
                })
                .sum();
            r / qs.len() as f64
        };
        println!(
            "-- {} (T50 dup-label queries, avg duplication {:.1}%) --",
            ds.name,
            dup_ratio(&queries) * 100.0
        );
        println!("{:<6} {:>12}", "k", "Topk-GT");
        for &k in &cfg.ks {
            let m = run_algo_avg(&ds, &queries, k, Algo::TopkEn);
            println!("{:<6} {:>12}", k, fmt_secs(m.total_secs()));
        }
        // (b) vary query size.
        println!("{:<6} {:>12}", "T", "Topk-GT");
        for size in query_sizes(synthetic) {
            let queries = queries_for(&ds, size, cfg.queries_per_set, false);
            if queries.is_empty() {
                println!("T{:<5} {:>12}", size, "-");
                continue;
            }
            let m = run_algo_avg(&ds, &queries, 20, Algo::TopkEn);
            println!("T{:<5} {:>12}", size, fmt_secs(m.total_secs()));
        }
    }
    // (c)/(d) vary graph size.
    for family in [gd_family(), gs_family()] {
        println!("-- vary graph ({}) (T50 dup, k = 20) --", family[0].0);
        println!("{:<6} {:>12}", "graph", "Topk-GT");
        for (name, spec) in family {
            let ds = prepare_dataset(name, &spec);
            let queries = queries_for(&ds, 50, cfg.queries_per_set, false);
            if queries.is_empty() {
                println!("{:<6} {:>12}", name, "-");
                continue;
            }
            let m = run_algo_avg(&ds, &queries, 20, Algo::TopkEn);
            println!("{:<6} {:>12}", name, fmt_secs(m.total_secs()));
        }
    }
    println!();
}

/// Figure 9: kGPM — mtree vs mtree+.
fn fig9(cfg: &Config) {
    println!("== Figure 9: kGPM (mtree = DP-B driver, mtree+ = Topk-EN driver) ==");
    let g = ktpm_workload::generate(&GraphSpec::power_law(cfg.kgpm_nodes, 17));
    let ug = ktpm_graph::undirect(&g);
    let t = Instant::now();
    let store = ktpm_storage::MemStore::new(ktpm_closure::ClosureTables::compute(&g))
        .with_graph(g.clone())
        .into_shared();
    println!(
        "data graph {} nodes (closure in {:?})",
        g.num_nodes(),
        t.elapsed()
    );
    // Q1..Q4: the growing cyclic-pattern family, planned once each.
    // Both drivers share the plan half (spanning-tree decomposition,
    // verification edges, lower bounds) — exactly what warm opens of a
    // serving session reuse.
    let pool = ktpm_exec::default_pool();
    let plans: Vec<_> = ktpm_workload::pattern_family()
        .into_iter()
        .filter_map(|(name, spec)| {
            ktpm_workload::pattern_set(&ug, spec, 1, 100)
                .into_iter()
                .next()
                .map(|q| {
                    let plan = QueryPlan::new_pattern(q, g.interner(), &store)
                        .expect("graph-attached store supports pattern plans");
                    (name, plan)
                })
        })
        .collect();
    let run = |plan: &QueryPlan, k: usize, engine: ShardEngine| {
        let t = Instant::now();
        let mut stream = KgpmStream::from_plan(plan, &kgpm_policy(engine), Arc::clone(&pool));
        let mut out = Vec::new();
        stream.next_batch(k, &mut out);
        (t.elapsed(), out, stream.stats())
    };
    // (a) vary k with Q2.
    if plans.len() >= 2 {
        let (qname, plan) = &plans[1];
        println!("-- vary k (query {qname}) --");
        println!(
            "{:<6} {:>12} {:>12} {:>14} {:>14}",
            "k", "mtree", "mtree+", "enum(mtree)", "enum(mtree+)"
        );
        for &k in &cfg.ks {
            let (d0, _, s0) = run(plan, k, ShardEngine::Full);
            let (d1, _, s1) = run(plan, k, ShardEngine::Lazy);
            println!(
                "{:<6} {:>12} {:>12} {:>14} {:>14}",
                k,
                fmt_secs(d0.as_secs_f64()),
                fmt_secs(d1.as_secs_f64()),
                s0.tree_matches_enumerated,
                s1.tree_matches_enumerated
            );
        }
    }
    // (b) vary query, k = 20.
    println!("-- vary query (k = 20) --");
    println!("{:<6} {:>12} {:>12}", "query", "mtree", "mtree+");
    for (qname, plan) in &plans {
        let (d0, m0, _) = run(plan, 20, ShardEngine::Full);
        let (d1, m1, _) = run(plan, 20, ShardEngine::Lazy);
        assert_eq!(
            m0.iter().map(|m| m.score).collect::<Vec<_>>(),
            m1.iter().map(|m| m.score).collect::<Vec<_>>(),
            "drivers disagree on {qname}"
        );
        println!(
            "{:<6} {:>12} {:>12}",
            qname,
            fmt_secs(d0.as_secs_f64()),
            fmt_secs(d1.as_secs_f64())
        );
    }
    println!();
}

/// The match-dense wildcard-star query set driving the parallel
/// figures: branching under every root makes enumeration (the part
/// sharding splits) dominate loading; random-walk `T*` sets on the GS
/// family are the opposite regime (dozens of matches, all setup) and
/// would only measure the serial run-time-graph load.
fn star_queries(ds: &Dataset) -> Vec<ktpm_query::ResolvedQuery> {
    [("L0", 2), ("L7", 2), ("L0", 3)]
        .into_iter()
        .filter_map(|(root, fanout)| wildcard_star(ds, root, fanout))
        .collect()
}

/// ParTopk shard scalability over the GS family (fig7-style layout:
/// vary shards at fixed k per graph size).
fn par(cfg: &Config) {
    println!("== ParTopk: shard scalability over the GS family (wildcard stars) ==");
    let shard_counts = [1usize, 2, 4, 8];
    let pool = Arc::new(WorkerPool::new(
        shard_counts.iter().copied().max().expect("non-empty"),
    ));
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("(pool width {}, {} cores)", pool.width(), cores);
    for (name, spec) in gs_family() {
        let ds = prepare_dataset(name, &spec);
        let queries = star_queries(&ds);
        if queries.is_empty() {
            println!("{:<6} (no queries)", name);
            continue;
        }
        print!("{:<6} k={:<6}", ds.name, cfg.par_k);
        let mut base = 0.0;
        for &s in &shard_counts {
            let m = run_par_avg(&ds, &queries, cfg.par_k, s, &pool);
            if s == 1 {
                base = m.total_secs();
            }
            print!(
                " P{s}: {:>9} ({:>4.2}x)",
                fmt_secs(m.total_secs()),
                base / m.total_secs().max(1e-12)
            );
        }
        println!();
    }
    println!();
}

/// Drains up to `k` matches off `it`, diffing the bench allocator's
/// counter around the loop: `(allocations, wall seconds, matches)`.
/// Enumerator construction happens before the call, so setup cost is
/// excluded — this isolates the enumeration hot path the deviation
/// encoding targets.
fn drain_counting<I: Iterator<Item = ktpm_core::ScoredMatch>>(
    it: I,
    k: usize,
) -> (u64, f64, usize) {
    let a0 = ktpm_bench::alloc_count();
    let t = Instant::now();
    let n = it.take(k).count();
    (ktpm_bench::alloc_count() - a0, t.elapsed().as_secs_f64(), n)
}

/// Clone-baseline allocations/op for the `deviation_encoding` gate,
/// measured on this workload (GS3 wildcard stars, k = 50 000) at the
/// last clone-based tree (PR 3): every popped match stored a full
/// `Vec<u32>` assignment and `divide`/`materialize`/`reevaluate` cloned
/// it again per call. Allocation *counts* are deterministic for a
/// deterministic workload, so these travel across machines (unlike
/// wall times, which are recorded for context only).
const CLONE_BASELINE_ALLOCS_PER_OP: [(&str, f64); 3] =
    [("Topk", 4.403), ("Topk-EN", 4.592), ("ParTopk/1", 6.336)];

/// The CI `bench-smoke` harness: short, deterministic workload; JSON out.
fn smoke() {
    let t0 = Instant::now();
    let (name, spec) = gs_family()[DEFAULT_GS].clone();
    let ds = prepare_dataset(name, &spec);
    let queries = star_queries(&ds);
    assert!(!queries.is_empty(), "smoke workload generated no queries");
    let k = 50_000;
    let shard_counts = [1usize, 2, 4];
    let pool = Arc::new(WorkerPool::new(4));
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "== bench-smoke: {} ({} nodes), {} wildcard-star queries, k={k}, {cores} cores ==",
        ds.name,
        ds.graph.num_nodes(),
        queries.len()
    );

    // NOTE on trajectory continuity: as of the facade redesign (PR 5),
    // these wall times measure the canonical facade stream
    // (`build_stream` → plan + canonical order) — the path every
    // consumer actually runs — not the raw-tie-order enumerators the
    // pre-PR-5 points timed. Sequential rows (Topk, Topk-EN) stepped
    // up ~2x at that boundary from the canonical wrapper + plan
    // pipeline; the ParTopk rows were canonical all along and are
    // continuous. Raw hot-path cost is still tracked below in
    // `deviation_encoding` (unchanged measurement).
    let mut entries: Vec<(String, f64)> = Vec::new();
    for algo in [Algo::Topk, Algo::TopkEn] {
        let m = run_algo_avg(&ds, &queries, k, algo);
        println!("{:<10} {:>10}", paper_name(algo), fmt_secs(m.total_secs()));
        entries.push((paper_name(algo).to_string(), m.total_secs()));
    }
    let mut par_secs = std::collections::BTreeMap::new();
    for &s in &shard_counts {
        let m = run_par_avg(&ds, &queries, k, s, &pool);
        println!("ParTopk/{s}  {:>10}", fmt_secs(m.total_secs()));
        entries.push((format!("ParTopk/{s}"), m.total_secs()));
        par_secs.insert(s, m.total_secs());
    }
    let speedup = par_secs[&1] / par_secs[&4].max(1e-12);
    println!("speedup 4 shards over 1: {speedup:.2}x");

    // Cold-open vs warm-open latency over one shared QueryPlan: the
    // cold open pays candidate discovery + run-time-graph load + bs;
    // warm opens reuse all of it (verified: zero further storage I/O).
    let q = &queries[0];
    let open_k = 100usize;
    ds.store.reset_io();
    let t = Instant::now();
    let plan = Arc::new(ktpm_core::QueryPlan::new(q.clone(), Arc::clone(&ds.store)));
    let cold_n = ktpm_core::canonical(ktpm_core::TopkEnumerator::from_plan(&plan))
        .take(open_k)
        .count();
    let cold_secs = t.elapsed().as_secs_f64();
    let after_cold = ds.store.io();
    let warm_runs = 5;
    let t = Instant::now();
    for _ in 0..warm_runs {
        let n = ktpm_core::canonical(ktpm_core::TopkEnumerator::from_plan(&plan))
            .take(open_k)
            .count();
        assert_eq!(n, cold_n, "warm opens must reproduce the stream");
    }
    let warm_secs = t.elapsed().as_secs_f64() / warm_runs as f64;
    let warm_io = ds.store.io().since(&after_cold);
    assert_eq!(
        warm_io.d_entries + warm_io.e_entries + warm_io.edges_read,
        0,
        "warm opens must do zero candidate discovery / loading"
    );
    let open_speedup = cold_secs / warm_secs.max(1e-12);
    println!(
        "plan open (top-{open_k}): cold {} warm {} ({open_speedup:.1}x, warm sweeps: 0)",
        fmt_secs(cold_secs),
        fmt_secs(warm_secs)
    );

    // Plan-cache hit rate through the service engine: every query
    // opened twice per algorithm -> first open per query text misses,
    // all others hit.
    let handle = ktpm_service::QueryEngine::new(
        ds.graph.interner().clone(),
        Arc::clone(&ds.store),
        ktpm_service::ServiceConfig::default(),
    );
    let query_texts: Vec<String> = [("L0", 2usize), ("L7", 2), ("L0", 3)]
        .into_iter()
        .map(|(root, fanout)| {
            (1..=fanout)
                .map(|i| format!("{root} -> *#{i}\n"))
                .collect::<String>()
        })
        .collect();
    for text in &query_texts {
        for algo in [ktpm_service::Algo::Topk, ktpm_service::Algo::Par] {
            let id = handle.open(text, algo).expect("open");
            handle.next(id, 10).expect("next");
            handle.close(id).expect("close");
        }
    }
    let m = handle.stats().metrics;
    let hit_rate = m.plan_hits as f64 / (m.plan_hits + m.plan_misses).max(1) as f64;
    println!(
        "plan cache: {} hits / {} misses (hit rate {hit_rate:.2})",
        m.plan_hits, m.plan_misses
    );

    // Many-connection soak over the event-loop front end: hundreds of
    // concurrent pipelined sessions, per-NEXT latency percentiles, and
    // the invariant that nominal load sheds nothing (CI gates on the
    // emitted sheds / protocol_errors).
    let soak = serve_soak(&ds);
    println!(
        "serve soak (event loop): {} conns / {} sessions, {} NEXTs, p50 {:.2}ms p99 {:.2}ms, \
         {} protocol errors, {} sheds",
        soak.connections,
        soak.sessions,
        soak.next_requests,
        soak.p50_ms,
        soak.p99_ms,
        soak.protocol_errors,
        soak.sheds
    );

    // Live graph update: weight-only delta through the service engine.
    // Delta-aware invalidation keeps unaffected plans warm, so the
    // re-open after the update must beat serving the same query off a
    // cold rebuild (full closure recompute on the mutated graph + cold
    // open) — the CI gate for the mutation API.
    let gu = graph_update_bench(&ds);
    println!(
        "graph update: re-open after update {} vs cold rebuild {} ({:.0}x, plan hit: {}); \
         apply took {}, {} pairs touched, {} plans / {} prefixes invalidated",
        fmt_secs(gu.warm_reopen_secs),
        fmt_secs(gu.cold_rebuild_secs),
        gu.speedup,
        gu.warm_plan_hit,
        fmt_secs(gu.update_secs),
        gu.touched_pairs,
        gu.plans_invalidated,
        gu.prefix_entries_invalidated,
    );

    // kGPM through the one-surface machinery: cold vs warm pattern-plan
    // opens, Figure 9's mtree vs mtree+ drivers over one shared plan,
    // and a service warm re-open that must be a plan hit (CI gate).
    let kg = kgpm_smoke();
    println!(
        "kgpm: cold open {} warm {} ({:.1}x); mtree {} mtree+ {} \
         ({} matches, warm plan hit: {})",
        fmt_secs(kg.cold_open_secs),
        fmt_secs(kg.warm_open_secs),
        kg.open_speedup,
        fmt_secs(kg.mtree_secs),
        fmt_secs(kg.mtree_plus_secs),
        kg.matches,
        kg.warm_plan_hit,
    );

    // Paged block storage: cold open off disk vs warm re-open out of
    // the LRU block cache, lazy bytes read vs a full load, and a full
    // checksum scrub. CI gates warm_hit_rate >= 0.9 and
    // verify_failures == 0.
    let ps = paged_store_smoke(&ds, q);
    println!(
        "paged store: cold {} ({} of {} file bytes read), warm re-open {} \
         (hit rate {:.2}, {} hits / {} misses), cached-plan disk reads {}, \
         verify failures {}",
        fmt_secs(ps.cold_secs),
        ps.bytes_read_cold,
        ps.file_bytes,
        fmt_secs(ps.warm_secs),
        ps.warm_hit_rate,
        ps.warm_hits,
        ps.warm_misses,
        ps.cached_plan_disk_block_reads,
        ps.verify_failures,
    );

    // Distributed storage: the same snapshot sharded across files and
    // served over TCP by an in-process blockd. CI gates
    // warm_remote_fetches == 0 and scrub_failures == 0.
    let ss = sharded_store_smoke(&ds, q);
    println!(
        "sharded store: {} shards (single-pair probe opened {} file), cold query {} \
         ({} files), fetch p50/p99 local {:.3}/{:.3}ms remote {:.3}/{:.3}ms, \
         warm remote fetches {}, scrub failures {}",
        ss.shard_count,
        ss.probe_files_opened,
        fmt_secs(ss.cold_secs),
        ss.cold_files_opened,
        ss.local_fetch_p50_ms,
        ss.local_fetch_p99_ms,
        ss.remote_fetch_p50_ms,
        ss.remote_fetch_p99_ms,
        ss.warm_remote_fetches,
        ss.scrub_failures,
    );

    // One MatchStream surface: per-item vs batched pull
    // (`api_batched_pull`). The *replay* rows isolate the pull overhead
    // itself — a pre-materialized stream whose per-match production
    // cost is ~0, so the numbers are dominated by what the consumer
    // pays per pull: one virtual call + `Option` move per match on the
    // per-item path (what sessions paid before batched pull) versus a
    // single `next_batch` per request. The *live* rows run the same
    // two consumption modes over a warm Topk engine for end-to-end
    // context (there, enumeration work dominates both). CI gates
    // batched ≤ per-item on the replay delay.
    fn drain_item(mut it: ktpm_core::BoxedMatchStream, cap: usize) -> (usize, f64) {
        let mut out: Vec<ktpm_core::ScoredMatch> = Vec::with_capacity(cap);
        let t = Instant::now();
        while out.len() < cap {
            match ktpm_core::MatchStream::next(&mut *it) {
                Some(m) => out.push(m),
                None => break,
            }
        }
        (out.len(), t.elapsed().as_secs_f64())
    }
    fn drain_batched(mut it: ktpm_core::BoxedMatchStream, cap: usize) -> (usize, f64) {
        let mut out: Vec<ktpm_core::ScoredMatch> = Vec::with_capacity(cap);
        let t = Instant::now();
        it.next_batch(cap, &mut out);
        (out.len(), t.elapsed().as_secs_f64())
    }
    let ab_policy = ktpm_core::ParallelPolicy::default();
    let ab_plan = ktpm_core::QueryPlan::new(queries[0].clone(), Arc::clone(&ds.store));
    let mut replay: Vec<ktpm_core::ScoredMatch> = Vec::with_capacity(k);
    ktpm_core::build_stream(
        ktpm_core::Algo::Topk,
        &ab_plan,
        &ab_policy,
        Arc::clone(&pool),
    )
    .next_batch(k, &mut replay);
    let ab_n = replay.len();
    assert!(ab_n > 0, "api_batched_pull needs a non-empty stream");
    // Min-of-N with the two modes interleaved, so drift (frequency,
    // page cache) hits both sides equally.
    let (mut item_spm, mut batched_spm) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..7 {
        let (n_i, t_i) = drain_item(Box::new(replay.clone().into_iter()), ab_n);
        let (n_b, t_b) = drain_batched(Box::new(replay.clone().into_iter()), ab_n);
        assert_eq!((n_i, n_b), (ab_n, ab_n));
        item_spm = item_spm.min(t_i / ab_n as f64);
        batched_spm = batched_spm.min(t_b / ab_n as f64);
    }
    let (mut live_item_spm, mut live_batched_spm) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..3 {
        let (n_i, t_i) = drain_item(
            ktpm_core::build_stream(
                ktpm_core::Algo::Topk,
                &ab_plan,
                &ab_policy,
                Arc::clone(&pool),
            ),
            k,
        );
        let (n_b, t_b) = drain_batched(
            ktpm_core::build_stream(
                ktpm_core::Algo::Topk,
                &ab_plan,
                &ab_policy,
                Arc::clone(&pool),
            ),
            k,
        );
        assert_eq!(n_i, n_b);
        live_item_spm = live_item_spm.min(t_i / n_i.max(1) as f64);
        live_batched_spm = live_batched_spm.min(t_b / n_b.max(1) as f64);
    }
    println!(
        "api batched pull (replay, {ab_n} matches): per-item {:.1}ns/match, batched \
         {:.1}ns/match ({:.1}x); live Topk: per-item {:.1}ns, batched {:.1}ns",
        item_spm * 1e9,
        batched_spm * 1e9,
        item_spm / batched_spm.max(1e-15),
        live_item_spm * 1e9,
        live_batched_spm * 1e9,
    );

    // Allocations/op on the enumeration hot path, per engine, against
    // the recorded clone baseline (the metric the arena-backed
    // deviation encoding is gated on in CI).
    let mut de_rows: Vec<(&str, f64, f64)> = Vec::new();
    {
        let (mut allocs, mut wall, mut ops) = (0u64, 0.0f64, 0usize);
        for q in &queries {
            let rg = ktpm_runtime::RuntimeGraph::load(q, ds.store.as_ref());
            let (a, w, n) = drain_counting(ktpm_core::TopkEnumerator::new(&rg), k);
            allocs += a;
            wall += w;
            ops += n;
        }
        de_rows.push(("Topk", allocs as f64 / ops.max(1) as f64, wall));
    }
    {
        let (mut allocs, mut wall, mut ops) = (0u64, 0.0f64, 0usize);
        for q in &queries {
            let (a, w, n) =
                drain_counting(ktpm_core::TopkEnEnumerator::new(q, ds.store.as_ref()), k);
            allocs += a;
            wall += w;
            ops += n;
        }
        de_rows.push(("Topk-EN", allocs as f64 / ops.max(1) as f64, wall));
    }
    {
        let (mut allocs, mut wall, mut ops) = (0u64, 0.0f64, 0usize);
        let policy = ktpm_core::ParallelPolicy {
            shards: 1,
            batch: 64,
            engine: ktpm_core::ShardEngine::Full,
        };
        for q in &queries {
            let it = ktpm_core::ParTopk::new(q, Arc::clone(&ds.store), &policy, Arc::clone(&pool));
            let (a, w, n) = drain_counting(it, k);
            allocs += a;
            wall += w;
            ops += n;
        }
        de_rows.push(("ParTopk/1", allocs as f64 / ops.max(1) as f64, wall));
    }
    let mut min_reduction = f64::INFINITY;
    for &(name, apo, wall) in &de_rows {
        let base = CLONE_BASELINE_ALLOCS_PER_OP
            .iter()
            .find(|&&(n, _)| n == name)
            .map_or(0.0, |&(_, b)| b);
        let red = if apo > 0.0 { base / apo } else { f64::INFINITY };
        min_reduction = min_reduction.min(red);
        println!(
            "deviation encoding {name:<10} {apo:>7.3} allocs/op (clone baseline {base:.3}, \
             {red:.1}x) in {}",
            fmt_secs(wall)
        );
    }

    let algos_json: Vec<String> = entries
        .iter()
        .map(|(n, secs)| format!("    \"{n}\": {secs:.6}"))
        .collect();
    let de_allocs_json: Vec<String> = de_rows
        .iter()
        .map(|(n, apo, _)| format!("      \"{n}\": {apo:.4}"))
        .collect();
    let de_base_json: Vec<String> = CLONE_BASELINE_ALLOCS_PER_OP
        .iter()
        .map(|(n, b)| format!("      \"{n}\": {b:.4}"))
        .collect();
    let de_wall_json: Vec<String> = de_rows
        .iter()
        .map(|(n, _, w)| format!("      \"{n}\": {w:.6}"))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"parallel\",\n  \"workload\": \"{} wildcard stars\",\n  \
         \"nodes\": {},\n  \"queries\": {},\n  \"k\": {k},\n  \"cores\": {cores},\n  \
         \"pool_width\": {},\n  \"wall_secs\": {{\n{}\n  }},\n  \
         \"speedup_4_shards_over_1\": {speedup:.4},\n  \
         \"plan_open\": {{\n    \"k\": {open_k},\n    \"cold_secs\": {cold_secs:.6},\n    \
         \"warm_secs\": {warm_secs:.6},\n    \"speedup\": {open_speedup:.4},\n    \
         \"warm_discovery_sweeps\": 0,\n    \"cache_hits\": {},\n    \
         \"cache_misses\": {},\n    \"cache_hit_rate\": {hit_rate:.4}\n  }},\n  \
         \"api_batched_pull\": {{\n    \"k\": {ab_n},\n    \
         \"item_secs_per_match\": {item_spm:.12},\n    \
         \"batched_secs_per_match\": {batched_spm:.12},\n    \
         \"speedup\": {:.4},\n    \
         \"live_item_secs_per_match\": {live_item_spm:.12},\n    \
         \"live_batched_secs_per_match\": {live_batched_spm:.12}\n  }},\n  \
         \"deviation_encoding\": {{\n    \"k\": {k},\n    \
         \"allocs_per_op\": {{\n{}\n    }},\n    \
         \"clone_baseline_allocs_per_op\": {{\n{}\n    }},\n    \
         \"wall_secs\": {{\n{}\n    }},\n    \
         \"min_alloc_reduction\": {}\n  }},\n  \
         \"serve_soak\": {{\n    \"connections\": {},\n    \
         \"sessions\": {},\n    \"next_requests\": {},\n    \
         \"next_p50_ms\": {:.4},\n    \"next_p99_ms\": {:.4},\n    \
         \"protocol_errors\": {},\n    \"sheds\": {}\n  }},\n  \
         \"graph_update\": {{\n    \"update_secs\": {:.6},\n    \
         \"warm_reopen_secs\": {:.6},\n    \
         \"cold_rebuild_secs\": {:.6},\n    \"speedup\": {:.4},\n    \
         \"warm_plan_hit\": {},\n    \"touched_pairs\": {},\n    \
         \"plans_invalidated\": {},\n    \
         \"prefix_entries_invalidated\": {}\n  }},\n  \
         \"kgpm\": {{\n    \"k\": {},\n    \"matches\": {},\n    \
         \"cold_open_secs\": {:.6},\n    \"warm_open_secs\": {:.6},\n    \
         \"open_speedup\": {:.4},\n    \"mtree_secs\": {:.6},\n    \
         \"mtree_plus_secs\": {:.6},\n    \"warm_plan_hit\": {}\n  }},\n  \
         \"paged_store\": {{\n    \"cache_budget_bytes\": {},\n    \
         \"file_bytes\": {},\n    \"cold_secs\": {:.6},\n    \
         \"bytes_read_cold\": {},\n    \"warm_secs\": {:.6},\n    \
         \"warm_hits\": {},\n    \"warm_misses\": {},\n    \
         \"warm_hit_rate\": {:.4},\n    \
         \"cached_plan_disk_block_reads\": {},\n    \
         \"verify_failures\": {}\n  }},\n  \
         \"sharded_store\": {{\n    \"shard_count\": {},\n    \
         \"probe_files_opened\": {},\n    \"cold_files_opened\": {},\n    \
         \"cold_secs\": {:.6},\n    \
         \"local_fetch_p50_ms\": {:.4},\n    \"local_fetch_p99_ms\": {:.4},\n    \
         \"remote_fetch_p50_ms\": {:.4},\n    \"remote_fetch_p99_ms\": {:.4},\n    \
         \"warm_remote_fetches\": {},\n    \
         \"scrub_failures\": {}\n  }}\n}}\n",
        ds.name,
        ds.graph.num_nodes(),
        queries.len(),
        pool.width(),
        algos_json.join(",\n"),
        m.plan_hits,
        m.plan_misses,
        item_spm / batched_spm.max(1e-15),
        de_allocs_json.join(",\n"),
        de_base_json.join(",\n"),
        de_wall_json.join(",\n"),
        if min_reduction.is_finite() {
            format!("{min_reduction:.2}")
        } else {
            "null".to_string()
        },
        soak.connections,
        soak.sessions,
        soak.next_requests,
        soak.p50_ms,
        soak.p99_ms,
        soak.protocol_errors,
        soak.sheds,
        gu.update_secs,
        gu.warm_reopen_secs,
        gu.cold_rebuild_secs,
        gu.speedup,
        gu.warm_plan_hit,
        gu.touched_pairs,
        gu.plans_invalidated,
        gu.prefix_entries_invalidated,
        kg.k,
        kg.matches,
        kg.cold_open_secs,
        kg.warm_open_secs,
        kg.open_speedup,
        kg.mtree_secs,
        kg.mtree_plus_secs,
        kg.warm_plan_hit,
        ps.cache_budget_bytes,
        ps.file_bytes,
        ps.cold_secs,
        ps.bytes_read_cold,
        ps.warm_secs,
        ps.warm_hits,
        ps.warm_misses,
        ps.warm_hit_rate,
        ps.cached_plan_disk_block_reads,
        ps.verify_failures,
        ss.shard_count,
        ss.probe_files_opened,
        ss.cold_files_opened,
        ss.cold_secs,
        ss.local_fetch_p50_ms,
        ss.local_fetch_p99_ms,
        ss.remote_fetch_p50_ms,
        ss.remote_fetch_p99_ms,
        ss.warm_remote_fetches,
        ss.scrub_failures,
    );
    let path = workspace_root().join("BENCH_parallel.json");
    std::fs::write(&path, json).expect("write BENCH_parallel.json");
    println!("wrote {} in {:?}", path.display(), t0.elapsed());
}

struct PagedStoreSmoke {
    cache_budget_bytes: u64,
    file_bytes: u64,
    cold_secs: f64,
    bytes_read_cold: u64,
    warm_secs: f64,
    warm_hits: u64,
    warm_misses: u64,
    warm_hit_rate: f64,
    cached_plan_disk_block_reads: u64,
    verify_failures: u64,
}

/// Cold vs warm service over the on-disk paged (v3) store. The cold
/// pass opens a fresh [`ktpm_storage::PagedStore`] and streams a
/// top-`k`: every table section and group block it touches comes off
/// disk, CRC-verified on first fetch, and `bytes_read_cold` records
/// how little of the file a lazy run actually reads. The warm passes
/// build a *fresh* plan over the same store — candidate discovery
/// re-reads the `D`/`E` tables, but every group block must come from
/// the LRU cache (the CI gate: `warm_hit_rate >= 0.9`). Re-running an
/// already-built plan must touch no storage at all (zero disk block
/// reads — asserted here, reported for the record). Finally a full
/// scrub re-checks every checksum in the file; CI gates
/// `verify_failures == 0`.
fn paged_store_smoke(ds: &Dataset, q: &ktpm_query::ResolvedQuery) -> PagedStoreSmoke {
    let budget = ktpm_storage::DEFAULT_BLOCK_CACHE_BYTES;
    let store: ktpm_storage::SharedSource =
        match ktpm_storage::PagedStore::open_with_cache_bytes(&ds.path, budget) {
            Ok(s) => s.into_shared(),
            Err(e) => panic!("open paged store {}: {e}", ds.path.display()),
        };
    let open_k = 100usize;
    let run = |plan: &Arc<ktpm_core::QueryPlan>| {
        ktpm_core::canonical(ktpm_core::TopkEnumerator::from_plan(plan))
            .take(open_k)
            .count()
    };
    let t = Instant::now();
    let cold_plan = Arc::new(ktpm_core::QueryPlan::new(q.clone(), Arc::clone(&store)));
    let cold_n = run(&cold_plan);
    let cold_secs = t.elapsed().as_secs_f64();
    let cold_io = store.io();
    assert!(cold_n > 0, "paged smoke query must match");
    assert!(
        cold_io.cache_misses > 0,
        "a cold paged run must fetch group blocks from disk"
    );
    let warm_runs = 5;
    let t = Instant::now();
    for _ in 0..warm_runs {
        let plan = Arc::new(ktpm_core::QueryPlan::new(q.clone(), Arc::clone(&store)));
        assert_eq!(
            run(&plan),
            cold_n,
            "warm re-opens must reproduce the stream"
        );
    }
    let warm_secs = t.elapsed().as_secs_f64() / warm_runs as f64;
    let warm_io = store.io().since(&cold_io);
    let warm_hit_rate =
        warm_io.cache_hits as f64 / (warm_io.cache_hits + warm_io.cache_misses).max(1) as f64;
    let before_cached = store.io();
    assert_eq!(
        run(&cold_plan),
        cold_n,
        "a cached plan must reproduce the stream"
    );
    let cached_io = store.io().since(&before_cached);
    assert_eq!(
        cached_io.block_reads, 0,
        "re-running a cached plan must read zero blocks from disk"
    );
    // Scrub through a second handle: verification bypasses the cache
    // by contract, so the serving store's counters stay untouched.
    let scrub = ktpm_storage::PagedStore::open(&ds.path).expect("re-open paged store for scrub");
    let verify_failures = u64::from(scrub.verify().is_err());
    PagedStoreSmoke {
        cache_budget_bytes: budget,
        file_bytes: ds.file_bytes,
        cold_secs,
        bytes_read_cold: cold_io.bytes_read,
        warm_secs,
        warm_hits: warm_io.cache_hits,
        warm_misses: warm_io.cache_misses,
        warm_hit_rate,
        cached_plan_disk_block_reads: cached_io.block_reads,
        verify_failures,
    }
}

struct ShardedStoreSmoke {
    shard_count: usize,
    probe_files_opened: u64,
    cold_files_opened: u64,
    cold_secs: f64,
    local_fetch_p50_ms: f64,
    local_fetch_p99_ms: f64,
    remote_fetch_p50_ms: f64,
    remote_fetch_p99_ms: f64,
    warm_remote_fetches: u64,
    scrub_failures: u64,
}

fn percentile_ms(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let i = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[i] * 1e3
}

/// The distributed storage tiers over the same snapshot, sharded
/// 4-way. A single-pair probe on a cold [`ktpm_storage::ShardedStore`]
/// must open exactly the one file that pair routes to (laziness), and
/// the cold query records how many of the shard files it really
/// touched. Per-table fetch latency is sampled with a 1-byte cache on
/// both a local paged handle and a [`ktpm_storage::RemoteStore`]
/// talking to an in-process `blockd`, so the p50/p99 rows compare the
/// disk hop against the network hop for the *same* reads. A warm
/// remote pass — a fresh plan over an already-hot remote store — must
/// answer entirely out of the shared block cache (the CI gate:
/// `warm_remote_fetches == 0`), and a full manifest + shard scrub must
/// be clean (`scrub_failures == 0`).
fn sharded_store_smoke(ds: &Dataset, q: &ktpm_query::ResolvedQuery) -> ShardedStoreSmoke {
    let shards = 4u32;
    let dir = ds.path.with_extension("sharded");
    if !dir.join("MANIFEST").exists() {
        let tables = ktpm_closure::ClosureTables::compute(&ds.graph);
        ktpm_storage::write_store_sharded(
            &tables,
            &dir,
            &ktpm_storage::ShardSpec::new(0, shards),
            ktpm_storage::DEFAULT_BLOCK_EDGES,
        )
        .expect("write sharded snapshot");
    }
    let manifest_path = dir.join("MANIFEST");
    let open_k = 100usize;

    // Laziness: one routed pair opens exactly one shard file.
    let probe = ktpm_storage::ShardedStore::open(&manifest_path).expect("open sharded store");
    let (&(a, b), _) = probe
        .manifest()
        .routing
        .iter()
        .next()
        .expect("a routed pair");
    probe.load_d(a, b);
    let probe_files_opened = probe.io().files_opened;
    assert_eq!(
        probe_files_opened, 1,
        "a single-pair read must open exactly its owning shard file"
    );

    // Cold query over the sharded tier.
    let sharded: ktpm_storage::SharedSource = ktpm_storage::ShardedStore::open(&manifest_path)
        .expect("open sharded store")
        .into_shared();
    let t = Instant::now();
    let plan = Arc::new(ktpm_core::QueryPlan::new(q.clone(), Arc::clone(&sharded)));
    let cold_n = ktpm_core::canonical(ktpm_core::TopkEnumerator::from_plan(&plan))
        .take(open_k)
        .count();
    let cold_secs = t.elapsed().as_secs_f64();
    let cold_files_opened = sharded.io().files_opened;
    assert!(cold_n > 0, "sharded smoke query must match");
    assert!(cold_files_opened <= shards as u64);

    // Fetch-latency comparison, local disk vs network hop, with a
    // 1-byte budget so every sampled read really fetches.
    let local = ktpm_storage::PagedStore::open_with_cache_bytes(&ds.path, 1)
        .expect("open paged store for latency sampling");
    let server =
        ktpm_net::BlockServer::spawn(&dir, ("127.0.0.1", 0)).expect("spawn in-process blockd");
    let remote = ktpm_storage::RemoteStore::connect_with(
        &server.local_addr().to_string(),
        ktpm_storage::RemoteOptions {
            cache_bytes: 1,
            ..ktpm_storage::RemoteOptions::default()
        },
    )
    .expect("connect to in-process blockd");
    let sample = |store: &dyn ktpm_storage::ClosureSource| -> Vec<f64> {
        let mut lat = Vec::new();
        for (a, b) in store.pair_keys().into_iter().take(100) {
            let t = Instant::now();
            store.load_d(a, b);
            store.load_e(a, b);
            lat.push(t.elapsed().as_secs_f64());
        }
        lat.sort_by(|x, y| x.partial_cmp(y).expect("finite latencies"));
        lat
    };
    let local_lat = sample(&local);
    let remote_lat = sample(&remote);
    assert!(remote.io().remote_fetches > 0);

    // Warm remote serving: a fresh plan over a hot remote store must
    // answer entirely out of the shared block cache.
    let hot: ktpm_storage::SharedSource =
        ktpm_storage::RemoteStore::connect(&server.local_addr().to_string())
            .expect("connect to in-process blockd")
            .into_shared();
    let cold_plan = Arc::new(ktpm_core::QueryPlan::new(q.clone(), Arc::clone(&hot)));
    let hot_n = ktpm_core::canonical(ktpm_core::TopkEnumerator::from_plan(&cold_plan))
        .take(open_k)
        .count();
    assert_eq!(hot_n, cold_n, "remote stream must equal the local one");
    let before = hot.io();
    let warm_plan = Arc::new(ktpm_core::QueryPlan::new(q.clone(), Arc::clone(&hot)));
    let warm_n = ktpm_core::canonical(ktpm_core::TopkEnumerator::from_plan(&warm_plan))
        .take(open_k)
        .count();
    assert_eq!(
        warm_n, cold_n,
        "warm remote re-opens must reproduce the stream"
    );
    let warm_remote_fetches = hot.io().since(&before).remote_fetches;

    // Full scrub: manifest CRC + every shard file's content hash and
    // per-block checksums.
    let scrub = ktpm_storage::ShardedStore::open(&manifest_path).expect("re-open for scrub");
    let scrub_failures = u64::from(scrub.verify().is_err());
    server.shutdown();

    ShardedStoreSmoke {
        shard_count: shards as usize,
        probe_files_opened,
        cold_files_opened,
        cold_secs,
        local_fetch_p50_ms: percentile_ms(&local_lat, 0.50),
        local_fetch_p99_ms: percentile_ms(&local_lat, 0.99),
        remote_fetch_p50_ms: percentile_ms(&remote_lat, 0.50),
        remote_fetch_p99_ms: percentile_ms(&remote_lat, 0.99),
        warm_remote_fetches,
        scrub_failures,
    }
}

struct KgpmSmoke {
    k: usize,
    matches: usize,
    cold_open_secs: f64,
    warm_open_secs: f64,
    open_speedup: f64,
    mtree_secs: f64,
    mtree_plus_secs: f64,
    warm_plan_hit: bool,
}

/// kGPM through the same one-surface machinery the tree engines use.
/// A cold open pays the pattern plan (spanning-tree decomposition,
/// verification edges, lower bounds over the undirected mirror) plus
/// streaming; warm opens share the `Arc`'d plan half and only stream.
/// The mtree vs mtree+ rows reproduce Figure 9's two drivers over one
/// shared plan. Finally the same pattern text is opened twice through
/// the service engine — the second open must be a plan-cache hit (the
/// CI gate: pattern plans are cached and delta-invalidated exactly
/// like tree plans).
fn kgpm_smoke() -> KgpmSmoke {
    let g = ktpm_workload::generate(&GraphSpec::power_law(600, 17));
    let ug = ktpm_graph::undirect(&g);
    let store = ktpm_storage::MemStore::new(ktpm_closure::ClosureTables::compute(&g))
        .with_graph(g.clone())
        .into_shared();
    // Q2 of the pattern family: 4 nodes, one non-tree edge.
    let q = ktpm_workload::pattern_set(&ug, ktpm_workload::pattern_family()[1].1, 1, 100)
        .into_iter()
        .next()
        .expect("pattern extraction on a 600-node power-law graph");
    let k = 20usize;
    let pool = ktpm_exec::default_pool();

    let lazy = kgpm_policy(ShardEngine::Lazy);
    let t = Instant::now();
    let plan = QueryPlan::new_pattern(q.clone(), g.interner(), &store)
        .expect("graph-attached store supports pattern plans");
    let cold = run_plan_stream(&store, &plan, k, Algo::Kgpm, &lazy, &pool);
    let cold_open_secs = t.elapsed().as_secs_f64();
    let matches = cold.produced;
    assert!(matches > 0, "kgpm smoke pattern must match");
    let warm_runs = 5;
    let t = Instant::now();
    for _ in 0..warm_runs {
        let m = run_plan_stream(&store, &plan, k, Algo::Kgpm, &lazy, &pool);
        assert_eq!(m.produced, matches, "warm opens must reproduce the stream");
    }
    let warm_open_secs = t.elapsed().as_secs_f64() / warm_runs as f64;

    let mut driver_secs = [0.0f64; 2];
    for (i, &(_, engine)) in KGPM_DRIVERS.iter().enumerate() {
        let m = run_plan_stream(&store, &plan, k, Algo::Kgpm, &kgpm_policy(engine), &pool);
        assert_eq!(m.produced, matches, "drivers must agree");
        driver_secs[i] = m.total_secs();
    }

    let handle = ktpm_service::QueryEngine::new(
        g.interner().clone(),
        store,
        ktpm_service::ServiceConfig::default(),
    );
    let text: String = q
        .edges()
        .iter()
        .map(|&(a, b)| format!("{} -> {}\n", q.label(a), q.label(b)))
        .collect();
    let before = handle.stats().metrics.plan_hits;
    for _ in 0..2 {
        let id = handle
            .open(&text, ktpm_service::Algo::Kgpm)
            .expect("kgpm open");
        handle.next(id, k).expect("next");
        handle.close(id).expect("close");
    }
    let warm_plan_hit = handle.stats().metrics.plan_hits > before;

    KgpmSmoke {
        k,
        matches,
        cold_open_secs,
        warm_open_secs,
        open_speedup: cold_open_secs / warm_open_secs.max(1e-12),
        mtree_secs: driver_secs[0],
        mtree_plus_secs: driver_secs[1],
        warm_plan_hit,
    }
}

struct GraphUpdateBench {
    update_secs: f64,
    warm_reopen_secs: f64,
    cold_rebuild_secs: f64,
    speedup: f64,
    warm_plan_hit: bool,
    touched_pairs: usize,
    plans_invalidated: usize,
    prefix_entries_invalidated: usize,
}

/// Re-open-after-update latency vs a cold rebuild. A weight-only delta
/// is applied through `QueryEngine::apply_delta` over a `LiveStore`
/// (incremental closure repair + delta-aware cache invalidation), then
/// a previously warmed query whose closure table the delta did *not*
/// touch is re-opened — delta-aware invalidation kept its plan cached,
/// so that open must be a plan hit with zero candidate discovery. The
/// baseline pays what a restart (or `FlushAll`) pays to serve the same
/// query after the update: full `ClosureTables::compute` on the
/// mutated graph plus a cold open. Both paths must stream identical
/// matches. `update_secs` (the repair + invalidation itself) is
/// reported for context; the gate compares the re-open latencies.
fn graph_update_bench(ds: &Dataset) -> GraphUpdateBench {
    use ktpm_graph::GraphDelta;
    use ktpm_service::Algo;
    let open_k = 100usize;
    let tables = ktpm_closure::ClosureTables::compute(&ds.graph);

    // Weight-bump one tail edge (low-degree end of this generator, so
    // the update stays local and most label pairs survive). A bump
    // masked by an equal-length alternative path touches nothing —
    // walk back until the dry-run repair reports real dirty tables.
    let all_edges: Vec<_> = ds.graph.edges().collect();
    let (delta, mutated, outcome) = all_edges
        .iter()
        .rev()
        .find_map(|e| {
            let delta = GraphDelta::new().set_weight(e.from, e.to, e.weight + 1);
            let (mutated, effects) = ds.graph.apply_delta(&delta).expect("delta applies");
            let mut probe = tables.clone();
            let outcome = probe.repair(&mutated, &effects);
            (!outcome.touched_pairs.is_empty()).then_some((delta, mutated, outcome))
        })
        .expect("some weight bump changes the closure");
    let touched: std::collections::BTreeSet<_> = outcome.touched_pairs.into_iter().collect();

    // Concrete-label one-edge queries (wildcards would match every
    // touched pair): one reading a table the delta leaves intact, one
    // reading a dirty table (so the report shows a real invalidation).
    let interner = ds.graph.interner();
    let pair_query = |key: &ktpm_closure::PairKey| {
        format!("{} -> {}\n", interner.name(key.0), interner.name(key.1))
    };
    let unaffected = tables
        .iter_pairs()
        .map(|(key, _)| key)
        .find(|key| !touched.contains(key))
        .map(|key| pair_query(&key))
        .expect("a label pair the delta does not touch");
    let affected = pair_query(touched.iter().next().expect("touched pairs"));

    let live = ktpm_storage::LiveStore::with_tables(ds.graph.clone(), tables).into_shared();
    let handle = ktpm_service::QueryEngine::new(
        interner.clone(),
        live,
        ktpm_service::ServiceConfig::default(),
    );
    for text in [&unaffected, &affected] {
        let id = handle.open(text, Algo::Topk).expect("warm open");
        handle.next(id, open_k).expect("warm next");
        handle.close(id).expect("warm close");
    }

    let t = Instant::now();
    let report = handle.apply_delta(&delta).expect("apply delta");
    let update_secs = t.elapsed().as_secs_f64();

    let before = handle.stats().metrics;
    let t = Instant::now();
    let id = handle.open(&unaffected, Algo::Topk).expect("warm re-open");
    let warm_batch = handle.next(id, open_k).expect("warm re-open next");
    handle.close(id).expect("warm re-open close");
    let warm_reopen_secs = t.elapsed().as_secs_f64();
    let warm_plan_hit = handle.stats().metrics.plan_hits == before.plan_hits + 1;

    let t = Instant::now();
    let cold_store =
        ktpm_storage::MemStore::new(ktpm_closure::ClosureTables::compute(&mutated)).into_shared();
    let cold = ktpm_service::QueryEngine::new(
        interner.clone(),
        cold_store,
        ktpm_service::ServiceConfig::default(),
    );
    let id = cold.open(&unaffected, Algo::Topk).expect("cold open");
    let cold_batch = cold.next(id, open_k).expect("cold next");
    cold.close(id).expect("cold close");
    let cold_rebuild_secs = t.elapsed().as_secs_f64();
    assert_eq!(
        warm_batch.matches, cold_batch.matches,
        "warm re-open must stream identical to a cold rebuild"
    );

    GraphUpdateBench {
        update_secs,
        warm_reopen_secs,
        cold_rebuild_secs,
        speedup: cold_rebuild_secs / warm_reopen_secs.max(1e-12),
        warm_plan_hit,
        touched_pairs: report.touched_pairs,
        plans_invalidated: report.plans_invalidated,
        prefix_entries_invalidated: report.prefix_entries_invalidated,
    }
}

struct ServeSoak {
    connections: usize,
    sessions: usize,
    next_requests: usize,
    p50_ms: f64,
    p99_ms: f64,
    protocol_errors: usize,
    sheds: u64,
}

/// Many-connection soak over the `ktpm-net` event-loop front end: every
/// connection pipelines its session OPENs, then rounds of `NEXT` across
/// all of them — hundreds of sessions concurrently open on one reactor
/// thread. Latency is per pipelined request, measured from the batch
/// write to that response's arrival (so it includes queueing behind
/// earlier requests on the same connection, which is what a pipelining
/// client experiences).
fn serve_soak(ds: &Dataset) -> ServeSoak {
    const CONNS: usize = 120;
    const SESSIONS_PER_CONN: usize = 5; // 600 concurrently open sessions
    const ROUNDS: usize = 3;
    const BATCH: usize = 5;
    let handle = ktpm_service::QueryEngine::new(
        ds.graph.interner().clone(),
        Arc::clone(&ds.store),
        ktpm_service::ServiceConfig::default(),
    );
    let server = ktpm_net::EventServer::spawn(
        handle.clone(),
        ("127.0.0.1", 0),
        ktpm_net::NetConfig::default(),
    )
    .expect("soak server");
    let addr = server.local_addr();
    let clients: Vec<_> = (0..CONNS)
        .map(|_| {
            std::thread::spawn(move || {
                use std::io::{BufRead, BufReader, Write};
                let stream = std::net::TcpStream::connect(addr).expect("soak connect");
                let _ = stream.set_nodelay(true);
                stream
                    .set_read_timeout(Some(std::time::Duration::from_secs(120)))
                    .expect("read timeout");
                let mut writer = stream.try_clone().expect("clone stream");
                let mut reader = BufReader::new(stream);
                let mut errors = 0usize;
                let mut lat_ms: Vec<f64> = Vec::with_capacity(SESSIONS_PER_CONN * ROUNDS);
                // Pipeline every OPEN, then read the session ids.
                let batch = "OPEN topk-en L0 -> *#1; L0 -> *#2\n".repeat(SESSIONS_PER_CONN);
                writer.write_all(batch.as_bytes()).expect("write opens");
                let mut ids = Vec::new();
                for _ in 0..SESSIONS_PER_CONN {
                    let mut line = String::new();
                    reader.read_line(&mut line).expect("read open response");
                    match line.trim().strip_prefix("OK ") {
                        Some(id) => ids.push(id.to_string()),
                        None => errors += 1,
                    }
                }
                for _ in 0..ROUNDS {
                    let mut batch = String::new();
                    for id in &ids {
                        batch.push_str(&format!("NEXT {id} {BATCH}\n"));
                    }
                    let t = Instant::now();
                    writer.write_all(batch.as_bytes()).expect("write nexts");
                    for _ in 0..ids.len() {
                        let mut header = String::new();
                        reader.read_line(&mut header).expect("read next response");
                        let mut fields = header.split_whitespace();
                        if fields.next() != Some("OK") {
                            errors += 1;
                            continue;
                        }
                        let count: usize = fields.next().and_then(|c| c.parse().ok()).unwrap_or(0);
                        for _ in 0..count {
                            let mut m = String::new();
                            reader.read_line(&mut m).expect("read match line");
                        }
                        lat_ms.push(t.elapsed().as_secs_f64() * 1e3);
                    }
                }
                (lat_ms, errors)
            })
        })
        .collect();
    let mut lat: Vec<f64> = Vec::new();
    let mut protocol_errors = 0usize;
    for c in clients {
        let (l, e) = c.join().expect("soak client thread");
        lat.extend(l);
        protocol_errors += e;
    }
    lat.sort_by(|a, b| a.total_cmp(b));
    let pct = |p: f64| {
        if lat.is_empty() {
            return 0.0; // protocol_errors will be non-zero; CI fails on that
        }
        lat[((p / 100.0) * (lat.len() - 1) as f64).round() as usize]
    };
    let soak = ServeSoak {
        connections: CONNS,
        sessions: CONNS * SESSIONS_PER_CONN,
        next_requests: lat.len(),
        p50_ms: pct(50.0),
        p99_ms: pct(99.0),
        protocol_errors,
        sheds: handle.stats().metrics.shed_total,
    };
    server.shutdown();
    soak
}

/// The workspace root, resolved from this crate's manifest directory
/// (stable under any invocation cwd): `crates/bench` → two levels up.
fn workspace_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench sits two levels below the workspace root")
        .to_path_buf()
}

fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.2}GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.1}MiB", b as f64 / (1u64 << 20) as f64)
    } else {
        format!("{:.0}KiB", b as f64 / 1024.0)
    }
}
