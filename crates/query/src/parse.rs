//! A tiny text format for tree queries, used by tests and examples.
//!
//! Each non-empty, non-comment line is one edge:
//!
//! ```text
//! # '->' is a '//' (descendant) edge; '=>' is a '/' (child) edge.
//! A -> B
//! A => C
//! C -> D
//! ```
//!
//! Node tokens are label names; a token names the *same* query node every
//! time it appears. To give two query nodes the same label, suffix a
//! discriminator: `A#1` and `A#2` are distinct nodes both labeled `A`.
//! A token whose label part is `*` is a wildcard node (`*#1`, `*#2`, ...).

use crate::tree::{EdgeKind, QNodeId, QueryError, TreeQuery, TreeQueryBuilder};
use std::collections::HashMap;
use std::fmt;

/// Errors raised while parsing the text query format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A line did not have the form `<node> -> <node>` / `<node> => <node>`.
    BadLine(usize, String),
    /// The parsed edges do not form a valid rooted tree.
    Structure(QueryError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::BadLine(n, l) => write!(f, "line {n}: cannot parse {l:?}"),
            ParseError::Structure(e) => write!(f, "invalid tree: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<QueryError> for ParseError {
    fn from(e: QueryError) -> Self {
        ParseError::Structure(e)
    }
}

impl TreeQuery {
    /// Parses the text format described in the module docs.
    pub fn parse(text: &str) -> Result<TreeQuery, ParseError> {
        let mut builder = TreeQueryBuilder::new();
        let mut ids: HashMap<String, QNodeId> = HashMap::new();
        let mut node = |builder: &mut TreeQueryBuilder, token: &str| -> QNodeId {
            if let Some(&id) = ids.get(token) {
                return id;
            }
            let label_part = token.split('#').next().unwrap_or(token);
            let id = if label_part == "*" {
                builder.wildcard()
            } else {
                builder.node(label_part)
            };
            ids.insert(token.to_owned(), id);
            id
        };
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (kind, sep) = if line.contains("=>") {
                (EdgeKind::Child, "=>")
            } else if line.contains("->") {
                (EdgeKind::Descendant, "->")
            } else {
                // A bare token declares a single (root) node.
                let mut parts = line.split_whitespace();
                match (parts.next(), parts.next()) {
                    (Some(tok), None) => {
                        node(&mut builder, tok);
                        continue;
                    }
                    _ => return Err(ParseError::BadLine(lineno + 1, raw.to_owned())),
                }
            };
            let mut sides = line.splitn(2, sep);
            let lhs = sides.next().map(str::trim).unwrap_or("");
            let rhs = sides.next().map(str::trim).unwrap_or("");
            if lhs.is_empty()
                || rhs.is_empty()
                || lhs.contains(char::is_whitespace)
                || rhs.contains(char::is_whitespace)
            {
                return Err(ParseError::BadLine(lineno + 1, raw.to_owned()));
            }
            let p = node(&mut builder, lhs);
            let c = node(&mut builder, rhs);
            builder.edge(p, c, kind);
        }
        Ok(builder.build()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_twig() {
        let q = TreeQuery::parse("C -> E\nC -> S").unwrap();
        assert_eq!(q.len(), 3);
        assert_eq!(q.label_name(q.root()), Some("C"));
        assert!(q.is_pure_descendant());
    }

    #[test]
    fn parse_child_edges_and_comments() {
        let q = TreeQuery::parse("# the query of fig 2a\n a -> b\n a -> c\n c => d\n c -> e\n")
            .unwrap();
        assert_eq!(q.len(), 5);
        let d = q
            .node_ids()
            .find(|&u| q.label_name(u) == Some("d"))
            .unwrap();
        assert_eq!(q.edge_kind(d), EdgeKind::Child);
    }

    #[test]
    fn parse_duplicate_labels_via_discriminator() {
        let q = TreeQuery::parse("A#1 -> A#2\nA#1 -> B").unwrap();
        assert_eq!(q.len(), 3);
        assert!(!q.has_distinct_labels());
        let names: Vec<_> = q.node_ids().filter_map(|u| q.label_name(u)).collect();
        assert_eq!(names.iter().filter(|&&n| n == "A").count(), 2);
    }

    #[test]
    fn parse_wildcard() {
        let q = TreeQuery::parse("A -> *#1\n*#1 -> B").unwrap();
        assert!(q.has_wildcard());
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn parse_single_node() {
        let q = TreeQuery::parse("A").unwrap();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn parse_bad_line() {
        assert!(matches!(
            TreeQuery::parse("A -> ").unwrap_err(),
            ParseError::BadLine(1, _)
        ));
        assert!(matches!(
            TreeQuery::parse("A B C").unwrap_err(),
            ParseError::BadLine(1, _)
        ));
    }

    #[test]
    fn parse_invalid_structure() {
        assert!(matches!(
            TreeQuery::parse("A -> B\nC -> D").unwrap_err(),
            ParseError::Structure(QueryError::RootCount(2))
        ));
    }
}
