//! # ktpm-query
//!
//! Query structures for the kTPM system:
//!
//! * [`TreeQuery`] — a rooted tree (twig) query. Nodes carry a label or a
//!   wildcard (`*`); edges are either `//` (ancestor–descendant, mapped to
//!   any directed path) or `/` (parent–child, mapped to a direct edge),
//!   following the XPath semantics referenced in §2/§5 of the paper.
//!   Nodes are guaranteed to be stored in top-down breadth-first order
//!   (Lemma 3.1), which the Lawler enumeration relies on.
//! * [`GraphQuery`] — an undirected labeled graph pattern for the kGPM
//!   extension (§5), consumed by `ktpm-kgpm`.
//! * A tiny text format ([`TreeQuery::parse`], [`GraphQuery::parse`])
//!   for tests, examples and the wire protocol.
//!
//! ## Example
//!
//! ```
//! use ktpm_query::{TreeQueryBuilder, EdgeKind};
//!
//! // The query of the paper's Figure 2(a): a -> b, a -> c, c -> d, c -> e.
//! let mut b = TreeQueryBuilder::new();
//! let u1 = b.node("a");
//! let u2 = b.node("b");
//! let u3 = b.node("c");
//! let u4 = b.node("d");
//! let u5 = b.node("e");
//! b.edge(u1, u2, EdgeKind::Descendant);
//! b.edge(u1, u3, EdgeKind::Descendant);
//! b.edge(u3, u4, EdgeKind::Descendant);
//! b.edge(u3, u5, EdgeKind::Descendant);
//! let q = b.build().unwrap();
//! assert_eq!(q.len(), 5);
//! assert!(q.has_distinct_labels());
//! ```

mod graph_query;
mod parse;
mod tree;

pub use graph_query::{GraphParseError, GraphQuery, GraphQueryError};
pub use parse::ParseError;
pub use tree::{
    EdgeKind, QNodeId, QueryError, QueryLabel, ResolvedQuery, TreeQuery, TreeQueryBuilder,
};
