//! Undirected labeled graph patterns for top-k graph pattern matching
//! (kGPM, §5 of the paper / Cheng, Zeng & Yu ICDE'13).
//!
//! A [`GraphQuery`] is a small connected undirected graph whose nodes
//! carry label names. `ktpm-kgpm` decomposes it into rooted spanning
//! trees and plugs in a top-k tree matcher.

use std::collections::{HashMap, HashSet};
use std::fmt;

/// Errors raised while parsing the graph-pattern text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphParseError {
    /// A line did not have the form `<node> -> <node>` or `<node>`.
    BadLine(usize, String),
    /// `=>` (child) edges are a tree-query concept; pattern edges map to
    /// shortest paths and are always written `->`.
    ChildEdge(usize),
    /// Wildcard nodes (`*`) are not supported in graph patterns — the
    /// kGPM decomposition needs concrete, distinct labels.
    Wildcard(usize),
    /// `label#disc` discriminators are not supported in graph patterns —
    /// pattern nodes are identified by (distinct) label alone.
    Discriminator(usize, String),
    /// The parsed nodes/edges do not form a valid pattern.
    Structure(GraphQueryError),
}

impl fmt::Display for GraphParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphParseError::BadLine(n, l) => write!(f, "line {n}: cannot parse {l:?}"),
            GraphParseError::ChildEdge(n) => write!(
                f,
                "line {n}: '=>' child edges are not valid in graph patterns (use '->')"
            ),
            GraphParseError::Wildcard(n) => {
                write!(
                    f,
                    "line {n}: wildcard '*' nodes are not valid in graph patterns"
                )
            }
            GraphParseError::Discriminator(n, t) => write!(
                f,
                "line {n}: discriminator {t:?} is not valid in graph patterns \
                 (labels must be distinct)"
            ),
            GraphParseError::Structure(e) => write!(f, "invalid graph pattern: {e}"),
        }
    }
}

impl std::error::Error for GraphParseError {}

impl From<GraphQueryError> for GraphParseError {
    fn from(e: GraphQueryError) -> Self {
        GraphParseError::Structure(e)
    }
}

/// Errors raised while building a graph query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphQueryError {
    /// Empty pattern.
    Empty,
    /// Self loop.
    SelfLoop(usize),
    /// Edge endpoint out of range.
    UnknownNode(usize),
    /// The pattern is not connected.
    Disconnected,
    /// Duplicate labels are not supported by the kGPM decomposition here
    /// (the paper's kGPM section also assumes distinct labels).
    DuplicateLabel(String),
}

impl fmt::Display for GraphQueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphQueryError::Empty => write!(f, "graph query has no nodes"),
            GraphQueryError::SelfLoop(u) => write!(f, "self loop on node {u}"),
            GraphQueryError::UnknownNode(u) => write!(f, "edge references unknown node {u}"),
            GraphQueryError::Disconnected => write!(f, "graph query must be connected"),
            GraphQueryError::DuplicateLabel(l) => write!(f, "duplicate label {l:?} in graph query"),
        }
    }
}

impl std::error::Error for GraphQueryError {}

/// A connected undirected labeled graph pattern with distinct labels.
#[derive(Clone, Debug)]
pub struct GraphQuery {
    labels: Vec<String>,
    /// Undirected edges as ordered pairs `(min, max)`, deduplicated.
    edges: Vec<(usize, usize)>,
    adj: Vec<Vec<usize>>,
}

impl GraphQuery {
    /// Builds a graph query from labels and undirected edges.
    pub fn new(
        labels: Vec<String>,
        raw_edges: Vec<(usize, usize)>,
    ) -> Result<Self, GraphQueryError> {
        let n = labels.len();
        if n == 0 {
            return Err(GraphQueryError::Empty);
        }
        {
            let mut seen = HashSet::new();
            for l in &labels {
                if !seen.insert(l.as_str()) {
                    return Err(GraphQueryError::DuplicateLabel(l.clone()));
                }
            }
        }
        let mut edges: Vec<(usize, usize)> = Vec::with_capacity(raw_edges.len());
        let mut seen = HashSet::new();
        for (a, b) in raw_edges {
            if a >= n {
                return Err(GraphQueryError::UnknownNode(a));
            }
            if b >= n {
                return Err(GraphQueryError::UnknownNode(b));
            }
            if a == b {
                return Err(GraphQueryError::SelfLoop(a));
            }
            let e = (a.min(b), a.max(b));
            if seen.insert(e) {
                edges.push(e);
            }
        }
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in &edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        // Connectivity check.
        let mut visited = vec![false; n];
        let mut stack = vec![0usize];
        visited[0] = true;
        let mut count = 1;
        while let Some(x) = stack.pop() {
            for &y in &adj[x] {
                if !visited[y] {
                    visited[y] = true;
                    count += 1;
                    stack.push(y);
                }
            }
        }
        if count != n {
            return Err(GraphQueryError::Disconnected);
        }
        Ok(GraphQuery { labels, edges, adj })
    }

    /// Parses the same edge-list text format as
    /// [`TreeQuery::parse`](crate::TreeQuery::parse), read as an
    /// *undirected* pattern:
    ///
    /// ```text
    /// # comment lines start with '#'
    /// A -> B
    /// B -> C
    /// C -> A
    /// ```
    ///
    /// Each `->` line is one undirected pattern edge; a token names the
    /// same pattern node every time it appears (node identity *is* the
    /// label — graph patterns require distinct labels); a bare token
    /// declares a single-node pattern. Tree-only syntax is rejected with
    /// a pointed error: `=>` child edges ([`GraphParseError::ChildEdge`]),
    /// `*` wildcards ([`GraphParseError::Wildcard`]) and `label#disc`
    /// discriminators ([`GraphParseError::Discriminator`]).
    pub fn parse(text: &str) -> Result<GraphQuery, GraphParseError> {
        let mut labels: Vec<String> = Vec::new();
        let mut ids: HashMap<String, usize> = HashMap::new();
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let lineno = lineno + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut node = |token: &str| -> Result<usize, GraphParseError> {
                if token.contains('*') {
                    return Err(GraphParseError::Wildcard(lineno));
                }
                if token.contains('#') {
                    return Err(GraphParseError::Discriminator(lineno, token.to_owned()));
                }
                Ok(*ids.entry(token.to_owned()).or_insert_with(|| {
                    labels.push(token.to_owned());
                    labels.len() - 1
                }))
            };
            if line.contains("=>") {
                return Err(GraphParseError::ChildEdge(lineno));
            }
            if line.contains("->") {
                let mut sides = line.splitn(2, "->");
                let lhs = sides.next().map(str::trim).unwrap_or("");
                let rhs = sides.next().map(str::trim).unwrap_or("");
                if lhs.is_empty()
                    || rhs.is_empty()
                    || lhs.contains(char::is_whitespace)
                    || rhs.contains(char::is_whitespace)
                {
                    return Err(GraphParseError::BadLine(lineno, raw.to_owned()));
                }
                let a = node(lhs)?;
                let b = node(rhs)?;
                edges.push((a, b));
            } else {
                // A bare token declares a single pattern node.
                let mut parts = line.split_whitespace();
                match (parts.next(), parts.next()) {
                    (Some(tok), None) => {
                        node(tok)?;
                    }
                    _ => return Err(GraphParseError::BadLine(lineno, raw.to_owned())),
                }
            }
        }
        // Self loops (`A -> A`) and everything structural fall through to
        // the builder; duplicate labels cannot arise (identity is label).
        Ok(GraphQuery::new(labels, edges)?)
    }

    /// Number of pattern nodes.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the pattern is empty (never true for built patterns).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of undirected pattern edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The label of node `u`.
    pub fn label(&self, u: usize) -> &str {
        &self.labels[u]
    }

    /// All labels in node order.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Deduplicated undirected edges as `(min, max)` pairs.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Neighbors of `u`.
    pub fn neighbors(&self, u: usize) -> &[usize] {
        &self.adj[u]
    }

    /// Number of edges beyond a spanning tree (`m - (n-1)`), i.e. how many
    /// edges any single spanning tree must leave unverified.
    pub fn excess_edges(&self) -> usize {
        self.edges.len() + 1 - self.labels.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn triangle_builds() {
        let q = GraphQuery::new(labels(&["a", "b", "c"]), vec![(0, 1), (1, 2), (2, 0)]).unwrap();
        assert_eq!(q.len(), 3);
        assert_eq!(q.num_edges(), 3);
        assert_eq!(q.excess_edges(), 1);
        assert_eq!(q.neighbors(0).len(), 2);
    }

    #[test]
    fn duplicate_undirected_edges_collapse() {
        let q = GraphQuery::new(labels(&["a", "b"]), vec![(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(q.num_edges(), 1);
        assert_eq!(q.excess_edges(), 0);
    }

    #[test]
    fn disconnected_rejected() {
        let err = GraphQuery::new(labels(&["a", "b", "c"]), vec![(0, 1)]).unwrap_err();
        assert_eq!(err, GraphQueryError::Disconnected);
    }

    #[test]
    fn self_loop_rejected() {
        let err = GraphQuery::new(labels(&["a"]), vec![(0, 0)]).unwrap_err();
        assert_eq!(err, GraphQueryError::SelfLoop(0));
    }

    #[test]
    fn duplicate_label_rejected() {
        let err = GraphQuery::new(labels(&["a", "a"]), vec![(0, 1)]).unwrap_err();
        assert!(matches!(err, GraphQueryError::DuplicateLabel(_)));
    }

    #[test]
    fn unknown_node_rejected() {
        let err = GraphQuery::new(labels(&["a", "b"]), vec![(0, 5)]).unwrap_err();
        assert_eq!(err, GraphQueryError::UnknownNode(5));
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(
            GraphQuery::new(vec![], vec![]).unwrap_err(),
            GraphQueryError::Empty
        );
    }

    #[test]
    fn parse_triangle() {
        let q = GraphQuery::parse("# a cyclic pattern\nA -> B\nB -> C\nC -> A\n").unwrap();
        assert_eq!(q.len(), 3);
        assert_eq!(q.num_edges(), 3);
        assert_eq!(q.excess_edges(), 1);
        assert_eq!(q.labels(), &["A", "B", "C"]);
    }

    #[test]
    fn parse_dedups_both_orientations() {
        let q = GraphQuery::parse("A -> B\nB -> A").unwrap();
        assert_eq!(q.num_edges(), 1);
    }

    #[test]
    fn parse_single_node() {
        let q = GraphQuery::parse("  A \n").unwrap();
        assert_eq!(q.len(), 1);
        assert_eq!(q.num_edges(), 0);
    }

    #[test]
    fn parse_rejects_child_edges() {
        assert_eq!(
            GraphQuery::parse("A -> B\nB => C").unwrap_err(),
            GraphParseError::ChildEdge(2)
        );
    }

    #[test]
    fn parse_rejects_wildcards() {
        assert_eq!(
            GraphQuery::parse("A -> *").unwrap_err(),
            GraphParseError::Wildcard(1)
        );
    }

    #[test]
    fn parse_rejects_discriminators() {
        assert!(matches!(
            GraphQuery::parse("A#1 -> A#2").unwrap_err(),
            GraphParseError::Discriminator(1, _)
        ));
    }

    #[test]
    fn parse_bad_line() {
        assert!(matches!(
            GraphQuery::parse("A -> ").unwrap_err(),
            GraphParseError::BadLine(1, _)
        ));
        assert!(matches!(
            GraphQuery::parse("A B C").unwrap_err(),
            GraphParseError::BadLine(1, _)
        ));
    }

    #[test]
    fn parse_structural_errors_propagate() {
        assert_eq!(
            GraphQuery::parse("A -> B\nC -> D").unwrap_err(),
            GraphParseError::Structure(GraphQueryError::Disconnected)
        );
        assert_eq!(
            GraphQuery::parse("A -> A").unwrap_err(),
            GraphParseError::Structure(GraphQueryError::SelfLoop(0))
        );
        assert_eq!(
            GraphQuery::parse("").unwrap_err(),
            GraphParseError::Structure(GraphQueryError::Empty)
        );
    }
}
