//! Rooted tree (twig) queries.
//!
//! A [`TreeQuery`] is built with string labels (or wildcards) and
//! normalized to top-down breadth-first node order — the order Lemma 3.1
//! of the paper requires: the parent of node `i` always has index `< i`,
//! and index 0 is the root.
//!
//! Before matching, a query is *resolved* against a data graph's label
//! interner ([`TreeQuery::resolve`]), turning label names into
//! [`ktpm_graph::LabelId`]s. A name absent from the data graph resolves to
//! [`QueryLabel::Unmatchable`] (the query then simply has no matches).

use ktpm_graph::{LabelId, LabelInterner};
use std::collections::VecDeque;
use std::fmt;

/// Index of a node inside a query tree (dense, BFS order after `build`).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QNodeId(pub u32);

impl QNodeId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for QNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl fmt::Display for QNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// XPath-style edge semantics (§5 "Supporting Top-k Twig-Pattern Matching").
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Default)]
pub enum EdgeKind {
    /// `//` — ancestor-descendant: maps to any directed path; the score
    /// contribution is the shortest-path distance.
    #[default]
    Descendant,
    /// `/` — parent-child: maps to a direct edge of the data graph
    /// (equivalently, a closure entry of distance exactly 1 under unit
    /// weights).
    Child,
}

/// A query node's label requirement, resolved against a data graph.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum QueryLabel {
    /// Must match this exact label.
    Label(LabelId),
    /// Wildcard: matches any label (§5).
    Wildcard,
    /// The label name does not occur in the data graph: no candidates.
    Unmatchable,
}

/// Errors raised while building a query tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The query has no nodes.
    Empty,
    /// A node was given two parents.
    MultipleParents(QNodeId),
    /// Not exactly one root (zero roots means a cycle exists).
    RootCount(usize),
    /// Some node is unreachable from the root (forest or cycle).
    Disconnected(QNodeId),
    /// An edge referenced an unknown node.
    UnknownNode(QNodeId),
    /// Parent and child are the same node.
    SelfEdge(QNodeId),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Empty => write!(f, "query has no nodes"),
            QueryError::MultipleParents(u) => write!(f, "node {u} has multiple parents"),
            QueryError::RootCount(n) => write!(f, "query must have exactly one root, found {n}"),
            QueryError::Disconnected(u) => write!(f, "node {u} is not reachable from the root"),
            QueryError::UnknownNode(u) => write!(f, "edge references unknown node {u}"),
            QueryError::SelfEdge(u) => write!(f, "self-edge on {u}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// One node of a built tree query.
#[derive(Clone, Debug, PartialEq, Eq)]
struct QueryNode {
    /// Label name, or `None` for a wildcard.
    label: Option<String>,
    /// Parent index (`None` for the root).
    parent: Option<QNodeId>,
    /// Kind of the edge from the parent (meaningless for the root).
    edge_kind: EdgeKind,
    /// Children, ascending.
    children: Vec<QNodeId>,
    /// Size of the subtree rooted here (incl. self).
    subtree_size: u32,
}

/// A rooted tree query in guaranteed BFS order.
#[derive(Clone, Debug)]
pub struct TreeQuery {
    nodes: Vec<QueryNode>,
}

impl TreeQuery {
    /// Number of query nodes (`n_T`).
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the query is empty (never true for built queries).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of tree edges (`n_T - 1`).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.nodes.len() - 1
    }

    /// The root node id (always `u0`).
    #[inline]
    pub fn root(&self) -> QNodeId {
        QNodeId(0)
    }

    /// All node ids in BFS order.
    pub fn node_ids(&self) -> impl Iterator<Item = QNodeId> {
        (0..self.nodes.len() as u32).map(QNodeId)
    }

    /// Label name of `u` (`None` = wildcard).
    pub fn label_name(&self, u: QNodeId) -> Option<&str> {
        self.nodes[u.index()].label.as_deref()
    }

    /// Parent of `u` (`None` for the root). Guaranteed `parent < u`.
    #[inline]
    pub fn parent(&self, u: QNodeId) -> Option<QNodeId> {
        self.nodes[u.index()].parent
    }

    /// Kind of the edge from `parent(u)` to `u`.
    #[inline]
    pub fn edge_kind(&self, u: QNodeId) -> EdgeKind {
        self.nodes[u.index()].edge_kind
    }

    /// Children of `u`, ascending.
    #[inline]
    pub fn children(&self, u: QNodeId) -> &[QNodeId] {
        &self.nodes[u.index()].children
    }

    /// Whether `u` is a leaf.
    #[inline]
    pub fn is_leaf(&self, u: QNodeId) -> bool {
        self.nodes[u.index()].children.is_empty()
    }

    /// `|T_u|` — the number of nodes in the subtree rooted at `u`.
    #[inline]
    pub fn subtree_size(&self, u: QNodeId) -> usize {
        self.nodes[u.index()].subtree_size as usize
    }

    /// The §4.2 lower bound `L(u) = n_T - 1 - |T_u|`: the number of query
    /// edges outside `T_u ∪ (u_p, u)`, each of which costs at least 1.
    #[inline]
    pub fn remaining_edges(&self, u: QNodeId) -> u64 {
        (self.len() as u64 - 1).saturating_sub(self.subtree_size(u) as u64)
    }

    /// Maximum node degree `d_T` (children count; +1 for the parent edge on
    /// non-roots, matching the paper's undirected degree).
    pub fn max_degree(&self) -> usize {
        self.node_ids()
            .map(|u| self.children(u).len() + usize::from(self.parent(u).is_some()))
            .max()
            .unwrap_or(0)
    }

    /// Whether every node has a concrete label and all labels are distinct
    /// (the simplifying assumption of §2; `Topk-GT` lifts it).
    pub fn has_distinct_labels(&self) -> bool {
        let mut seen = std::collections::HashSet::new();
        self.nodes.iter().all(|n| match &n.label {
            Some(l) => seen.insert(l.clone()),
            None => false,
        })
    }

    /// Whether the query contains a wildcard node.
    pub fn has_wildcard(&self) -> bool {
        self.nodes.iter().any(|n| n.label.is_none())
    }

    /// Whether all edges are `//` edges.
    pub fn is_pure_descendant(&self) -> bool {
        self.node_ids()
            .skip(1)
            .all(|u| self.edge_kind(u) == EdgeKind::Descendant)
    }

    /// Resolves label names against a data graph's interner.
    pub fn resolve(&self, interner: &LabelInterner) -> ResolvedQuery {
        let labels = self
            .nodes
            .iter()
            .map(|n| match &n.label {
                None => QueryLabel::Wildcard,
                Some(name) => match interner.get(name) {
                    Some(id) => QueryLabel::Label(id),
                    None => QueryLabel::Unmatchable,
                },
            })
            .collect();
        ResolvedQuery {
            tree: self.clone(),
            labels,
        }
    }

    /// Iterates `(parent, child, kind)` over all tree edges.
    pub fn edges(&self) -> impl Iterator<Item = (QNodeId, QNodeId, EdgeKind)> + '_ {
        self.node_ids().skip(1).map(move |u| {
            (
                self.parent(u).expect("non-root has a parent"),
                u,
                self.edge_kind(u),
            )
        })
    }
}

/// A [`TreeQuery`] with labels resolved to a specific data graph.
#[derive(Clone, Debug)]
pub struct ResolvedQuery {
    tree: TreeQuery,
    labels: Vec<QueryLabel>,
}

impl ResolvedQuery {
    /// The underlying tree.
    pub fn tree(&self) -> &TreeQuery {
        &self.tree
    }

    /// The resolved label of `u`.
    #[inline]
    pub fn label(&self, u: QNodeId) -> QueryLabel {
        self.labels[u.index()]
    }

    /// Number of query nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// Whether the query is empty (never true for built queries).
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }
}

/// Builder producing BFS-normalized [`TreeQuery`]s.
#[derive(Debug, Default)]
pub struct TreeQueryBuilder {
    labels: Vec<Option<String>>,
    edges: Vec<(QNodeId, QNodeId, EdgeKind)>,
}

impl TreeQueryBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a labeled node.
    pub fn node(&mut self, label: &str) -> QNodeId {
        let id = QNodeId(self.labels.len() as u32);
        self.labels.push(Some(label.to_owned()));
        id
    }

    /// Adds a wildcard (`*`) node.
    pub fn wildcard(&mut self) -> QNodeId {
        let id = QNodeId(self.labels.len() as u32);
        self.labels.push(None);
        id
    }

    /// Adds a tree edge from `parent` to `child`.
    pub fn edge(&mut self, parent: QNodeId, child: QNodeId, kind: EdgeKind) {
        self.edges.push((parent, child, kind));
    }

    /// Validates and BFS-normalizes the tree.
    pub fn build(self) -> Result<TreeQuery, QueryError> {
        let n = self.labels.len();
        if n == 0 {
            return Err(QueryError::Empty);
        }
        let mut parent: Vec<Option<(QNodeId, EdgeKind)>> = vec![None; n];
        let mut children: Vec<Vec<QNodeId>> = vec![Vec::new(); n];
        for &(p, c, kind) in &self.edges {
            if p.index() >= n {
                return Err(QueryError::UnknownNode(p));
            }
            if c.index() >= n {
                return Err(QueryError::UnknownNode(c));
            }
            if p == c {
                return Err(QueryError::SelfEdge(p));
            }
            if parent[c.index()].is_some() {
                return Err(QueryError::MultipleParents(c));
            }
            parent[c.index()] = Some((p, kind));
            children[p.index()].push(c);
        }
        let roots: Vec<usize> = (0..n).filter(|&i| parent[i].is_none()).collect();
        if roots.len() != 1 {
            return Err(QueryError::RootCount(roots.len()));
        }
        // BFS from the root; remap ids to BFS order.
        let root = roots[0];
        let mut order = Vec::with_capacity(n);
        let mut new_id = vec![u32::MAX; n];
        let mut queue = VecDeque::new();
        queue.push_back(root);
        while let Some(x) = queue.pop_front() {
            new_id[x] = order.len() as u32;
            order.push(x);
            for &c in &children[x] {
                queue.push_back(c.index());
            }
        }
        if order.len() != n {
            // Unvisited nodes form a cycle among themselves (every node has a
            // parent, so they are not roots) — report the first one.
            let missing = (0..n).find(|&i| new_id[i] == u32::MAX).unwrap();
            return Err(QueryError::Disconnected(QNodeId(missing as u32)));
        }
        let mut nodes: Vec<QueryNode> = order
            .iter()
            .map(|&old| {
                let (p, kind) = match parent[old] {
                    Some((p, kind)) => (Some(QNodeId(new_id[p.index()])), kind),
                    None => (None, EdgeKind::Descendant),
                };
                let mut kids: Vec<QNodeId> = children[old]
                    .iter()
                    .map(|c| QNodeId(new_id[c.index()]))
                    .collect();
                kids.sort_unstable();
                QueryNode {
                    label: self.labels[old].clone(),
                    parent: p,
                    edge_kind: kind,
                    children: kids,
                    subtree_size: 1,
                }
            })
            .collect();
        // Subtree sizes bottom-up (children have larger ids in BFS order).
        for i in (1..n).rev() {
            let p = nodes[i].parent.expect("non-root").index();
            nodes[i] = nodes[i].clone();
            let sz = nodes[i].subtree_size;
            nodes[p].subtree_size += sz;
        }
        Ok(TreeQuery { nodes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig2_query() -> TreeQuery {
        let mut b = TreeQueryBuilder::new();
        let u1 = b.node("a");
        let u2 = b.node("b");
        let u3 = b.node("c");
        let u4 = b.node("d");
        let u5 = b.node("e");
        b.edge(u1, u2, EdgeKind::Descendant);
        b.edge(u1, u3, EdgeKind::Descendant);
        b.edge(u3, u4, EdgeKind::Descendant);
        b.edge(u3, u5, EdgeKind::Descendant);
        b.build().unwrap()
    }

    #[test]
    fn bfs_order_property_lemma_3_1() {
        let q = fig2_query();
        for u in q.node_ids().skip(1) {
            assert!(q.parent(u).unwrap() < u, "parent must precede child");
        }
        assert_eq!(q.root(), QNodeId(0));
    }

    #[test]
    fn bfs_normalization_reorders_nodes() {
        // Build the same tree with scrambled insertion order; node 0 is a leaf.
        let mut b = TreeQueryBuilder::new();
        let d = b.node("d");
        let c = b.node("c");
        let a = b.node("a");
        let e = b.node("e");
        let bb = b.node("b");
        b.edge(c, d, EdgeKind::Descendant);
        b.edge(a, c, EdgeKind::Descendant);
        b.edge(c, e, EdgeKind::Descendant);
        b.edge(a, bb, EdgeKind::Descendant);
        let q = b.build().unwrap();
        assert_eq!(q.label_name(q.root()), Some("a"));
        for u in q.node_ids().skip(1) {
            assert!(q.parent(u).unwrap() < u);
        }
        // BFS level order: a at 0; b,c at level 1; d,e at level 2.
        let names: Vec<_> = q.node_ids().map(|u| q.label_name(u).unwrap()).collect();
        assert_eq!(names[0], "a");
        assert!(names[1..3].contains(&"b") && names[1..3].contains(&"c"));
        assert!(names[3..5].contains(&"d") && names[3..5].contains(&"e"));
    }

    #[test]
    fn subtree_sizes_and_remaining_edges() {
        let q = fig2_query();
        assert_eq!(q.subtree_size(q.root()), 5);
        // Find node "c": subtree {c,d,e} = 3.
        let c = q
            .node_ids()
            .find(|&u| q.label_name(u) == Some("c"))
            .unwrap();
        assert_eq!(q.subtree_size(c), 3);
        // L(c) = n_T - 1 - |T_c| = 5 - 1 - 3 = 1 (the edge a->b).
        assert_eq!(q.remaining_edges(c), 1);
        let d = q
            .node_ids()
            .find(|&u| q.label_name(u) == Some("d"))
            .unwrap();
        // L(d) = 5 - 1 - 1 = 3 (edges a->b, a->c, c->e).
        assert_eq!(q.remaining_edges(d), 3);
    }

    #[test]
    fn distinct_labels_detection() {
        let q = fig2_query();
        assert!(q.has_distinct_labels());
        let mut b = TreeQueryBuilder::new();
        let x = b.node("a");
        let y = b.node("a");
        b.edge(x, y, EdgeKind::Descendant);
        let q2 = b.build().unwrap();
        assert!(!q2.has_distinct_labels());
    }

    #[test]
    fn wildcard_detection() {
        let mut b = TreeQueryBuilder::new();
        let x = b.node("a");
        let y = b.wildcard();
        b.edge(x, y, EdgeKind::Descendant);
        let q = b.build().unwrap();
        assert!(q.has_wildcard());
        assert!(!q.has_distinct_labels());
        assert_eq!(q.label_name(QNodeId(1)), None);
    }

    #[test]
    fn single_node_query() {
        let mut b = TreeQueryBuilder::new();
        b.node("a");
        let q = b.build().unwrap();
        assert_eq!(q.len(), 1);
        assert_eq!(q.num_edges(), 0);
        assert!(q.is_leaf(q.root()));
        assert_eq!(q.remaining_edges(q.root()), 0);
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(
            TreeQueryBuilder::new().build().unwrap_err(),
            QueryError::Empty
        );
    }

    #[test]
    fn multiple_parents_rejected() {
        let mut b = TreeQueryBuilder::new();
        let x = b.node("a");
        let y = b.node("b");
        let z = b.node("c");
        b.edge(x, z, EdgeKind::Descendant);
        b.edge(y, z, EdgeKind::Descendant);
        assert!(matches!(
            b.build().unwrap_err(),
            QueryError::MultipleParents(_)
        ));
    }

    #[test]
    fn forest_rejected() {
        let mut b = TreeQueryBuilder::new();
        b.node("a");
        b.node("b");
        assert_eq!(b.build().unwrap_err(), QueryError::RootCount(2));
    }

    #[test]
    fn cycle_rejected() {
        let mut b = TreeQueryBuilder::new();
        let x = b.node("a");
        let y = b.node("b");
        let z = b.node("c");
        b.edge(x, y, EdgeKind::Descendant);
        b.edge(y, z, EdgeKind::Descendant);
        b.edge(z, x, EdgeKind::Descendant);
        assert_eq!(b.build().unwrap_err(), QueryError::RootCount(0));
    }

    #[test]
    fn detached_cycle_rejected() {
        let mut b = TreeQueryBuilder::new();
        let r = b.node("r");
        let x = b.node("a");
        let y = b.node("b");
        let _ = r;
        b.edge(x, y, EdgeKind::Descendant);
        b.edge(y, x, EdgeKind::Descendant);
        assert!(matches!(
            b.build().unwrap_err(),
            QueryError::Disconnected(_)
        ));
    }

    #[test]
    fn edge_kinds_preserved() {
        let mut b = TreeQueryBuilder::new();
        let x = b.node("a");
        let y = b.node("b");
        let z = b.node("c");
        b.edge(x, y, EdgeKind::Child);
        b.edge(x, z, EdgeKind::Descendant);
        let q = b.build().unwrap();
        let yq = q
            .node_ids()
            .find(|&u| q.label_name(u) == Some("b"))
            .unwrap();
        assert_eq!(q.edge_kind(yq), EdgeKind::Child);
        assert!(!q.is_pure_descendant());
    }

    #[test]
    fn resolve_against_interner() {
        let mut interner = LabelInterner::new();
        let a = interner.intern("a");
        interner.intern("b");
        let mut b = TreeQueryBuilder::new();
        let x = b.node("a");
        let y = b.node("zzz");
        let z = b.wildcard();
        b.edge(x, y, EdgeKind::Descendant);
        b.edge(x, z, EdgeKind::Descendant);
        let q = b.build().unwrap().resolve(&interner);
        assert_eq!(q.label(QNodeId(0)), QueryLabel::Label(a));
        let labels: Vec<_> = (1..3).map(|i| q.label(QNodeId(i))).collect();
        assert!(labels.contains(&QueryLabel::Unmatchable));
        assert!(labels.contains(&QueryLabel::Wildcard));
    }

    #[test]
    fn max_degree_counts_parent_edge() {
        let q = fig2_query();
        // Root a has 2 children => degree 2; c has 2 children + parent => 3.
        assert_eq!(q.max_degree(), 3);
    }

    #[test]
    fn edges_iterator_yields_all() {
        let q = fig2_query();
        let edges: Vec<_> = q.edges().collect();
        assert_eq!(edges.len(), 4);
        for (p, c, _) in edges {
            assert!(p < c);
        }
    }
}
