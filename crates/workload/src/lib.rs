//! # ktpm-workload
//!
//! Dataset and query generators reproducing the paper's experimental
//! setup (§6) at laptop scale:
//!
//! * [`generate`] — a seeded labeled-graph generator with two presets:
//!   [`GraphSpec::citation`] (DBLP-like: skewed venue labels, sparse
//!   citation DAG, the `GD*` family) and [`GraphSpec::power_law`]
//!   (Boost-PLOD-like: 200 uniform labels, average out-degree 3, the
//!   `GS*` family). Reachability is bounded through a community
//!   structure so the transitive closure stays laptop-sized — the
//!   substitution DESIGN.md documents (the paper's full-size closures
//!   reach 247 GB).
//! * [`random_tree_query`] / [`query_set`] — random-walk tree queries
//!   guaranteed to have at least one match (the paper extracts query
//!   trees from the run-time graph the same way), with distinct or
//!   duplicated labels (Eval-IV).
//! * [`random_graph_query`] / [`pattern_set`] — cyclic graph patterns
//!   for the kGPM evaluation (Figure 9).
//! * [`gd_family`] / [`gs_family`] / [`query_sizes`] /
//!   [`pattern_family`] — the scaled `GD1..`, `GS1..`, `T10..T100`
//!   and `Q1..Q4` experiment families.

mod families;
mod graphs;
mod queries;

pub use families::{
    gd_family, gs_family, pattern_family, query_sizes, PatternSpec, DEFAULT_GD, DEFAULT_GS,
};
pub use graphs::{generate, GraphSpec};
pub use queries::{pattern_set, query_set, random_graph_query, random_tree_query, QuerySpec};
