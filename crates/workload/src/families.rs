//! The experiment families of §6, scaled to laptop size.
//!
//! The paper's `GD1..GD5` are DBLP subgraphs of 10⁴..10⁶ nodes and
//! `GS1..GS6` synthetic graphs of 10⁴..2×10⁶; their transitive closures
//! reach 98–247 GB (Table 2). We keep the same *relative* progression at
//! roughly 1/10th..1/50th scale so every closure fits comfortably in
//! memory; EXPERIMENTS.md records paper-vs-measured sizes side by side.

use crate::graphs::GraphSpec;

/// The default (third) member of each family, mirroring the paper's
/// "default real dataset GD3" / "default synthetic dataset GS3".
pub const DEFAULT_GD: usize = 2;
/// See [`DEFAULT_GD`].
pub const DEFAULT_GS: usize = 2;

/// The scaled `GD*` (citation) family: `(name, spec)` pairs.
pub fn gd_family() -> Vec<(&'static str, GraphSpec)> {
    let sizes = [1_000, 2_500, 5_000, 10_000, 20_000];
    let names = ["GD1", "GD2", "GD3", "GD4", "GD5"];
    names
        .iter()
        .zip(sizes)
        .map(|(&n, s)| (n, GraphSpec::citation(s, 0xD0 + s as u64)))
        .collect()
}

/// The scaled `GS*` (power-law) family.
pub fn gs_family() -> Vec<(&'static str, GraphSpec)> {
    let sizes = [1_000, 2_500, 5_000, 10_000, 20_000, 40_000];
    let names = ["GS1", "GS2", "GS3", "GS4", "GS5", "GS6"];
    names
        .iter()
        .zip(sizes)
        .map(|(&n, s)| (n, GraphSpec::power_law(s, 0x50 + s as u64)))
        .collect()
}

/// Query-set sizes: `T10..T70` for the citation family, plus `T100` for
/// the synthetic family (§6: "Since in real data graphs, we cannot
/// generate T100").
pub fn query_sizes(synthetic: bool) -> Vec<usize> {
    if synthetic {
        vec![10, 20, 30, 50, 70, 100]
    } else {
        vec![10, 20, 30, 50, 70]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_are_increasing() {
        let gd = gd_family();
        assert_eq!(gd.len(), 5);
        assert!(gd.windows(2).all(|w| w[0].1.nodes < w[1].1.nodes));
        let gs = gs_family();
        assert_eq!(gs.len(), 6);
        assert!(gs.windows(2).all(|w| w[0].1.nodes < w[1].1.nodes));
    }

    #[test]
    fn defaults_point_at_third_member() {
        assert_eq!(gd_family()[DEFAULT_GD].0, "GD3");
        assert_eq!(gs_family()[DEFAULT_GS].0, "GS3");
    }

    #[test]
    fn query_sizes_match_paper_sets() {
        assert_eq!(query_sizes(false), vec![10, 20, 30, 50, 70]);
        assert_eq!(query_sizes(true).last(), Some(&100));
    }
}
