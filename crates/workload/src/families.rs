//! The experiment families of §6, scaled to laptop size.
//!
//! The paper's `GD1..GD5` are DBLP subgraphs of 10⁴..10⁶ nodes and
//! `GS1..GS6` synthetic graphs of 10⁴..2×10⁶; their transitive closures
//! reach 98–247 GB (Table 2). We keep the same *relative* progression at
//! roughly 1/10th..1/50th scale so every closure fits comfortably in
//! memory; EXPERIMENTS.md records paper-vs-measured sizes side by side.

use crate::graphs::GraphSpec;

/// The default (third) member of each family, mirroring the paper's
/// "default real dataset GD3" / "default synthetic dataset GS3".
pub const DEFAULT_GD: usize = 2;
/// See [`DEFAULT_GD`].
pub const DEFAULT_GS: usize = 2;

/// The scaled `GD*` (citation) family: `(name, spec)` pairs.
pub fn gd_family() -> Vec<(&'static str, GraphSpec)> {
    let sizes = [1_000, 2_500, 5_000, 10_000, 20_000];
    let names = ["GD1", "GD2", "GD3", "GD4", "GD5"];
    names
        .iter()
        .zip(sizes)
        .map(|(&n, s)| (n, GraphSpec::citation(s, 0xD0 + s as u64)))
        .collect()
}

/// The scaled `GS*` (power-law) family.
pub fn gs_family() -> Vec<(&'static str, GraphSpec)> {
    let sizes = [1_000, 2_500, 5_000, 10_000, 20_000, 40_000];
    let names = ["GS1", "GS2", "GS3", "GS4", "GS5", "GS6"];
    names
        .iter()
        .zip(sizes)
        .map(|(&n, s)| (n, GraphSpec::power_law(s, 0x50 + s as u64)))
        .collect()
}

/// Query-set sizes: `T10..T70` for the citation family, plus `T100` for
/// the synthetic family (§6: "Since in real data graphs, we cannot
/// generate T100").
pub fn query_sizes(synthetic: bool) -> Vec<usize> {
    if synthetic {
        vec![10, 20, 30, 50, 70, 100]
    } else {
        vec![10, 20, 30, 50, 70]
    }
}

/// One member of the cyclic-pattern family (Figure 9's `Q1..Q4`):
/// pattern size and how many edges it carries beyond a spanning tree.
/// Feed it to [`crate::random_graph_query`] (over the *undirected*
/// view of the data graph) to extract a concrete [`GraphQuery`].
///
/// [`GraphQuery`]: ktpm_query::GraphQuery
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PatternSpec {
    /// Pattern nodes (distinct labels).
    pub nodes: usize,
    /// Non-tree edges beyond the spanning tree — `0` is a tree-shaped
    /// pattern (pure driver, no verification), larger values stress
    /// the lazy non-tree verification.
    pub extra_edges: usize,
}

/// The scaled kGPM pattern family `Q1..Q4` (§6.2, Figure 9): growing
/// pattern size and cyclicity. `Q1` is tree-shaped (the degenerate
/// case where kGPM reduces to its tree driver); `Q2..Q4` add non-tree
/// edges that only lazy verification can reject.
pub fn pattern_family() -> Vec<(&'static str, PatternSpec)> {
    vec![
        (
            "Q1",
            PatternSpec {
                nodes: 3,
                extra_edges: 0,
            },
        ),
        (
            "Q2",
            PatternSpec {
                nodes: 4,
                extra_edges: 1,
            },
        ),
        (
            "Q3",
            PatternSpec {
                nodes: 5,
                extra_edges: 2,
            },
        ),
        (
            "Q4",
            PatternSpec {
                nodes: 6,
                extra_edges: 3,
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_are_increasing() {
        let gd = gd_family();
        assert_eq!(gd.len(), 5);
        assert!(gd.windows(2).all(|w| w[0].1.nodes < w[1].1.nodes));
        let gs = gs_family();
        assert_eq!(gs.len(), 6);
        assert!(gs.windows(2).all(|w| w[0].1.nodes < w[1].1.nodes));
    }

    #[test]
    fn defaults_point_at_third_member() {
        assert_eq!(gd_family()[DEFAULT_GD].0, "GD3");
        assert_eq!(gs_family()[DEFAULT_GS].0, "GS3");
    }

    #[test]
    fn query_sizes_match_paper_sets() {
        assert_eq!(query_sizes(false), vec![10, 20, 30, 50, 70]);
        assert_eq!(query_sizes(true).last(), Some(&100));
    }

    #[test]
    fn pattern_family_grows_in_size_and_cyclicity() {
        let fam = pattern_family();
        assert_eq!(fam.len(), 4);
        assert_eq!(
            fam[0],
            (
                "Q1",
                PatternSpec {
                    nodes: 3,
                    extra_edges: 0
                }
            )
        );
        assert!(fam
            .windows(2)
            .all(|w| { w[0].1.nodes < w[1].1.nodes && w[0].1.extra_edges < w[1].1.extra_edges }));
    }

    #[test]
    fn pattern_sets_extract_concrete_cyclic_patterns() {
        let g = ktpm_graph::undirect(&crate::generate(&GraphSpec::power_law(600, 17)));
        for (name, spec) in pattern_family() {
            let set = crate::pattern_set(&g, spec, 3, 0xF1C);
            assert!(!set.is_empty(), "{name} extracts on a power-law graph");
            for q in &set {
                assert_eq!(q.len(), spec.nodes, "{name}");
                // Extraction adds *up to* extra_edges beyond the tree.
                assert!(q.excess_edges() <= spec.extra_edges, "{name}");
                assert_eq!(q.num_edges(), spec.nodes - 1 + q.excess_edges(), "{name}");
            }
        }
    }
}
