//! Seeded labeled-graph generators.
//!
//! Both of the paper's dataset families are modeled by one generator:
//! nodes arrive in sequence, partitioned into *communities*; each node
//! emits edges to earlier nodes of its own community (preferential, with
//! recency bias) plus an occasional edge into a small global core (the
//! oldest half-community — "everyone cites the classics"). Edges always
//! point from newer to older nodes (citation style), so the graph is a
//! DAG whose per-node reachability — and hence the closure size — is
//! bounded by ~1.5 community sizes. DESIGN.md records this as the
//! scaling substitution for the paper's full-size DBLP and Boost-PLOD
//! graphs, whose closures reach 247 GB.

use ktpm_graph::{GraphBuilder, LabeledGraph};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Parameters of the graph generator.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphSpec {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of distinct labels.
    pub labels: usize,
    /// Zipf exponent for label frequencies (0 = uniform).
    pub label_skew: f64,
    /// Average out-degree.
    pub avg_out_degree: f64,
    /// Community size (reachability / closure-size control).
    pub community: usize,
    /// Fraction of edges that point into the global core (the oldest
    /// half-community) instead of the local community.
    pub cross_fraction: f64,
    /// Inclusive edge-weight range (unit weights: `(1, 1)`).
    pub weight_range: (u32, u32),
    /// RNG seed.
    pub seed: u64,
}

impl GraphSpec {
    /// DBLP-like citation preset (the `GD*` family): Zipf-distributed
    /// venue labels (100, scaled from DBLP's 3136 at ~1/12 the node
    /// scale), sparse citations (avg out-degree 2.2). Zipf skew makes the
    /// hot label pairs dense, which is what drives run-time-graph size on
    /// DBLP (θ = 5900 there).
    pub fn citation(nodes: usize, seed: u64) -> Self {
        GraphSpec {
            nodes,
            labels: 100,
            label_skew: 1.0,
            avg_out_degree: 2.2,
            community: 2000,
            cross_fraction: 0.08,
            weight_range: (1, 1),
            seed,
        }
    }

    /// Boost-PLOD-like preset (the `GS*` family): 150 uniform labels
    /// (scaled from the paper's 200), average out-degree 3 (§6
    /// "Synthetic Datasets"). Fixed label count makes run-time graphs
    /// grow with the data graph, as in the paper's Figure 7(e)/(f).
    pub fn power_law(nodes: usize, seed: u64) -> Self {
        GraphSpec {
            nodes,
            labels: 150,
            label_skew: 0.0,
            avg_out_degree: 3.0,
            community: 2500,
            cross_fraction: 0.10,
            weight_range: (1, 1),
            seed,
        }
    }

    /// Same structure with weights drawn from `[lo, hi]` (exercises the
    /// weighted-distance code paths; the paper's figures use weight 1).
    pub fn weighted(mut self, lo: u32, hi: u32) -> Self {
        self.weight_range = (lo, hi);
        self
    }
}

/// Generates a graph per `spec`. Deterministic in `spec.seed`.
pub fn generate(spec: &GraphSpec) -> LabeledGraph {
    assert!(spec.nodes > 0, "empty graphs are built directly");
    assert!(spec.labels > 0);
    assert!(spec.weight_range.0 >= 1 && spec.weight_range.0 <= spec.weight_range.1);
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut b = GraphBuilder::with_capacity(
        spec.nodes,
        (spec.nodes as f64 * spec.avg_out_degree) as usize,
    );

    // Zipf label distribution via cumulative weights.
    let weights: Vec<f64> = (1..=spec.labels)
        .map(|r| 1.0 / (r as f64).powf(spec.label_skew))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut cumulative = Vec::with_capacity(spec.labels);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cumulative.push(acc);
    }
    let pick_label = |rng: &mut StdRng| -> usize {
        let x: f64 = rng.random();
        cumulative.partition_point(|&c| c < x).min(spec.labels - 1)
    };

    let mut nodes = Vec::with_capacity(spec.nodes);
    for _ in 0..spec.nodes {
        let l = pick_label(&mut rng);
        let lid = b.intern_label(&format!("L{l}"));
        nodes.push(b.add_node_with_label_id(lid));
    }

    // In-degree counters for preferential attachment.
    let mut in_deg = vec![0u32; spec.nodes];
    let community = spec.community.max(2);
    for i in 1..spec.nodes {
        let com_start = (i / community) * community;
        let deg = sample_degree(&mut rng, spec.avg_out_degree);
        for _ in 0..deg {
            // Cross edges go to the global core: a bounded, shared sink
            // set, so transitive reachability cannot chain community to
            // community.
            let core = (community / 2).max(1);
            let cross = com_start > 0 && rng.random::<f64>() < spec.cross_fraction;
            let (lo, hi) = if cross {
                (0, core.min(com_start))
            } else {
                (com_start, i)
            };
            if lo >= hi {
                continue;
            }
            // Preferential with recency: mix uniform and degree-biased.
            let target = if rng.random::<f64>() < 0.5 {
                rng.random_range(lo..hi)
            } else {
                // Two uniform probes, keep the higher in-degree (cheap
                // approximation of preferential attachment).
                let a = rng.random_range(lo..hi);
                let c = rng.random_range(lo..hi);
                if in_deg[a] >= in_deg[c] {
                    a
                } else {
                    c
                }
            };
            let w = if spec.weight_range.0 == spec.weight_range.1 {
                spec.weight_range.0
            } else {
                rng.random_range(spec.weight_range.0..=spec.weight_range.1)
            };
            in_deg[target] += 1;
            b.add_edge(nodes[i], nodes[target], w);
        }
    }
    b.build().expect("generator emits valid edges")
}

fn sample_degree(rng: &mut StdRng, avg: f64) -> usize {
    // Geometric-ish around the average: floor + Bernoulli remainder, plus
    // occasional heavy nodes for a fat tail.
    let base = avg.floor() as usize;
    let mut d = base + usize::from(rng.random::<f64>() < (avg - base as f64));
    if rng.random::<f64>() < 0.02 {
        d += rng.random_range(5..20);
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let spec = GraphSpec::citation(500, 42);
        let g1 = generate(&spec);
        let g2 = generate(&spec);
        assert_eq!(g1.num_nodes(), g2.num_nodes());
        assert_eq!(g1.num_edges(), g2.num_edges());
        let e1: Vec<_> = g1.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn different_seeds_differ() {
        let g1 = generate(&GraphSpec::citation(500, 1));
        let g2 = generate(&GraphSpec::citation(500, 2));
        let e1: Vec<_> = g1.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_ne!(e1, e2);
    }

    #[test]
    fn average_degree_is_close_to_spec() {
        let g = generate(&GraphSpec::power_law(4000, 7));
        let avg = g.num_edges() as f64 / g.num_nodes() as f64;
        assert!(
            (2.0..4.5).contains(&avg),
            "avg out-degree {avg} out of range"
        );
    }

    #[test]
    fn citation_labels_are_skewed() {
        let g = generate(&GraphSpec::citation(4000, 9));
        let mut counts = vec![0usize; g.num_labels()];
        for v in g.nodes() {
            counts[g.label(v).index()] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        // Top label clearly dominates the median label under Zipf(1).
        assert!(counts[0] > 5 * counts[counts.len() / 2].max(1));
    }

    #[test]
    fn power_law_labels_are_roughly_uniform() {
        let g = generate(&GraphSpec::power_law(4000, 9));
        let mut counts = vec![0usize; g.num_labels()];
        for v in g.nodes() {
            counts[g.label(v).index()] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().filter(|&&c| c > 0).min().unwrap();
        assert!(max < min * 10, "uniform labels: max {max}, min {min}");
    }

    #[test]
    fn edges_point_backwards_making_a_dag() {
        let g = generate(&GraphSpec::citation(1000, 3));
        for e in g.edges() {
            assert!(e.to < e.from, "citation edges must point to older nodes");
        }
    }

    #[test]
    fn weighted_variant_uses_range() {
        let g = generate(&GraphSpec::power_law(500, 5).weighted(1, 4));
        assert!(g.edges().any(|e| e.weight > 1));
        assert!(g.edges().all(|e| (1..=4).contains(&e.weight)));
    }

    #[test]
    fn reachability_is_community_bounded() {
        use ktpm_closure::sssp;
        let spec = GraphSpec::citation(3000, 11);
        let g = generate(&spec);
        let mut scratch = vec![ktpm_graph::INF_DIST; g.num_nodes()];
        let mut max_reach = 0;
        for v in g.nodes().step_by(97) {
            max_reach = max_reach.max(sssp(&g, v, &mut scratch).len());
        }
        assert!(
            max_reach <= 2 * spec.community,
            "reach {max_reach} exceeds the community + core bound"
        );
    }
}
