//! Random query generators.
//!
//! §6 "Query Set": "we use random walks to randomly generate five query
//! sets ... each generated query tree is a subtree of the run-time
//! graph". Growing the tree along *data-graph* edges guarantees at least
//! one match under `//` semantics (data edges are distance-1 closure
//! edges), which is exactly the property the paper needs.

use ktpm_graph::LabeledGraph;
use ktpm_query::{EdgeKind, GraphQuery, TreeQuery, TreeQueryBuilder};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashSet;

/// Parameters for random tree query extraction.
#[derive(Debug, Clone, Copy)]
pub struct QuerySpec {
    /// Number of query nodes (`n_T`).
    pub size: usize,
    /// Enforce pairwise-distinct labels (§2's base assumption); when
    /// false, duplicate labels are allowed (Eval-IV / `Topk-GT`).
    pub distinct_labels: bool,
    /// RNG seed.
    pub seed: u64,
}

/// Extracts a random tree query of `spec.size` nodes by random walk over
/// the data graph. Returns `None` if no such tree exists from any tried
/// root (e.g. the graph is too small or too disconnected).
pub fn random_tree_query(g: &LabeledGraph, spec: QuerySpec) -> Option<TreeQuery> {
    assert!(spec.size >= 1);
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let n = g.num_nodes();
    if n == 0 {
        return None;
    }
    'attempt: for _ in 0..200 {
        let root = ktpm_graph::NodeId(rng.random_range(0..n as u32));
        // Grow a tree of data nodes; each tree node = (data node, parent slot).
        let mut data_nodes = vec![root];
        let mut parents: Vec<usize> = vec![usize::MAX];
        let mut used_labels: HashSet<ktpm_graph::LabelId> = HashSet::new();
        let mut used_nodes: HashSet<ktpm_graph::NodeId> = HashSet::new();
        used_labels.insert(g.label(root));
        used_nodes.insert(root);
        while data_nodes.len() < spec.size {
            // Collect admissible extensions: nodes reachable from a tree
            // node within a few hops (closure edges — the paper extracts
            // queries as "subtrees of the run-time graph"), carrying an
            // unused node and an admissible label. Depth grows only when
            // shallower extensions dry up, keeping queries local.
            let mut frontier: Vec<(usize, ktpm_graph::NodeId)> = Vec::new();
            for depth in 1..=4usize {
                for (pick, &from) in data_nodes.iter().enumerate() {
                    // Bounded BFS from `from`, collecting in visit order
                    // (determinism matters: the rng picks by index).
                    let mut seen: HashSet<ktpm_graph::NodeId> = HashSet::new();
                    let mut reached: Vec<ktpm_graph::NodeId> = Vec::new();
                    let mut layer = vec![from];
                    seen.insert(from);
                    for _ in 0..depth {
                        let mut next_layer = Vec::new();
                        for &x in &layer {
                            for e in g.out_edges(x) {
                                if seen.insert(e.to) {
                                    next_layer.push(e.to);
                                    reached.push(e.to);
                                }
                            }
                        }
                        layer = next_layer;
                    }
                    for &to in &reached {
                        if used_nodes.contains(&to) {
                            continue;
                        }
                        if spec.distinct_labels && used_labels.contains(&g.label(to)) {
                            continue;
                        }
                        frontier.push((pick, to));
                    }
                }
                if !frontier.is_empty() {
                    break;
                }
            }
            if frontier.is_empty() {
                continue 'attempt;
            }
            let (pick, to) = frontier[rng.random_range(0..frontier.len())];
            used_nodes.insert(to);
            used_labels.insert(g.label(to));
            data_nodes.push(to);
            parents.push(pick);
        }
        let mut b = TreeQueryBuilder::new();
        let qnodes: Vec<_> = data_nodes
            .iter()
            .map(|&v| b.node(g.label_name(g.label(v))))
            .collect();
        for (i, &p) in parents.iter().enumerate().skip(1) {
            b.edge(qnodes[p], qnodes[i], EdgeKind::Descendant);
        }
        return Some(b.build().expect("walk produces a valid tree"));
    }
    None
}

/// Generates a query set of `count` trees (the paper uses 100 per set).
/// Trees that cannot be extracted are skipped, so the result may be
/// shorter than `count` on tiny graphs.
pub fn query_set(
    g: &LabeledGraph,
    size: usize,
    count: usize,
    distinct_labels: bool,
    seed: u64,
) -> Vec<TreeQuery> {
    (0..count)
        .filter_map(|i| {
            random_tree_query(
                g,
                QuerySpec {
                    size,
                    distinct_labels,
                    seed: seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9),
                },
            )
        })
        .collect()
}

/// Extracts a cyclic graph pattern for kGPM (Figure 9's `Q1..Q4`): a
/// random-walk tree of `nodes` distinct-labeled nodes plus `extra_edges`
/// additional edges between random pattern nodes.
pub fn random_graph_query(
    g: &LabeledGraph,
    nodes: usize,
    extra_edges: usize,
    seed: u64,
) -> Option<GraphQuery> {
    let tree = random_tree_query(
        g,
        QuerySpec {
            size: nodes,
            distinct_labels: true,
            seed,
        },
    )?;
    let labels: Vec<String> = tree
        .node_ids()
        .map(|u| tree.label_name(u).expect("distinct labels").to_owned())
        .collect();
    let mut edges: Vec<(usize, usize)> = tree
        .edges()
        .map(|(p, c, _)| (p.index(), c.index()))
        .collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD1CE_CAFE);
    let mut present: HashSet<(usize, usize)> =
        edges.iter().map(|&(a, b)| (a.min(b), a.max(b))).collect();
    let mut added = 0;
    for _ in 0..extra_edges * 20 {
        if added == extra_edges {
            break;
        }
        let a = rng.random_range(0..nodes);
        let b = rng.random_range(0..nodes);
        if a == b {
            continue;
        }
        let key = (a.min(b), a.max(b));
        if present.insert(key) {
            edges.push(key);
            added += 1;
        }
    }
    GraphQuery::new(labels, edges).ok()
}

/// Extracts a set of cyclic patterns for one member of the kGPM
/// pattern family (see [`crate::pattern_family`]), the way
/// [`query_set`] extracts tree-query sets. Extraction can fail on
/// sparse or label-poor graphs, so fewer than `count` patterns may
/// come back. Run it over the *undirected* view of the data graph
/// ([`ktpm_graph::undirect`]) — the view kGPM semantics see.
pub fn pattern_set(
    g: &LabeledGraph,
    spec: crate::PatternSpec,
    count: usize,
    seed: u64,
) -> Vec<GraphQuery> {
    (0..count)
        .filter_map(|i| {
            random_graph_query(
                g,
                spec.nodes,
                spec.extra_edges,
                seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphs::{generate, GraphSpec};

    fn sample_graph() -> LabeledGraph {
        generate(&GraphSpec::citation(2000, 42))
    }

    #[test]
    fn extracted_tree_has_requested_size_and_distinct_labels() {
        let g = sample_graph();
        let q = random_tree_query(
            &g,
            QuerySpec {
                size: 12,
                distinct_labels: true,
                seed: 1,
            },
        )
        .expect("extraction succeeds on a 2000-node graph");
        assert_eq!(q.len(), 12);
        assert!(q.has_distinct_labels());
    }

    #[test]
    fn extraction_is_deterministic() {
        let g = sample_graph();
        let spec = QuerySpec {
            size: 8,
            distinct_labels: true,
            seed: 5,
        };
        let a = random_tree_query(&g, spec).unwrap();
        let b = random_tree_query(&g, spec).unwrap();
        let la: Vec<_> = a.node_ids().map(|u| a.label_name(u).unwrap()).collect();
        let lb: Vec<_> = b.node_ids().map(|u| b.label_name(u).unwrap()).collect();
        assert_eq!(la, lb);
    }

    #[test]
    fn duplicate_label_sets_have_duplicates() {
        let g = generate(&GraphSpec {
            labels: 10, // few labels force duplicates
            ..GraphSpec::citation(2000, 4)
        });
        let qs = query_set(&g, 10, 20, false, 7);
        assert!(!qs.is_empty());
        assert!(
            qs.iter().any(|q| !q.has_distinct_labels()),
            "with 10 labels and 10-node queries duplicates must appear"
        );
    }

    #[test]
    fn query_set_yields_many_trees() {
        let g = sample_graph();
        let qs = query_set(&g, 10, 25, true, 3);
        assert!(qs.len() >= 20, "got {}", qs.len());
        for q in &qs {
            assert_eq!(q.len(), 10);
        }
    }

    #[test]
    fn graph_query_has_cycles() {
        let g = sample_graph();
        let gq = random_graph_query(&g, 5, 2, 9).expect("pattern extraction");
        assert_eq!(gq.len(), 5);
        assert_eq!(gq.num_edges(), 6); // 4 tree edges + 2 extra
        assert_eq!(gq.excess_edges(), 2);
    }

    #[test]
    fn oversized_query_returns_none() {
        let mut b = ktpm_graph::GraphBuilder::new();
        let x = b.add_node("x");
        let y = b.add_node("y");
        b.add_edge(x, y, 1);
        let g = b.build().unwrap();
        assert!(random_tree_query(
            &g,
            QuerySpec {
                size: 5,
                distinct_labels: true,
                seed: 0,
            }
        )
        .is_none());
    }
}
