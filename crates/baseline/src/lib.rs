//! # ktpm-baseline
//!
//! Reimplementations of the two state-of-the-art baselines the paper
//! compares against (Gou & Chirkova, "Efficient algorithms for exact
//! ranked twig-pattern matching over graphs", SIGMOD'08), built from the
//! description in §1 of the VLDB'15 paper:
//!
//! * [`DpBEnumerator`] — **DP-B**: dynamic programming with a ranked
//!   match stream (a priority queue of length up to `k`) at every node of
//!   the run-time graph, enumerated in a pull-down fashion. Per
//!   enumeration round it pays `O(d²_u + log k)` at each query node — the
//!   `n_T (d_T + log k)` round cost the VLDB'15 paper improves to
//!   `n_T + log k`.
//! * [`DpPEnumerator`] — **DP-P**: DP-B run over a priority-order loaded
//!   run-time graph, "always extending the partial match with the
//!   smallest current score". It shares `ktpm-core`'s
//!   [`ktpm_core::PriorityLoader`] with the *loose* bound
//!   (`b̄s + e_v`, no remaining-edges term): the VLDB'15 paper's §4 states
//!   its own trigger is strictly tighter. Whenever the certified bound is
//!   insufficient, more blocks load and the DP structure is rebuilt and
//!   replayed — reproducing DP-P's characteristic cheap-loading /
//!   expensive-enumeration trade-off (visible in Figures 6(e)/6(f)).

mod dpb;
mod dpp;

pub use dpb::DpBEnumerator;
pub use dpp::DpPEnumerator;
