//! # ktpm-baseline
//!
//! Compatibility shim: the DP-B / DP-P baseline enumerators (Gou &
//! Chirkova, SIGMOD'08, rebuilt from §1 of the VLDB'15 paper) now live
//! in `ktpm-core` so they sit behind the same [`ktpm_core::Algo`]
//! registry and [`ktpm_core::build_stream`] dispatch as every other
//! engine (`Algo::DpB` / `Algo::DpP`). This crate re-exports them for
//! existing callers; new code should depend on `ktpm-core` directly.

pub use ktpm_core::{DpBEnumerator, DpPEnumerator};
