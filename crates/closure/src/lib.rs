//! # ktpm-closure
//!
//! The shortest-distance transitive closure substrate (§3.1 of the paper):
//!
//! * [`sssp`] — single-source shortest *non-empty-path* distances
//!   (BFS for unit-weighted graphs, Dijkstra otherwise);
//! * [`ClosureTables`] — the full closure organized as label-pair tables
//!   `Lᵅᵦ` (the layout of §3.1/§4.1: per destination node, incoming
//!   closure edges sorted by distance), with derived `Dᵅᵦ` and `Eᵅᵦ`
//!   views and the `θ` statistic used in the complexity discussion;
//! * [`pll`] — a pruned-landmark 2-hop index (§5 "Managing Closure Size")
//!   for answering distance queries without materializing the closure;
//! * `reference` — a Floyd–Warshall oracle for tests.
//!
//! Distances follow the paper's path semantics: a closure edge `(v, v')`
//! exists iff a *non-empty* directed path runs from `v` to `v'`; in
//! particular `(v, v)` exists only if `v` lies on a cycle.

mod dijkstra;
pub mod pll;
pub mod reference;
mod repair;
mod tables;

pub use dijkstra::sssp;
pub use repair::{RepairOutcome, RepairStats};
pub use tables::{ClosureStats, ClosureTables, PairKey, PairTable};
