//! Pruned landmark labeling (2-hop index) for distance queries.
//!
//! §5 "Managing Closure Size" points at 2-hop node labeling
//! (Cohen et al. SODA'02, Akiba et al. SIGMOD'13) as the way to avoid
//! materializing an O(n²) closure: keep only "hot" closure lists and
//! answer the rest of the `δ_min` queries from a small in-memory index.
//! This module implements the directed, weighted variant of pruned
//! landmark labeling; `ktpm-kgpm` can use it to verify non-tree edges,
//! and the ablation bench compares it against full closure lookups.
//!
//! Semantics note: internally the index uses standard (empty-path-allowed)
//! distances; [`PllIndex::dist`] converts to the closure's non-empty-path
//! semantics (`dist(v, v)` is the shortest cycle through `v`, or `None`).

use ktpm_graph::{Dist, LabeledGraph, NodeId, INF_DIST};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A 2-hop labeling over a directed weighted graph.
#[derive(Debug, Clone)]
pub struct PllIndex {
    /// For each node `v`: sorted `(landmark_rank, δ(landmark, v))`.
    label_in: Vec<Vec<(u32, Dist)>>,
    /// For each node `v`: sorted `(landmark_rank, δ(v, landmark))`.
    label_out: Vec<Vec<(u32, Dist)>>,
    /// Shortest cycle through each node (non-empty self distance).
    self_dist: Vec<Dist>,
}

/// Minimum `δ_out(u, w) + δ_in(w, v)` over common landmarks of two sorted
/// label lists (standard 2-hop query; empty-path semantics).
fn hop_query(out: &[(u32, Dist)], inc: &[(u32, Dist)]) -> Dist {
    let (mut i, mut j) = (0, 0);
    let mut best = INF_DIST;
    while i < out.len() && j < inc.len() {
        match out[i].0.cmp(&inc[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let d = out[i].1.saturating_add(inc[j].1);
                best = best.min(d);
                i += 1;
                j += 1;
            }
        }
    }
    best
}

impl PllIndex {
    /// Builds the index with landmarks ordered by decreasing degree product
    /// (the usual centrality heuristic).
    pub fn build(g: &LabeledGraph) -> Self {
        let n = g.num_nodes();
        let mut order: Vec<NodeId> = g.nodes().collect();
        order.sort_unstable_by_key(|&v| {
            Reverse((g.out_degree(v) + 1) as u64 * (g.in_degree(v) + 1) as u64)
        });

        let mut label_in: Vec<Vec<(u32, Dist)>> = vec![Vec::new(); n];
        let mut label_out: Vec<Vec<(u32, Dist)>> = vec![Vec::new(); n];
        let mut dist = vec![INF_DIST; n];

        for (rank, &lm) in order.iter().enumerate() {
            let rank = rank as u32;
            // Forward search from lm: adds (rank, δ(lm, v)) to label_in[v].
            let fwd = pruned_dijkstra(g, lm, true, &label_out[lm.index()], &label_in, &mut dist);
            for (v, d) in fwd {
                label_in[v.index()].push((rank, d));
            }
            // Backward search: adds (rank, δ(v, lm)) to label_out[v].
            // Pruning compares against hop_query(label_out[v], label_in[lm]).
            let bwd = pruned_dijkstra(g, lm, false, &label_in[lm.index()], &label_out, &mut dist);
            for (v, d) in bwd {
                label_out[v.index()].push((rank, d));
            }
        }

        // Non-empty self distances: shortest cycle through v.
        let mut self_dist = vec![INF_DIST; n];
        for v in g.nodes() {
            let mut best = INF_DIST;
            for e in g.out_edges(v) {
                let back = hop_query(&label_out[e.to.index()], &label_in[v.index()]);
                if back != INF_DIST {
                    best = best.min(e.weight.saturating_add(back));
                }
            }
            self_dist[v.index()] = best;
        }

        PllIndex {
            label_in,
            label_out,
            self_dist,
        }
    }

    /// Shortest non-empty-path distance from `u` to `v` (closure semantics).
    pub fn dist(&self, u: NodeId, v: NodeId) -> Option<Dist> {
        let d = if u == v {
            self.self_dist[u.index()]
        } else {
            hop_query(&self.label_out[u.index()], &self.label_in[v.index()])
        };
        (d != INF_DIST).then_some(d)
    }

    /// Average label entries per node (both directions), the usual 2-hop
    /// index size metric.
    pub fn avg_label_size(&self) -> f64 {
        let n = self.label_in.len();
        if n == 0 {
            return 0.0;
        }
        let total: usize = self
            .label_in
            .iter()
            .chain(self.label_out.iter())
            .map(Vec::len)
            .sum();
        total as f64 / n as f64
    }

    /// Approximate index size in bytes (8 bytes per label entry).
    pub fn approx_bytes(&self) -> u64 {
        let total: usize = self
            .label_in
            .iter()
            .chain(self.label_out.iter())
            .map(Vec::len)
            .sum();
        total as u64 * 8
    }
}

/// Dijkstra from `lm` (forward over out-edges or backward over in-edges),
/// pruned by the current index: a node whose tentative distance is already
/// covered by earlier landmarks is neither labeled nor expanded.
///
/// `lm_labels` are the labels of the landmark on the *opposite* side;
/// `other_side` holds the per-node labels on the side being queried
/// against. Returns the `(node, dist)` pairs to add.
fn pruned_dijkstra(
    g: &LabeledGraph,
    lm: NodeId,
    forward: bool,
    lm_labels: &[(u32, Dist)],
    other_side: &[Vec<(u32, Dist)>],
    dist: &mut [Dist],
) -> Vec<(NodeId, Dist)> {
    let mut heap: BinaryHeap<Reverse<(Dist, NodeId)>> = BinaryHeap::new();
    let mut touched: Vec<NodeId> = Vec::new();
    let mut added: Vec<(NodeId, Dist)> = Vec::new();
    dist[lm.index()] = 0;
    touched.push(lm);
    heap.push(Reverse((0, lm)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > dist[v.index()] {
            continue;
        }
        // Prune if earlier landmarks already cover (lm -> v) at <= d.
        let covered = if forward {
            hop_query(lm_labels, &other_side[v.index()])
        } else {
            hop_query(&other_side[v.index()], lm_labels)
        };
        if covered <= d {
            continue;
        }
        added.push((v, d));
        let edges: Vec<(NodeId, Dist)> = if forward {
            g.out_edges(v).map(|e| (e.to, e.weight)).collect()
        } else {
            g.in_edges(v).map(|e| (e.from, e.weight)).collect()
        };
        for (to, w) in edges {
            let nd = d.saturating_add(w);
            if nd < dist[to.index()] {
                if dist[to.index()] == INF_DIST {
                    touched.push(to);
                }
                dist[to.index()] = nd;
                heap.push(Reverse((nd, to)));
            }
        }
    }
    for &v in &touched {
        dist[v.index()] = INF_DIST;
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::floyd_warshall;
    use ktpm_graph::GraphBuilder;

    fn check_against_fw(g: &LabeledGraph) {
        let pll = PllIndex::build(g);
        let fw = floyd_warshall(g);
        for (i, row) in fw.iter().enumerate() {
            for (j, &d) in row.iter().enumerate() {
                let expect = (d != INF_DIST).then_some(d);
                assert_eq!(
                    pll.dist(NodeId(i as u32), NodeId(j as u32)),
                    expect,
                    "pair ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn dag_distances() {
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..6).map(|i| b.add_node(&format!("l{i}"))).collect();
        for (u, v, w) in [
            (0, 1, 1),
            (0, 2, 4),
            (1, 2, 1),
            (1, 3, 7),
            (2, 3, 2),
            (2, 4, 5),
            (3, 5, 1),
            (4, 5, 1),
        ] {
            b.add_edge(n[u], n[v], w);
        }
        check_against_fw(&b.build().unwrap());
    }

    #[test]
    fn cyclic_distances_and_self_loops() {
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..4).map(|i| b.add_node(&format!("l{i}"))).collect();
        for (u, v, w) in [(0, 1, 1), (1, 2, 2), (2, 0, 3), (2, 3, 1)] {
            b.add_edge(n[u], n[v], w);
        }
        let g = b.build().unwrap();
        check_against_fw(&g);
        let pll = PllIndex::build(&g);
        assert_eq!(pll.dist(n[0], n[0]), Some(6)); // cycle 0->1->2->0
        assert_eq!(pll.dist(n[3], n[3]), None); // 3 is not on a cycle
    }

    #[test]
    fn disconnected_pairs_return_none() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a");
        let x = b.add_node("x");
        let y = b.add_node("y");
        b.add_edge(a, x, 1);
        let g = b.build().unwrap();
        let pll = PllIndex::build(&g);
        assert_eq!(pll.dist(a, y), None);
        assert_eq!(pll.dist(x, a), None);
    }

    #[test]
    fn random_graphs_match_floyd_warshall() {
        // Deterministic xorshift so the test is reproducible without rand.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..8 {
            let n = 8 + (trial % 4) * 3;
            let mut b = GraphBuilder::new();
            let nodes: Vec<_> = (0..n).map(|i| b.add_node(&format!("l{i}"))).collect();
            for u in 0..n {
                for v in 0..n {
                    if u != v && next() % 4 == 0 {
                        b.add_edge(nodes[u], nodes[v], (next() % 5 + 1) as Dist);
                    }
                }
            }
            check_against_fw(&b.build().unwrap());
        }
    }

    #[test]
    fn index_size_metrics() {
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..5).map(|i| b.add_node(&format!("l{i}"))).collect();
        for w in n.windows(2) {
            b.add_edge(w[0], w[1], 1);
        }
        let pll = PllIndex::build(&b.build().unwrap());
        assert!(pll.avg_label_size() > 0.0);
        assert!(pll.approx_bytes() > 0);
    }
}
