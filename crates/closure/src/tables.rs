//! The transitive closure organized as label-pair tables.
//!
//! §3.1: "for each pair of node labels α, β we store in table `Lᵅᵦ` all
//! the triples `(vᵢ, vⱼ, δ_min(vᵢ, vⱼ))`". §4.1 further groups each table
//! by destination node (`Lᵅᵥ`, sorted by distance) and derives `Dᵅᵦ`
//! (minimum incoming distance per node) and `Eᵅᵦ` (minimum outgoing edge
//! per source and label).
//!
//! [`ClosureTables`] is the in-memory form; `ktpm-storage` serializes the
//! same layout to disk for the priority-based algorithms.

use crate::dijkstra::sssp;
use ktpm_graph::{Dist, LabelId, LabeledGraph, NodeId, INF_DIST};
use std::collections::HashMap;

/// A label pair `(source label, destination label)` identifying one table.
pub type PairKey = (LabelId, LabelId);

/// One `Lᵅᵦ` table: all closure edges from α-labeled to β-labeled nodes,
/// grouped by destination node with each group sorted by distance — the
/// exact on-disk layout §4.1 describes.
#[derive(Debug, Clone, Default)]
pub struct PairTable {
    /// Destination nodes with at least one incoming edge, ascending.
    dst_nodes: Vec<NodeId>,
    /// Group boundaries into `in_entries`; `len == dst_nodes.len() + 1`.
    dst_offsets: Vec<u32>,
    /// `(source, dist)` runs per destination, each sorted by `(dist, src)`.
    in_entries: Vec<(NodeId, Dist)>,
    /// `Eᵅᵦ`: for every source with at least one edge in this table, its
    /// minimum-distance outgoing edge. Sorted by source.
    min_out: Vec<(NodeId, NodeId, Dist)>,
}

impl PairTable {
    /// Builds a table from raw `(src, dst, dist)` triples (used by the
    /// on-demand store of §5 "Managing Closure Size").
    pub fn build(triples: Vec<(NodeId, NodeId, Dist)>) -> Self {
        Self::from_triples(triples)
    }

    fn from_triples(mut triples: Vec<(NodeId, NodeId, Dist)>) -> Self {
        // E view first (min outgoing edge per source).
        let mut best: HashMap<NodeId, (NodeId, Dist)> = HashMap::new();
        for &(s, d, w) in &triples {
            best.entry(s)
                .and_modify(|cur| {
                    if (w, d) < (cur.1, cur.0) {
                        *cur = (d, w);
                    }
                })
                .or_insert((d, w));
        }
        let mut min_out: Vec<(NodeId, NodeId, Dist)> =
            best.into_iter().map(|(s, (d, w))| (s, d, w)).collect();
        min_out.sort_unstable_by_key(|&(s, _, _)| s);

        // Incoming layout: group by destination, sort groups by (dist, src).
        triples.sort_unstable_by_key(|&(s, d, w)| (d, w, s));
        let mut dst_nodes = Vec::new();
        let mut dst_offsets = vec![0u32];
        let mut in_entries = Vec::with_capacity(triples.len());
        for (s, d, w) in triples {
            if dst_nodes.last() != Some(&d) {
                dst_nodes.push(d);
                dst_offsets.push(in_entries.len() as u32);
                *dst_offsets.last_mut().unwrap() = in_entries.len() as u32;
            }
            in_entries.push((s, w));
            *dst_offsets.last_mut().unwrap() = in_entries.len() as u32;
        }
        PairTable {
            dst_nodes,
            dst_offsets,
            in_entries,
            min_out,
        }
    }

    /// Number of closure edges in this table.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.in_entries.len()
    }

    /// Destination nodes with at least one incoming edge, ascending.
    pub fn dst_nodes(&self) -> &[NodeId] {
        &self.dst_nodes
    }

    /// `Lᵅᵥ`: incoming closure edges of `v`, sorted by `(dist, src)`.
    pub fn incoming(&self, v: NodeId) -> &[(NodeId, Dist)] {
        match self.dst_nodes.binary_search(&v) {
            Ok(i) => {
                let lo = self.dst_offsets[i] as usize;
                let hi = self.dst_offsets[i + 1] as usize;
                &self.in_entries[lo..hi]
            }
            Err(_) => &[],
        }
    }

    /// `dᵅᵥ`: the minimum incoming distance of `v` (the `Dᵅᵦ` entry).
    pub fn min_incoming_dist(&self, v: NodeId) -> Option<Dist> {
        self.incoming(v).first().map(|&(_, d)| d)
    }

    /// `Eᵅᵦ`: per-source minimum outgoing edges, sorted by source.
    pub fn min_out(&self) -> &[(NodeId, NodeId, Dist)] {
        &self.min_out
    }

    /// Iterates all `(src, dst, dist)` triples (destination-major).
    pub fn iter_edges(&self) -> impl Iterator<Item = (NodeId, NodeId, Dist)> + '_ {
        self.dst_nodes.iter().enumerate().flat_map(move |(i, &d)| {
            let lo = self.dst_offsets[i] as usize;
            let hi = self.dst_offsets[i + 1] as usize;
            self.in_entries[lo..hi].iter().map(move |&(s, w)| (s, d, w))
        })
    }

    /// Point lookup `δ_min(u, v)` inside this table. Linear in `|Lᵅᵥ|`
    /// (used only for kGPM verification of a handful of non-tree edges).
    pub fn dist(&self, u: NodeId, v: NodeId) -> Option<Dist> {
        self.incoming(v)
            .iter()
            .find(|&&(s, _)| s == u)
            .map(|&(_, d)| d)
    }
}

/// Aggregate closure statistics (Table 2 of the paper reports time/size).
#[derive(Debug, Clone, PartialEq)]
pub struct ClosureStats {
    /// Nodes of the underlying graph.
    pub nodes: usize,
    /// Total closure edges across all tables.
    pub edges: usize,
    /// Number of non-empty label-pair tables.
    pub pairs: usize,
    /// θ — average number of closure edges per label-pair type (§1/§3.1).
    pub theta: f64,
    /// Approximate serialized size in bytes (12 bytes per triple, as the
    /// paper's `(vᵢ, vⱼ, δ)` layout implies).
    pub approx_bytes: u64,
}

/// The full shortest-distance transitive closure as label-pair tables.
#[derive(Debug, Clone)]
pub struct ClosureTables {
    num_nodes: usize,
    labels: Vec<LabelId>,
    pairs: HashMap<PairKey, PairTable>,
    total_edges: usize,
}

impl ClosureTables {
    /// Computes the closure of `g`, one SSSP per source, parallelized
    /// across available cores.
    pub fn compute(g: &LabeledGraph) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::compute_with_threads(g, threads)
    }

    /// Computes the closure with an explicit thread count.
    pub fn compute_with_threads(g: &LabeledGraph, threads: usize) -> Self {
        type PairShard = HashMap<PairKey, Vec<(NodeId, NodeId, Dist)>>;
        let n = g.num_nodes();
        let threads = threads.clamp(1, n.max(1));
        let chunk = n.div_ceil(threads.max(1)).max(1);
        let mut shards: Vec<PairShard> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..threads {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                if lo >= hi {
                    continue;
                }
                handles.push(scope.spawn(move || {
                    let mut local: HashMap<PairKey, Vec<(NodeId, NodeId, Dist)>> = HashMap::new();
                    let mut scratch = vec![INF_DIST; n];
                    for s in lo..hi {
                        let src = NodeId(s as u32);
                        let la = g.label(src);
                        for (dst, dist) in sssp(g, src, &mut scratch) {
                            let lb = g.label(dst);
                            local.entry((la, lb)).or_default().push((src, dst, dist));
                        }
                    }
                    local
                }));
            }
            for h in handles {
                shards.push(h.join().expect("closure worker panicked"));
            }
        });
        let mut merged: HashMap<PairKey, Vec<(NodeId, NodeId, Dist)>> = HashMap::new();
        for shard in shards {
            for (k, mut v) in shard {
                merged.entry(k).or_default().append(&mut v);
            }
        }
        let mut total = 0;
        let pairs: HashMap<PairKey, PairTable> = merged
            .into_iter()
            .map(|(k, triples)| {
                total += triples.len();
                (k, PairTable::from_triples(triples))
            })
            .collect();
        ClosureTables {
            num_nodes: n,
            labels: g.nodes().map(|v| g.label(v)).collect(),
            pairs,
            total_edges: total,
        }
    }

    /// Number of nodes in the underlying graph.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Total closure edges.
    pub fn num_edges(&self) -> usize {
        self.total_edges
    }

    /// The label of node `v` (copied from the source graph).
    pub fn label(&self, v: NodeId) -> LabelId {
        self.labels[v.index()]
    }

    /// The `Lᵅᵦ` table for a label pair, if non-empty.
    pub fn pair(&self, src_label: LabelId, dst_label: LabelId) -> Option<&PairTable> {
        self.pairs.get(&(src_label, dst_label))
    }

    /// Iterates all non-empty tables.
    pub fn iter_pairs(&self) -> impl Iterator<Item = (PairKey, &PairTable)> {
        self.pairs.iter().map(|(&k, t)| (k, t))
    }

    /// All tables whose *destination* label is `dst_label` — needed to
    /// assemble incoming lists of wildcard query nodes.
    pub fn pairs_into_label(
        &self,
        dst_label: LabelId,
    ) -> impl Iterator<Item = (LabelId, &PairTable)> {
        self.pairs
            .iter()
            .filter(move |((_, b), _)| *b == dst_label)
            .map(|(&(a, _), t)| (a, t))
    }

    /// Point lookup `δ_min(u, v)`.
    pub fn dist(&self, u: NodeId, v: NodeId) -> Option<Dist> {
        self.pair(self.label(u), self.label(v))
            .and_then(|t| t.dist(u, v))
    }

    /// Replaces one `Lᵅᵦ` table from raw triples, dropping it when empty.
    /// Edge accounting stays consistent; used by the incremental repair.
    pub(crate) fn set_pair_triples(&mut self, key: PairKey, triples: Vec<(NodeId, NodeId, Dist)>) {
        if let Some(old) = self.pairs.remove(&key) {
            self.total_edges -= old.num_edges();
        }
        if !triples.is_empty() {
            self.total_edges += triples.len();
            self.pairs.insert(key, PairTable::from_triples(triples));
        }
    }

    /// θ — average edges per non-empty label-pair type.
    pub fn theta(&self) -> f64 {
        if self.pairs.is_empty() {
            0.0
        } else {
            self.total_edges as f64 / self.pairs.len() as f64
        }
    }

    /// Aggregate statistics (for Table 2 style reporting).
    pub fn stats(&self) -> ClosureStats {
        ClosureStats {
            nodes: self.num_nodes,
            edges: self.total_edges,
            pairs: self.pairs.len(),
            theta: self.theta(),
            approx_bytes: self.total_edges as u64 * 12,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::floyd_warshall;
    use ktpm_graph::GraphBuilder;

    /// The paper's Figure 2(b) data graph with unit weights.
    fn fig2_graph() -> LabeledGraph {
        ktpm_graph::fixtures::paper_graph()
    }

    #[test]
    fn closure_matches_floyd_warshall() {
        let g = fig2_graph();
        let tc = ClosureTables::compute_with_threads(&g, 2);
        let fw = floyd_warshall(&g);
        let mut count = 0;
        for (i, row) in fw.iter().enumerate() {
            for (j, &expect) in row.iter().enumerate() {
                let got = tc.dist(NodeId(i as u32), NodeId(j as u32));
                if expect == INF_DIST {
                    assert_eq!(got, None, "({i},{j})");
                } else {
                    assert_eq!(got, Some(expect), "({i},{j})");
                    count += 1;
                }
            }
        }
        assert_eq!(tc.num_edges(), count);
    }

    #[test]
    fn incoming_groups_sorted_by_distance() {
        let g = fig2_graph();
        let tc = ClosureTables::compute(&g);
        for (_, table) in tc.iter_pairs() {
            for &v in table.dst_nodes() {
                let inc = table.incoming(v);
                assert!(!inc.is_empty());
                assert!(inc.windows(2).all(|w| w[0].1 <= w[1].1), "sorted by dist");
                assert_eq!(table.min_incoming_dist(v), Some(inc[0].1));
            }
        }
    }

    #[test]
    fn min_out_is_minimal() {
        let g = fig2_graph();
        let tc = ClosureTables::compute(&g);
        for (_, table) in tc.iter_pairs() {
            for &(s, d, w) in table.min_out() {
                assert_eq!(table.dist(s, d), Some(w));
                // No edge from s in this table is cheaper.
                for (s2, _, w2) in table.iter_edges() {
                    if s2 == s {
                        assert!(w2 >= w);
                    }
                }
            }
        }
    }

    #[test]
    fn thread_counts_agree() {
        let g = fig2_graph();
        let t1 = ClosureTables::compute_with_threads(&g, 1);
        let t4 = ClosureTables::compute_with_threads(&g, 4);
        assert_eq!(t1.num_edges(), t4.num_edges());
        for (k, table) in t1.iter_pairs() {
            let other = t4.pair(k.0, k.1).expect("same pairs");
            let mut e1: Vec<_> = table.iter_edges().collect();
            let mut e2: Vec<_> = other.iter_edges().collect();
            e1.sort_unstable();
            e2.sort_unstable();
            assert_eq!(e1, e2);
        }
    }

    #[test]
    fn example_from_section_4_1() {
        // Checks every closure fact stated in the paper's Example 4.1.
        let g = fig2_graph();
        let tc = ClosureTables::compute(&g);
        let lbl = |n| g.interner().get(n).unwrap();
        let (a, c, d, e, s) = (lbl("a"), lbl("c"), lbl("d"), lbl("e"), lbl("s"));
        let (v1, v2, v5, v6, v7, v8, v9, v11, v12) = (
            NodeId(0),
            NodeId(1),
            NodeId(4),
            NodeId(5),
            NodeId(6),
            NodeId(7),
            NodeId(8),
            NodeId(10),
            NodeId(11),
        );
        // L^a_{v5} = {(v1,1),(v2,2)}, d^a_{v5} = 1.
        let ac = tc.pair(a, c).unwrap();
        assert_eq!(ac.incoming(v5), &[(v1, 1), (v2, 2)]);
        assert_eq!(ac.min_incoming_dist(v5), Some(1));
        // L^a_{v6} = {(v1,1),(v2,2)}, d^a_{v6} = 1.
        assert_eq!(ac.incoming(v6), &[(v1, 1), (v2, 2)]);
        assert_eq!(ac.min_incoming_dist(v6), Some(1));
        // E_{v5} = {(v5,v7,1),(v5,v9,1),(v5,v11,1)} split across E^c_d, E^c_e, E^c_s.
        assert_eq!(
            tc.pair(c, d).unwrap().min_out(),
            &[(v5, v7, 1), (v6, v7, 1)]
        );
        assert_eq!(
            tc.pair(c, e).unwrap().min_out(),
            &[(v5, v9, 1), (v6, v9, 2)]
        );
        assert_eq!(
            tc.pair(c, s).unwrap().min_out(),
            &[(v5, v11, 1), (v6, v12, 1)]
        );
        // D^c_d stores only (v8, 2): d^c_{v7} = 1 is implicit.
        let cd = tc.pair(c, d).unwrap();
        assert_eq!(cd.min_incoming_dist(v7), Some(1));
        assert_eq!(cd.min_incoming_dist(v8), Some(2));
    }

    #[test]
    fn theta_and_stats() {
        let g = fig2_graph();
        let tc = ClosureTables::compute(&g);
        let s = tc.stats();
        assert_eq!(s.nodes, 13);
        assert_eq!(s.edges, tc.num_edges());
        assert!(s.theta > 0.0);
        assert_eq!(s.approx_bytes, s.edges as u64 * 12);
    }

    #[test]
    fn pairs_into_label_collects_all_sources() {
        let g = fig2_graph();
        let tc = ClosureTables::compute(&g);
        let d = g.interner().get("d").unwrap();
        let froms: Vec<LabelId> = tc.pairs_into_label(d).map(|(a, _)| a).collect();
        // d-labeled nodes (v7, v8) are reached from a, b, c labels.
        assert!(froms.len() >= 3);
    }

    #[test]
    fn empty_graph_closure() {
        let g = GraphBuilder::new().build().unwrap();
        let tc = ClosureTables::compute(&g);
        assert_eq!(tc.num_edges(), 0);
        assert_eq!(tc.theta(), 0.0);
    }
}
