//! Incremental closure repair under graph deltas.
//!
//! Recomputing the full closure is one SSSP per source — the cold-path
//! cost a live deployment cannot pay per update. This module repairs an
//! existing [`ClosureTables`] in place from the [`DeltaEffects`] of an
//! applied [`ktpm_graph::GraphDelta`], in two phases:
//!
//! 1. **Tightened tails** (weight increases, deletions). Old distances
//!    may overestimate reachability, so every source that could reach a
//!    tightened tail in the *old* closure — plus the tail itself — gets
//!    a targeted re-SSSP over the mutated graph. Sources that never
//!    reached a mutated edge keep their rows untouched.
//! 2. **Eased edges** (weight decreases, insertions). Old distances stay
//!    valid upper bounds, so each eased edge `(u, v, w)` propagates with
//!    the classic one-edge relaxation `d'(x, y) = min(d(x, y),
//!    d(x, u) + w + d(v, y))` over the predecessors of `u` and the
//!    successors of `v`. Eased edges are applied *sequentially*: after
//!    each relaxation the distance map is exact for the graph containing
//!    all edges processed so far, so paths threading several new edges
//!    are still found (standard incremental APSP argument; weights >= 1
//!    keep each new edge on a shortest path at most once).
//!
//! Only the label-pair tables whose triples actually changed are rebuilt
//! and reported in [`RepairOutcome::touched_pairs`] — the signal the
//! serving layer's delta-aware cache invalidation keys on.

use crate::dijkstra::sssp;
use crate::tables::{ClosureTables, PairKey};
use ktpm_graph::{DeltaEffects, Dist, LabeledGraph, NodeId, INF_DIST};
use std::collections::{HashMap, HashSet};

/// Work counters for one repair.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// Sources re-run through SSSP (tightened phase).
    pub resssp_sources: usize,
    /// Eased edges propagated incrementally.
    pub eased_edges: usize,
    /// Closure triples added, removed, or re-weighted.
    pub triples_changed: usize,
    /// Label-pair tables rebuilt.
    pub tables_rebuilt: usize,
}

/// Result of one repair: which label pairs changed, and how much work it
/// took.
#[derive(Debug, Clone, Default)]
pub struct RepairOutcome {
    /// Label pairs whose `Lᵅᵦ` table contents changed, ascending.
    pub touched_pairs: Vec<PairKey>,
    /// Work counters.
    pub stats: RepairStats,
}

impl ClosureTables {
    /// Repairs `self` to be the closure of `new_graph`, given the
    /// [`DeltaEffects`] that produced it. `new_graph` must be the result
    /// of applying that delta to the graph `self` was computed from;
    /// node count and labels must be unchanged.
    pub fn repair(&mut self, new_graph: &LabeledGraph, effects: &DeltaEffects) -> RepairOutcome {
        assert_eq!(
            self.num_nodes(),
            new_graph.num_nodes(),
            "delta repair requires a fixed node set"
        );
        let n = self.num_nodes();
        let mut stats = RepairStats::default();
        if effects.is_noop() {
            return RepairOutcome::default();
        }

        // Mutable adjacency view of the closure: out[x] = {y: d(x,y)},
        // inc[y] = {x: d(x,y)}.
        let mut out: Vec<HashMap<NodeId, Dist>> = vec![HashMap::new(); n];
        let mut inc: Vec<HashMap<NodeId, Dist>> = vec![HashMap::new(); n];
        for (_, table) in self.iter_pairs() {
            for (x, y, d) in table.iter_edges() {
                out[x.index()].insert(y, d);
                inc[y.index()].insert(x, d);
            }
        }
        let mut dirty: HashSet<PairKey> = HashSet::new();

        // Phase 1: targeted re-SSSP for sources that reached a tightened
        // tail (their old rows may be stale in either direction).
        if !effects.tightened_tails.is_empty() {
            let mut sources: HashSet<NodeId> = HashSet::new();
            for &u in &effects.tightened_tails {
                sources.insert(u);
                sources.extend(inc[u.index()].keys().copied());
            }
            let mut sources: Vec<NodeId> = sources.into_iter().collect();
            sources.sort_unstable();
            stats.resssp_sources = sources.len();
            let mut scratch = vec![INF_DIST; n];
            for x in sources {
                let old_row = std::mem::take(&mut out[x.index()]);
                let new_row: HashMap<NodeId, Dist> =
                    sssp(new_graph, x, &mut scratch).into_iter().collect();
                for (&y, &od) in &old_row {
                    if new_row.get(&y) != Some(&od) {
                        dirty.insert((self.label(x), self.label(y)));
                        stats.triples_changed += 1;
                    }
                    inc[y.index()].remove(&x);
                }
                for (&y, &nd) in &new_row {
                    if !old_row.contains_key(&y) {
                        dirty.insert((self.label(x), self.label(y)));
                        stats.triples_changed += 1;
                    }
                    inc[y.index()].insert(x, nd);
                }
                out[x.index()] = new_row;
            }
        }

        // Phase 2: sequential one-edge relaxation per eased edge.
        stats.eased_edges = effects.eased.len();
        for &(u, v, w) in &effects.eased {
            let mut preds: Vec<(NodeId, Dist)> = vec![(u, 0)];
            preds.extend(inc[u.index()].iter().map(|(&x, &d)| (x, d)));
            let mut succs: Vec<(NodeId, Dist)> = vec![(v, 0)];
            succs.extend(out[v.index()].iter().map(|(&y, &d)| (y, d)));
            for &(x, dx) in &preds {
                for &(y, dy) in &succs {
                    let cand = dx.saturating_add(w).saturating_add(dy);
                    let cur = out[x.index()].get(&y).copied();
                    if cur.is_none_or(|c| cand < c) {
                        out[x.index()].insert(y, cand);
                        inc[y.index()].insert(x, cand);
                        dirty.insert((self.label(x), self.label(y)));
                        stats.triples_changed += 1;
                    }
                }
            }
        }

        // Rebuild only the dirty tables from the updated adjacency.
        let mut touched: Vec<PairKey> = dirty.into_iter().collect();
        touched.sort_unstable();
        stats.tables_rebuilt = touched.len();
        for &(la, lb) in &touched {
            let mut triples = Vec::new();
            for x in 0..n {
                let x = NodeId(x as u32);
                if self.label(x) != la {
                    continue;
                }
                for (&y, &d) in &out[x.index()] {
                    if self.label(y) == lb {
                        triples.push((x, y, d));
                    }
                }
            }
            self.set_pair_triples((la, lb), triples);
        }
        RepairOutcome {
            touched_pairs: touched,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ktpm_graph::{GraphBuilder, GraphDelta, LabeledGraph};

    /// Asserts `repaired` and a cold recompute of `g` are identical
    /// table-for-table and triple-for-triple.
    fn assert_matches_cold(repaired: &ClosureTables, g: &LabeledGraph) {
        let cold = ClosureTables::compute_with_threads(g, 2);
        assert_eq!(repaired.num_edges(), cold.num_edges(), "edge totals");
        let mut rk: Vec<PairKey> = repaired.iter_pairs().map(|(k, _)| k).collect();
        let mut ck: Vec<PairKey> = cold.iter_pairs().map(|(k, _)| k).collect();
        rk.sort_unstable();
        ck.sort_unstable();
        assert_eq!(rk, ck, "pair keys");
        for (k, t) in cold.iter_pairs() {
            let r = repaired.pair(k.0, k.1).expect("pair present");
            let mut te: Vec<_> = t.iter_edges().collect();
            let mut re: Vec<_> = r.iter_edges().collect();
            te.sort_unstable();
            re.sort_unstable();
            assert_eq!(te, re, "pair {k:?}");
        }
    }

    fn apply_and_repair(
        g: &LabeledGraph,
        tc: &mut ClosureTables,
        delta: &GraphDelta,
    ) -> (LabeledGraph, RepairOutcome) {
        let (g2, fx) = g.apply_delta(delta).unwrap();
        let outcome = tc.repair(&g2, &fx);
        (g2, outcome)
    }

    #[test]
    fn weight_decrease_repairs_incrementally() {
        let g = ktpm_graph::fixtures::paper_graph();
        // Raise one edge, then lower it back below the original.
        let e = g.edges().next().unwrap();
        let (g2, _) = g
            .apply_delta(&GraphDelta::new().set_weight(e.from, e.to, 4))
            .unwrap();
        let mut tc = ClosureTables::compute(&g2);
        let (g3, outcome) =
            apply_and_repair(&g2, &mut tc, &GraphDelta::new().set_weight(e.from, e.to, 2));
        assert_eq!(outcome.stats.resssp_sources, 0, "pure decrease: no SSSP");
        assert_eq!(outcome.stats.eased_edges, 1);
        assert_matches_cold(&tc, &g3);
    }

    #[test]
    fn weight_increase_repairs_by_targeted_resssp() {
        let g = ktpm_graph::fixtures::paper_graph();
        let e = g.edges().next().unwrap();
        let mut tc = ClosureTables::compute(&g);
        let (g2, outcome) =
            apply_and_repair(&g, &mut tc, &GraphDelta::new().set_weight(e.from, e.to, 9));
        assert!(outcome.stats.resssp_sources >= 1);
        assert!(outcome.stats.resssp_sources < g.num_nodes(), "targeted");
        assert_matches_cold(&tc, &g2);
    }

    #[test]
    fn edge_insert_and_delete_repair() {
        let g = ktpm_graph::fixtures::paper_graph();
        let mut tc = ClosureTables::compute(&g);
        // Insert a shortcut from the last node back to the first.
        let (a, b) = (NodeId(12), NodeId(0));
        let (g2, _) = apply_and_repair(&g, &mut tc, &GraphDelta::new().insert_edge(a, b, 1));
        assert_matches_cold(&tc, &g2);
        // Then delete it again.
        let (g3, _) = apply_and_repair(&g2, &mut tc, &GraphDelta::new().delete_edge(a, b));
        assert_matches_cold(&tc, &g3);
    }

    #[test]
    fn noop_delta_touches_nothing() {
        let g = ktpm_graph::fixtures::paper_graph();
        let e = g.edges().next().unwrap();
        let mut tc = ClosureTables::compute(&g);
        let (_, outcome) = apply_and_repair(
            &g,
            &mut tc,
            &GraphDelta::new().set_weight(e.from, e.to, e.weight),
        );
        assert!(outcome.touched_pairs.is_empty());
        assert_eq!(outcome.stats, RepairStats::default());
    }

    #[test]
    fn touched_pairs_stay_local_to_mutated_labels() {
        // Two disconnected components with disjoint label sets: mutating
        // one must not dirty the other's tables.
        let mut b = GraphBuilder::new();
        let a0 = b.add_node("a");
        let a1 = b.add_node("b");
        let c0 = b.add_node("c");
        let c1 = b.add_node("d");
        b.add_edge(a0, a1, 2);
        b.add_edge(c0, c1, 2);
        let g = b.build().unwrap();
        let mut tc = ClosureTables::compute(&g);
        let (g2, outcome) = apply_and_repair(&g, &mut tc, &GraphDelta::new().set_weight(a0, a1, 1));
        let la = g.interner().get("a").unwrap();
        let lb = g.interner().get("b").unwrap();
        assert_eq!(outcome.touched_pairs, vec![(la, lb)]);
        assert_matches_cold(&tc, &g2);
    }

    #[test]
    fn random_delta_sequences_match_cold_rebuild() {
        // Deterministic xorshift so the test is reproducible offline.
        let mut state: u64 = 0x9e3779b97f4a7c15;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut b = GraphBuilder::new();
        let labels = ["a", "b", "c", "d"];
        let nodes: Vec<NodeId> = (0..12)
            .map(|i| b.add_node(labels[i % labels.len()]))
            .collect();
        for i in 0..nodes.len() {
            for j in 0..nodes.len() {
                if i != j && rng() % 3 == 0 {
                    b.add_edge(nodes[i], nodes[j], (rng() % 5 + 1) as Dist);
                }
            }
        }
        let mut g = b.build().unwrap();
        let mut tc = ClosureTables::compute(&g);
        for _ in 0..30 {
            let u = nodes[(rng() % nodes.len() as u64) as usize];
            let v = nodes[(rng() % nodes.len() as u64) as usize];
            if u == v {
                continue;
            }
            let delta = match g.edge_weight(u, v) {
                Some(_) if rng() % 3 == 0 => GraphDelta::new().delete_edge(u, v),
                Some(_) => GraphDelta::new().set_weight(u, v, (rng() % 6 + 1) as Dist),
                None => GraphDelta::new().insert_edge(u, v, (rng() % 6 + 1) as Dist),
            };
            let (g2, fx) = g.apply_delta(&delta).unwrap();
            tc.repair(&g2, &fx);
            g = g2;
            assert_matches_cold(&tc, &g);
        }
    }

    #[test]
    fn mixed_batch_with_eased_and_tightened_ops() {
        let mut b = GraphBuilder::new();
        let n: Vec<NodeId> = (0..6).map(|i| b.add_node(["x", "y"][i % 2])).collect();
        for w in n.windows(2) {
            b.add_edge(w[0], w[1], 3);
        }
        b.add_edge(n[5], n[0], 3);
        let g = b.build().unwrap();
        let mut tc = ClosureTables::compute(&g);
        let delta = GraphDelta::new()
            .set_weight(n[0], n[1], 1) // eased
            .set_weight(n[2], n[3], 9) // tightened
            .insert_edge(n[0], n[3], 2) // eased
            .delete_edge(n[5], n[0]); // tightened
        let (g2, fx) = g.apply_delta(&delta).unwrap();
        assert!(!fx.eased.is_empty() && !fx.tightened_tails.is_empty());
        tc.repair(&g2, &fx);
        assert_matches_cold(&tc, &g2);
    }
}
