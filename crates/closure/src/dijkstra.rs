//! Single-source shortest non-empty-path distances.
//!
//! The closure semantics of §2 require `δ_min(v, v')` over *paths with at
//! least one edge* — `(v, v)` is reachable only through a cycle. Both the
//! BFS fast path (unit weights) and Dijkstra therefore seed the frontier
//! with the source's out-edges instead of the source at distance 0.

use ktpm_graph::{Dist, LabeledGraph, NodeId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Computes shortest non-empty-path distances from `src` to every node it
/// reaches, returned as `(target, dist)` in ascending node order.
///
/// `scratch` must be a `vec![INF_DIST; g.num_nodes()]`-initialized buffer;
/// it is restored on return, so the same buffer can be reused across calls
/// (the all-pairs loop calls this n times).
pub fn sssp(g: &LabeledGraph, src: NodeId, scratch: &mut [Dist]) -> Vec<(NodeId, Dist)> {
    debug_assert_eq!(scratch.len(), g.num_nodes());
    debug_assert!(scratch.iter().all(|&d| d == ktpm_graph::INF_DIST));
    if g.is_unit_weighted() {
        bfs(g, src, scratch)
    } else {
        dijkstra(g, src, scratch)
    }
}

fn bfs(g: &LabeledGraph, src: NodeId, dist: &mut [Dist]) -> Vec<(NodeId, Dist)> {
    let mut touched: Vec<NodeId> = Vec::new();
    let mut frontier: Vec<NodeId> = Vec::new();
    // Seed: direct out-neighbors at distance 1 (non-empty paths only).
    for e in g.out_edges(src) {
        if dist[e.to.index()] == ktpm_graph::INF_DIST {
            dist[e.to.index()] = 1;
            touched.push(e.to);
            frontier.push(e.to);
        }
    }
    let mut d = 1;
    let mut next = Vec::new();
    while !frontier.is_empty() {
        d += 1;
        for &v in &frontier {
            for e in g.out_edges(v) {
                if dist[e.to.index()] == ktpm_graph::INF_DIST {
                    dist[e.to.index()] = d;
                    touched.push(e.to);
                    next.push(e.to);
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
        next.clear();
    }
    finish(dist, touched)
}

fn dijkstra(g: &LabeledGraph, src: NodeId, dist: &mut [Dist]) -> Vec<(NodeId, Dist)> {
    let mut touched: Vec<NodeId> = Vec::new();
    let mut heap: BinaryHeap<Reverse<(Dist, NodeId)>> = BinaryHeap::new();
    for e in g.out_edges(src) {
        if e.weight < dist[e.to.index()] {
            if dist[e.to.index()] == ktpm_graph::INF_DIST {
                touched.push(e.to);
            }
            dist[e.to.index()] = e.weight;
            heap.push(Reverse((e.weight, e.to)));
        }
    }
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > dist[v.index()] {
            continue; // stale entry
        }
        for e in g.out_edges(v) {
            let nd = d.saturating_add(e.weight);
            if nd < dist[e.to.index()] {
                if dist[e.to.index()] == ktpm_graph::INF_DIST {
                    touched.push(e.to);
                }
                dist[e.to.index()] = nd;
                heap.push(Reverse((nd, e.to)));
            }
        }
    }
    finish(dist, touched)
}

fn finish(dist: &mut [Dist], mut touched: Vec<NodeId>) -> Vec<(NodeId, Dist)> {
    touched.sort_unstable();
    let out: Vec<(NodeId, Dist)> = touched.iter().map(|&v| (v, dist[v.index()])).collect();
    // Restore the scratch buffer for the next call.
    for &v in &touched {
        dist[v.index()] = ktpm_graph::INF_DIST;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ktpm_graph::{GraphBuilder, INF_DIST};

    fn scratch(g: &LabeledGraph) -> Vec<Dist> {
        vec![INF_DIST; g.num_nodes()]
    }

    #[test]
    fn line_graph_unit_weights() {
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..4).map(|i| b.add_node(&format!("l{i}"))).collect();
        for w in n.windows(2) {
            b.add_edge(w[0], w[1], 1);
        }
        let g = b.build().unwrap();
        let mut s = scratch(&g);
        let d = sssp(&g, n[0], &mut s);
        assert_eq!(d, vec![(n[1], 1), (n[2], 2), (n[3], 3)]);
        // Scratch restored.
        assert!(s.iter().all(|&x| x == INF_DIST));
    }

    #[test]
    fn weighted_prefers_cheaper_path() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a");
        let x = b.add_node("x");
        let y = b.add_node("y");
        b.add_edge(a, y, 10);
        b.add_edge(a, x, 1);
        b.add_edge(x, y, 2);
        let g = b.build().unwrap();
        let d = sssp(&g, a, &mut scratch(&g));
        assert_eq!(d, vec![(x, 1), (y, 3)]);
    }

    #[test]
    fn self_distance_via_cycle() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a");
        let x = b.add_node("x");
        b.add_edge(a, x, 1);
        b.add_edge(x, a, 1);
        let g = b.build().unwrap();
        let d = sssp(&g, a, &mut scratch(&g));
        // a reaches x at 1 and itself at 2 through the cycle.
        assert_eq!(d, vec![(a, 2), (x, 1)]);
    }

    #[test]
    fn no_self_distance_without_cycle() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a");
        let x = b.add_node("x");
        b.add_edge(a, x, 1);
        let g = b.build().unwrap();
        let d = sssp(&g, a, &mut scratch(&g));
        assert_eq!(d, vec![(x, 1)]);
    }

    #[test]
    fn unreachable_nodes_absent() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a");
        let _iso = b.add_node("iso");
        let x = b.add_node("x");
        b.add_edge(a, x, 1);
        let g = b.build().unwrap();
        let d = sssp(&g, a, &mut scratch(&g));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn bfs_and_dijkstra_agree_on_unit_weights() {
        // Force the Dijkstra path by adding one weight-2 edge... instead,
        // build the same topology twice: once all-unit (BFS path) and once
        // with every weight doubled (Dijkstra path) and compare halved.
        let edges = [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 0)];
        let mut b1 = GraphBuilder::new();
        let mut b2 = GraphBuilder::new();
        let n1: Vec<_> = (0..5).map(|i| b1.add_node(&format!("l{i}"))).collect();
        let n2: Vec<_> = (0..5).map(|i| b2.add_node(&format!("l{i}"))).collect();
        for &(u, v) in &edges {
            b1.add_edge(n1[u], n1[v], 1);
            b2.add_edge(n2[u], n2[v], 2);
        }
        let g1 = b1.build().unwrap();
        let g2 = b2.build().unwrap();
        for s in 0..5 {
            let d1 = sssp(&g1, NodeId(s), &mut scratch(&g1));
            let d2 = sssp(&g2, NodeId(s), &mut scratch(&g2));
            let halved: Vec<_> = d2.iter().map(|&(v, d)| (v, d / 2)).collect();
            assert_eq!(d1, halved, "source {s}");
        }
    }
}
