//! Floyd–Warshall reference implementation, used as a test oracle.
//!
//! Computes shortest *non-empty-path* distances (diagonal entries are
//! `INF_DIST` unless the node lies on a cycle), matching the closure
//! semantics of [`crate::ClosureTables`]. O(n³) — small graphs only.

use ktpm_graph::{Dist, LabeledGraph, INF_DIST};

/// All-pairs shortest non-empty-path distances as a dense matrix.
pub fn floyd_warshall(g: &LabeledGraph) -> Vec<Vec<Dist>> {
    let n = g.num_nodes();
    let mut d = vec![vec![INF_DIST; n]; n];
    for e in g.edges() {
        let cur = &mut d[e.from.index()][e.to.index()];
        *cur = (*cur).min(e.weight);
    }
    for k in 0..n {
        for i in 0..n {
            if d[i][k] == INF_DIST {
                continue;
            }
            for j in 0..n {
                if d[k][j] == INF_DIST {
                    continue;
                }
                let via = d[i][k].saturating_add(d[k][j]);
                if via < d[i][j] {
                    d[i][j] = via;
                }
            }
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use ktpm_graph::GraphBuilder;

    #[test]
    fn diagonal_infinite_without_cycles() {
        let mut b = GraphBuilder::new();
        let x = b.add_node("x");
        let y = b.add_node("y");
        b.add_edge(x, y, 3);
        let g = b.build().unwrap();
        let d = floyd_warshall(&g);
        assert_eq!(d[0][0], INF_DIST);
        assert_eq!(d[0][1], 3);
        assert_eq!(d[1][0], INF_DIST);
    }

    #[test]
    fn cycle_gives_self_distance() {
        let mut b = GraphBuilder::new();
        let x = b.add_node("x");
        let y = b.add_node("y");
        let z = b.add_node("z");
        b.add_edge(x, y, 1);
        b.add_edge(y, z, 2);
        b.add_edge(z, x, 3);
        let g = b.build().unwrap();
        let d = floyd_warshall(&g);
        assert_eq!(d[0][0], 6);
        assert_eq!(d[1][1], 6);
        assert_eq!(d[0][2], 3);
        assert_eq!(d[2][1], 4);
    }

    #[test]
    fn picks_shorter_of_two_routes() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a");
        let m = b.add_node("m");
        let z = b.add_node("z");
        b.add_edge(a, z, 10);
        b.add_edge(a, m, 2);
        b.add_edge(m, z, 3);
        let g = b.build().unwrap();
        let d = floyd_warshall(&g);
        assert_eq!(d[0][2], 5);
    }
}
