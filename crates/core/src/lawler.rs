//! Algorithm 1 — the optimal Lawler-based enumeration (`Topk`).
//!
//! The shared machinery ([`LawlerCore`]) implements subspace division
//! (Theorems 3.1/3.2), O(1)-sized candidate generation, and O(n_T) match
//! materialization. [`TopkEnumerator`] drives it over a fully-loaded
//! run-time graph with the global queue `Q` plus the per-round side
//! queues `Q_l` of §3.3 ("Computing Top-k Matches from Subspaces").
//! Algorithm 3 (`Topk-EN`, `crate::enhanced`) reuses [`LawlerCore`] and
//! adds lazy loading with delayed insertion.

use crate::bs::BsData;
use crate::lazylist::LazySortedList;
use crate::matches::{CandidateSpec, HeapEntry, MatchArena, ScoredMatch, NO_PARENT};
use crate::plan::QueryPlan;
use ktpm_graph::Score;
use ktpm_query::{QNodeId, TreeQuery};
use ktpm_runtime::{GraphRef, RuntimeGraph};
use ktpm_storage::ShardSpec;
use std::collections::BinaryHeap;
use std::sync::{Arc, OnceLock};

/// Shared, concurrency-safe slot-list templates over one run-time
/// graph.
///
/// Each `(child query node, parent candidate)` list is materialized at
/// most once (`OnceLock`-backed), no matter how many enumerators —
/// shards of one query, or whole sessions racing on a hot
/// [`QueryPlan`] — touch it first; losers of the race block briefly
/// and reuse the winner's list. Enumerators *clone* the built template
/// into their private [`SlotLists`], so per-enumerator rank state
/// (materialized prefixes) stays unshared while the O(group)
/// construction cost is paid once per plan.
#[derive(Debug)]
pub struct SlotTemplates {
    rg: Arc<RuntimeGraph>,
    bs: Arc<BsData>,
    /// `cells[u][parent_idx]` for `u >= 1`; `cells[0]` empty.
    cells: Vec<Vec<OnceLock<LazySortedList>>>,
    /// The unsharded root list (sharded roots are cheap filters and
    /// are built per enumerator).
    root: OnceLock<LazySortedList>,
}

impl SlotTemplates {
    /// Empty templates shaped for `rg`; lists fill on first touch.
    pub fn new(rg: Arc<RuntimeGraph>, bs: Arc<BsData>) -> Self {
        let tree = rg.query().tree();
        let mut cells: Vec<Vec<OnceLock<LazySortedList>>> = Vec::with_capacity(tree.len());
        cells.push(Vec::new());
        for ui in 1..tree.len() {
            let p = tree.parent(QNodeId(ui as u32)).expect("non-root");
            cells.push(
                (0..rg.candidates().len(p))
                    .map(|_| OnceLock::new())
                    .collect(),
            );
        }
        SlotTemplates {
            rg,
            bs,
            cells,
            root: OnceLock::new(),
        }
    }

    /// The underlying shared run-time graph.
    pub fn runtime_graph(&self) -> &Arc<RuntimeGraph> {
        &self.rg
    }

    /// Approximate heap bytes of the materialized slot lists (cells
    /// that were never touched count nothing). Feeds the per-plan
    /// memory estimate surfaced in service `STATS`.
    pub fn approx_bytes(&self) -> usize {
        // One list entry is `(Score, u32, u32)` = 16 bytes.
        let list_bytes = |l: &LazySortedList| l.len() * 16;
        let mut total = self.root.get().map_or(0, list_bytes);
        for per_parent in &self.cells {
            for cell in per_parent {
                if let Some(l) = cell.get() {
                    total += list_bytes(l);
                }
            }
        }
        total
    }

    /// The template of child slot `u` under parent candidate `pi`,
    /// materializing it exactly once across all sharers.
    fn slot(&self, u: u32, pi: u32) -> &LazySortedList {
        self.cells[u as usize][pi as usize]
            .get_or_init(|| SlotLists::fill_slot(&self.rg, &self.bs, u, pi))
    }

    /// A fresh root list restricted to `shard` (the full-shard list is
    /// built once and cloned).
    fn root_list(&self, shard: ShardSpec) -> LazySortedList {
        if shard.is_full() {
            return self
                .root
                .get_or_init(|| Self::build_root(&self.rg, &self.bs, shard))
                .clone();
        }
        Self::build_root(&self.rg, &self.bs, shard)
    }

    fn build_root(rg: &RuntimeGraph, bs: &BsData, shard: ShardSpec) -> LazySortedList {
        let root = rg.query().tree().root();
        let items: Vec<(Score, u32)> = (0..rg.candidates().len(root) as u32)
            .filter(|&i| bs.is_valid(root, i) && shard.contains(rg.node(root, i)))
            .map(|i| (bs.bs(root, i), i))
            .collect();
        LazySortedList::new(items)
    }
}

/// Deferred list construction state for [`SlotLists::from_templates`]:
/// slot lists are copied out of the shared templates the first time
/// they are touched, so an enumerator restricted to a few roots only
/// pays for the lists its matches actually reach (and the template
/// itself is only *built* by the first toucher across all sharers).
#[derive(Debug, Clone)]
struct SlotFill {
    templates: Arc<SlotTemplates>,
    /// Per `(u, parent_idx)`: whether the local copy has been made.
    built: Vec<Vec<bool>>,
}

/// The `L`/`H` lists of every `(parent candidate, child slot)` pair plus
/// the root list (root candidates keyed by `bs`).
#[derive(Debug, Clone, Default)]
pub struct SlotLists {
    /// `lists[u][parent_idx]` for query nodes `u >= 1`; `lists[0]` empty.
    pub(crate) lists: Vec<Vec<LazySortedList>>,
    /// Root candidates keyed by `bs` (§3.3 "organized in a similar way").
    pub(crate) root: LazySortedList,
    /// When set, non-root lists fill lazily on first access.
    fill: Option<SlotFill>,
}

impl SlotLists {
    /// Builds all lists eagerly from a run-time graph and its `bs` data —
    /// the O(m_R) initialization of §3.3.
    pub fn build_full(rg: &RuntimeGraph, bs: &BsData) -> Self {
        let tree = rg.query().tree();
        let n_t = tree.len();
        let mut lists: Vec<Vec<LazySortedList>> = Vec::with_capacity(n_t);
        lists.push(Vec::new());
        for ui in 1..n_t {
            let u = QNodeId(ui as u32);
            let p = tree.parent(u).expect("non-root");
            let mut per_parent = Vec::with_capacity(rg.candidates().len(p));
            for pi in 0..rg.candidates().len(p) as u32 {
                if !bs.is_valid(p, pi) {
                    per_parent.push(LazySortedList::default());
                    continue;
                }
                let items: Vec<(Score, u32)> = rg
                    .edges(u, pi)
                    .iter()
                    .filter(|&&(j, _)| bs.is_valid(u, j))
                    .map(|&(j, d)| (bs.bs(u, j) + d as Score, j))
                    .collect();
                per_parent.push(LazySortedList::new(items));
            }
            lists.push(per_parent);
        }
        let root_items: Vec<(Score, u32)> = (0..rg.candidates().len(tree.root()) as u32)
            .filter(|&i| bs.is_valid(tree.root(), i))
            .map(|i| (bs.bs(tree.root(), i), i))
            .collect();
        SlotLists {
            lists,
            root: LazySortedList::new(root_items),
            fill: None,
        }
    }

    /// Builds the root list eagerly — restricted to root candidates whose
    /// data node lies in `shard` — and defers every non-root list to first
    /// access. Produces exactly the lists [`Self::build_full`] would for
    /// the slots it materializes, but an enumerator that only explores a
    /// fraction of the run-time graph (a root shard, or a small `k`) pays
    /// O(touched lists) instead of O(m_R) up front. The graph and `bs`
    /// data are shared (`Arc`), so `P` shard enumerators over one query
    /// add only their root slices and touched lists.
    pub fn build_on_demand(rg: Arc<RuntimeGraph>, bs: Arc<BsData>, shard: ShardSpec) -> Self {
        Self::from_templates(Arc::new(SlotTemplates::new(rg, bs)), shard)
    }

    /// As [`Self::build_on_demand`] over *shared* templates: every list
    /// a previous sharer already touched is a clone, not a rebuild, and
    /// first touches race safely on the templates' `OnceLock`s.
    pub fn from_templates(templates: Arc<SlotTemplates>, shard: ShardSpec) -> Self {
        let tree = templates.rg.query().tree();
        let n_t = tree.len();
        let mut lists: Vec<Vec<LazySortedList>> = Vec::with_capacity(n_t);
        lists.push(Vec::new());
        for ui in 1..n_t {
            let p = tree.parent(QNodeId(ui as u32)).expect("non-root");
            lists.push(vec![
                LazySortedList::default();
                templates.rg.candidates().len(p)
            ]);
        }
        let root = templates.root_list(shard);
        let built = lists.iter().map(|per| vec![false; per.len()]).collect();
        SlotLists {
            lists,
            root,
            fill: Some(SlotFill { templates, built }),
        }
    }

    /// Materializes the deferred list of child slot `u` under parent
    /// candidate `pi` — the same per-slot construction as
    /// [`Self::build_full`].
    fn fill_slot(rg: &RuntimeGraph, bs: &BsData, u: u32, pi: u32) -> LazySortedList {
        let un = QNodeId(u);
        let p = rg.query().tree().parent(un).expect("non-root");
        if !bs.is_valid(p, pi) {
            return LazySortedList::default();
        }
        let items: Vec<(Score, u32)> = rg
            .edges(un, pi)
            .iter()
            .filter(|&&(j, _)| bs.is_valid(un, j))
            .map(|&(j, d)| (bs.bs(un, j) + d as Score, j))
            .collect();
        LazySortedList::new(items)
    }

    /// Allocates empty lists shaped for a lazily-loaded run (Algorithm 3).
    pub fn empty_shaped(tree: &TreeQuery, parent_cand_counts: &[usize]) -> Self {
        let mut lists: Vec<Vec<LazySortedList>> = Vec::with_capacity(tree.len());
        lists.push(Vec::new());
        for ui in 1..tree.len() {
            let u = QNodeId(ui as u32);
            let p = tree.parent(u).expect("non-root");
            lists.push(vec![
                LazySortedList::default();
                parent_cand_counts[p.index()]
            ]);
        }
        SlotLists {
            lists,
            root: LazySortedList::default(),
            fill: None,
        }
    }

    /// The list of child slot `u` under parent candidate `pi`,
    /// materializing it first in deferred mode.
    #[inline]
    pub(crate) fn slot(&mut self, u: u32, pi: u32) -> &mut LazySortedList {
        if let Some(f) = &mut self.fill {
            if !f.built[u as usize][pi as usize] {
                f.built[u as usize][pi as usize] = true;
                self.lists[u as usize][pi as usize] = if Arc::strong_count(&f.templates) == 1 {
                    // Sole holder of the templates (a transient one-run
                    // plan): nobody can ever share the template cell,
                    // so build the list straight into this enumerator
                    // and skip the fill-then-clone round-trip.
                    Self::fill_slot(&f.templates.rg, &f.templates.bs, u, pi)
                } else {
                    f.templates.slot(u, pi).clone()
                };
            }
        }
        &mut self.lists[u as usize][pi as usize]
    }

    /// Mutable access to the slot list of child query node `u` under
    /// parent candidate `pi` (used by the DP baselines, which share the
    /// same `L`/`H` structures).
    #[inline]
    pub fn slot_mut(&mut self, u: u32, pi: u32) -> &mut LazySortedList {
        self.slot(u, pi)
    }

    /// Mutable access to the root list.
    #[inline]
    pub fn root_mut(&mut self) -> &mut LazySortedList {
        &mut self.root
    }
}

/// The shared Lawler machinery. Slot lists are passed in by the driver
/// (Algorithm 1 owns static lists; Algorithm 3's grow during loading).
/// Popped matches live in the arena-backed deviation encoding
/// ([`MatchArena`]): the pop → divide → emit cycle allocates nothing
/// per match, and full assignments materialize only at emission.
pub(crate) struct LawlerCore {
    /// Parent BFS index per query node (`u32::MAX` for the root).
    parents: Vec<u32>,
    n_t: usize,
    arena: MatchArena,
    /// Scratch for subtree membership during materialization.
    in_subtree: Vec<bool>,
}

/// The list a replacement at `pos` draws from: the root list for
/// `pos == 0`, otherwise the slot list under the parent candidate the
/// arena's current (scratch) row assigns.
fn list_at<'l>(
    lists: &'l mut SlotLists,
    parents: &[u32],
    arena: &MatchArena,
    pos: u32,
) -> &'l mut LazySortedList {
    if pos == 0 {
        &mut lists.root
    } else {
        let p = parents[pos as usize];
        lists.slot(pos, arena.scratch_at(p))
    }
}

impl LawlerCore {
    /// A core for `tree` whose arena reserves room for about `hint`
    /// popped matches (a capacity hint only — the arena grows freely).
    pub fn new(tree: &TreeQuery, hint: usize) -> Self {
        let parents: Vec<u32> = tree
            .node_ids()
            .map(|u| tree.parent(u).map_or(u32::MAX, |p| p.0))
            .collect();
        let n_t = tree.len();
        LawlerCore {
            parents,
            n_t,
            arena: MatchArena::new(n_t, hint),
            in_subtree: vec![false; n_t],
        }
    }

    /// The initial candidate: the best root (= top-1 match, Line 3 of
    /// Algorithm 1). `None` when the query has no match at all.
    pub fn initial_candidate(&mut self, lists: &mut SlotLists) -> Option<CandidateSpec> {
        let (score, _) = lists.root.rank(1)?;
        Some(CandidateSpec {
            score,
            parent: NO_PARENT,
            pos: 0,
            rank: 1,
        })
    }

    /// Materializes a candidate into a popped-match record (O(n_T), no
    /// allocation): the arena scratch row is loaded with the parent's
    /// assignment, the replaced position swapped, and only the replaced
    /// node's subtree re-derived via best-descendant links (list
    /// minima) — the changed positions become the record's patch.
    pub fn materialize(&mut self, lists: &mut SlotLists, spec: CandidateSpec) -> u32 {
        self.arena.begin(spec.parent);
        let (_, replacement) = list_at(lists, &self.parents, &self.arena, spec.pos)
            .rank(spec.rank as usize)
            .expect("candidate rank was verified at divide time");
        self.arena.set(spec.pos, replacement);
        // Re-derive the subtree strictly below `pos`.
        let pos = spec.pos as usize;
        self.in_subtree.fill(false);
        self.in_subtree[pos] = true;
        for w in (pos + 1)..self.n_t {
            let p = self.parents[w] as usize;
            if !self.in_subtree[p] {
                continue;
            }
            self.in_subtree[w] = true;
            let (_, best) = lists
                .slot(w as u32, self.arena.scratch_at(p as u32))
                .first()
                .expect("valid parents always have a non-empty slot list");
            self.arena.set(w as u32, best);
        }
        let div_pos = if spec.parent == NO_PARENT {
            NO_PARENT
        } else {
            spec.pos
        };
        self.arena
            .commit(spec.parent, spec.score, div_pos, spec.rank)
    }

    /// Divides the subspace of popped match `m_id` (procedure `Divide`)
    /// into `out` (cleared first; reused across pops so division
    /// allocates nothing): at most `n_T` O(1)-sized candidates, each
    /// flagged with whether its replacement rank exists yet. Candidates
    /// flagged `false` carry score `Score::MAX`; Algorithm 1 drops
    /// them (empty subspaces, Lemma 3.2), Algorithm 3 parks them until
    /// more edges load.
    pub fn divide_into(
        &mut self,
        lists: &mut SlotLists,
        m_id: u32,
        out: &mut Vec<(CandidateSpec, bool)>,
    ) {
        out.clear();
        // Dividing happens right after materializing `m_id`, so this is
        // memoized; the explicit load keeps the call order-independent.
        self.arena.load(m_id);
        let score = self.arena.score(m_id);
        let div_pos = self.arena.div_pos(m_id);
        let rank_at_div = self.arena.rank_at_div(m_id);
        // Case 1 (Theorem 3.1): continue the exclusion chain at div_pos.
        if div_pos != NO_PARENT {
            let list = list_at(lists, &self.parents, &self.arena, div_pos);
            let old_key = list
                .rank(rank_at_div as usize)
                .expect("the popped match's own element exists")
                .0;
            let spec_rank = rank_at_div + 1;
            let (found, new_score) = match list.rank(spec_rank as usize) {
                Some((new_key, _)) => (true, score - old_key + new_key),
                None => (false, Score::MAX),
            };
            out.push((
                CandidateSpec {
                    score: new_score,
                    parent: m_id,
                    pos: div_pos,
                    rank: spec_rank,
                },
                found,
            ));
        }
        // Case 2 (Theorem 3.2): one new subspace per later position.
        let start = if div_pos == NO_PARENT {
            0
        } else {
            div_pos as usize + 1
        };
        for x in start..self.n_t {
            let list = list_at(lists, &self.parents, &self.arena, x as u32);
            let Some((k1, _)) = list.rank(1) else {
                // The match's own element must exist; in lazy mode a just-
                // divided position always holds a loaded element, so an
                // empty list can only mean "no match at all" (skip).
                continue;
            };
            let (found, new_score) = match list.rank(2) {
                Some((k2, _)) => (true, score - k1 + k2),
                None => (false, Score::MAX),
            };
            out.push((
                CandidateSpec {
                    score: new_score,
                    parent: m_id,
                    pos: x as u32,
                    rank: 2,
                },
                found,
            ));
        }
    }

    /// Re-evaluates a previously unknown or parked candidate against the
    /// current lists (they may have grown since). Returns the updated
    /// score if the rank now exists. Needs only one position of the
    /// parent's assignment — a point lookup in the arena, no
    /// materialization.
    pub fn reevaluate(&mut self, lists: &mut SlotLists, spec: &CandidateSpec) -> Option<Score> {
        let m = spec.parent;
        let base_rank = if spec.pos == self.arena.div_pos(m) {
            self.arena.rank_at_div(m)
        } else {
            1
        };
        let score = self.arena.score(m);
        let list = if spec.pos == 0 {
            &mut lists.root
        } else {
            let p = self.parents[spec.pos as usize];
            lists.slot(spec.pos, self.arena.node_at(m, p))
        };
        let base_key = list.rank(base_rank as usize)?.0;
        let (new_key, _) = list.rank(spec.rank as usize)?;
        Some(score - base_key + new_key)
    }

    /// Total score of popped match `m_id`.
    pub fn score(&self, m_id: u32) -> Score {
        self.arena.score(m_id)
    }

    /// The candidate index one position of popped match `m_id` assigns
    /// (an arena point lookup; the row is not materialized).
    pub fn node_at(&self, m_id: u32, pos: u32) -> u32 {
        self.arena.node_at(m_id, pos)
    }

    /// Emission-time materialization: popped match `m_id`'s full
    /// assignment row (candidate indices, query-BFS order), rebuilt by
    /// the arena's parent-pointer walk into its reusable scratch row.
    pub fn load_assignment(&mut self, m_id: u32) -> &[u32] {
        self.arena.load(m_id)
    }
}

/// Algorithm 1: the `Topk` enumerator over a fully-loaded run-time graph.
///
/// Implements `Iterator`, yielding matches in non-decreasing score order;
/// `take(k)` gives the top-k. Enumeration is unbounded (the kGPM layer
/// streams past `k`).
pub struct TopkEnumerator<'g> {
    rg: GraphRef<'g>,
    core: LawlerCore,
    lists: SlotLists,
    /// Global queue `Q`: compact entries keyed `(score, seq, spec id)`.
    q: BinaryHeap<HeapEntry>,
    /// All candidate specs ever created, with their creation round.
    specs: Vec<(CandidateSpec, u32)>,
    /// The side queues `Q_l`, compacted into one flat pool: a round's
    /// non-best children are all known at divide time, so each round is
    /// a pre-sorted run in `side_pool` and "promote the next best of
    /// round `l`" is a cursor bump — no per-round heap, no per-round
    /// allocation.
    side_pool: Vec<HeapEntry>,
    /// Per round: `(cursor, end)` into `side_pool`.
    side_runs: Vec<(u32, u32)>,
    /// Reused divide output buffer (cleared each pop).
    div_buf: Vec<(CandidateSpec, bool)>,
    round: u32,
    use_side_queues: bool,
    seq: u32,
}

impl<'g> TopkEnumerator<'g> {
    /// Builds the enumerator: O(m_R) list construction + top-1.
    pub fn new(rg: &'g RuntimeGraph) -> Self {
        Self::with_side_queues(rg, true)
    }

    /// As [`Self::new`], with the `Q_l` optimization toggleable (for the
    /// ablation benchmark).
    pub fn with_side_queues(rg: &'g RuntimeGraph, use_side_queues: bool) -> Self {
        Self::with_graph(GraphRef::Borrowed(rg), use_side_queues)
    }

    /// As [`Self::new`] over a shared (`Arc`) run-time graph. The
    /// returned `TopkEnumerator<'static>` owns its graph handle, so it
    /// can be parked in a session table and moved across threads; the
    /// graph itself is shared, not copied.
    pub fn new_shared(rg: Arc<RuntimeGraph>) -> TopkEnumerator<'static> {
        TopkEnumerator::with_graph(GraphRef::Shared(rg), true)
    }

    /// The partitioned form: enumerates only matches whose *root* data
    /// node lies in `shard`, over a run-time graph and `bs` data shared
    /// with the other shards of the same query. Lists build on demand
    /// ([`SlotLists::build_on_demand`]), so `P` shard enumerators don't
    /// each repeat the O(m_R) list construction. Within its shard the
    /// emitted order (and every score/witness) is identical to what
    /// [`Self::new`] produces for those matches.
    pub fn new_sharded(
        rg: Arc<RuntimeGraph>,
        bs: Arc<BsData>,
        shard: ShardSpec,
    ) -> TopkEnumerator<'static> {
        Self::from_templates(Arc::new(SlotTemplates::new(rg, bs)), shard)
    }

    /// As [`Self::new_sharded`] over *shared* [`SlotTemplates`]:
    /// several enumerators — the shards of one `ParTopk` run, or any
    /// number of sessions of one cached [`QueryPlan`] — fill each slot
    /// list once between them instead of once each.
    pub fn from_templates(
        templates: Arc<SlotTemplates>,
        shard: ShardSpec,
    ) -> TopkEnumerator<'static> {
        let rg = Arc::clone(templates.runtime_graph());
        let lists = SlotLists::from_templates(templates, shard);
        TopkEnumerator::from_lists(GraphRef::Shared(rg), lists, true)
    }

    /// Algorithm 1 over a shared [`QueryPlan`]: the run-time graph,
    /// `bs` pass and slot templates come from the plan (built on its
    /// first use, shared ever after), so constructing this enumerator
    /// on a warm plan performs **zero** candidate discovery or storage
    /// I/O.
    pub fn from_plan(plan: &QueryPlan) -> TopkEnumerator<'static> {
        Self::from_templates(Arc::clone(plan.slot_templates()), ShardSpec::full())
    }

    fn with_graph(rg: GraphRef<'g>, use_side_queues: bool) -> Self {
        let g = rg.get();
        let bs = BsData::compute(g);
        let lists = SlotLists::build_full(g, &bs);
        Self::from_lists(rg, lists, use_side_queues)
    }

    fn from_lists(rg: GraphRef<'g>, mut lists: SlotLists, use_side_queues: bool) -> Self {
        // Arena hint: every root candidate pops at least once before
        // the stream ends, so the (shard-restricted) root list length
        // is a cheap lower-bound-flavored estimate.
        let mut core = LawlerCore::new(rg.get().query().tree(), lists.root.len().max(16));
        let mut q = BinaryHeap::new();
        let mut specs = Vec::new();
        if let Some(init) = core.initial_candidate(&mut lists) {
            specs.push((init, 0));
            q.push(HeapEntry {
                key: init.score,
                a: 0,
                b: 0,
            });
        }
        TopkEnumerator {
            rg,
            core,
            lists,
            q,
            specs,
            side_pool: Vec::new(),
            side_runs: vec![(0, 0)],
            div_buf: Vec::new(),
            round: 0,
            use_side_queues,
            seq: 1,
        }
    }

    fn push_spec_q(&mut self, spec: CandidateSpec, round: u32) {
        let id = self.specs.len() as u32;
        self.specs.push((spec, round));
        self.q.push(HeapEntry {
            key: spec.score,
            a: self.seq,
            b: id,
        });
        self.seq += 1;
    }
}

impl Iterator for TopkEnumerator<'_> {
    type Item = ScoredMatch;

    fn next(&mut self) -> Option<ScoredMatch> {
        let HeapEntry { b: cid, .. } = self.q.pop()?;
        let (spec, spec_round) = self.specs[cid as usize];
        // Promote the next best of the round this candidate came from:
        // runs are pre-sorted, so this is the next pool entry.
        if self.use_side_queues {
            let (cur, end) = &mut self.side_runs[spec_round as usize];
            if cur < end {
                let e = self.side_pool[*cur as usize];
                *cur += 1;
                self.q.push(e);
            }
        }
        let m_id = self.core.materialize(&mut self.lists, spec);
        self.round += 1;
        let round = self.round;
        let mut children = std::mem::take(&mut self.div_buf);
        self.core.divide_into(&mut self.lists, m_id, &mut children);
        // Algorithm 1 over static lists: unknown ranks are empty
        // subspaces (Lemma 3.2), dropped here.
        children.retain(|&(_, known)| known);
        let start = self.side_pool.len() as u32;
        if self.use_side_queues && !children.is_empty() {
            // Best child goes to Q, the rest become this round's run.
            let best = children
                .iter()
                .enumerate()
                .min_by_key(|(_, (s, _))| s.score)
                .map(|(i, _)| i)
                .expect("non-empty");
            let (best_spec, _) = children.swap_remove(best);
            self.push_spec_q(best_spec, round);
            for &(c, _) in &children {
                let id = self.specs.len() as u32;
                self.specs.push((c, round));
                self.side_pool.push(HeapEntry {
                    key: c.score,
                    a: self.seq,
                    b: id,
                });
                self.seq += 1;
            }
            // Same delivery order as the former per-round min-heap.
            self.side_pool[start as usize..].sort_unstable_by_key(|e| (e.key, e.a, e.b));
            self.side_runs.push((start, self.side_pool.len() as u32));
        } else {
            for &(c, _) in &children {
                self.push_spec_q(c, round);
            }
            self.side_runs.push((start, start));
        }
        children.clear();
        self.div_buf = children;
        // Emission-time materialization: the only per-match row built.
        let score = self.core.score(m_id);
        let rg = self.rg.get();
        let tree = rg.query().tree();
        let asn = self.core.load_assignment(m_id);
        let assignment = tree
            .node_ids()
            .map(|u| rg.node(u, asn[u.index()]))
            .collect();
        Some(ScoredMatch { score, assignment })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ktpm_closure::ClosureTables;
    use ktpm_graph::fixtures::{citation_graph, paper_graph};
    use ktpm_graph::{LabeledGraph, NodeId};
    use ktpm_query::TreeQuery;
    use ktpm_storage::MemStore;

    fn run(g: &LabeledGraph, query: &str, k: usize, side: bool) -> Vec<ScoredMatch> {
        let q = TreeQuery::parse(query).unwrap().resolve(g.interner());
        let store = MemStore::new(ClosureTables::compute(g));
        let rg = RuntimeGraph::load(&q, &store);
        TopkEnumerator::with_side_queues(&rg, side)
            .take(k)
            .collect()
    }

    #[test]
    fn figure1_example_top_matches() {
        // Figure 1: query C -> E, C -> S; top-1 and top-2 both score 2,
        // 5 matches in total, worst score 3.
        let g = citation_graph();
        let all = run(&g, "C -> E\nC -> S", 100, true);
        assert_eq!(all.len(), 5);
        assert_eq!(all[0].score, 2);
        assert_eq!(all[1].score, 2);
        assert_eq!(all.last().unwrap().score, 3);
        // Top-1 maps C to v1 with direct citations (v1, v5, v4).
        assert_eq!(all[0].assignment[0], NodeId(0));
    }

    #[test]
    fn scores_are_non_decreasing() {
        let g = paper_graph();
        let all = run(&g, "a -> b\na -> c\nc -> d\nc -> e", 100, true);
        assert!(!all.is_empty());
        assert!(all.windows(2).all(|w| w[0].score <= w[1].score));
    }

    #[test]
    fn top1_matches_bs() {
        let g = paper_graph();
        let all = run(&g, "a -> b\na -> c\nc -> d\nc -> e", 1, true);
        assert_eq!(all[0].score, 4);
        // v1, v3, v5, v7, v9 (BFS order: a, b, c, d, e).
        assert_eq!(
            all[0].assignment,
            vec![NodeId(0), NodeId(2), NodeId(4), NodeId(6), NodeId(8)]
        );
    }

    #[test]
    fn side_queues_do_not_change_results() {
        let g = paper_graph();
        let with = run(&g, "a -> b\na -> c\nc -> d\nc -> e", 50, true);
        let without = run(&g, "a -> b\na -> c\nc -> d\nc -> e", 50, false);
        let ws: Vec<_> = with.iter().map(|m| m.score).collect();
        let wos: Vec<_> = without.iter().map(|m| m.score).collect();
        assert_eq!(ws, wos);
    }

    #[test]
    fn matches_are_distinct_assignments() {
        let g = paper_graph();
        let all = run(&g, "a -> b\na -> c\nc -> d\nc -> e", 200, true);
        let mut seen = std::collections::HashSet::new();
        for m in &all {
            assert!(seen.insert(m.assignment.clone()), "duplicate {m:?}");
        }
    }

    #[test]
    fn all_matches_enumerated_exactly_once() {
        // Count matches by brute force over the tiny citation graph:
        // C x E x S combinations where paths exist.
        let g = citation_graph();
        let all = run(&g, "C -> E\nC -> S", 1000, true);
        assert_eq!(all.len(), 5);
    }

    #[test]
    fn shared_enumerator_is_send_and_agrees_with_borrowed() {
        fn assert_send<T: Send>(_: &T) {}
        let g = paper_graph();
        let q = TreeQuery::parse("a -> b\na -> c\nc -> d\nc -> e")
            .unwrap()
            .resolve(g.interner());
        let store = MemStore::new(ClosureTables::compute(&g));
        let rg = Arc::new(RuntimeGraph::load(&q, &store));
        let borrowed: Vec<Score> = TopkEnumerator::new(&rg).take(50).map(|m| m.score).collect();
        let mut shared = TopkEnumerator::new_shared(rg);
        assert_send(&shared);
        let scores: Vec<Score> =
            std::thread::spawn(move || shared.by_ref().take(50).map(|m| m.score).collect())
                .join()
                .unwrap();
        assert_eq!(borrowed, scores);
    }

    #[test]
    fn sharded_enumerators_partition_the_full_stream() {
        // A 1-way "shard" reproduces the full stream byte for byte
        // (on-demand lists must not change anything), and an n-way split
        // partitions the match set: every match appears in exactly the
        // shard owning its root, scores non-decreasing per shard. Ties
        // within one shard may legally order differently from the full
        // run (different side-queue rounds), so cross-shard assertions
        // compare canonically sorted streams.
        let g = paper_graph();
        let q = TreeQuery::parse("a -> b\na -> c\nc -> d\nc -> e")
            .unwrap()
            .resolve(g.interner());
        let store = MemStore::new(ClosureTables::compute(&g));
        let rg = Arc::new(RuntimeGraph::load(&q, &store));
        let bs = Arc::new(BsData::compute(&rg));
        let full: Vec<ScoredMatch> = TopkEnumerator::new(&rg).collect();
        assert!(!full.is_empty());

        let one: Vec<ScoredMatch> =
            TopkEnumerator::new_sharded(Arc::clone(&rg), Arc::clone(&bs), ShardSpec::full())
                .collect();
        assert_eq!(one, full);

        let canon = |mut ms: Vec<ScoredMatch>| {
            ms.sort_by(|a, b| (a.score, &a.assignment).cmp(&(b.score, &b.assignment)));
            ms
        };
        for n in [2usize, 3, 5] {
            let mut union = Vec::new();
            for spec in ShardSpec::split(n) {
                let part: Vec<ScoredMatch> =
                    TopkEnumerator::new_sharded(Arc::clone(&rg), Arc::clone(&bs), spec).collect();
                assert!(
                    part.windows(2).all(|w| w[0].score <= w[1].score),
                    "shard {spec} must stream in score order"
                );
                let want: Vec<ScoredMatch> = full
                    .iter()
                    .filter(|m| spec.contains(m.assignment[0]))
                    .cloned()
                    .collect();
                assert_eq!(canon(part.clone()), canon(want), "shard {spec} of {n}");
                union.extend(part);
            }
            assert_eq!(canon(union), canon(full.clone()), "{n}-way partition");
        }
    }

    /// The pre-arena, clone-based Lawler driver, retained verbatim as a
    /// test referee: every popped match stores its full `Vec<u32>`
    /// assignment, and `materialize`/`divide` clone it per call; side
    /// queues are per-round binary heaps. The arena-backed encoding
    /// must reproduce this stream **element for element** — score,
    /// assignment and raw (pre-canonical) tie order.
    mod clone_reference {
        use super::super::*;
        use std::cmp::Reverse;

        struct CloneMatch {
            assignment: Vec<u32>,
            score: Score,
            div_pos: u32,
            rank_at_div: u32,
        }

        pub(super) struct CloneEnumerator<'g> {
            rg: &'g RuntimeGraph,
            parents: Vec<u32>,
            n_t: usize,
            in_subtree: Vec<bool>,
            popped: Vec<CloneMatch>,
            lists: SlotLists,
            q: BinaryHeap<Reverse<(Score, u32, u32)>>,
            specs: Vec<(CandidateSpec, u32)>,
            side: Vec<BinaryHeap<Reverse<(Score, u32, u32)>>>,
            round: u32,
            seq: u32,
        }

        fn list_at<'l>(
            lists: &'l mut SlotLists,
            parents: &[u32],
            assignment: &[u32],
            pos: u32,
        ) -> &'l mut LazySortedList {
            if pos == 0 {
                &mut lists.root
            } else {
                let p = parents[pos as usize];
                lists.slot(pos, assignment[p as usize])
            }
        }

        impl<'g> CloneEnumerator<'g> {
            pub fn new(rg: &'g RuntimeGraph) -> Self {
                let bs = BsData::compute(rg);
                let mut lists = SlotLists::build_full(rg, &bs);
                let tree = rg.query().tree();
                let parents: Vec<u32> = tree
                    .node_ids()
                    .map(|u| tree.parent(u).map_or(u32::MAX, |p| p.0))
                    .collect();
                let n_t = tree.len();
                let mut q = BinaryHeap::new();
                let mut specs = Vec::new();
                if let Some((score, _)) = lists.root.rank(1) {
                    let init = CandidateSpec {
                        score,
                        parent: NO_PARENT,
                        pos: 0,
                        rank: 1,
                    };
                    specs.push((init, 0));
                    q.push(Reverse((score, 0, 0)));
                }
                CloneEnumerator {
                    rg,
                    parents,
                    n_t,
                    in_subtree: vec![false; n_t],
                    popped: Vec::new(),
                    lists,
                    q,
                    specs,
                    side: vec![BinaryHeap::new()],
                    round: 0,
                    seq: 1,
                }
            }

            fn materialize(&mut self, spec: CandidateSpec) -> u32 {
                let mut assignment = if spec.parent == NO_PARENT {
                    vec![u32::MAX; self.n_t]
                } else {
                    self.popped[spec.parent as usize].assignment.clone()
                };
                let (_, replacement) =
                    list_at(&mut self.lists, &self.parents, &assignment, spec.pos)
                        .rank(spec.rank as usize)
                        .expect("candidate rank was verified at divide time");
                assignment[spec.pos as usize] = replacement;
                let pos = spec.pos as usize;
                self.in_subtree.fill(false);
                self.in_subtree[pos] = true;
                for w in (pos + 1)..self.n_t {
                    let p = self.parents[w] as usize;
                    if !self.in_subtree[p] {
                        continue;
                    }
                    self.in_subtree[w] = true;
                    let (_, best) = self
                        .lists
                        .slot(w as u32, assignment[p])
                        .first()
                        .expect("valid parents have non-empty slot lists");
                    assignment[w] = best;
                }
                self.popped.push(CloneMatch {
                    assignment,
                    score: spec.score,
                    div_pos: if spec.parent == NO_PARENT {
                        NO_PARENT
                    } else {
                        spec.pos
                    },
                    rank_at_div: spec.rank,
                });
                (self.popped.len() - 1) as u32
            }

            fn divide(&mut self, m_id: u32) -> Vec<CandidateSpec> {
                let m = &self.popped[m_id as usize];
                let (assignment, score, div_pos, rank_at_div) =
                    (m.assignment.clone(), m.score, m.div_pos, m.rank_at_div);
                let mut out = Vec::new();
                if div_pos != NO_PARENT {
                    let list = list_at(&mut self.lists, &self.parents, &assignment, div_pos);
                    let old_key = list
                        .rank(rank_at_div as usize)
                        .expect("the popped match's own element exists")
                        .0;
                    if let Some((new_key, _)) = list.rank(rank_at_div as usize + 1) {
                        out.push(CandidateSpec {
                            score: score - old_key + new_key,
                            parent: m_id,
                            pos: div_pos,
                            rank: rank_at_div + 1,
                        });
                    }
                }
                let start = if div_pos == NO_PARENT {
                    0
                } else {
                    div_pos as usize + 1
                };
                for x in start..self.n_t {
                    let list = list_at(&mut self.lists, &self.parents, &assignment, x as u32);
                    let Some((k1, _)) = list.rank(1) else {
                        continue;
                    };
                    if let Some((k2, _)) = list.rank(2) {
                        out.push(CandidateSpec {
                            score: score - k1 + k2,
                            parent: m_id,
                            pos: x as u32,
                            rank: 2,
                        });
                    }
                }
                out
            }

            fn push_spec(&mut self, spec: CandidateSpec, round: u32, to_side: bool) {
                let id = self.specs.len() as u32;
                self.specs.push((spec, round));
                let entry = Reverse((spec.score, self.seq, id));
                self.seq += 1;
                if to_side {
                    self.side[round as usize].push(entry);
                } else {
                    self.q.push(entry);
                }
            }
        }

        impl Iterator for CloneEnumerator<'_> {
            type Item = ScoredMatch;

            fn next(&mut self) -> Option<ScoredMatch> {
                let Reverse((_, _, cid)) = self.q.pop()?;
                let (spec, spec_round) = self.specs[cid as usize];
                if let Some(e) = self.side[spec_round as usize].pop() {
                    self.q.push(e);
                }
                let m_id = self.materialize(spec);
                self.round += 1;
                self.side.push(BinaryHeap::new());
                let round = self.round;
                let mut children = self.divide(m_id);
                if !children.is_empty() {
                    let best = children
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, s)| s.score)
                        .map(|(i, _)| i)
                        .expect("non-empty");
                    let best_spec = children.swap_remove(best);
                    self.push_spec(best_spec, round, false);
                    for c in children {
                        self.push_spec(c, round, true);
                    }
                }
                let m = &self.popped[m_id as usize];
                let tree = self.rg.query().tree();
                Some(ScoredMatch {
                    score: m.score,
                    assignment: tree
                        .node_ids()
                        .map(|u| self.rg.node(u, m.assignment[u.index()]))
                        .collect(),
                })
            }
        }
    }

    mod arena_vs_clone_reference {
        use super::clone_reference::CloneEnumerator;
        use super::*;
        use ktpm_workload::{generate, random_tree_query, GraphSpec, QuerySpec};
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// The tentpole's referee: on random workload graphs and
            /// queries, the arena-backed `Topk` stream equals the
            /// retained clone-based driver element for element — raw
            /// tie order included — across a resume split.
            #[test]
            fn arena_topk_equals_clone_reference_stream(
                nodes in 20..120usize,
                seed in 0..10_000u64,
                size in 2..5usize,
                k in 1..80usize,
                pause in 0..80usize,
            ) {
                let spec = GraphSpec {
                    nodes,
                    labels: 5,
                    label_skew: 0.5,
                    avg_out_degree: 2.5,
                    community: 30,
                    cross_fraction: 0.1,
                    weight_range: (1, 3),
                    seed,
                };
                let g = generate(&spec);
                let query = random_tree_query(&g, QuerySpec {
                    size,
                    distinct_labels: false,
                    seed: seed ^ 0x77,
                });
                if let Some(q) = query {
                    let resolved = q.resolve(g.interner());
                    let store = ktpm_storage::MemStore::new(
                        ktpm_closure::ClosureTables::compute(&g),
                    );
                    let rg = RuntimeGraph::load(&resolved, &store);
                    let want: Vec<ScoredMatch> =
                        CloneEnumerator::new(&rg).take(k).collect();
                    // Split consumption at `pause` to exercise parked
                    // arena state across the resume boundary.
                    let j = pause.min(k);
                    let mut it = TopkEnumerator::new(&rg);
                    let mut got: Vec<ScoredMatch> = it.by_ref().take(j).collect();
                    got.extend(it.take(k - j));
                    prop_assert_eq!(got, want);
                }
            }
        }
    }

    #[test]
    fn no_match_query_yields_nothing() {
        let g = paper_graph();
        assert!(run(&g, "s -> a", 10, true).is_empty());
        assert!(run(&g, "a -> nolabel", 10, true).is_empty());
    }

    #[test]
    fn single_node_query_enumerates_label_bucket() {
        let g = paper_graph();
        let all = run(&g, "a", 10, true);
        assert_eq!(all.len(), 2);
        assert!(all.iter().all(|m| m.score == 0));
    }

    #[test]
    fn scores_equal_recomputed_path_sums() {
        // Validate every reported score against closure distances.
        let g = paper_graph();
        let q = TreeQuery::parse("a -> b\na -> c\nc -> d\nc -> e")
            .unwrap()
            .resolve(g.interner());
        let tc = ClosureTables::compute(&g);
        let store = MemStore::new(tc);
        let rg = RuntimeGraph::load(&q, &store);
        let all: Vec<_> = TopkEnumerator::new(&rg).collect();
        for m in &all {
            let mut total: Score = 0;
            for u in q.tree().node_ids().skip(1) {
                let p = q.tree().parent(u).unwrap();
                let d = store
                    .tables()
                    .dist(m.assignment[p.index()], m.assignment[u.index()])
                    .expect("edge must exist");
                total += d as Score;
            }
            assert_eq!(total, m.score);
        }
    }
}
