//! DP-B: per-node ranked-match streams over the run-time graph.
//!
//! Every run-time node `(u, i)` owns a lazily-advanced stream of the
//! matches of `T_u` rooted at it, in non-decreasing score order:
//!
//! * per child slot, a *slot stream* lazily merges `(edge to child w,
//!   rank j of w's own stream)` pairs — the classic 2-D frontier with
//!   successors `(r, j) -> (r, j+1)` and `(r, 1) -> (r+1, 1)`;
//! * slot streams combine into node matches through a combination
//!   frontier (one coordinate per slot), deduplicated with a hash set —
//!   this is where DP-B pays `O(d²)` per round.
//!
//! The root level is one more slot stream over the root candidates. All
//! streams read the same `L`/`H` lists (`ktpm_core::SlotLists`) keyed by
//! `bs(child) + dist`, and pull child ranks on demand — the paper's
//! "pull-down fashion ... to avoid visiting every node in G".

use crate::bs::BsData;
use crate::lawler::SlotLists;
use crate::matches::ScoredMatch;
use crate::plan::QueryPlan;
use ktpm_graph::Score;
use ktpm_query::{QNodeId, TreeQuery};
use ktpm_runtime::RuntimeGraph;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::ops::Deref;
use std::sync::Arc;

/// One slot stream element: total = dist + (child's rank-j score).
#[derive(Debug, Clone, Copy)]
struct SlotItem {
    total: Score,
    /// Rank of the edge inside the slot's `L`/`H` list.
    edge_rank: u32,
    /// Rank within the child's own stream.
    child_rank: u32,
}

#[derive(Debug, Default)]
struct SlotStream {
    produced: Vec<SlotItem>,
    frontier: BinaryHeap<Reverse<(Score, u32, u32)>>,
    seeded: bool,
}

#[derive(Debug, Default)]
struct NodeStream {
    /// Produced ranks: score + one slot-stream position per slot.
    produced: Vec<(Score, Vec<u32>)>,
    frontier: BinaryHeap<Reverse<(Score, Vec<u32>)>>,
    seen: HashSet<Vec<u32>>,
    seeded: bool,
    exhausted: bool,
}

/// The DP-B enumeration engine over shared slot lists. Public so DP-P can
/// drive it over a partially-loaded graph.
pub(crate) struct DpEngine {
    tree: TreeQuery,
    /// Node streams per `(query node, candidate index)`.
    nodes: HashMap<(u32, u32), NodeStream>,
    /// Slot streams per `(child query node, parent candidate index)`.
    slots: HashMap<(u32, u32), SlotStream>,
    /// The root-level stream (child query node = root, one pseudo-slot).
    root: SlotStream,
}

impl DpEngine {
    pub fn new(tree: TreeQuery) -> Self {
        DpEngine {
            tree,
            nodes: HashMap::new(),
            slots: HashMap::new(),
            root: SlotStream::default(),
        }
    }

    /// The `rank`-th best overall match score (1-based), or `None`.
    pub fn root_score(&mut self, lists: &mut SlotLists, rank: usize) -> Option<Score> {
        self.advance_root(lists, rank).map(|it| it.total)
    }

    /// Reconstructs the `rank`-th best match as candidate indices.
    pub fn root_assignment(&mut self, lists: &mut SlotLists, rank: usize) -> Option<Vec<u32>> {
        let item = self.advance_root(lists, rank)?;
        let mut assignment = vec![u32::MAX; self.tree.len()];
        let (_, root_idx) = lists.root_mut().rank(item.edge_rank as usize)?;
        assignment[0] = root_idx;
        self.reconstruct(lists, 0, root_idx, item.child_rank, &mut assignment);
        Some(assignment)
    }

    fn reconstruct(
        &mut self,
        lists: &mut SlotLists,
        u: u32,
        i: u32,
        rank: u32,
        assignment: &mut Vec<u32>,
    ) {
        assignment[u as usize] = i;
        let children: Vec<u32> = self.tree.children(QNodeId(u)).iter().map(|c| c.0).collect();
        if children.is_empty() {
            return;
        }
        let combo = self.nodes[&(u, i)].produced[rank as usize - 1].1.clone();
        for (slot_pos, &c) in children.iter().enumerate() {
            let t = combo[slot_pos];
            let item = self.slots[&(c, i)].produced[t as usize - 1];
            let (_, w) = lists
                .slot_mut(c, i)
                .rank(item.edge_rank as usize)
                .expect("produced item's edge exists");
            self.reconstruct(lists, c, w, item.child_rank, assignment);
        }
    }

    /// Advances the root stream to `rank`, returning its item.
    fn advance_root(&mut self, lists: &mut SlotLists, rank: usize) -> Option<SlotItem> {
        if !self.root.seeded {
            self.root.seeded = true;
            if let Some((_, i)) = lists.root_mut().rank(1) {
                if let Some(s1) = self.node_score(lists, 0, i, 1) {
                    self.root.frontier.push(Reverse((s1, 1, 1)));
                }
            }
        }
        while self.root.produced.len() < rank {
            let mut root = std::mem::take(&mut self.root);
            let advanced = self.advance_slot_generic(lists, &mut root, None);
            self.root = root;
            if !advanced {
                return None;
            }
        }
        Some(self.root.produced[rank - 1])
    }

    /// The rank-`j` subtree match score at node `(u, i)`.
    fn node_score(&mut self, lists: &mut SlotLists, u: u32, i: u32, j: u32) -> Option<Score> {
        let children: Vec<u32> = self.tree.children(QNodeId(u)).iter().map(|c| c.0).collect();
        if children.is_empty() {
            return (j == 1).then_some(0);
        }
        // Seed the node's combination frontier.
        if !self.nodes.entry((u, i)).or_default().seeded {
            let mut ok = true;
            let mut total: Score = 0;
            for &c in &children {
                match self.slot_item(lists, c, i, 1) {
                    Some(it) => total += it.total,
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            let ns = self.nodes.get_mut(&(u, i)).expect("inserted above");
            ns.seeded = true;
            if ok {
                let combo = vec![1u32; children.len()];
                ns.seen.insert(combo.clone());
                ns.frontier.push(Reverse((total, combo)));
            } else {
                ns.exhausted = true;
            }
        }
        while self.nodes[&(u, i)].produced.len() < j as usize {
            if self.nodes[&(u, i)].exhausted {
                return None;
            }
            let Reverse((score, combo)) = self.nodes.get_mut(&(u, i)).unwrap().frontier.pop()?;
            self.nodes
                .get_mut(&(u, i))
                .unwrap()
                .produced
                .push((score, combo.clone()));
            // Successors: bump one coordinate each (O(d) candidates, each
            // requiring a slot stream advance — the O(d²) of DP-B).
            for (slot_pos, &c) in children.iter().enumerate() {
                let mut succ = combo.clone();
                succ[slot_pos] += 1;
                if self.nodes[&(u, i)].seen.contains(&succ) {
                    continue;
                }
                let cur = self.slot_item(lists, c, i, combo[slot_pos] as usize);
                let nxt = self.slot_item(lists, c, i, succ[slot_pos] as usize);
                if let (Some(cur), Some(nxt)) = (cur, nxt) {
                    let ns = self.nodes.get_mut(&(u, i)).unwrap();
                    ns.seen.insert(succ.clone());
                    ns.frontier
                        .push(Reverse((score - cur.total + nxt.total, succ)));
                }
            }
        }
        Some(self.nodes[&(u, i)].produced[j as usize - 1].0)
    }

    /// The rank-`t` element of slot stream `(child u, parent candidate i)`.
    fn slot_item(&mut self, lists: &mut SlotLists, u: u32, i: u32, t: usize) -> Option<SlotItem> {
        if !self.slots.entry((u, i)).or_default().seeded {
            self.slots.get_mut(&(u, i)).unwrap().seeded = true;
            if let Some((key, w)) = lists.slot_mut(u, i).rank(1) {
                // key = bs(w) + dist = score_1(w) + dist, so rank (1,1)
                // totals exactly `key` — but validate the child exists.
                if self.node_score(lists, u, w, 1).is_some() {
                    self.slots
                        .get_mut(&(u, i))
                        .unwrap()
                        .frontier
                        .push(Reverse((key, 1, 1)));
                }
            }
        }
        while self.slots[&(u, i)].produced.len() < t {
            let mut slot = self.slots.remove(&(u, i)).expect("seeded above");
            let advanced = self.advance_slot_generic(lists, &mut slot, Some((u, i)));
            self.slots.insert((u, i), slot);
            if !advanced {
                return None;
            }
        }
        Some(self.slots[&(u, i)].produced[t - 1])
    }

    /// Pops the next element of a slot stream and pushes its successors.
    /// `slot_id` is `None` for the root stream (whose "edges" are the
    /// root-list entries and whose "children" are root candidates).
    fn advance_slot_generic(
        &mut self,
        lists: &mut SlotLists,
        slot: &mut SlotStream,
        slot_id: Option<(u32, u32)>,
    ) -> bool {
        let Some(Reverse((total, r, j))) = slot.frontier.pop() else {
            return false;
        };
        slot.produced.push(SlotItem {
            total,
            edge_rank: r,
            child_rank: j,
        });
        let child_u: u32 = match slot_id {
            Some((u, _)) => u,
            None => 0,
        };
        let list_entry = |lists: &mut SlotLists, rank: usize| match slot_id {
            Some((u, i)) => lists.slot_mut(u, i).rank(rank),
            None => lists.root_mut().rank(rank),
        };
        // Successor (r, j+1): same edge, deeper child rank.
        if let Some((key, w)) = list_entry(lists, r as usize) {
            let s1 = self
                .node_score(lists, child_u, w, 1)
                .expect("rank-1 existed when (r,1) was pushed");
            if let Some(sj) = self.node_score(lists, child_u, w, j + 1) {
                slot.frontier.push(Reverse((key - s1 + sj, r, j + 1)));
            }
        }
        // Successor (r+1, 1): next edge, first child rank.
        if j == 1 {
            if let Some((key, w)) = list_entry(lists, r as usize + 1) {
                if self.node_score(lists, child_u, w, 1).is_some() {
                    slot.frontier.push(Reverse((key, r + 1, 1)));
                }
            }
        }
        true
    }
}

/// DP-B over a fully-loaded run-time graph, generic over how the graph
/// is held: borrowed (`&RuntimeGraph`, the classic single-query path)
/// or shared (`Arc<RuntimeGraph>`, the `'static` form
/// [`crate::build_stream`] builds from a [`QueryPlan`]).
pub struct DpBEnumerator<R: Deref<Target = RuntimeGraph> = Arc<RuntimeGraph>> {
    rg: R,
    lists: SlotLists,
    engine: DpEngine,
    rank: usize,
}

impl<'g> DpBEnumerator<&'g RuntimeGraph> {
    /// Builds lists (O(m_R)) and the DP structures.
    pub fn new(rg: &'g RuntimeGraph) -> Self {
        let bs = BsData::compute(rg);
        Self::from_parts(rg, SlotLists::build_full(rg, &bs))
    }
}

impl DpBEnumerator<Arc<RuntimeGraph>> {
    /// The `'static` plan-backed form: reuses the plan's shared
    /// run-time graph and `bs` pass (a warm plan repeats neither), only
    /// the per-stream slot lists are built here (they are mutated as
    /// the enumeration advances, so they cannot be shared).
    pub fn from_plan(plan: &QueryPlan) -> Self {
        let rg = Arc::clone(plan.runtime_graph());
        let lists = SlotLists::build_full(&rg, plan.bs_data());
        Self::from_parts(rg, lists)
    }
}

impl<R: Deref<Target = RuntimeGraph>> DpBEnumerator<R> {
    fn from_parts(rg: R, lists: SlotLists) -> Self {
        let engine = DpEngine::new(rg.query().tree().clone());
        DpBEnumerator {
            rg,
            lists,
            engine,
            rank: 0,
        }
    }
}

impl<R: Deref<Target = RuntimeGraph>> Iterator for DpBEnumerator<R> {
    type Item = ScoredMatch;

    fn next(&mut self) -> Option<ScoredMatch> {
        self.rank += 1;
        let score = self.engine.root_score(&mut self.lists, self.rank)?;
        let assignment = self
            .engine
            .root_assignment(&mut self.lists, self.rank)
            .expect("score existed");
        let tree = self.rg.query().tree();
        Some(ScoredMatch {
            score,
            assignment: tree
                .node_ids()
                .map(|u| self.rg.node(u, assignment[u.index()]))
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TopkEnumerator;
    use ktpm_closure::ClosureTables;
    use ktpm_graph::fixtures::{citation_graph, paper_graph};
    use ktpm_graph::LabeledGraph;
    use ktpm_query::TreeQuery;
    use ktpm_storage::MemStore;

    fn compare(g: &LabeledGraph, query: &str, k: usize) {
        let q = TreeQuery::parse(query).unwrap().resolve(g.interner());
        let store = MemStore::new(ClosureTables::compute(g));
        let rg = RuntimeGraph::load(&q, &store);
        let lawler: Vec<Score> = TopkEnumerator::new(&rg).take(k).map(|m| m.score).collect();
        let dpb: Vec<Score> = DpBEnumerator::new(&rg).take(k).map(|m| m.score).collect();
        assert_eq!(lawler, dpb, "query {query:?}");
    }

    #[test]
    fn agrees_with_lawler_on_fixtures() {
        let g = paper_graph();
        compare(&g, "a -> b\na -> c\nc -> d\nc -> e", 100);
        compare(&g, "a -> c\nc -> d", 100);
        compare(&g, "a", 100);
        compare(&g, "a => b", 100);
        let g = citation_graph();
        compare(&g, "C -> E\nC -> S", 100);
    }

    #[test]
    fn produces_valid_distinct_matches() {
        let g = paper_graph();
        let q = TreeQuery::parse("a -> b\na -> c\nc -> d\nc -> e")
            .unwrap()
            .resolve(g.interner());
        let store = MemStore::new(ClosureTables::compute(&g));
        let rg = RuntimeGraph::load(&q, &store);
        let all: Vec<_> = DpBEnumerator::new(&rg).take(500).collect();
        let mut seen = HashSet::new();
        for m in &all {
            assert!(seen.insert(m.assignment.clone()), "duplicate match");
            // Validate score against closure distances.
            let mut total: Score = 0;
            for u in q.tree().node_ids().skip(1) {
                let p = q.tree().parent(u).unwrap();
                total += store
                    .tables()
                    .dist(m.assignment[p.index()], m.assignment[u.index()])
                    .expect("path must exist") as Score;
            }
            assert_eq!(total, m.score);
        }
        assert!(all.windows(2).all(|w| w[0].score <= w[1].score));
    }
}
