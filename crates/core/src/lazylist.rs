//! The `L`/`H` list pair of §3.3 as one structure.
//!
//! A [`LazySortedList`] keeps the globally smallest `|H|` elements in a
//! sorted prefix `H` (`sorted`) and the rest in a binary min-heap `L`
//! (`heap`) — built in O(n) with a single scan for the minimum, exactly
//! as §3.3 prescribes. Rank-r access materializes the prefix lazily:
//! `O(1)` when rank `r ≤ |H| + 1` (the paper's Line-13 case peeks the
//! heap top without popping), `O(log n)` per heap pop otherwise (the
//! Line-10 chain).
//!
//! For the priority-based algorithms (§4) the list also supports
//! [`LazySortedList::insert`]: a key smaller than the current prefix
//! maximum is placed inside the prefix at its upper bound (equal keys go
//! *after* existing ones, so ranks already handed out to finalized
//! matches never shift — Theorems 4.1/4.2 guarantee no insert can land
//! strictly below a finalized rank).

use ktpm_graph::Score;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One list element: `(key, tie-break sequence, payload)`.
type Entry = (Score, u32, u32);

/// A lazily-sorted list with heap tail; see module docs.
#[derive(Debug, Clone, Default)]
pub struct LazySortedList {
    /// `H`: the globally smallest `sorted.len()` elements, ascending.
    sorted: Vec<Entry>,
    /// `L`: everything else.
    heap: BinaryHeap<Reverse<Entry>>,
    /// Monotone insertion counter for stable tie-breaks.
    seq: u32,
}

impl LazySortedList {
    /// Builds from unsorted `(key, payload)` items in O(n): one scan to
    /// find the minimum (placed in `H`), the rest heapified.
    pub fn new(items: Vec<(Score, u32)>) -> Self {
        let mut list = LazySortedList::default();
        if items.is_empty() {
            return list;
        }
        let entries: Vec<Entry> = items
            .into_iter()
            .enumerate()
            .map(|(i, (k, v))| (k, i as u32, v))
            .collect();
        list.seq = entries.len() as u32;
        let min_pos = entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| **e)
            .map(|(i, _)| i)
            .expect("non-empty");
        let mut rest = entries;
        let min = rest.swap_remove(min_pos);
        list.sorted.push(min);
        list.heap = rest.into_iter().map(Reverse).collect();
        list
    }

    /// Total elements.
    pub fn len(&self) -> usize {
        self.sorted.len() + self.heap.len()
    }

    /// Whether the list has no elements.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty() && self.heap.is_empty()
    }

    /// The minimum element, `O(1)`. Stable across the list's lifetime
    /// except for inserts strictly below the current minimum.
    pub fn first(&self) -> Option<(Score, u32)> {
        match (self.sorted.first(), self.heap.peek()) {
            (Some(&(k, _, v)), _) => Some((k, v)),
            (None, Some(&Reverse((k, _, v)))) => Some((k, v)),
            (None, None) => None,
        }
    }

    /// The `r`-th smallest element (1-based).
    ///
    /// Ranks `≤ |H|` read the prefix in O(1); rank `|H| + 1` peeks the
    /// heap top without popping (the Theorem 3.2 fast path); deeper ranks
    /// pop the heap into the prefix (the Theorem 3.1 chain).
    pub fn rank(&mut self, r: usize) -> Option<(Score, u32)> {
        assert!(r >= 1, "ranks are 1-based");
        // Sanity: `new` keeps the minimum in `sorted`, but an
        // insert-into-empty list or pure-insert usage may leave the prefix
        // empty; normalize so prefix reads below stay correct.
        if self.sorted.is_empty() {
            match self.heap.pop() {
                Some(Reverse(e)) => self.sorted.push(e),
                None => return None,
            }
        }
        while self.sorted.len() < r.saturating_sub(1) {
            match self.heap.pop() {
                Some(Reverse(e)) => self.sorted.push(e),
                None => return None,
            }
        }
        if r <= self.sorted.len() {
            let (k, _, v) = self.sorted[r - 1];
            Some((k, v))
        } else {
            debug_assert_eq!(r, self.sorted.len() + 1);
            self.heap.peek().map(|&Reverse((k, _, v))| (k, v))
        }
    }

    /// Inserts `(key, payload)`, preserving the prefix/heap invariant
    /// (`max(H) ≤ min(L)`). Equal keys order after existing ones.
    pub fn insert(&mut self, key: Score, val: u32) {
        let entry = (key, self.seq, val);
        self.seq += 1;
        match self.sorted.last() {
            Some(&last) if entry < last => {
                let pos = self.sorted.partition_point(|&e| e < entry);
                self.sorted.insert(pos, entry);
            }
            _ => self.heap.push(Reverse(entry)),
        }
    }

    /// Number of elements already materialized in the sorted prefix.
    pub fn prefix_len(&self) -> usize {
        self.sorted.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(list: &mut LazySortedList) -> Vec<Score> {
        (1..=list.len()).map(|r| list.rank(r).unwrap().0).collect()
    }

    #[test]
    fn build_puts_min_in_prefix() {
        let l = LazySortedList::new(vec![(5, 0), (2, 1), (9, 2)]);
        assert_eq!(l.first(), Some((2, 1)));
        assert_eq!(l.prefix_len(), 1);
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn rank_returns_global_order() {
        let mut l = LazySortedList::new(vec![(5, 0), (2, 1), (9, 2), (3, 3), (7, 4)]);
        assert_eq!(keys(&mut l), vec![2, 3, 5, 7, 9]);
        assert_eq!(l.rank(6), None);
    }

    #[test]
    fn rank_two_peeks_without_popping() {
        let mut l = LazySortedList::new(vec![(5, 0), (2, 1), (9, 2)]);
        assert_eq!(l.rank(2), Some((5, 0)));
        assert_eq!(l.prefix_len(), 1, "rank |H|+1 must not pop");
        assert_eq!(l.rank(3), Some((9, 2)));
        assert_eq!(l.prefix_len(), 2, "rank |H|+2 pops exactly once");
    }

    #[test]
    fn empty_list() {
        let mut l = LazySortedList::new(vec![]);
        assert!(l.is_empty());
        assert_eq!(l.first(), None);
        assert_eq!(l.rank(1), None);
    }

    #[test]
    fn single_element() {
        let mut l = LazySortedList::new(vec![(4, 7)]);
        assert_eq!(l.rank(1), Some((4, 7)));
        assert_eq!(l.rank(2), None);
    }

    #[test]
    fn insert_into_heap_region() {
        let mut l = LazySortedList::new(vec![(2, 0), (8, 1)]);
        l.insert(5, 2);
        assert_eq!(keys(&mut l), vec![2, 5, 8]);
    }

    #[test]
    fn insert_into_materialized_prefix() {
        let mut l = LazySortedList::new(vec![(2, 0), (8, 1), (9, 2)]);
        assert_eq!(l.rank(3), Some((9, 2))); // materialize prefix [2,8]
        l.insert(5, 3);
        assert_eq!(keys(&mut l), vec![2, 5, 8, 9]);
    }

    #[test]
    fn equal_key_inserts_go_after_existing() {
        let mut l = LazySortedList::new(vec![(2, 0), (5, 1), (9, 2)]);
        assert_eq!(l.rank(3), Some((9, 2))); // prefix [2,5]
        l.insert(5, 9);
        // Rank 2 must still be the original payload 1.
        assert_eq!(l.rank(2), Some((5, 1)));
        assert_eq!(l.rank(3), Some((5, 9)));
        assert_eq!(l.rank(4), Some((9, 2)));
    }

    #[test]
    fn insert_into_empty_then_rank() {
        let mut l = LazySortedList::new(vec![]);
        l.insert(7, 0);
        l.insert(3, 1);
        assert_eq!(l.first().map(|(k, _)| k), Some(3));
        assert_eq!(keys(&mut l), vec![3, 7]);
    }

    #[test]
    fn interleaved_inserts_and_ranks_stay_sorted() {
        let mut l = LazySortedList::new(vec![(10, 0), (20, 1)]);
        assert_eq!(l.rank(1), Some((10, 0)));
        l.insert(15, 2);
        l.insert(25, 3);
        assert_eq!(l.rank(2), Some((15, 2)));
        l.insert(12, 4);
        assert_eq!(keys(&mut l), vec![10, 12, 15, 20, 25]);
    }

    #[test]
    fn large_randomized_consistency() {
        let mut state = 0xABCDEFu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let items: Vec<(Score, u32)> = (0..200).map(|i| ((next() % 50) as Score, i)).collect();
        let mut reference: Vec<Score> = items.iter().map(|&(k, _)| k).collect();
        let mut l = LazySortedList::new(items);
        // Interleave inserts with rank queries.
        for i in 0..100 {
            let k = (next() % 50) as Score;
            let r = (next() % 20 + 1) as usize;
            let _ = l.rank(r);
            l.insert(k, 1000 + i);
            reference.push(k);
        }
        reference.sort_unstable();
        assert_eq!(keys(&mut l), reference);
    }
}
