//! # ktpm-core
//!
//! The paper's primary contribution:
//!
//! * [`TopkEnumerator`] — **Algorithm 1** (`Topk`): optimal Lawler-based
//!   enumeration over a fully-loaded run-time graph,
//!   `O(m_R + k(n_T + log k))` total;
//! * [`PriorityLoader`] — **Algorithm 2** (`ComputeFirst`): the A*-style
//!   priority loader over the disk-resident closure, with the tight
//!   bound of §4.2 or the loose bound used by the DP-P baseline;
//! * [`TopkEnEnumerator`] — **Algorithm 3** (`Topk-EN`): Lawler
//!   enumeration over the lazily-loaded run-time graph with delayed
//!   candidate insertion;
//! * [`brute`] — an exhaustive reference enumerator used as a test
//!   oracle by the whole workspace;
//! * [`DpBEnumerator`] / [`DpPEnumerator`] — the ICDE'13 **DP-B/DP-P**
//!   baselines the paper compares against (§6), behind the same stream
//!   surface;
//! * [`KgpmStream`] — the **kGPM** extension (§5): ranked enumeration
//!   of graph-pattern matches by [`decompose`]-ing the pattern into
//!   spanning trees, streaming the primary tree and lazily verifying
//!   non-tree edges under the residual lower bound (pattern plans:
//!   [`QueryPlan::new_pattern`]).
//!
//! `Topk-GT` (§5, general twigs) is not a separate algorithm: the
//! run-time graph is per-query-node (see `ktpm-runtime`), so duplicate
//! labels, wildcards and `/` edges flow through the same enumerators.
//!
//! ## One enumeration surface
//!
//! Consumers do not touch the enumerators above directly: every engine
//! runs behind the object-safe [`MatchStream`] trait (primitive:
//! **batched pull**, [`MatchStream::next_batch`]), selected through the
//! canonical [`Algo`] registry and constructed by the single
//! [`build_stream`] dispatch from a shared [`QueryPlan`]. All tree
//! engines are byte-identical for a query (canonical order), and the
//! kGPM stream is byte-identical across shard counts and tree
//! matchers, so the algorithm choice is purely a performance decision.
//! The root crate's
//! `ktpm::api` module wraps this in an `Executor`/`QueryBuilder`
//! facade; the serving layer, CLI and bench drivers all go through the
//! same dispatch.
//!
//! ## Parallel partitioned execution
//!
//! [`ParTopk`] splits the root candidate set into [`ShardSpec`] shards,
//! runs an independent enumerator per shard on a shared worker pool and
//! lazily k-way-merges the streams. The merged stream equals
//! [`topk_full`] *exactly* (order, scores, witnesses) because both
//! emit the workspace's **canonical order** — ascending
//! `(score, assignment)`, the deterministic tie-break defined in
//! [`partition`]. The raw iterators ([`TopkEnumerator`],
//! [`TopkEnEnumerator`]) keep their algorithmic tie order; wrap them in
//! [`canonical`] when determinism across runs or algorithms matters.
//!
//! ## Shared query plans
//!
//! [`QueryPlan`] factors the per-query setup pipeline — candidate
//! discovery, run-time-graph load, `bs` pass, slot-list templates —
//! out of the enumerators into an immutable, `Arc`-shared object built
//! lazily and at most once per half (full-loading vs lazy-loading).
//! `TopkEnumerator::from_plan`, `TopkEnEnumerator::from_plan` and
//! `ParTopk::from_plan` construct enumerators that do **zero**
//! candidate discovery on a warm plan; the serving layer keeps a
//! cross-session cache of plans keyed by canonical query text.
//!
//! ## Hot path memory layout
//!
//! The paper's optimality argument is about enumeration *delay*, so
//! the pop → divide → emit cycle is engineered to allocate nothing per
//! match:
//!
//! * **Deviation arena.** Popped matches are not stored as full
//!   assignments. Each is a compact record — parent arena id, division
//!   position/rank, score — plus a *patch*: the `(position,
//!   candidate)` pairs the match changed relative to its parent (the
//!   replaced node and its re-derived subtree, captured at pop time so
//!   reconstruction never depends on later list growth). Records and
//!   patches live in two flat, append-only vectors inside the
//!   enumerator's `MatchArena`; candidates stay the O(1)
//!   `CandidateSpec` links of §3.3. This is the parent-pointer
//!   solution representation ranked-enumeration systems (Tziavelis et
//!   al.) use to get their any-k bounds.
//! * **Arena lifetime.** One arena per enumerator, alive as long as
//!   the enumerator: a parked service session keeps its arena (the
//!   resume state), and each `ParTopk` shard owns a private arena so
//!   the k-way merge stays lock-free. Chains of deviation records are
//!   cut by full-row checkpoints every `CHECKPOINT_DEPTH` links,
//!   bounding reconstruction walks at ~1/32 of clone-encoding memory.
//! * **Emission-time materialization.** A full assignment row is built
//!   only when a match is actually emitted: a parent-pointer walk to
//!   the nearest checkpoint applies patches oldest-first into the
//!   arena's reusable scratch row, and the emitted
//!   [`ScoredMatch`] stores it in a [`ktpm_graph::NodeRow`] — inline
//!   (no heap) for queries up to 8 nodes. The parked-candidate
//!   machinery of `Topk-EN` needs only single positions of arbitrary
//!   parents and uses point lookups that walk patches without
//!   materializing anything.
//! * **Compact queues.** The global queue `Q` holds flat 16-byte
//!   `HeapEntry` records. The §3.3 side queues `Q_l` are one pooled
//!   vector of pre-sorted per-round runs — a round's non-best children
//!   are all known at divide time, so "promote the next best" is a
//!   cursor bump, not a heap operation.
//!
//! Net effect (bench-smoke, GS3 wildcard stars, k = 50 000): from
//! ~4.4–6.3 allocations per emitted match under the old clone
//! encoding to ~0.01–0.1 — tracked per run in `BENCH_parallel.json`'s
//! `deviation_encoding` section and gated in CI against the recorded
//! clone baseline.

mod algo;
pub mod brute;
mod bs;
mod decompose;
mod dpb;
mod dpp;
mod enhanced;
mod kgpm;
mod lawler;
mod lazylist;
mod loader;
mod matches;
pub mod parallel;
pub mod partition;
mod plan;
pub mod stream;

pub use algo::{Algo, AlgoCaps};
pub use bs::BsData;
pub use decompose::{decompose, SpanningTree};
pub use dpb::DpBEnumerator;
pub use dpp::DpPEnumerator;
pub use enhanced::TopkEnEnumerator;
pub use kgpm::{GraphMatch, KgpmStats, KgpmStream};
pub use lawler::{SlotLists, SlotTemplates, TopkEnumerator};
pub use lazylist::LazySortedList;
pub use loader::{BoundMode, PriorityLoader};
pub use matches::ScoredMatch;
pub use parallel::{par_topk, ParTopk, ParallelPolicy, ShardEngine};
pub use partition::{canonical, Canonical};
pub use plan::{
    canonical_query_text, pattern_reads_touched_pairs, query_reads_touched_pairs,
    PatternUnsupported, QueryPlan,
};
pub use stream::{build_stream, limit, BoxedMatchStream, MatchStream, StreamState};
// Re-exported so callers configuring shards need not depend on storage.
pub use ktpm_storage::ShardSpec;

use ktpm_query::ResolvedQuery;
use ktpm_storage::ClosureSource;

/// Convenience: top-k via Algorithm 1 (full run-time graph load), in
/// the canonical `(score, assignment)` order — the reference stream
/// every other execution mode (including [`ParTopk`]) reproduces
/// exactly.
pub fn topk_full(query: &ResolvedQuery, source: &dyn ClosureSource, k: usize) -> Vec<ScoredMatch> {
    let rg = ktpm_runtime::RuntimeGraph::load(query, source);
    canonical(TopkEnumerator::new(&rg)).take(k).collect()
}

/// Convenience: top-k via Algorithm 3 (priority-based lazy load), in
/// the canonical `(score, assignment)` order.
pub fn topk_en(query: &ResolvedQuery, source: &dyn ClosureSource, k: usize) -> Vec<ScoredMatch> {
    canonical(TopkEnEnumerator::new(query, source))
        .take(k)
        .collect()
}
