//! # ktpm-core
//!
//! The paper's primary contribution:
//!
//! * [`TopkEnumerator`] — **Algorithm 1** (`Topk`): optimal Lawler-based
//!   enumeration over a fully-loaded run-time graph,
//!   `O(m_R + k(n_T + log k))` total;
//! * [`PriorityLoader`] — **Algorithm 2** (`ComputeFirst`): the A*-style
//!   priority loader over the disk-resident closure, with the tight
//!   bound of §4.2 or the loose bound used by the DP-P baseline;
//! * [`TopkEnEnumerator`] — **Algorithm 3** (`Topk-EN`): Lawler
//!   enumeration over the lazily-loaded run-time graph with delayed
//!   candidate insertion;
//! * [`brute`] — an exhaustive reference enumerator used as a test
//!   oracle by the whole workspace.
//!
//! `Topk-GT` (§5, general twigs) is not a separate algorithm: the
//! run-time graph is per-query-node (see `ktpm-runtime`), so duplicate
//! labels, wildcards and `/` edges flow through the same enumerators.

pub mod brute;
mod bs;
mod enhanced;
mod lawler;
mod lazylist;
mod loader;
mod matches;

pub use bs::BsData;
pub use enhanced::TopkEnEnumerator;
pub use lawler::{SlotLists, TopkEnumerator};
pub use lazylist::LazySortedList;
pub use loader::{BoundMode, PriorityLoader};
pub use matches::ScoredMatch;

use ktpm_query::ResolvedQuery;
use ktpm_storage::ClosureSource;

/// Convenience: top-k via Algorithm 1 (full run-time graph load).
pub fn topk_full(query: &ResolvedQuery, source: &dyn ClosureSource, k: usize) -> Vec<ScoredMatch> {
    let rg = ktpm_runtime::RuntimeGraph::load(query, source);
    TopkEnumerator::new(&rg).take(k).collect()
}

/// Convenience: top-k via Algorithm 3 (priority-based lazy load).
pub fn topk_en(query: &ResolvedQuery, source: &dyn ClosureSource, k: usize) -> Vec<ScoredMatch> {
    TopkEnEnumerator::new(query, source).take(k).collect()
}
