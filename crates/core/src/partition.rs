//! The canonical output order and root-partitioned sub-enumerators.
//!
//! ## Why a canonical order exists
//!
//! Every enumerator in this workspace yields matches in non-decreasing
//! score order, but the paper leaves the order *within* an equal-score
//! group unspecified — and in practice it falls out of heap insertion
//! sequences, which differ between algorithms and (crucially) between
//! shard layouts of the same query. Partitioned execution re-merges
//! per-shard streams, so "same order as the sequential run" is only
//! meaningful once ties are broken deterministically.
//!
//! This module defines the workspace-wide **canonical order**:
//!
//! > ascending `(score, assignment)`, assignments compared
//! > lexicographically in query-BFS node order.
//!
//! Assignments are unique per match, so this is a total order. It is
//! independent of algorithm, shard count and thread schedule, which is
//! what makes the order-preservation argument for `ParTopk`
//! compositional:
//!
//! 1. each shard owns the matches rooted at its slice of the root
//!    candidate set ([`ktpm_storage::ShardSpec`] splits are disjoint
//!    and exhaustive, and a match has exactly one root);
//! 2. [`Canonical`] re-orders each shard's stream into the canonical
//!    order without breaking laziness (it buffers one equal-score group
//!    at a time — legal because scores never decrease);
//! 3. a k-way merge keyed on `(score, assignment)` of canonically
//!    ordered disjoint streams is itself canonically ordered.
//!
//! Hence `ParTopk` with *any* shard count emits exactly the sequence of
//! [`crate::topk_full`] — order, scores and witnesses.
//!
//! The price is bounded lookahead: emitting the first match of a score
//! group requires having pulled the whole group from the inner
//! enumerator. Memory and delay are O(largest equal-score group).

use crate::matches::ScoredMatch;
use std::collections::VecDeque;

/// An adaptor re-ordering a non-decreasing-score match stream into the
/// canonical `(score, assignment)` order; see module docs.
///
/// The group buffer persists across groups, so steady-state operation
/// performs no allocation: matches arrive with their assignment rows
/// already materialized at emission (inline for small queries), the
/// tiebreak compares those memoized rows directly — no re-walk, no
/// copy — and the buffer's capacity is recycled group after group.
pub struct Canonical<I> {
    inner: I,
    /// The current equal-score group, sorted once it is complete.
    group: VecDeque<ScoredMatch>,
    /// First match of the *next* group (pulled while closing a group).
    lookahead: Option<ScoredMatch>,
}

/// Wraps `inner` (which must yield non-decreasing scores) into the
/// canonical order.
pub fn canonical<I: Iterator<Item = ScoredMatch>>(inner: I) -> Canonical<I> {
    Canonical {
        inner,
        group: VecDeque::new(),
        lookahead: None,
    }
}

impl<I: Iterator<Item = ScoredMatch>> Iterator for Canonical<I> {
    type Item = ScoredMatch;

    fn next(&mut self) -> Option<ScoredMatch> {
        if let Some(m) = self.group.pop_front() {
            return Some(m);
        }
        // The buffer is empty here: refill it with the next complete
        // equal-score group (capacity reused from previous groups).
        let first = self.lookahead.take().or_else(|| self.inner.next())?;
        let score = first.score;
        self.group.push_back(first);
        loop {
            match self.inner.next() {
                Some(m) if m.score == score => self.group.push_back(m),
                boundary => {
                    debug_assert!(
                        boundary.as_ref().is_none_or(|m| m.score > score),
                        "inner stream must be non-decreasing in score"
                    );
                    self.lookahead = boundary;
                    break;
                }
            }
        }
        // Unstable is safe: assignments are pairwise distinct. The
        // deque was filled from empty, so this is one contiguous slice.
        self.group
            .make_contiguous()
            .sort_unstable_by(|a, b| a.assignment.cmp(&b.assignment));
        self.group.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ktpm_graph::NodeId;

    fn m(score: i64, a: &[u32]) -> ScoredMatch {
        ScoredMatch {
            score: score as ktpm_graph::Score,
            assignment: a.iter().map(|&v| NodeId(v)).collect(),
        }
    }

    #[test]
    fn sorts_within_equal_score_groups_only() {
        let raw = vec![
            m(1, &[3, 0]),
            m(1, &[0, 9]),
            m(1, &[0, 2]),
            m(4, &[7, 7]),
            m(5, &[1, 0]),
            m(5, &[0, 0]),
        ];
        let got: Vec<ScoredMatch> = canonical(raw.into_iter()).collect();
        let want = vec![
            m(1, &[0, 2]),
            m(1, &[0, 9]),
            m(1, &[3, 0]),
            m(4, &[7, 7]),
            m(5, &[0, 0]),
            m(5, &[1, 0]),
        ];
        assert_eq!(got, want);
    }

    #[test]
    fn lookahead_is_bounded_to_one_group() {
        // The adaptor must not drain the inner iterator beyond the group
        // boundary: after taking the whole first group, exactly one
        // boundary element may have been consumed.
        let raw = vec![m(1, &[1]), m(1, &[0]), m(2, &[5]), m(3, &[6])];
        let mut inner = raw.into_iter();
        let mut c = canonical(inner.by_ref());
        assert_eq!(c.next(), Some(m(1, &[0])));
        assert_eq!(c.next(), Some(m(1, &[1])));
        assert_eq!(c.next(), Some(m(2, &[5])));
        // The group-2 read consumed m(3) as lookahead; nothing further.
        assert_eq!(c.next(), Some(m(3, &[6])));
        assert_eq!(c.next(), None);
    }

    #[test]
    fn empty_and_single_streams() {
        assert_eq!(canonical(std::iter::empty()).count(), 0);
        let got: Vec<_> = canonical(std::iter::once(m(9, &[1, 2]))).collect();
        assert_eq!(got, vec![m(9, &[1, 2])]);
    }
}
