//! One enumeration surface: the object-safe [`MatchStream`] trait and
//! the [`build_stream`] dispatch behind every execution layer.
//!
//! The paper's contribution is a family of interchangeable enumerators
//! that all emit the same ranked match stream; any-k systems in the
//! ranked-enumeration literature (Tziavelis et al., VLDB 2020) present
//! exactly one iterator interface over many internal algorithms. This
//! module is that interface for this workspace: every engine —
//! `Topk`, `Topk-EN`, `ParTopk`, the `DP-B`/`DP-P` baselines, the
//! `kGPM` pattern engine, the brute oracle — is consumed as a
//! `Box<dyn MatchStream + Send>` in the **canonical**
//! `(score, assignment)` order, so sessions, the CLI, the bench
//! drivers and embedders stop dispatching on the algorithm themselves.
//!
//! ## Batched pull
//!
//! The primitive is [`MatchStream::next_batch`], not a single-item
//! `next`: a parked service session answering `NEXT <s> n` used to pay
//! one virtual call (plus an `Option` move of the inline assignment
//! row, up to ~70 bytes) *per match*; with batched pull it pays one
//! virtual call per request and the engine's own monomorphized loop
//! pushes matches straight into the caller's buffer. [`MatchStream::next`]
//! is a provided method for callers that genuinely want one match.
//!
//! ### Contract
//!
//! `next_batch(n, out)` appends **up to** `n` matches to `out` and
//! returns [`StreamState::Done`] iff the stream is known exhausted.
//! Appending fewer than `n` implies `Done`; `More` promises exactly
//! `n` were appended (the stream may still turn out to be exhausted on
//! the next call, which then appends nothing and returns `Done`).
//! After `Done`, every later call appends nothing and returns `Done`.

use crate::algo::Algo;
use crate::brute;
use crate::matches::ScoredMatch;
use crate::parallel::{ParTopk, ParallelPolicy};
use crate::partition::{canonical, Canonical};
use crate::plan::QueryPlan;
use ktpm_exec::WorkerPool;
use std::sync::Arc;

/// Whether a [`MatchStream`] may produce more matches; see the module
/// docs for the exact `next_batch` contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamState {
    /// The batch was filled completely; the stream is not known to be
    /// exhausted.
    More,
    /// The stream is exhausted: this and every later call append
    /// nothing further.
    Done,
}

impl StreamState {
    /// `true` for [`StreamState::Done`].
    pub fn is_done(self) -> bool {
        matches!(self, StreamState::Done)
    }
}

/// An object-safe ranked match stream in the canonical
/// `(score, assignment)` order; implemented by every engine. See the
/// module docs for the batched-pull contract.
pub trait MatchStream {
    /// Appends up to `n` matches to `out`; `Done` iff exhausted.
    fn next_batch(&mut self, n: usize, out: &mut Vec<ScoredMatch>) -> StreamState;

    /// Pulls a single match. Provided in terms of [`Self::next_batch`];
    /// engines override it with their native single pull.
    fn next(&mut self) -> Option<ScoredMatch> {
        let mut one = Vec::with_capacity(1);
        self.next_batch(1, &mut one);
        one.pop()
    }
}

/// The boxed form every execution layer passes around.
pub type BoxedMatchStream = Box<dyn MatchStream + Send>;

/// `Box<dyn MatchStream + Send>` is itself an iterator, so stream
/// consumers keep the whole iterator vocabulary (`take`, `collect`,
/// `by_ref`, …). Per-item iteration costs one virtual call per match —
/// batch-sized consumers should call [`MatchStream::next_batch`].
impl<'a> Iterator for Box<dyn MatchStream + Send + 'a> {
    type Item = ScoredMatch;

    fn next(&mut self) -> Option<ScoredMatch> {
        MatchStream::next(&mut **self)
    }
}

/// Any canonically-ordered iterator streams batches through its own
/// monomorphized `next` loop. This covers `Topk` and `Topk-EN` behind
/// [`canonical`] — their raw tie order becomes the workspace order at
/// the wrapper, so a facade stream is byte-identical across engines.
impl<I: Iterator<Item = ScoredMatch>> MatchStream for Canonical<I> {
    fn next_batch(&mut self, n: usize, out: &mut Vec<ScoredMatch>) -> StreamState {
        out.reserve(n.min(1024));
        for _ in 0..n {
            match Iterator::next(self) {
                Some(m) => out.push(m),
                None => return StreamState::Done,
            }
        }
        StreamState::More
    }

    fn next(&mut self) -> Option<ScoredMatch> {
        Iterator::next(self)
    }
}

/// `ParTopk` batches natively: one virtual call per batch, then the
/// k-way merge runs monomorphized — the per-match virtual hop the
/// session layer used to pay on parallel streams is gone.
impl MatchStream for ParTopk {
    fn next_batch(&mut self, n: usize, out: &mut Vec<ScoredMatch>) -> StreamState {
        out.reserve(n.min(1024));
        for _ in 0..n {
            match Iterator::next(self) {
                Some(m) => out.push(m),
                None => return StreamState::Done,
            }
        }
        StreamState::More
    }

    fn next(&mut self) -> Option<ScoredMatch> {
        Iterator::next(self)
    }
}

/// Pre-materialized streams (the brute oracle, cached replays): a
/// batch is one `extend`, and exhaustion is reported eagerly (the
/// length is known).
impl MatchStream for std::vec::IntoIter<ScoredMatch> {
    fn next_batch(&mut self, n: usize, out: &mut Vec<ScoredMatch>) -> StreamState {
        out.extend(self.by_ref().take(n));
        if self.len() == 0 {
            StreamState::Done
        } else {
            StreamState::More
        }
    }

    fn next(&mut self) -> Option<ScoredMatch> {
        Iterator::next(self)
    }
}

/// A stream truncated after `k` matches (the builder's `.k(…)`).
struct Limited {
    inner: BoxedMatchStream,
    left: usize,
}

impl MatchStream for Limited {
    fn next_batch(&mut self, n: usize, out: &mut Vec<ScoredMatch>) -> StreamState {
        if self.left == 0 {
            return StreamState::Done;
        }
        if n == 0 {
            // Matches remain: an empty batch must report `More` (the
            // contract reserves `Done` for exhaustion, and `Done` is
            // sticky), like every engine impl does.
            return StreamState::More;
        }
        let take = n.min(self.left);
        let before = out.len();
        let state = self.inner.next_batch(take, out);
        self.left -= out.len() - before; // appended ≤ take ≤ left
        if self.left == 0 {
            StreamState::Done
        } else {
            state
        }
    }

    fn next(&mut self) -> Option<ScoredMatch> {
        if self.left == 0 {
            return None;
        }
        let m = MatchStream::next(&mut *self.inner);
        if m.is_some() {
            self.left -= 1;
        }
        m
    }
}

/// Caps `stream` at `k` total matches.
pub fn limit(stream: BoxedMatchStream, k: usize) -> BoxedMatchStream {
    Box::new(Limited {
        inner: stream,
        left: k,
    })
}

/// **The** algorithm dispatch: builds `algo`'s stream from a shared
/// [`QueryPlan`]. Every arm emits the canonical `(score, assignment)`
/// order, so the choice of engine changes performance characteristics
/// only — never the stream. On a warm plan, no arm repeats candidate
/// discovery (see [`QueryPlan`]).
///
/// `policy`/`pool` drive [`Algo::Par`] (root sharding + the worker
/// pool its shard jobs run on); the sequential engines ignore both.
/// This is the single place algorithm names meet constructors — the
/// serving layer, CLI, bench drivers and the `ktpm::api` facade all
/// call it instead of matching on the algorithm themselves.
pub fn build_stream(
    algo: Algo,
    plan: &QueryPlan,
    policy: &ParallelPolicy,
    pool: Arc<WorkerPool>,
) -> BoxedMatchStream {
    match algo {
        Algo::Topk => Box::new(canonical(crate::TopkEnumerator::from_plan(plan))),
        Algo::TopkEn => Box::new(canonical(crate::TopkEnEnumerator::from_plan(plan))),
        Algo::Par => Box::new(ParTopk::from_plan(plan, policy, pool)),
        // `all_matches` already sorts by `(score, assignment)` — the
        // canonical order.
        Algo::Brute => Box::new(brute::all_matches(plan.runtime_graph()).into_iter()),
        Algo::DpB => Box::new(canonical(crate::DpBEnumerator::from_plan(plan))),
        Algo::DpP => Box::new(canonical(crate::DpPEnumerator::from_plan(plan))),
        // The one engine over *pattern* plans; panics on a tree plan
        // (upstream surfaces validate the plan kind before dispatch).
        Algo::Kgpm => Box::new(crate::KgpmStream::from_plan(plan, policy, pool)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ktpm_closure::ClosureTables;
    use ktpm_graph::fixtures::{citation_graph, paper_graph};
    use ktpm_graph::LabeledGraph;
    use ktpm_query::TreeQuery;
    use ktpm_storage::MemStore;

    fn plan_for(g: &LabeledGraph, query: &str) -> QueryPlan {
        let q = TreeQuery::parse(query).unwrap().resolve(g.interner());
        let store = MemStore::with_block_edges(ClosureTables::compute(g), 2).into_shared();
        QueryPlan::new(q, store)
    }

    fn pool() -> Arc<WorkerPool> {
        ktpm_exec::default_pool()
    }

    #[test]
    fn every_algo_streams_the_same_matches() {
        let g = citation_graph();
        let plan = plan_for(&g, "C -> E\nC -> S");
        let want: Vec<ScoredMatch> =
            build_stream(Algo::Topk, &plan, &ParallelPolicy::default(), pool()).collect();
        assert_eq!(want.len(), 5);
        // Kgpm is the one engine over pattern plans, not tree plans —
        // it has its own byte-identity tests in `crate::kgpm`.
        for algo in Algo::ALL.into_iter().filter(|&a| a != Algo::Kgpm) {
            let got: Vec<ScoredMatch> =
                build_stream(algo, &plan, &ParallelPolicy::with_shards(3), pool()).collect();
            assert_eq!(got, want, "{algo:?}");
        }
    }

    #[test]
    fn batched_pull_equals_item_pull_under_any_interleaving() {
        let g = paper_graph();
        let plan = plan_for(&g, "a -> b\na -> c\nc -> d\nc -> e");
        for algo in Algo::ALL.into_iter().filter(|&a| a != Algo::Kgpm) {
            let want: Vec<ScoredMatch> =
                build_stream(algo, &plan, &ParallelPolicy::with_shards(2), pool()).collect();
            // Interleave next() and next_batch() pulls of varying size.
            let mut it = build_stream(algo, &plan, &ParallelPolicy::with_shards(2), pool());
            let mut got = Vec::new();
            let mut step = 0usize;
            loop {
                let state = if step.is_multiple_of(2) {
                    match MatchStream::next(&mut *it) {
                        Some(m) => {
                            got.push(m);
                            StreamState::More
                        }
                        None => StreamState::Done,
                    }
                } else {
                    it.next_batch(1 + step % 3, &mut got)
                };
                if state.is_done() {
                    // Done must be sticky: nothing more comes out.
                    let len = got.len();
                    assert_eq!(it.next_batch(8, &mut got), StreamState::Done);
                    assert_eq!(got.len(), len, "{algo:?}: Done stream produced more");
                    break;
                }
                step += 1;
            }
            assert_eq!(got, want, "{algo:?}");
        }
    }

    #[test]
    fn next_batch_appends_without_clobbering() {
        let g = citation_graph();
        let plan = plan_for(&g, "C -> E\nC -> S");
        let mut it = build_stream(Algo::TopkEn, &plan, &ParallelPolicy::default(), pool());
        let mut out = Vec::new();
        assert_eq!(it.next_batch(2, &mut out), StreamState::More);
        assert_eq!(out.len(), 2);
        let state = it.next_batch(100, &mut out);
        assert_eq!(state, StreamState::Done);
        assert_eq!(out.len(), 5, "later batches append after the first two");
    }

    #[test]
    fn limit_caps_the_stream_and_reports_done() {
        let g = citation_graph();
        let plan = plan_for(&g, "C -> E\nC -> S");
        let full: Vec<ScoredMatch> =
            build_stream(Algo::Topk, &plan, &ParallelPolicy::default(), pool()).collect();
        let mut it = limit(
            build_stream(Algo::Topk, &plan, &ParallelPolicy::default(), pool()),
            3,
        );
        let mut out = Vec::new();
        let state = it.next_batch(10, &mut out);
        assert_eq!(out, full[..3].to_vec());
        assert_eq!(state, StreamState::Done);
        assert_eq!(MatchStream::next(&mut *it), None);
        // And item-wise.
        let it = limit(
            build_stream(Algo::Topk, &plan, &ParallelPolicy::default(), pool()),
            2,
        );
        assert_eq!(it.collect::<Vec<_>>(), full[..2].to_vec());
    }

    #[test]
    fn limited_zero_sized_batch_is_not_done() {
        // `Done` means exhausted and is sticky; an n == 0 probe on a
        // live capped stream must say `More` and leave the stream
        // intact (this used to report a spurious `Done`).
        let g = citation_graph();
        let plan = plan_for(&g, "C -> E\nC -> S");
        let mut it = limit(
            build_stream(Algo::Topk, &plan, &ParallelPolicy::default(), pool()),
            3,
        );
        let mut out = Vec::new();
        assert_eq!(it.next_batch(0, &mut out), StreamState::More);
        assert!(out.is_empty());
        assert_eq!(it.next_batch(10, &mut out), StreamState::Done);
        assert_eq!(out.len(), 3);
        // Exhausted now: Done is sticky, even for n == 0.
        assert_eq!(it.next_batch(0, &mut out), StreamState::Done);
        assert_eq!(it.next_batch(4, &mut out), StreamState::Done);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn boxed_streams_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<BoxedMatchStream>();
    }
}
