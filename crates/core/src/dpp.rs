//! DP-P: DP-B over a priority-order loaded run-time graph.
//!
//! Loading is driven by [`PriorityLoader`] with [`BoundMode::Loose`]
//! (`b̄s + e_v`): §4 of the VLDB'15 paper states DP-P's trigger is
//! strictly looser than Topk-EN's, so DP-P loads more edges. A match is
//! emitted only once its score is at most the loader's certified bound;
//! whenever more edges must load first, the DP structures are rebuilt
//! over the grown lists and replayed — the I/O-heavy enumeration phase
//! the paper observes for DP-P in Figures 6(e)/6(f).

use crate::dpb::DpEngine;
use crate::lawler::SlotLists;
use crate::loader::{BoundMode, PriorityLoader};
use crate::matches::ScoredMatch;
use crate::plan::QueryPlan;
use ktpm_query::ResolvedQuery;
use ktpm_storage::{ClosureSource, SharedSource};
use std::collections::HashSet;
use std::sync::Arc;

/// The DP-P enumerator. Yields matches in non-decreasing score order.
pub struct DpPEnumerator<'s> {
    query: ResolvedQuery,
    lists: SlotLists,
    loader: PriorityLoader<'s>,
    engine: Option<DpEngine>,
    /// Next root-stream rank to examine in the current engine build.
    scan: usize,
    emitted: HashSet<ktpm_graph::NodeRow>,
}

impl<'s> DpPEnumerator<'s> {
    /// Runs the §4.1 initialization (D/E tables only).
    pub fn new(query: &ResolvedQuery, source: &'s dyn ClosureSource) -> Self {
        let mut lists = SlotLists::default();
        let loader = PriorityLoader::new(query, source, BoundMode::Loose, &mut lists);
        DpPEnumerator {
            query: query.clone(),
            lists,
            loader,
            engine: None,
            scan: 1,
            emitted: HashSet::new(),
        }
    }

    /// The `'static` shared-ownership form used by long-lived streams.
    pub fn new_shared(query: &ResolvedQuery, source: SharedSource) -> DpPEnumerator<'static> {
        let mut lists = SlotLists::default();
        let loader = PriorityLoader::new_shared(query, source, BoundMode::Loose, &mut lists);
        DpPEnumerator {
            query: query.clone(),
            lists,
            loader,
            engine: None,
            scan: 1,
            emitted: HashSet::new(),
        }
    }

    /// The plan-backed form [`crate::build_stream`] uses. DP-P's
    /// loading *is* its enumeration strategy — it always re-runs the
    /// §4.1 initialization against storage (hence
    /// `plan_reuse: false` in [`crate::Algo::caps`]); the plan supplies
    /// the query and the shared store handle.
    pub fn from_plan(plan: &QueryPlan) -> DpPEnumerator<'static> {
        Self::new_shared(plan.query(), Arc::clone(plan.source()))
    }

    /// Edges loaded from storage so far.
    pub fn edges_loaded(&self) -> u64 {
        self.loader.edges_inserted()
    }

    fn rebuild_if_dirty(&mut self) {
        if !self.loader.dirty().is_empty() {
            self.loader.clear_dirty();
            self.engine = None;
            self.scan = 1;
        }
    }

    fn to_scored(&self, score: ktpm_graph::Score, assignment: Vec<u32>) -> ScoredMatch {
        let tree = self.query.tree();
        ScoredMatch {
            score,
            assignment: tree
                .node_ids()
                .map(|u| self.loader.candidates().node(u, assignment[u.index()]))
                .collect(),
        }
    }
}

impl Iterator for DpPEnumerator<'_> {
    type Item = ScoredMatch;

    fn next(&mut self) -> Option<ScoredMatch> {
        loop {
            self.rebuild_if_dirty();
            let engine = self
                .engine
                .get_or_insert_with(|| DpEngine::new(self.query.tree().clone()));
            match engine.root_score(&mut self.lists, self.scan) {
                Some(score) => {
                    // Certify against the loader's bound before emitting.
                    match self.loader.qg_top() {
                        Some(g) if score > g => {
                            // Load until the bound certifies this score.
                            while let Some(g) = self.loader.qg_top() {
                                if g >= score {
                                    break;
                                }
                                self.loader.expand_top(&mut self.lists);
                            }
                            continue; // rebuild_if_dirty will reset if needed
                        }
                        _ => {}
                    }
                    let assignment = engine
                        .root_assignment(&mut self.lists, self.scan)
                        .expect("score existed");
                    self.scan += 1;
                    let m = self.to_scored(score, assignment);
                    if self.emitted.insert(m.assignment.clone()) {
                        return Some(m);
                    }
                    // Replayed duplicate after a rebuild: skip.
                }
                None => {
                    // Exhausted on the loaded subgraph; load more or stop.
                    self.loader.qg_top()?;
                    self.loader.expand_top(&mut self.lists);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dpb::DpBEnumerator;
    use ktpm_closure::ClosureTables;
    use ktpm_graph::fixtures::{citation_graph, paper_graph};
    use ktpm_graph::{LabeledGraph, Score};
    use ktpm_query::TreeQuery;
    use ktpm_runtime::RuntimeGraph;
    use ktpm_storage::MemStore;

    fn compare(g: &LabeledGraph, query: &str, k: usize) {
        let q = TreeQuery::parse(query).unwrap().resolve(g.interner());
        let store = MemStore::with_block_edges(ClosureTables::compute(g), 2);
        let rg = RuntimeGraph::load(&q, &store);
        let dpb: Vec<Score> = DpBEnumerator::new(&rg).take(k).map(|m| m.score).collect();
        let dpp: Vec<Score> = DpPEnumerator::new(&q, &store)
            .take(k)
            .map(|m| m.score)
            .collect();
        assert_eq!(dpb, dpp, "query {query:?}");
    }

    #[test]
    fn agrees_with_dpb_on_fixtures() {
        let g = paper_graph();
        compare(&g, "a -> b\na -> c\nc -> d\nc -> e", 100);
        compare(&g, "a -> c\nc -> d", 100);
        compare(&g, "a => b", 100);
        compare(&g, "a", 100);
        let g = citation_graph();
        compare(&g, "C -> E\nC -> S", 100);
    }

    #[test]
    fn small_k_loads_fewer_edges_than_full_graph() {
        let g = paper_graph();
        let q = TreeQuery::parse("a -> b\na -> c\nc -> d\nc -> e")
            .unwrap()
            .resolve(g.interner());
        let store = MemStore::with_block_edges(ClosureTables::compute(&g), 1);
        let full = RuntimeGraph::load(&q, &store).num_edges() as u64;
        let mut dpp = DpPEnumerator::new(&q, &store);
        let top1 = dpp.next().unwrap();
        assert_eq!(top1.score, 4);
        assert!(dpp.edges_loaded() <= full);
    }

    #[test]
    fn exhausts_cleanly() {
        let g = citation_graph();
        let q = TreeQuery::parse("C -> E\nC -> S")
            .unwrap()
            .resolve(g.interner());
        let store = MemStore::new(ClosureTables::compute(&g));
        let all: Vec<_> = DpPEnumerator::new(&q, &store).collect();
        assert_eq!(all.len(), 5);
        assert!(all.windows(2).all(|w| w[0].score <= w[1].score));
    }
}
