//! Bottom-up `bs` computation over a fully-loaded run-time graph.
//!
//! `bs(v)` is "the lowest score of a match of `T_q(v)` containing `v`"
//! (Equation 2): for every child slot, the minimum of
//! `bs(child) + δ_min(v, child)`, summed over slots. Candidates with an
//! empty slot can never appear in a match and are removed, together with
//! edges pointing at them — the paper's "safely remove `v` from `G_R`"
//! step in §3.3.

use ktpm_graph::Score;
use ktpm_query::QNodeId;
use ktpm_runtime::RuntimeGraph;

/// `bs` values and validity flags per `(query node, candidate index)`.
#[derive(Debug, Clone)]
pub struct BsData {
    /// `bs[u][i]` — best subtree score; meaningful only when valid.
    bs: Vec<Vec<Score>>,
    /// Whether candidate `i` of `u` roots at least one subtree match.
    valid: Vec<Vec<bool>>,
}

impl BsData {
    /// Computes `bs` for every candidate, children before parents
    /// (reverse BFS order; children always have larger indices).
    pub fn compute(rg: &RuntimeGraph) -> Self {
        let tree = rg.query().tree();
        let n_t = tree.len();
        let mut bs: Vec<Vec<Score>> = (0..n_t)
            .map(|u| vec![0; rg.candidates().len(QNodeId(u as u32))])
            .collect();
        let mut valid: Vec<Vec<bool>> = (0..n_t)
            .map(|u| vec![true; rg.candidates().len(QNodeId(u as u32))])
            .collect();
        for ui in (0..n_t).rev() {
            let u = QNodeId(ui as u32);
            if tree.is_leaf(u) {
                continue; // bs = 0, valid = true
            }
            for i in 0..rg.candidates().len(u) {
                let mut total: Score = 0;
                let mut ok = true;
                for &c in tree.children(u) {
                    let mut best: Option<Score> = None;
                    for &(j, dist) in rg.edges(c, i as u32) {
                        if valid[c.index()][j as usize] {
                            let cand = bs[c.index()][j as usize] + dist as Score;
                            best = Some(best.map_or(cand, |b: Score| b.min(cand)));
                        }
                    }
                    match best {
                        Some(b) => total += b,
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                valid[ui][i] = ok;
                bs[ui][i] = if ok { total } else { Score::MAX };
            }
        }
        BsData { bs, valid }
    }

    /// `bs` of candidate `i` of query node `u`.
    #[inline]
    pub fn bs(&self, u: QNodeId, i: u32) -> Score {
        self.bs[u.index()][i as usize]
    }

    /// Whether candidate `i` of `u` roots at least one subtree match.
    #[inline]
    pub fn is_valid(&self, u: QNodeId, i: u32) -> bool {
        self.valid[u.index()][i as usize]
    }

    /// The best (lowest) root `bs` — the top-1 match score, if any match
    /// exists.
    pub fn best_root_score(&self) -> Option<Score> {
        self.bs[0]
            .iter()
            .zip(&self.valid[0])
            .filter(|&(_, &ok)| ok)
            .map(|(&b, _)| b)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ktpm_closure::ClosureTables;
    use ktpm_graph::fixtures::paper_graph;
    use ktpm_query::TreeQuery;
    use ktpm_storage::MemStore;

    fn rg(query: &str) -> RuntimeGraph {
        let g = paper_graph();
        let q = TreeQuery::parse(query).unwrap().resolve(g.interner());
        let store = MemStore::new(ClosureTables::compute(&g));
        RuntimeGraph::load(&q, &store)
    }

    #[test]
    fn fig2_query_bs_values() {
        // Query a -> b, a -> c, c -> d, c -> e over the fixture graph.
        let rg = rg("a -> b\na -> c\nc -> d\nc -> e");
        let data = BsData::compute(&rg);
        // Candidate v1 of root a: b slot min = δ(v1,v3)=1; c slot min =
        // 1 + bs(v5) where bs(v5) = δ(v5,v7) + δ(v5,v9) = 2 -> 3.
        // Total = 1 + 3 = 4.
        assert_eq!(data.best_root_score(), Some(4));
        // v2 (root cand 1) reaches everything through v1 at +1 per edge
        // except b: δ(v2,v3)? v2->v1->v3 = 2. c slot: δ(v2,v5)=2 + bs(v5)=2.
        assert!(data.is_valid(QNodeId(0), 1));
        assert_eq!(data.bs(QNodeId(0), 1), 2 + 2 + 2);
    }

    #[test]
    fn leaves_have_zero_bs() {
        let rg = rg("a -> b");
        let data = BsData::compute(&rg);
        let b = QNodeId(1);
        for i in 0..rg.candidates().len(b) as u32 {
            assert_eq!(data.bs(b, i), 0);
            assert!(data.is_valid(b, i));
        }
    }

    #[test]
    fn candidates_without_slot_edges_are_invalid() {
        // Query c -> s: both c nodes reach an s node, valid. Query s -> a
        // has no edges at all: every s candidate invalid.
        let rg = rg("s -> a");
        let data = BsData::compute(&rg);
        assert_eq!(data.best_root_score(), None);
        for i in 0..rg.candidates().len(QNodeId(0)) as u32 {
            assert!(!data.is_valid(QNodeId(0), i));
        }
    }

    #[test]
    fn invalidity_propagates_upward() {
        // d reaches e (v7->v9) but e reaches nothing labeled b; so in
        // query a -> d, d -> e, e -> b every candidate chain dies at e.
        let rg = rg("a -> d\nd -> e\ne -> b");
        let data = BsData::compute(&rg);
        assert_eq!(data.best_root_score(), None);
    }

    #[test]
    fn single_node_query_scores_zero() {
        let rg = rg("a");
        let data = BsData::compute(&rg);
        assert_eq!(data.best_root_score(), Some(0));
    }
}
