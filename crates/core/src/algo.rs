//! The canonical algorithm registry.
//!
//! Every execution surface — the `ktpm::api` facade, `ktpm query`,
//! the wire protocol's `OPEN <algo> …`, the bench drivers — selects an
//! engine through this one enum, so the set of names, their parsing and
//! their per-algorithm capabilities cannot drift between layers. (The
//! enum lived in `ktpm-service` until the facade redesign; it moved
//! here because core owns the engines and the [`crate::build_stream`]
//! dispatch that constructs them.)

use crate::plan::QueryPlan;
use crate::stream::{build_stream, BoxedMatchStream};
use crate::ParallelPolicy;
use ktpm_exec::WorkerPool;
use std::sync::Arc;

/// The algorithms behind the single [`crate::MatchStream`] surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algo {
    /// Algorithm 1 (`Topk`): full run-time graph load, optimal
    /// per-result delay.
    Topk,
    /// Algorithm 3 (`Topk-EN`): lazy loading with delayed insertion —
    /// the default; cheapest for small `k`.
    TopkEn,
    /// `ParTopk`: root-partitioned parallel execution per a
    /// [`crate::ParallelPolicy`]. Emits exactly the `topk_full` stream.
    Par,
    /// The exhaustive test oracle (exponential; tiny inputs only).
    Brute,
    /// DP-B (ICDE'13 baseline): bottom-up dynamic programming over the
    /// full run-time graph; canonicalized tie order.
    DpB,
    /// DP-P: DP-B over priority-order lazy loading (re-runs §4.1
    /// initialization per stream, hence no plan reuse).
    DpP,
    /// kGPM (§5): ranked graph-pattern enumeration — spanning-tree
    /// matches verified lazily against non-tree edges. Requires a
    /// *pattern* plan ([`QueryPlan::new_pattern`]); the other engines
    /// require tree plans.
    Kgpm,
}

/// What an algorithm supports; see [`Algo::caps`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlgoCaps {
    /// The engine honors [`crate::ParallelPolicy::shards`] > 1 (root
    /// partitioning). Builders reject explicit shard counts on engines
    /// without it instead of silently running sequentially.
    pub sharded: bool,
    /// A warm [`QueryPlan`] removes *all* per-stream setup: building a
    /// stream does no work proportional to the match count. (`Brute`
    /// shares the plan's run-time graph but still materializes the
    /// whole match set per stream, so it does not qualify.)
    pub plan_reuse: bool,
}

impl Algo {
    /// Every algorithm, in documentation order.
    ///
    /// This is the **single source of truth** for algorithm names: the
    /// `OPEN` protocol parser validates against it (via
    /// [`Algo::parse`]), `ktpm query --algo` and the `ktpm::api`
    /// builder route through it, and all render errors with
    /// [`Algo::valid_names`] — the lists cannot drift.
    pub const ALL: [Algo; 7] = [
        Algo::Topk,
        Algo::TopkEn,
        Algo::Par,
        Algo::Brute,
        Algo::DpB,
        Algo::DpP,
        Algo::Kgpm,
    ];

    /// The wire/CLI name (lowercase).
    pub fn name(self) -> &'static str {
        match self {
            Algo::Topk => "topk",
            Algo::TopkEn => "topk-en",
            Algo::Par => "par",
            Algo::Brute => "brute",
            Algo::DpB => "dp-b",
            Algo::DpP => "dp-p",
            Algo::Kgpm => "kgpm",
        }
    }

    /// Parses a wire/CLI name, **case-insensitively** — protocol verbs
    /// are case-insensitive, so `OPEN TOPK …` must select the same
    /// engine as `OPEN topk …` (it used to err). The paper's unhyphened
    /// spellings `dpb`/`dpp` are accepted as aliases.
    pub fn parse(s: &str) -> Option<Algo> {
        let lower = s.to_ascii_lowercase();
        match lower.as_str() {
            "dpb" => return Some(Algo::DpB),
            "dpp" => return Some(Algo::DpP),
            _ => {}
        }
        Algo::ALL.into_iter().find(|a| a.name() == lower)
    }

    /// `"topk | topk-en | par | brute | dp-b | dp-p | kgpm"` — every
    /// [`Algo::ALL`] name,
    /// for error messages (rendered from the const, so it can never go
    /// stale against the algorithm list).
    pub fn valid_names() -> String {
        Algo::ALL
            .iter()
            .map(|a| a.name())
            .collect::<Vec<_>>()
            .join(" | ")
    }

    /// Per-algorithm capability flags.
    pub const fn caps(self) -> AlgoCaps {
        match self {
            Algo::Topk | Algo::TopkEn => AlgoCaps {
                sharded: false,
                plan_reuse: true,
            },
            Algo::Par => AlgoCaps {
                sharded: true,
                plan_reuse: true,
            },
            Algo::Brute => AlgoCaps {
                sharded: false,
                plan_reuse: false,
            },
            // DP-B builds its slot lists from the plan's cached full
            // setup; DP-P's priority loading *is* per-stream work.
            Algo::DpB => AlgoCaps {
                sharded: false,
                plan_reuse: true,
            },
            Algo::DpP => AlgoCaps {
                sharded: false,
                plan_reuse: false,
            },
            // kGPM shards through its ParTopk driver; the pattern
            // plan caches decomposition, setup and the residual bound.
            Algo::Kgpm => AlgoCaps {
                sharded: true,
                plan_reuse: true,
            },
        }
    }

    /// Builds this algorithm's canonical-order match stream from a
    /// shared plan; shorthand for [`crate::build_stream`].
    pub fn stream(
        self,
        plan: &QueryPlan,
        policy: &ParallelPolicy,
        pool: Arc<WorkerPool>,
    ) -> BoxedMatchStream {
        build_stream(self, plan, policy, pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algo_names_roundtrip() {
        for a in Algo::ALL {
            assert_eq!(Algo::parse(a.name()), Some(a));
        }
        assert_eq!(Algo::parse("nope"), None);
        assert_eq!(
            Algo::valid_names(),
            "topk | topk-en | par | brute | dp-b | dp-p | kgpm"
        );
    }

    #[test]
    fn parse_is_case_insensitive() {
        // Like the protocol verbs: `OPEN TOPK ...` must work.
        assert_eq!(Algo::parse("TOPK"), Some(Algo::Topk));
        assert_eq!(Algo::parse("Topk-EN"), Some(Algo::TopkEn));
        assert_eq!(Algo::parse("PAR"), Some(Algo::Par));
        assert_eq!(Algo::parse("BrUtE"), Some(Algo::Brute));
        assert_eq!(Algo::parse("KGPM"), Some(Algo::Kgpm));
        assert_eq!(Algo::parse("DP-B"), Some(Algo::DpB));
    }

    #[test]
    fn unhyphened_dp_aliases_parse() {
        assert_eq!(Algo::parse("dpb"), Some(Algo::DpB));
        assert_eq!(Algo::parse("DPP"), Some(Algo::DpP));
    }

    #[test]
    fn capability_flags() {
        for a in [Algo::Par, Algo::Kgpm] {
            assert!(a.caps().sharded, "{a:?}");
        }
        for a in [Algo::Topk, Algo::TopkEn, Algo::Brute, Algo::DpB, Algo::DpP] {
            assert!(!a.caps().sharded, "{a:?}");
        }
        for a in [Algo::Topk, Algo::TopkEn, Algo::Par, Algo::DpB, Algo::Kgpm] {
            assert!(a.caps().plan_reuse, "{a:?}");
        }
        for a in [Algo::Brute, Algo::DpP] {
            assert!(!a.caps().plan_reuse, "{a:?}");
        }
    }
}
