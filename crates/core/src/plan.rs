//! The shared per-query setup plan.
//!
//! Every enumerator in this crate pays a setup pipeline before the
//! first match comes out: candidate discovery against the closure
//! store, run-time-graph construction (`Topk`/`ParTopk`), the `bs`
//! pass, slot-list construction. The paper's `Topk`/`Topk-EN` split
//! exists precisely because that O(m_R) setup dominates small-`k`
//! queries — and in a serving context the same query is opened over
//! and over, so the setup should be paid **once per query**, not once
//! per session.
//!
//! A [`QueryPlan`] is that factored-out setup state: immutable,
//! `Arc`-shared, and safe to hit from any number of concurrent
//! sessions. It holds two independently lazy halves, each built at
//! most once (`OnceLock`, so racing sessions block on one builder
//! instead of duplicating work):
//!
//! * the **full** half — the loaded [`RuntimeGraph`], its [`BsData`]
//!   and shared [`SlotTemplates`] — feeding `Topk`, `ParTopk`
//!   ([`crate::ShardEngine::Full`]) and the brute oracle;
//! * the **lazy** half ([`LazySetup`]) — the `D`-table candidate sets,
//!   initial `eᵥ` bounds and `E`-seed edges of §4.1 — feeding
//!   `Topk-EN` and `ParTopk`'s lazy shard engine. When the full half
//!   already exists it is *derived* from the loaded graph instead of
//!   re-sweeping storage, so a warm plan never repeats candidate
//!   discovery for any algorithm. Discovery touches only the compact
//!   `D`/`E` tables — never a whole `L` pair region — so over the
//!   paged (format-v3) store the lazy half fetches **zero** group
//!   blocks; edge lists stream later, block by verified block, only
//!   as the Topk-EN priority loader demands them.
//!
//! Per-enumerator state (heaps, cursors, materialized list prefixes)
//! stays private to each enumerator; the plan only shares what is
//! provably identical across sessions of one query.

use crate::bs::BsData;
use crate::decompose::decompose;
use crate::lawler::SlotTemplates;
use ktpm_graph::{Dist, LabelInterner, NodeId, Score};
use ktpm_query::{EdgeKind, GraphQuery, QNodeId, QueryLabel, ResolvedQuery};
use ktpm_runtime::{label_pairs, CandidateSets, RuntimeGraph};
use ktpm_storage::{ClosureSource, ShardSpec, SharedSource};
use std::collections::HashSet;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Canonicalizes query text so semantically identical requests share
/// one plan-cache entry: lines trimmed, inner whitespace collapsed,
/// blank lines dropped. Line *order* is preserved (it defines the
/// tree's BFS numbering). The serving layer and the `ktpm::api` facade
/// both key their plan caches by this text, so their entries
/// interoperate.
pub fn canonical_query_text(query: &str) -> String {
    query
        .lines()
        .map(|l| l.split_whitespace().collect::<Vec<_>>().join(" "))
        .filter(|l| !l.is_empty())
        .collect::<Vec<_>>()
        .join("\n")
}

/// Whether a resolved query reads any of the closure tables in
/// `touched_pairs` — the delta-aware invalidation predicate shared by
/// [`QueryPlan::is_affected_by`] and the serving layer's result cache
/// (which only has query *text* to re-resolve, no plan handle).
///
/// A query reads one closure table per tree edge: the pair
/// `(parent label, child label)`, where a wildcard node reads every
/// table on its side and an unmatchable label reads none. Single-node
/// queries read no pair table at all and are never affected.
pub fn query_reads_touched_pairs(
    query: &ResolvedQuery,
    touched_pairs: &[(ktpm_graph::LabelId, ktpm_graph::LabelId)],
) -> bool {
    if touched_pairs.is_empty() {
        return false;
    }
    let tree = query.tree();
    let matches = |ql: QueryLabel, l: ktpm_graph::LabelId| match ql {
        QueryLabel::Label(have) => have == l,
        QueryLabel::Wildcard => true,
        QueryLabel::Unmatchable => false,
    };
    tree.node_ids().skip(1).any(|u| {
        let p = tree.parent(u).expect("non-root");
        let (pl, ul) = (query.label(p), query.label(u));
        touched_pairs
            .iter()
            .any(|&(a, b)| matches(pl, a) && matches(ul, b))
    })
}

/// The graph-pattern counterpart of [`query_reads_touched_pairs`]: the
/// serving layer's result-cache invalidation, which only has the
/// pattern *text* (no plan handle), re-parses it and asks whether any
/// pattern edge reads a touched **undirected** table
/// ([`ktpm_storage::DeltaReport::undirected_touched_pairs`]). Every
/// edge is checked in both orientations, matching
/// [`QueryPlan::is_affected_by`] on pattern plans; labels missing from
/// the interner have no candidates and read nothing.
pub fn pattern_reads_touched_pairs(
    pattern: &GraphQuery,
    interner: &LabelInterner,
    undirected_touched_pairs: &[(ktpm_graph::LabelId, ktpm_graph::LabelId)],
) -> bool {
    if undirected_touched_pairs.is_empty() {
        return false;
    }
    pattern.edges().iter().any(|&(pa, pb)| {
        let (Some(a), Some(b)) = (
            interner.get(pattern.label(pa)),
            interner.get(pattern.label(pb)),
        ) else {
            return false;
        };
        undirected_touched_pairs
            .iter()
            .any(|&(x, y)| (x, y) == (a, b) || (x, y) == (b, a))
    })
}

/// The immutable, shareable setup state of one query over one store;
/// see module docs. Construction is cheap (no storage access) — the
/// expensive halves materialize on first use and are then shared by
/// every enumerator built from the plan.
///
/// A plan is either a **tree plan** ([`QueryPlan::new`]) or a
/// **pattern plan** ([`QueryPlan::new_pattern`]). A pattern plan *is* a
/// tree plan over the pattern's primary spanning tree and the source's
/// undirected mirror, plus a pattern-metadata half carrying the
/// decomposition — so all the warm-plan machinery (both lazy halves,
/// sharding, `approx_bytes`, session resume) applies wholesale.
pub struct QueryPlan {
    query: ResolvedQuery,
    source: SharedSource,
    pattern: Option<Arc<PatternMeta>>,
    full: OnceLock<FullSetup>,
    lazy: OnceLock<Arc<LazySetup>>,
    builds: AtomicU64,
    graph_version: AtomicU64,
}

/// The graph-pattern half of a pattern plan: the §5 decomposition of
/// the [`GraphQuery`], captured once at plan construction so warm
/// re-opens skip it entirely.
pub(crate) struct PatternMeta {
    /// The pattern as written.
    pub(crate) pattern: GraphQuery,
    /// Driver-tree BFS position → pattern node index.
    pub(crate) pattern_node: Vec<usize>,
    /// Pattern node index → driver-tree BFS position (the inverse).
    pub(crate) tree_pos: Vec<usize>,
    /// Pattern edges the driver tree leaves unverified, as
    /// *tree-position* pairs (precomputed so verification never
    /// searches the mapping).
    pub(crate) non_tree: Vec<(usize, usize)>,
    /// Sum over non-tree edges of each label pair's global minimum
    /// distance (≥ 1 per edge); the §5 termination bound. Lazy: reads
    /// the mirror's `D` tables once, on the first stream build.
    pub(crate) residual_lb: OnceLock<Score>,
}

/// The store cannot serve graph patterns: it has no data graph to
/// build the §5 undirected closure from
/// ([`ktpm_storage::ClosureSource::undirected`] returned `None` — e.g.
/// a persisted closure-only snapshot).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatternUnsupported;

impl fmt::Display for PatternUnsupported {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "graph patterns unsupported: the store has no data graph to \
             build the undirected closure from"
        )
    }
}

impl std::error::Error for PatternUnsupported {}

/// The full-loading half: run-time graph, `bs`, shared slot templates.
pub(crate) struct FullSetup {
    pub(crate) rg: Arc<RuntimeGraph>,
    pub(crate) bs: Arc<BsData>,
    pub(crate) slots: Arc<SlotTemplates>,
}

/// One §4.1 `E`-seeded edge, recorded by data-node id so the same seed
/// list replays under any root-shard restriction (candidate *indices*
/// shift when the root bucket is filtered; node ids do not).
#[derive(Debug, Clone, Copy)]
pub(crate) struct SeedEdge {
    /// Child query node (BFS index; always non-root).
    pub(crate) u: u32,
    /// Parent data node.
    pub(crate) parent: NodeId,
    /// Child data node.
    pub(crate) child: NodeId,
    /// Closure distance of the edge.
    pub(crate) dist: Dist,
}

/// The lazy-loading half of a plan: everything `Topk-EN`'s
/// initialization (§4.1) reads from storage, captured once.
pub(crate) struct LazySetup {
    /// `D`-mode candidate sets (root = full label bucket).
    pub(crate) cands: Arc<CandidateSets>,
    /// Initial `eᵥ` lower bounds per candidate (`dᵅᵥ`).
    pub(crate) evs: Vec<Vec<Dist>>,
    /// `E`-seed edges for `//` leaves, in replay order.
    pub(crate) eseed: Arc<Vec<SeedEdge>>,
}

impl QueryPlan {
    /// A cold plan for `query` over `source`. No storage is touched
    /// until the first enumerator is built from the plan.
    pub fn new(query: ResolvedQuery, source: SharedSource) -> Self {
        let graph_version = AtomicU64::new(source.graph_version());
        QueryPlan {
            query,
            source,
            pattern: None,
            full: OnceLock::new(),
            lazy: OnceLock::new(),
            builds: AtomicU64::new(0),
            graph_version,
        }
    }

    /// A cold **pattern plan** for graph pattern `pattern` over the
    /// store behind `source`: decomposes the pattern (§5), resolves the
    /// primary spanning tree against `interner`, and plans that tree
    /// over the source's undirected mirror. The mirror shares the
    /// directed graph's node ids and label interner ids
    /// ([`ktpm_graph::undirect`] preserves both), so one interner
    /// serves both plan kinds.
    ///
    /// The plan's [`Self::graph_version`] is stamped from the
    /// **directed** source — the version the serving layer's
    /// delta/fencing machinery speaks — not the mirror's internal
    /// counter.
    ///
    /// Errors with [`PatternUnsupported`] when the backend has no data
    /// graph to mirror.
    pub fn new_pattern(
        pattern: GraphQuery,
        interner: &LabelInterner,
        source: &SharedSource,
    ) -> Result<QueryPlan, PatternUnsupported> {
        let mirror = source.undirected().ok_or(PatternUnsupported)?;
        let version = source.graph_version();
        let trees = decompose(&pattern);
        let driver = &trees[0];
        let query = driver.tree.resolve(interner);
        let mut tree_pos = vec![usize::MAX; pattern.len()];
        for (t, &p) in driver.pattern_node.iter().enumerate() {
            tree_pos[p] = t;
        }
        let non_tree = driver
            .non_tree_edges
            .iter()
            .map(|&(a, b)| (tree_pos[a], tree_pos[b]))
            .collect();
        let meta = PatternMeta {
            pattern_node: driver.pattern_node.clone(),
            tree_pos,
            non_tree,
            residual_lb: OnceLock::new(),
            pattern,
        };
        let plan = QueryPlan {
            query,
            source: mirror,
            pattern: Some(Arc::new(meta)),
            full: OnceLock::new(),
            lazy: OnceLock::new(),
            builds: AtomicU64::new(0),
            graph_version: AtomicU64::new(version),
        };
        Ok(plan)
    }

    /// Whether this is a pattern plan (built by [`Self::new_pattern`]).
    pub fn is_pattern(&self) -> bool {
        self.pattern.is_some()
    }

    /// The planned graph pattern, for pattern plans.
    pub fn pattern_query(&self) -> Option<&GraphQuery> {
        self.pattern.as_deref().map(|m| &m.pattern)
    }

    pub(crate) fn pattern_meta(&self) -> Option<&Arc<PatternMeta>> {
        self.pattern.as_ref()
    }

    /// The §5 residual lower bound of a pattern plan: the sum over
    /// non-tree edges of each label pair's global minimum distance in
    /// the mirror's `D` tables (at least 1 per edge — every pattern
    /// edge maps to a path of length ≥ 1). `0` for tree plans and for
    /// patterns whose driver tree covers every edge. Computed once per
    /// plan, so warm re-opens skip the `D` probes too.
    pub(crate) fn residual_lb(&self) -> Score {
        let Some(meta) = self.pattern.as_deref() else {
            return 0;
        };
        *meta.residual_lb.get_or_init(|| {
            meta.non_tree
                .iter()
                .map(|&(ta, tb)| {
                    let (QueryLabel::Label(a), QueryLabel::Label(b)) = (
                        self.query.label(QNodeId(ta as u32)),
                        self.query.label(QNodeId(tb as u32)),
                    ) else {
                        // An unmatchable endpoint: the stream is empty,
                        // any bound is sound.
                        return 1;
                    };
                    self.source
                        .load_d(a, b)
                        .into_iter()
                        .map(|(_, d)| d as Score)
                        .min()
                        .unwrap_or(1)
                        .max(1)
                })
                .sum()
        })
    }

    /// The planned query.
    pub fn query(&self) -> &ResolvedQuery {
        &self.query
    }

    /// The closure store the plan was built over.
    pub fn source(&self) -> &SharedSource {
        &self.source
    }

    /// The shared run-time graph, loading it on first call. Subsequent
    /// calls (from any thread) return the same graph without touching
    /// storage.
    pub fn runtime_graph(&self) -> &Arc<RuntimeGraph> {
        &self.full().rg
    }

    /// The shared `bs` data over [`Self::runtime_graph`].
    pub fn bs_data(&self) -> &Arc<BsData> {
        &self.full().bs
    }

    /// How many setup halves have been materialized so far (0–2). Two
    /// sessions racing on a cold plan still count a single build per
    /// half — the `OnceLock` serializes them.
    pub fn builds(&self) -> u64 {
        self.builds.load(Ordering::Relaxed)
    }

    /// Whether any setup half has been materialized (a "warm" plan).
    pub fn is_warm(&self) -> bool {
        self.full.get().is_some() || self.lazy.get().is_some()
    }

    /// The graph version this plan is valid against. Captured from the
    /// source at construction; bumped via [`Self::stamp_version`] when a
    /// delta leaves the plan's tables untouched.
    pub fn graph_version(&self) -> u64 {
        self.graph_version.load(Ordering::Acquire)
    }

    /// Re-stamps the plan as current for graph version `v`. Only the
    /// invalidation layer calls this, and only after
    /// [`Self::is_affected_by`] proved the delta cannot change any
    /// closure table the plan reads.
    pub fn stamp_version(&self, v: u64) {
        self.graph_version.store(v, Ordering::Release);
    }

    /// Whether a delta that changed exactly the closure tables in
    /// `touched_pairs` can affect this plan's setup or results.
    ///
    /// A **tree plan** reads one closure table per query-tree edge: the
    /// pair `(parent label, child label)`, where a wildcard query node
    /// reads every table on its side. Unmatchable labels have no
    /// candidates and read nothing. Node/label assignment is fixed
    /// under deltas, so a plan none of whose edge pairs is touched
    /// keeps its candidate sets, `eᵥ` bounds, run-time-graph edges, and
    /// result stream bit-for-bit — it survives with a version bump
    /// instead of being dropped.
    ///
    /// A **pattern plan** reads the *undirected* mirror (driver-tree
    /// tables, non-tree `lookup_dist` verification and the residual
    /// `D`-bounds), so callers must pass the
    /// [`ktpm_storage::DeltaReport::undirected_touched_pairs`] half of
    /// the report; every pattern edge is checked in both orientations
    /// (conservative and sound — the mirror's tables are
    /// direction-symmetric in content but reported as ordered pairs).
    pub fn is_affected_by(
        &self,
        touched_pairs: &[(ktpm_graph::LabelId, ktpm_graph::LabelId)],
    ) -> bool {
        match self.pattern.as_deref() {
            None => query_reads_touched_pairs(&self.query, touched_pairs),
            Some(meta) => {
                if touched_pairs.is_empty() {
                    return false;
                }
                meta.pattern.edges().iter().any(|&(pa, pb)| {
                    let (QueryLabel::Label(a), QueryLabel::Label(b)) = (
                        self.query.label(QNodeId(meta.tree_pos[pa] as u32)),
                        self.query.label(QNodeId(meta.tree_pos[pb] as u32)),
                    ) else {
                        // Unmatchable endpoints stay unmatchable under
                        // deltas (node labels never change): no table
                        // read, never affected.
                        return false;
                    };
                    touched_pairs
                        .iter()
                        .any(|&(x, y)| (x, y) == (a, b) || (x, y) == (b, a))
                })
            }
        }
    }

    pub(crate) fn slot_templates(&self) -> &Arc<SlotTemplates> {
        &self.full().slots
    }

    /// Approximate heap bytes held by this plan's materialized halves,
    /// estimated from candidate-list and slot-template lengths (`STATS`
    /// surfaces the per-plan total through the service's plan cache).
    /// A cold plan reports ~0; the estimate grows as halves and slot
    /// lists materialize.
    pub fn approx_bytes(&self) -> u64 {
        let mut total = 0u64;
        if let Some(fs) = self.full.get() {
            let stats = fs.rg.stats();
            // Run-time graph: one (u32, u32) entry per edge plus the
            // candidate index maps; bs: one Score per candidate.
            total += stats.edges as u64 * 8 + stats.nodes as u64 * 4;
            total += stats.nodes as u64 * 8;
            total += fs.slots.approx_bytes() as u64;
        }
        if let Some(lz) = self.lazy.get() {
            let tree = self.query.tree();
            let cand_total: u64 = tree.node_ids().map(|u| lz.cands.len(u) as u64).sum();
            // Candidate node ids + eᵥ bounds + recorded seed edges.
            total += cand_total * 8;
            total += lz.eseed.len() as u64 * std::mem::size_of::<SeedEdge>() as u64;
        }
        total
    }

    pub(crate) fn full(&self) -> &FullSetup {
        self.full.get_or_init(|| {
            self.builds.fetch_add(1, Ordering::Relaxed);
            let rg = Arc::new(RuntimeGraph::load(&self.query, self.source.as_ref()));
            let bs = Arc::new(BsData::compute(&rg));
            let slots = Arc::new(SlotTemplates::new(Arc::clone(&rg), Arc::clone(&bs)));
            FullSetup { rg, bs, slots }
        })
    }

    pub(crate) fn lazy(&self) -> &Arc<LazySetup> {
        self.lazy.get_or_init(|| {
            self.builds.fetch_add(1, Ordering::Relaxed);
            // A loaded run-time graph already contains every edge the
            // D/E sweeps would read — derive instead of re-sweeping.
            Arc::new(match self.full.get() {
                Some(fs) => LazySetup::derive(&fs.rg, self.source.as_ref()),
                None => LazySetup::discover(&self.query, self.source.as_ref(), ShardSpec::full()),
            })
        })
    }
}

impl LazySetup {
    /// §4.1 initialization against storage: `D`-table candidate
    /// discovery plus the `E`-seed edges of `//` leaves, in the exact
    /// order [`crate::PriorityLoader`] historically loaded them (the
    /// replay must reproduce list insertion order bit for bit).
    pub(crate) fn discover(
        query: &ResolvedQuery,
        source: &dyn ClosureSource,
        shard: ShardSpec,
    ) -> LazySetup {
        let (cands, evs) = CandidateSets::from_d_tables_sharded(query, source, shard);
        let tree = query.tree();
        let mut eseed = Vec::new();
        let mut seen: HashSet<(u32, NodeId, NodeId)> = HashSet::new();
        for u in tree.node_ids().skip(1) {
            if !tree.is_leaf(u) || tree.edge_kind(u) != EdgeKind::Descendant {
                continue;
            }
            let p = tree.parent(u).expect("non-root");
            for (a, b) in label_pairs(query, source, p, u) {
                for (parent, child, dist) in source.load_e(a, b) {
                    if seen.insert((u.0, parent, child)) {
                        eseed.push(SeedEdge {
                            u: u.0,
                            parent,
                            child,
                            dist,
                        });
                    }
                }
            }
        }
        LazySetup {
            cands: Arc::new(cands),
            evs,
            eseed: Arc::new(eseed),
        }
    }

    /// The same setup, derived from a loaded run-time graph with zero
    /// storage access: `D` entries are per-candidate minima over the
    /// loaded edge groups, `E` seeds are per-`(parent, child label)`
    /// minima (`source` is consulted for node labels only — an
    /// in-memory accessor on every backend). Equal-distance ties may
    /// pick a different seed *witness* than the stored `E` table
    /// would, which only permutes raw tie order — the canonical
    /// `(score, assignment)` stream is unaffected.
    pub(crate) fn derive(rg: &RuntimeGraph, source: &dyn ClosureSource) -> LazySetup {
        let query = rg.query();
        let tree = query.tree();
        let n_t = tree.len();
        let mut cands: Vec<Vec<NodeId>> = vec![Vec::new(); n_t];
        let mut evs: Vec<Vec<Dist>> = vec![Vec::new(); n_t];
        cands[0] = rg.candidates().of(tree.root()).to_vec();
        evs[0] = vec![0; cands[0].len()];
        for u in tree.node_ids().skip(1) {
            let p = tree.parent(u).expect("non-root");
            let mut best: Vec<Option<Dist>> = vec![None; rg.candidates().len(u)];
            for pi in 0..rg.candidates().len(p) as u32 {
                for &(ci, d) in rg.edges(u, pi) {
                    let b = &mut best[ci as usize];
                    *b = Some(b.map_or(d, |x| x.min(d)));
                }
            }
            for (ci, b) in best.into_iter().enumerate() {
                if let Some(d) = b {
                    cands[u.index()].push(rg.candidates().node(u, ci as u32));
                    evs[u.index()].push(d);
                }
            }
        }
        let mut eseed = Vec::new();
        for u in tree.node_ids().skip(1) {
            if !tree.is_leaf(u) || tree.edge_kind(u) != EdgeKind::Descendant {
                continue;
            }
            let p = tree.parent(u).expect("non-root");
            let mut per_label: Vec<(ktpm_graph::LabelId, Dist, u32)> = Vec::new();
            for pi in 0..rg.candidates().len(p) as u32 {
                // One seed per (parent, child label), mirroring the
                // per-pair `E` tables. Groups are `(dist, index)`-
                // sorted, so the first group entry of each label is
                // that label's minimum.
                per_label.clear();
                for &(ci, dist) in rg.edges(u, pi) {
                    let l = source.node_label(rg.candidates().node(u, ci));
                    if !per_label.iter().any(|&(seen, _, _)| seen == l) {
                        per_label.push((l, dist, ci));
                    }
                }
                per_label.sort_unstable_by_key(|&(l, _, _)| l);
                for &(_, dist, ci) in &per_label {
                    eseed.push(SeedEdge {
                        u: u.0,
                        parent: rg.candidates().node(p, pi),
                        child: rg.candidates().node(u, ci),
                        dist,
                    });
                }
            }
        }
        LazySetup {
            cands: Arc::new(CandidateSets::from_lists(cands)),
            evs,
            eseed: Arc::new(eseed),
        }
    }

    /// This setup with the root bucket restricted to `shard` (non-root
    /// sets and seeds are shard-independent and shared).
    pub(crate) fn restrict_root(&self, shard: ShardSpec) -> LazySetup {
        if shard.is_full() {
            return LazySetup {
                cands: Arc::clone(&self.cands),
                evs: self.evs.clone(),
                eseed: Arc::clone(&self.eseed),
            };
        }
        let cands = Arc::new(self.cands.restrict_root(shard));
        let mut evs = self.evs.clone();
        evs[0] = vec![0; cands.len(QNodeId(0))];
        LazySetup {
            cands,
            evs,
            eseed: Arc::clone(&self.eseed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{canonical, topk_full, TopkEnEnumerator, TopkEnumerator};
    use ktpm_closure::ClosureTables;
    use ktpm_graph::fixtures::{citation_graph, paper_graph};
    use ktpm_graph::LabeledGraph;
    use ktpm_query::TreeQuery;
    use ktpm_storage::MemStore;

    fn plan_for(g: &LabeledGraph, query: &str) -> Arc<QueryPlan> {
        let q = TreeQuery::parse(query).unwrap().resolve(g.interner());
        let store = MemStore::with_block_edges(ClosureTables::compute(g), 2).into_shared();
        Arc::new(QueryPlan::new(q, store))
    }

    fn check_all_paths(g: &LabeledGraph, query: &str) {
        let q = TreeQuery::parse(query).unwrap().resolve(g.interner());
        let store = MemStore::new(ClosureTables::compute(g));
        let want = topk_full(&q, &store, usize::MAX);

        // Full-first plan: Topk, then derived Topk-EN.
        let plan = plan_for(g, query);
        let full: Vec<_> = canonical(TopkEnumerator::from_plan(&plan)).collect();
        assert_eq!(full, want, "plan Topk, query {query:?}");
        let en: Vec<_> = canonical(TopkEnEnumerator::from_plan(&plan)).collect();
        assert_eq!(en, want, "plan Topk-EN (derived), query {query:?}");

        // Lazy-first plan: discovered Topk-EN.
        let plan = plan_for(g, query);
        let en: Vec<_> = canonical(TopkEnEnumerator::from_plan(&plan)).collect();
        assert_eq!(en, want, "plan Topk-EN (discovered), query {query:?}");
    }

    #[test]
    fn plan_backed_enumerators_match_topk_full() {
        let g = paper_graph();
        check_all_paths(&g, "a -> b\na -> c\nc -> d\nc -> e");
        check_all_paths(&g, "a -> c\nc -> d");
        check_all_paths(&g, "a");
        check_all_paths(&g, "a => b");
        check_all_paths(&g, "a#1 -> a#2");
        check_all_paths(&g, "c -> *#1");
        check_all_paths(&g, "s -> a"); // no matches
        let g = citation_graph();
        check_all_paths(&g, "C -> E\nC -> S");
    }

    #[test]
    fn derived_lazy_setup_equals_discovered() {
        let g = paper_graph();
        for query in ["a -> b\na -> c\nc -> d\nc -> e", "a => b", "c -> *#1"] {
            let q = TreeQuery::parse(query).unwrap().resolve(g.interner());
            let store = MemStore::new(ClosureTables::compute(&g)).into_shared();
            let discovered = LazySetup::discover(&q, store.as_ref(), ShardSpec::full());
            let rg = RuntimeGraph::load(&q, store.as_ref());
            let derived = LazySetup::derive(&rg, store.as_ref());
            for u in q.tree().node_ids() {
                assert_eq!(
                    discovered.cands.of(u),
                    derived.cands.of(u),
                    "candidates of {u:?}, query {query:?}"
                );
                assert_eq!(
                    discovered.evs[u.index()],
                    derived.evs[u.index()],
                    "ev bounds of {u:?}, query {query:?}"
                );
            }
            // Seeds: same (child-node, parent, dist) multiset; the tied
            // witness may differ, so compare the canonical projection.
            let canon = |s: &LazySetup| {
                let mut v: Vec<_> = s.eseed.iter().map(|e| (e.u, e.parent, e.dist)).collect();
                v.sort_unstable();
                v
            };
            assert_eq!(
                canon(&discovered),
                canon(&derived),
                "seeds, query {query:?}"
            );
        }
    }

    #[test]
    fn memory_estimate_tracks_materialized_halves() {
        // A cold plan reports ~0 bytes (nothing forced); after an
        // enumerator materializes the full half, the estimate reflects
        // the loaded graph + touched slot templates.
        let g = paper_graph();
        let plan = plan_for(&g, "a -> b\na -> c");
        assert_eq!(plan.approx_bytes(), 0);
        let n = canonical(TopkEnumerator::from_plan(&plan)).count();
        assert!(n > 0);
        assert!(plan.approx_bytes() > 0, "warm plan reports its footprint");
    }

    #[test]
    fn setup_halves_build_once_under_contention() {
        let g = paper_graph();
        let plan = plan_for(&g, "a -> b\na -> c");
        assert!(!plan.is_warm());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let plan = Arc::clone(&plan);
                std::thread::spawn(move || {
                    let a: Vec<_> = canonical(TopkEnumerator::from_plan(&plan)).collect();
                    let b: Vec<_> = canonical(TopkEnEnumerator::from_plan(&plan)).collect();
                    assert_eq!(a, b);
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert!(plan.is_warm());
        assert_eq!(plan.builds(), 2, "one build per half, however many racers");
    }

    #[test]
    fn version_stamp_and_affectedness_predicate() {
        let g = paper_graph();
        let lbl = |n: &str| g.interner().get(n).unwrap();
        let plan = plan_for(&g, "a -> b\na -> c");
        assert_eq!(plan.graph_version(), 0, "snapshot stores pin version 0");

        assert!(!plan.is_affected_by(&[]));
        // (a, b) is a plan edge: affected.
        assert!(plan.is_affected_by(&[(lbl("a"), lbl("b"))]));
        // (c, d) is not: survives.
        assert!(!plan.is_affected_by(&[(lbl("c"), lbl("d"))]));
        // Reversed direction is a different table: survives.
        assert!(!plan.is_affected_by(&[(lbl("b"), lbl("a"))]));

        // Wildcards read every table on their side.
        let wild = plan_for(&g, "c -> *#1");
        assert!(wild.is_affected_by(&[(lbl("c"), lbl("e"))]));
        assert!(!wild.is_affected_by(&[(lbl("a"), lbl("e"))]));

        // Single-node queries read no pair table at all.
        let single = plan_for(&g, "a");
        assert!(!single.is_affected_by(&[(lbl("a"), lbl("b"))]));

        plan.stamp_version(7);
        assert_eq!(plan.graph_version(), 7);
    }

    #[test]
    fn lazy_setup_over_a_paged_store_reads_tables_not_edge_blocks() {
        // The lazy half's candidate discovery replays through D/E
        // tables only; over a format-v3 PagedStore this means no group
        // block is fetched (and none materialized) until the Topk-EN
        // priority loader actually pulls a cursor. Enumeration then
        // matches the in-memory reference exactly.
        let g = citation_graph();
        let q = TreeQuery::parse("C -> E\nC -> S")
            .unwrap()
            .resolve(g.interner());
        let tables = ClosureTables::compute(&g);
        let mut path = std::env::temp_dir();
        path.push(format!("ktpm-plan-paged-{}.bin", std::process::id()));
        ktpm_storage::write_store_v3(&tables, &path, 2).unwrap();
        let paged = ktpm_storage::PagedStore::open(&path).unwrap().into_shared();
        let plan = QueryPlan::new(q.clone(), Arc::clone(&paged));
        paged.reset_io();
        plan.lazy();
        let io = paged.io();
        assert!(io.d_entries > 0, "discovery loads D tables");
        assert_eq!(
            io.edges_read, 0,
            "lazy setup must not materialize any L group block"
        );
        // D/E section bytes ride the shared block cache too, so the
        // misses discovery pays are table reads — never group blocks,
        // which the `edges_read == 0` assertion above pins down.
        assert!(io.cache_misses > 0, "table reads go through the cache");
        let want: Vec<_> = {
            let mem = MemStore::new(tables).into_shared();
            let mem_plan = QueryPlan::new(q, mem);
            canonical(TopkEnEnumerator::from_plan(&mem_plan)).collect()
        };
        let got: Vec<_> = canonical(TopkEnEnumerator::from_plan(&plan)).collect();
        assert_eq!(got, want);
        assert!(
            paged.io().edges_read > 0,
            "enumeration itself streams edges through block cursors"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn warm_plan_enumerators_do_no_storage_io() {
        let g = paper_graph();
        let q = TreeQuery::parse("a -> b\na -> c\nc -> d\nc -> e")
            .unwrap()
            .resolve(g.interner());
        let store = MemStore::new(ClosureTables::compute(&g)).into_shared();
        let plan = QueryPlan::new(q, Arc::clone(&store));
        let cold: Vec<_> = canonical(TopkEnumerator::from_plan(&plan)).collect();
        store.reset_io();
        let warm: Vec<_> = canonical(TopkEnumerator::from_plan(&plan)).collect();
        assert_eq!(cold, warm);
        assert_eq!(
            store.io(),
            ktpm_storage::IoSnapshot::default(),
            "a warm full-plan enumerator must not touch storage"
        );
    }
}
