//! Algorithm 2 — `ComputeFirst`: the A*-style priority loader (§4.2).
//!
//! The loader owns the queue `Q_g` of *active* run-time-graph nodes. A
//! candidate `v` of query node `u` is active when every child slot has at
//! least one loaded edge; its key is
//!
//! ```text
//! lb(v) = b̄s(v) + e_v + L(q(v))          (BoundMode::Tight, §4.2)
//! lb(v) = b̄s(v) + e_v                    (BoundMode::Loose, DP-P's trigger)
//! ```
//!
//! where `b̄s` is the Equation-3 upper bound over the loaded lists, `e_v`
//! lower-bounds the next unloaded incoming edge (`dᵅᵥ` before any block
//! is read, then the last loaded distance), and `L(u) = n_T - 1 - |T_u|`
//! counts the remaining query edges (each costs ≥ 1).
//!
//! Popping the top expands it: incoming blocks are loaded (Lines 10–17)
//! and inserted into the parents' `L`/`H` lists — by Theorem 4.2 the
//! popped node's `b̄s` already equals `bs`, so inserted keys are final.
//! Root-label nodes don't load; their first pop finalizes them into the
//! root list (the top-1 match score is the first such pop).
//!
//! `Q_g` is a binary heap with versioned lazy deletion instead of the
//! paper's Fibonacci heap — same delete-min asymptotics, better
//! constants (documented deviation).

use crate::lawler::SlotLists;
use crate::plan::{LazySetup, SeedEdge};
use ktpm_graph::{Dist, NodeId, Score, INF_DIST};
use ktpm_query::{EdgeKind, QNodeId, ResolvedQuery};
use ktpm_runtime::CandidateSets;
use ktpm_storage::{
    merge_sorted_blocks, ClosureSource, EdgeCursor, ShardSpec, SharedSource, SourceRef,
};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::HashSet;
use std::sync::Arc;

/// Which lower bound drives the loading order (tight = Topk-EN, loose =
/// DP-P; see §4 intro: "we develop a tighter trigger than that in DP-P").
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BoundMode {
    /// `b̄s + e_v + L(q(v))` — the paper's Algorithm 2.
    Tight,
    /// `b̄s + e_v` — no remaining-edges term.
    Loose,
}

enum CursorState {
    Unopened,
    Open(Box<dyn EdgeCursor + Send>),
    Exhausted,
}

/// The priority loader; see module docs.
pub struct PriorityLoader<'s> {
    source: SourceRef<'s>,
    query: ResolvedQuery,
    /// Shared with the setup cache that discovered them (cheap to hand
    /// to every loader of a hot query).
    cands: Arc<CandidateSets>,
    bound: BoundMode,
    // Per query node u.
    children_count: Vec<u32>,
    remaining_edges: Vec<Score>,
    // Per (query node u, candidate i).
    bs_bar: Vec<Vec<Score>>,
    nonempty: Vec<Vec<u32>>,
    active: Vec<Vec<bool>>,
    ev: Vec<Vec<Dist>>,
    version: Vec<Vec<u32>>,
    cursor: Vec<Vec<CursorState>>,
    /// Per (u, i): parent candidate indices already holding this child's
    /// edge (deduplicates `E`-seeded edges against cursor loads).
    seeded: Vec<Vec<HashSet<u32>>>,
    /// Per query node: distinct source labels of its incoming closure
    /// tables (cached once — cursor opens are hot).
    src_labels: Vec<Vec<ktpm_graph::LabelId>>,
    root_final: Vec<bool>,
    /// `(lb, u, i, version)` min-heap with lazy deletion.
    qg: BinaryHeap<Reverse<(Score, u32, u32, u32)>>,
    /// Slot lists touched since the last [`Self::clear_dirty`];
    /// `(0, 0)` denotes the root list.
    dirty: Vec<(u32, u32)>,
    /// Edges inserted into lists so far (reported as loaded `m'_R`).
    edges_inserted: u64,
}

impl<'s> PriorityLoader<'s> {
    /// Initialization (Algorithm 2 Lines 1–3): loads the `D` tables for
    /// every query edge and the `E` tables for `//` edges into leaves;
    /// activates leaves and `E`-completed nodes; seeds `Q_g`.
    pub fn new(
        query: &ResolvedQuery,
        source: &'s dyn ClosureSource,
        bound: BoundMode,
        lists: &mut SlotLists,
    ) -> Self {
        Self::with_source(
            query,
            SourceRef::Borrowed(source),
            bound,
            lists,
            ShardSpec::full(),
        )
    }

    /// As [`Self::new`] over a shared (`Arc`) source: the loader owns a
    /// reference-counted handle instead of a borrow, so the resulting
    /// `PriorityLoader<'static>` can live inside long-running sessions
    /// and move across worker threads.
    pub fn new_shared(
        query: &ResolvedQuery,
        source: SharedSource,
        bound: BoundMode,
        lists: &mut SlotLists,
    ) -> PriorityLoader<'static> {
        PriorityLoader::with_source(
            query,
            SourceRef::Shared(source),
            bound,
            lists,
            ShardSpec::full(),
        )
    }

    /// As [`Self::new_shared`], restricted to matches rooted in `shard`:
    /// the root candidate bucket is filtered, so loading is driven only
    /// by this shard's sub-universe. The `Q_g` bound stays a valid lower
    /// bound for the restricted universe — it ranges over a superset of
    /// the matter the shard can use, so it can only be conservative.
    pub fn new_sharded(
        query: &ResolvedQuery,
        source: SharedSource,
        bound: BoundMode,
        lists: &mut SlotLists,
        shard: ShardSpec,
    ) -> PriorityLoader<'static> {
        PriorityLoader::with_source(query, SourceRef::Shared(source), bound, lists, shard)
    }

    fn with_source(
        query: &ResolvedQuery,
        source: SourceRef<'s>,
        bound: BoundMode,
        lists: &mut SlotLists,
        shard: ShardSpec,
    ) -> Self {
        let setup = LazySetup::discover(query, source.get(), shard);
        Self::from_setup(query, source, bound, lists, &setup)
    }

    /// Builds a loader from an already-discovered [`LazySetup`] (a
    /// `QueryPlan`'s cached §4.1 initialization): candidate sets are
    /// shared, `eᵥ` bounds copied, and the `E`-seed edges replayed in
    /// their recorded order — so construction performs **no** storage
    /// reads. Per-loader state (cursors, `Q_g`, loaded edges) starts
    /// fresh, exactly as a cold build would.
    pub(crate) fn from_setup(
        query: &ResolvedQuery,
        source: SourceRef<'s>,
        bound: BoundMode,
        lists: &mut SlotLists,
        setup: &LazySetup,
    ) -> Self {
        let tree = query.tree();
        let n_t = tree.len();
        let src = source.get();
        let cands = Arc::clone(&setup.cands);
        *lists = SlotLists::empty_shaped(
            tree,
            &(0..n_t)
                .map(|u| cands.len(QNodeId(u as u32)))
                .collect::<Vec<_>>(),
        );
        let children_count: Vec<u32> = tree
            .node_ids()
            .map(|u| tree.children(u).len() as u32)
            .collect();
        let remaining_edges: Vec<Score> =
            tree.node_ids().map(|u| tree.remaining_edges(u)).collect();
        let sizes: Vec<usize> = (0..n_t).map(|u| cands.len(QNodeId(u as u32))).collect();
        let src_labels: Vec<Vec<ktpm_graph::LabelId>> = tree
            .node_ids()
            .map(|u| match tree.parent(u) {
                Some(p) => {
                    let mut ls: Vec<_> = ktpm_runtime_label_pairs(query, src, p, u)
                        .into_iter()
                        .map(|(a, _)| a)
                        .collect();
                    ls.sort_unstable();
                    ls.dedup();
                    ls
                }
                None => Vec::new(),
            })
            .collect();
        let mut loader = PriorityLoader {
            source,
            query: query.clone(),
            cands,
            bound,
            children_count,
            remaining_edges,
            bs_bar: sizes.iter().map(|&n| vec![Score::MAX; n]).collect(),
            nonempty: sizes.iter().map(|&n| vec![0; n]).collect(),
            active: sizes.iter().map(|&n| vec![false; n]).collect(),
            ev: setup.evs.clone(),
            version: sizes.iter().map(|&n| vec![0; n]).collect(),
            cursor: sizes
                .iter()
                .map(|&n| (0..n).map(|_| CursorState::Unopened).collect())
                .collect(),
            seeded: sizes.iter().map(|&n| vec![HashSet::new(); n]).collect(),
            src_labels,
            root_final: vec![false; sizes[0]],
            qg: BinaryHeap::new(),
            dirty: Vec::new(),
            edges_inserted: 0,
        };
        // Leaves are trivially active with b̄s = 0.
        for u in tree.node_ids() {
            if !tree.is_leaf(u) {
                continue;
            }
            for i in 0..loader.cands.len(u) as u32 {
                loader.active[u.index()][i as usize] = true;
                loader.bs_bar[u.index()][i as usize] = 0;
                loader.push_qg(u.0, i);
            }
        }
        // Replay the recorded E-seeds (Line 1: "for each loaded Eᵅᵦ
        // there must be an edge (u, u') in T ... and u' is a leaf").
        // Seeds carry data-node ids: under a root-shard restriction
        // `index_of` filters out-of-shard parents exactly as the
        // original `load_e` loop did.
        for &SeedEdge {
            u,
            parent,
            child,
            dist,
        } in setup.eseed.iter()
        {
            let un = QNodeId(u);
            let p = tree.parent(un).expect("seeded nodes are non-root");
            let (Some(pi), Some(ci)) = (
                loader.cands.index_of(p, parent),
                loader.cands.index_of(un, child),
            ) else {
                continue;
            };
            if loader.seeded[un.index()][ci as usize].insert(pi) {
                loader.note_insert(lists, u, pi, dist as Score, ci);
            }
        }
        loader
    }

    /// The current best lower bound in `Q_g` (`None` once everything
    /// relevant has been loaded).
    pub fn qg_top(&mut self) -> Option<Score> {
        self.clean_qg();
        self.qg.peek().map(|&Reverse((lb, _, _, _))| lb)
    }

    /// Pops and expands the top of `Q_g`. Returns `false` when `Q_g` is
    /// exhausted. Root pops finalize the root into the root list.
    pub fn expand_top(&mut self, lists: &mut SlotLists) -> bool {
        self.clean_qg();
        let Some(Reverse((_, u, i, _))) = self.qg.pop() else {
            return false;
        };
        self.version[u as usize][i as usize] += 1;
        if u == 0 {
            self.finalize_root(lists, i);
            return true;
        }
        self.expand(lists, u, i);
        true
    }

    /// Runs Algorithm 2 to completion: expands until the first root-label
    /// node tops `Q_g`, returning the top-1 match score.
    pub fn compute_first(&mut self, lists: &mut SlotLists) -> Option<Score> {
        loop {
            self.clean_qg();
            let &Reverse((_, u, i, _)) = self.qg.peek()?;
            self.qg.pop();
            self.version[u as usize][i as usize] += 1;
            if u == 0 {
                let score = self.bs_bar[0][i as usize];
                self.finalize_root(lists, i);
                return Some(score);
            }
            self.expand(lists, u, i);
        }
    }

    /// Candidate sets (shared with the enumeration layer).
    pub fn candidates(&self) -> &CandidateSets {
        self.cands.as_ref()
    }

    /// Slot lists touched since the last [`Self::clear_dirty`];
    /// `(0, 0)` is the root list. Keys may repeat — callers dedup.
    pub fn dirty(&self) -> &[(u32, u32)] {
        &self.dirty
    }

    /// Resets the dirty-list log, keeping its buffer (the log/clear
    /// cycle runs once per expansion batch and must not allocate).
    pub fn clear_dirty(&mut self) {
        self.dirty.clear();
    }

    /// Total edges inserted into lists (the measured `m'_R`).
    pub fn edges_inserted(&self) -> u64 {
        self.edges_inserted
    }

    fn lb(&self, u: u32, i: u32) -> Score {
        let base = self.bs_bar[u as usize][i as usize];
        if u == 0 || base == Score::MAX {
            return base;
        }
        let ev = self.ev[u as usize][i as usize];
        if ev == INF_DIST {
            return Score::MAX;
        }
        let mut lb = base + ev as Score;
        if self.bound == BoundMode::Tight {
            lb += self.remaining_edges[u as usize];
        }
        lb
    }

    fn push_qg(&mut self, u: u32, i: u32) {
        let lb = self.lb(u, i);
        if lb == Score::MAX {
            return; // exhausted or inactive: never re-enters Q_g
        }
        let ver = self.version[u as usize][i as usize];
        self.qg.push(Reverse((lb, u, i, ver)));
    }

    fn clean_qg(&mut self) {
        while let Some(&Reverse((_, u, i, ver))) = self.qg.peek() {
            if self.version[u as usize][i as usize] != ver {
                self.qg.pop();
            } else {
                break;
            }
        }
    }

    fn finalize_root(&mut self, lists: &mut SlotLists, i: u32) {
        if !self.root_final[i as usize] {
            self.root_final[i as usize] = true;
            lists.root.insert(self.bs_bar[0][i as usize], i);
            self.dirty.push((0, 0));
        }
    }

    /// Inserts one loaded edge into the slot list of `(parent(u), pi)` and
    /// propagates activation / b̄s decrease upward (Lines 12–13).
    fn note_insert(&mut self, lists: &mut SlotLists, u: u32, pi: u32, key: Score, ci: u32) {
        let p = self
            .query
            .tree()
            .parent(QNodeId(u))
            .expect("note_insert is for non-root nodes")
            .0;
        let list = lists.slot(u, pi);
        let old_first = list.first();
        list.insert(key, ci);
        self.edges_inserted += 1;
        self.dirty.push((u, pi));
        match old_first {
            None => {
                self.nonempty[p as usize][pi as usize] += 1;
                if self.nonempty[p as usize][pi as usize] == self.children_count[p as usize] {
                    // Activation: compute b̄s from the slot minima.
                    let tree = self.query.tree();
                    let mut total: Score = 0;
                    for &c in tree.children(QNodeId(p)) {
                        total += lists
                            .slot(c.0, pi)
                            .first()
                            .expect("slot counted as non-empty")
                            .0;
                    }
                    self.bs_bar[p as usize][pi as usize] = total;
                    self.active[p as usize][pi as usize] = true;
                    self.push_qg(p, pi);
                }
            }
            Some((old_key, _)) if key < old_key && self.active[p as usize][pi as usize] => {
                let entry = &mut self.bs_bar[p as usize][pi as usize];
                *entry -= old_key - key;
                self.version[p as usize][pi as usize] += 1;
                self.push_qg(p, pi);
            }
            _ => {}
        }
    }

    /// Lines 10–17: loads incoming blocks of candidate `i` of query node
    /// `u`, continuing while the estimated next block would still top
    /// `Q_g`.
    fn expand(&mut self, lists: &mut SlotLists, u: u32, i: u32) {
        let un = QNodeId(u);
        let tree = self.query.tree();
        let p = tree.parent(un).expect("non-root").0;
        let direct_only = tree.edge_kind(un) == EdgeKind::Child;
        let bsv = self.bs_bar[u as usize][i as usize];
        debug_assert_ne!(bsv, Score::MAX, "expanded nodes are active");
        if matches!(self.cursor[u as usize][i as usize], CursorState::Unopened) {
            let cur = self.open_cursor(un, i);
            self.cursor[u as usize][i as usize] = cur;
        }
        loop {
            let CursorState::Open(cursor) = &mut self.cursor[u as usize][i as usize] else {
                self.ev[u as usize][i as usize] = INF_DIST;
                return;
            };
            let block = cursor.next_block();
            if block.is_empty() {
                self.cursor[u as usize][i as usize] = CursorState::Exhausted;
                self.ev[u as usize][i as usize] = INF_DIST;
                return;
            }
            let done_after = cursor.remaining() == 0;
            let mut last_dist = 0;
            let mut useless_tail = false;
            let mut inserts: Vec<(u32, Score)> = Vec::new();
            for (w, dist) in block {
                last_dist = dist;
                if direct_only && dist > 1 {
                    // Blocks are distance-ascending: nothing else can
                    // satisfy a '/' edge.
                    useless_tail = true;
                    break;
                }
                if let Some(pi) = self.cands.index_of(QNodeId(p), w) {
                    if !self.seeded[u as usize][i as usize].contains(&pi) {
                        inserts.push((pi, bsv + dist as Score));
                    }
                }
            }
            for (pi, key) in inserts {
                self.note_insert(lists, u, pi, key, i);
            }
            if useless_tail || done_after {
                self.cursor[u as usize][i as usize] = CursorState::Exhausted;
                self.ev[u as usize][i as usize] = INF_DIST;
                return;
            }
            self.ev[u as usize][i as usize] = last_dist;
            // Line 14: keep loading while the next block estimate still
            // tops Q_g; otherwise re-enter the queue with the new bound.
            let next_lb = self.lb(u, i);
            match self.qg_top() {
                Some(top) if next_lb <= top => continue,
                _ => {
                    self.push_qg(u, i);
                    return;
                }
            }
        }
    }

    /// Opens the incoming cursor of candidate `i` of `u`. Multi-label
    /// parents (wildcards) get an eager merged cursor.
    fn open_cursor(&mut self, u: QNodeId, i: u32) -> CursorState {
        let v = self.cands.node(u, i);
        let src_labels = &self.src_labels[u.index()];
        match src_labels.len() {
            0 => CursorState::Exhausted,
            1 => CursorState::Open(self.source.get().incoming_cursor(src_labels[0], v)),
            _ => {
                // Wildcard-labeled parent: merge all labels' lists eagerly.
                let mut parts = Vec::with_capacity(src_labels.len());
                for &a in src_labels {
                    let mut cur = self.source.get().incoming_cursor(a, v);
                    let mut all = Vec::new();
                    loop {
                        let b = cur.next_block();
                        if b.is_empty() {
                            break;
                        }
                        all.extend(b);
                    }
                    parts.push(all);
                }
                CursorState::Open(Box::new(VecCursor {
                    entries: merge_sorted_blocks(parts),
                    pos: 0,
                    block: 64,
                }))
            }
        }
    }
}

/// Eager cursor over a pre-merged list (wildcard parents).
struct VecCursor {
    entries: Vec<(NodeId, Dist)>,
    pos: usize,
    block: usize,
}

impl EdgeCursor for VecCursor {
    fn next_block(&mut self) -> Vec<(NodeId, Dist)> {
        if self.pos >= self.entries.len() {
            return Vec::new();
        }
        let take = (self.entries.len() - self.pos).min(self.block);
        let out = self.entries[self.pos..self.pos + take].to_vec();
        self.pos += take;
        out
    }

    fn remaining(&self) -> usize {
        self.entries.len() - self.pos
    }
}

use ktpm_runtime::label_pairs as ktpm_runtime_label_pairs;

#[cfg(test)]
mod tests {
    use super::*;
    use ktpm_closure::ClosureTables;
    use ktpm_graph::fixtures::paper_graph;
    use ktpm_graph::LabeledGraph;
    use ktpm_query::TreeQuery;
    use ktpm_storage::MemStore;

    fn first_score(g: &LabeledGraph, query: &str, bound: BoundMode) -> (Option<Score>, u64) {
        let q = TreeQuery::parse(query).unwrap().resolve(g.interner());
        let store = MemStore::with_block_edges(ClosureTables::compute(g), 2);
        let mut lists = SlotLists::default();
        let mut loader = PriorityLoader::new(&q, &store, bound, &mut lists);
        let s = loader.compute_first(&mut lists);
        (s, loader.edges_inserted())
    }

    #[test]
    fn top1_score_matches_full_computation() {
        let g = paper_graph();
        let (s, _) = first_score(&g, "a -> b\na -> c\nc -> d\nc -> e", BoundMode::Tight);
        assert_eq!(s, Some(4));
    }

    #[test]
    fn loose_bound_same_score_more_edges() {
        let g = paper_graph();
        let (st, tight_edges) = first_score(&g, "a -> b\na -> c\nc -> d\nc -> e", BoundMode::Tight);
        let (sl, loose_edges) = first_score(&g, "a -> b\na -> c\nc -> d\nc -> e", BoundMode::Loose);
        assert_eq!(st, sl);
        assert!(
            tight_edges <= loose_edges,
            "tight trigger must not load more edges ({tight_edges} vs {loose_edges})"
        );
    }

    #[test]
    fn no_match_returns_none() {
        let g = paper_graph();
        let (s, _) = first_score(&g, "s -> a", BoundMode::Tight);
        assert_eq!(s, None);
        let (s, _) = first_score(&g, "a -> nolabel", BoundMode::Tight);
        assert_eq!(s, None);
    }

    #[test]
    fn single_node_query_top1_is_zero() {
        let g = paper_graph();
        let (s, edges) = first_score(&g, "a", BoundMode::Tight);
        assert_eq!(s, Some(0));
        assert_eq!(edges, 0);
    }

    #[test]
    fn child_edge_query() {
        let g = paper_graph();
        // a => b: only direct a->b edges (v1->v3 at 1). Top-1 total must
        // then be 1.
        let (s, _) = first_score(&g, "a => b", BoundMode::Tight);
        assert_eq!(s, Some(1));
    }

    #[test]
    fn example_4_2_loads_few_edges() {
        // Build the Figure 4 graph: T = a -> b, a -> c, c -> d over a GR
        // where v1(a) has child v2(b) at 1, children v3..v6 (c) and each
        // c-node reaches v7(d). The loader must find top-1 = 3 without
        // loading incoming edges of v3, v4, v6.
        let mut b = ktpm_graph::GraphBuilder::new();
        let v1 = b.add_node("a");
        let v2 = b.add_node("b");
        let v3 = b.add_node("c");
        let v4 = b.add_node("c");
        let v5 = b.add_node("c");
        let v6 = b.add_node("c");
        let v7 = b.add_node("d");
        b.add_edge(v1, v2, 1);
        b.add_edge(v1, v3, 1);
        b.add_edge(v1, v4, 4);
        b.add_edge(v1, v5, 1);
        b.add_edge(v1, v6, 2);
        b.add_edge(v3, v7, 3);
        b.add_edge(v4, v7, 1);
        b.add_edge(v5, v7, 1);
        b.add_edge(v6, v7, 1);
        let g = b.build().unwrap();
        let q = TreeQuery::parse("a -> b\na -> c\nc -> d")
            .unwrap()
            .resolve(g.interner());
        let store = MemStore::with_block_edges(ClosureTables::compute(&g), 1);
        let mut lists = SlotLists::default();
        let mut loader = PriorityLoader::new(&q, &store, BoundMode::Tight, &mut lists);
        let s = loader.compute_first(&mut lists);
        // Top-1: v1 with b=v2 (1) + best c-child: v5 with 1 + bs(v5)=1 -> 3.
        assert_eq!(s, Some(3));
        // E-seeding covers all c->d edges; expansion should only have
        // loaded incoming edges of v5 (the popped c-node), i.e. far fewer
        // than the full runtime graph (9 closure edges among labels).
        let full = ktpm_runtime::RuntimeGraph::load(&q, &store).num_edges() as u64;
        assert!(
            loader.edges_inserted() < full,
            "lazy loading must not materialize the full run-time graph ({} vs {full})",
            loader.edges_inserted()
        );
    }
}
