//! Algorithm 3 — `Topk-EN`: Lawler enumeration over the lazily-loaded
//! run-time graph (§4.3).
//!
//! The enumerator interleaves two priority queues:
//!
//! * `Q` — finalized candidates (their subspace's best match is certain);
//! * `Q_g` — the loader's queue of nodes with unloaded incoming edges.
//!
//! A candidate computed from the current (incomplete) `L`/`H` lists is
//! inserted into `Q` only when its score is at most the top of `Q_g` —
//! by Theorem 4.1 no match involving an unloaded edge can then beat it.
//! Otherwise it is *parked* and linked to the lists it depends on; every
//! expansion re-evaluates parked candidates on the touched lists and
//! promotes those the risen `Q_g` bound now certifies. Candidates whose
//! replacement rank does not exist yet are parked with score ∞ (§4.3:
//! "an empty match in a subspace may become nonempty later").

use crate::lawler::{LawlerCore, SlotLists};
use crate::loader::{BoundMode, PriorityLoader};
use crate::matches::{CandidateSpec, HeapEntry, ScoredMatch};
use crate::plan::{LazySetup, QueryPlan};
use ktpm_graph::Score;
use ktpm_query::{QNodeId, ResolvedQuery};
use ktpm_storage::{ClosureSource, SharedSource, SourceRef};
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::Arc;

/// Algorithm 3: the `Topk-EN` enumerator. Yields matches in
/// non-decreasing score order; `take(k)` gives the top-k.
///
/// Specs refer to their generating popped match by **arena id** (the
/// `parent` of the internal `CandidateSpec`); the parked machinery
/// resolves the single assignment position it needs per spec through
/// arena point lookups — no popped match is ever cloned or
/// materialized off the emission path.
pub struct TopkEnEnumerator<'s> {
    query: ResolvedQuery,
    core: LawlerCore,
    lists: SlotLists,
    loader: PriorityLoader<'s>,
    specs: Vec<CandidateSpec>,
    /// Finalized candidates, keyed `(score, seq, spec id)`.
    q: BinaryHeap<HeapEntry>,
    /// Parked candidate ids per list key (`(0,0)` = root list).
    parked_by_list: HashMap<(u32, u32), Vec<u32>>,
    parked_alive: Vec<bool>,
    parked_version: Vec<u32>,
    /// Parked candidates keyed `(score, spec id, version)` — versioned
    /// lazy deletion.
    parked_heap: BinaryHeap<HeapEntry>,
    /// Reused divide output buffer (cleared each pop).
    div_buf: Vec<(CandidateSpec, bool)>,
    /// Reused dirty-key dedup scratch for [`Self::after_expand`].
    dirty_scratch: HashSet<(u32, u32)>,
    initial_created: bool,
    flushed: bool,
    seq: u32,
}

impl<'s> TopkEnEnumerator<'s> {
    /// Builds the enumerator (runs the §4.1 initialization; no edges
    /// beyond `D`/`E` tables are loaded until iteration starts).
    pub fn new(query: &ResolvedQuery, source: &'s dyn ClosureSource) -> Self {
        Self::with_bound(query, source, BoundMode::Tight)
    }

    /// As [`Self::new`] over a shared (`Arc`) source. The returned
    /// `TopkEnEnumerator<'static>` owns everything it needs — it can be
    /// parked in a session table, resumed later, and moved between
    /// worker threads (it is `Send`).
    pub fn new_shared(query: &ResolvedQuery, source: SharedSource) -> TopkEnEnumerator<'static> {
        Self::with_bound_shared(query, source, BoundMode::Tight)
    }

    /// The partitioned form: enumerates only matches whose *root* data
    /// node lies in `shard`, loading lazily like [`Self::new`] but driven
    /// solely by this shard's root bucket. Used by `ParTopk`'s lazy
    /// shard engine.
    pub fn new_sharded(
        query: &ResolvedQuery,
        source: SharedSource,
        shard: ktpm_storage::ShardSpec,
    ) -> TopkEnEnumerator<'static> {
        let mut lists = SlotLists::default();
        let loader =
            PriorityLoader::new_sharded(query, source, BoundMode::Tight, &mut lists, shard);
        TopkEnEnumerator::from_parts(query, loader, lists)
    }

    /// Algorithm 3 over a shared [`QueryPlan`]: the §4.1 candidate
    /// discovery (`D`/`E` table sweeps) comes from the plan — computed
    /// on its first use, shared ever after — so constructing this
    /// enumerator on a warm plan performs **zero** storage reads. Edge
    /// loading during iteration stays lazy and per-enumerator, exactly
    /// as with [`Self::new`].
    pub fn from_plan(plan: &QueryPlan) -> TopkEnEnumerator<'static> {
        Self::from_setup(
            plan.query(),
            Arc::clone(plan.source()),
            BoundMode::Tight,
            plan.lazy(),
        )
    }

    /// As [`Self::from_plan`] from an explicit setup (used by
    /// `ParTopk`'s lazy shard engine with root-restricted setups).
    pub(crate) fn from_setup(
        query: &ResolvedQuery,
        source: SharedSource,
        bound: BoundMode,
        setup: &LazySetup,
    ) -> TopkEnEnumerator<'static> {
        let mut lists = SlotLists::default();
        let loader =
            PriorityLoader::from_setup(query, SourceRef::Shared(source), bound, &mut lists, setup);
        TopkEnEnumerator::from_parts(query, loader, lists)
    }

    /// As [`Self::new_shared`] with an explicit bound mode.
    pub fn with_bound_shared(
        query: &ResolvedQuery,
        source: SharedSource,
        bound: BoundMode,
    ) -> TopkEnEnumerator<'static> {
        let mut lists = SlotLists::default();
        let loader = PriorityLoader::new_shared(query, source, bound, &mut lists);
        TopkEnEnumerator::from_parts(query, loader, lists)
    }

    /// As [`Self::new`] with an explicit bound mode (the loose mode is
    /// used by DP-P comparisons and the ablation bench).
    pub fn with_bound(
        query: &ResolvedQuery,
        source: &'s dyn ClosureSource,
        bound: BoundMode,
    ) -> Self {
        let mut lists = SlotLists::default();
        let loader = PriorityLoader::new(query, source, bound, &mut lists);
        Self::from_parts(query, loader, lists)
    }

    fn from_parts(query: &ResolvedQuery, loader: PriorityLoader<'s>, lists: SlotLists) -> Self {
        // Arena hint: every root candidate pops at least once before
        // the stream ends, so the root bucket size is a cheap estimate.
        let hint = loader.candidates().len(QNodeId(0));
        let core = LawlerCore::new(query.tree(), hint.max(16));
        TopkEnEnumerator {
            query: query.clone(),
            core,
            lists,
            loader,
            specs: Vec::new(),
            q: BinaryHeap::new(),
            parked_by_list: HashMap::new(),
            parked_alive: Vec::new(),
            parked_version: Vec::new(),
            parked_heap: BinaryHeap::new(),
            div_buf: Vec::new(),
            dirty_scratch: HashSet::new(),
            initial_created: false,
            flushed: false,
            seq: 0,
        }
    }

    /// Edges loaded from storage so far (the paper's `m'_R`).
    pub fn edges_loaded(&self) -> u64 {
        self.loader.edges_inserted()
    }

    fn push_q(&mut self, id: u32, score: Score) {
        self.specs[id as usize].score = score;
        self.q.push(HeapEntry {
            key: score,
            a: self.seq,
            b: id,
        });
        self.seq += 1;
    }

    fn list_key(&self, spec: &CandidateSpec) -> (u32, u32) {
        if spec.pos == 0 {
            (0, 0)
        } else {
            let p = self
                .query
                .tree()
                .parent(QNodeId(spec.pos))
                .expect("non-root")
                .0;
            let pi = self.core.node_at(spec.parent, p);
            (spec.pos, pi)
        }
    }

    fn park(&mut self, id: u32, score: Score) {
        let key = self.list_key(&self.specs[id as usize]);
        self.parked_by_list.entry(key).or_default().push(id);
        if self.parked_alive.len() <= id as usize {
            self.parked_alive.resize(id as usize + 1, false);
            self.parked_version.resize(id as usize + 1, 0);
        }
        self.parked_alive[id as usize] = true;
        self.specs[id as usize].score = score;
        if score != Score::MAX {
            self.parked_heap.push(HeapEntry {
                key: score,
                a: id,
                b: self.parked_version[id as usize],
            });
        }
    }

    fn place(&mut self, spec: CandidateSpec, known: bool, gtop: Option<Score>) {
        let id = self.specs.len() as u32;
        self.specs.push(spec);
        if known && gtop.is_none_or(|g| spec.score <= g) {
            self.push_q(id, spec.score);
        } else {
            self.park(id, if known { spec.score } else { Score::MAX });
        }
    }

    /// Re-evaluates parked candidates on freshly dirtied lists and
    /// promotes everything the current `Q_g` bound certifies.
    /// Allocation-free in steady state: the dirty-key dedup set, the
    /// per-key id vectors and the loader's dirty buffer are all reused.
    fn after_expand(&mut self) {
        let mut dirty = std::mem::take(&mut self.dirty_scratch);
        dirty.clear();
        dirty.extend(self.loader.dirty().iter().copied());
        self.loader.clear_dirty();
        for &key in &dirty {
            if key == (0, 0) && !self.initial_created && !self.lists.root.is_empty() {
                self.initial_created = true;
                if let Some(init) = self.core.initial_candidate(&mut self.lists) {
                    let id = self.specs.len() as u32;
                    self.specs.push(init);
                    self.push_q(id, init.score);
                }
            }
            // Take the key's id list out, re-insert after the sweep:
            // nothing in the loop parks, so the list cannot grow under
            // us, and this avoids cloning it per dirtied key.
            let Some(ids) = self.parked_by_list.remove(&key) else {
                continue;
            };
            for &id in &ids {
                if !self.parked_alive[id as usize] {
                    continue;
                }
                let spec = self.specs[id as usize];
                if let Some(score) = self.core.reevaluate(&mut self.lists, &spec) {
                    self.specs[id as usize].score = score;
                    self.parked_version[id as usize] += 1;
                    self.parked_heap.push(HeapEntry {
                        key: score,
                        a: id,
                        b: self.parked_version[id as usize],
                    });
                }
            }
            self.parked_by_list.insert(key, ids);
        }
        self.dirty_scratch = dirty;
        self.promote_parked();
    }

    /// Moves parked candidates whose score is certified by `Q_g` into `Q`.
    fn promote_parked(&mut self) {
        loop {
            let gtop = self.loader.qg_top();
            let Some(&HeapEntry {
                key: score,
                a: id,
                b: ver,
            }) = self.parked_heap.peek()
            else {
                return;
            };
            if !self.parked_alive[id as usize] || self.parked_version[id as usize] != ver {
                self.parked_heap.pop();
                continue;
            }
            if let Some(g) = gtop {
                if score > g {
                    return;
                }
            }
            self.parked_heap.pop();
            let spec = self.specs[id as usize];
            match self.core.reevaluate(&mut self.lists, &spec) {
                Some(ns) if gtop.is_none_or(|g| ns <= g) => {
                    self.parked_alive[id as usize] = false;
                    self.push_q(id, ns);
                }
                Some(ns) => {
                    self.specs[id as usize].score = ns;
                    self.parked_version[id as usize] += 1;
                    self.parked_heap.push(HeapEntry {
                        key: ns,
                        a: id,
                        b: self.parked_version[id as usize],
                    });
                    if ns >= score {
                        // Accurate score still above the bound: stop here
                        // (the heap top cannot certify either).
                        if gtop.is_some_and(|g| ns > g) {
                            return;
                        }
                    }
                }
                None => {
                    // Rank vanished is impossible (lists only grow); treat
                    // as still-unknown.
                    self.specs[id as usize].score = Score::MAX;
                    self.parked_version[id as usize] += 1;
                }
            }
        }
    }

    /// Once `Q_g` is exhausted the lists are final: every parked
    /// candidate with an existing rank becomes a regular `Q` entry.
    fn flush_all_parked(&mut self) {
        if self.flushed {
            return;
        }
        self.flushed = true;
        if !self.initial_created && !self.lists.root.is_empty() {
            self.initial_created = true;
            if let Some(init) = self.core.initial_candidate(&mut self.lists) {
                let id = self.specs.len() as u32;
                self.specs.push(init);
                self.push_q(id, init.score);
            }
        }
        let all: Vec<u32> = self
            .parked_by_list
            .values()
            .flat_map(|v| v.iter().copied())
            .collect();
        for id in all {
            if id as usize >= self.parked_alive.len() || !self.parked_alive[id as usize] {
                continue;
            }
            let spec = self.specs[id as usize];
            if let Some(score) = self.core.reevaluate(&mut self.lists, &spec) {
                self.parked_alive[id as usize] = false;
                self.push_q(id, score);
            }
        }
    }

    fn emit(&mut self) -> ScoredMatch {
        let HeapEntry { b: id, .. } = self.q.pop().expect("emit called with non-empty Q");
        let spec = self.specs[id as usize];
        let m_id = self.core.materialize(&mut self.lists, spec);
        let gtop = self.loader.qg_top();
        let mut children = std::mem::take(&mut self.div_buf);
        self.core.divide_into(&mut self.lists, m_id, &mut children);
        for &(child, known) in &children {
            self.place(child, known, gtop);
        }
        children.clear();
        self.div_buf = children;
        // Emission-time materialization off the arena's scratch row.
        let score = self.core.score(m_id);
        let tree = self.query.tree();
        let asn = self.core.load_assignment(m_id);
        let assignment = tree
            .node_ids()
            .map(|u| self.loader.candidates().node(u, asn[u.index()]))
            .collect();
        ScoredMatch { score, assignment }
    }
}

impl Iterator for TopkEnEnumerator<'_> {
    type Item = ScoredMatch;

    fn next(&mut self) -> Option<ScoredMatch> {
        loop {
            let qtop = self.q.peek().map(|e| e.key);
            let gtop = self.loader.qg_top();
            match (qtop, gtop) {
                (Some(qs), Some(gs)) if qs <= gs => return Some(self.emit()),
                (Some(_), None) => return Some(self.emit()),
                (_, Some(_)) => {
                    // Batch expansions: parked re-evaluation is monotone
                    // (lists only grow, the bound only rises), so running
                    // it once per batch is equivalent and much cheaper
                    // than once per pop.
                    for _ in 0..16 {
                        if !self.loader.expand_top(&mut self.lists) {
                            break;
                        }
                        let done = match (self.q.peek().map(|e| e.key), self.loader.qg_top()) {
                            (Some(qs), Some(gs)) => qs <= gs,
                            (_, None) => true,
                            (None, _) => false,
                        };
                        if done {
                            break;
                        }
                    }
                    self.after_expand();
                }
                (None, None) => {
                    if self.flushed {
                        return None;
                    }
                    self.flush_all_parked();
                    if self.q.is_empty() {
                        return None;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lawler::TopkEnumerator;
    use ktpm_closure::ClosureTables;
    use ktpm_graph::fixtures::{citation_graph, paper_graph};
    use ktpm_graph::LabeledGraph;
    use ktpm_query::TreeQuery;
    use ktpm_runtime::RuntimeGraph;
    use ktpm_storage::MemStore;

    fn compare_with_full(g: &LabeledGraph, query: &str, k: usize) {
        let q = TreeQuery::parse(query).unwrap().resolve(g.interner());
        let store = MemStore::with_block_edges(ClosureTables::compute(g), 2);
        let rg = RuntimeGraph::load(&q, &store);
        let full: Vec<Score> = TopkEnumerator::new(&rg).take(k).map(|m| m.score).collect();
        let en: Vec<Score> = TopkEnEnumerator::new(&q, &store)
            .take(k)
            .map(|m| m.score)
            .collect();
        assert_eq!(full, en, "query {query:?}");
    }

    #[test]
    fn agrees_with_full_on_paper_graph() {
        let g = paper_graph();
        compare_with_full(&g, "a -> b\na -> c\nc -> d\nc -> e", 100);
        compare_with_full(&g, "a -> c\nc -> d", 100);
        compare_with_full(&g, "a -> b", 100);
        compare_with_full(&g, "c -> d\nc -> e\nc -> s", 100);
    }

    #[test]
    fn agrees_with_full_on_citation_graph() {
        let g = citation_graph();
        compare_with_full(&g, "C -> E\nC -> S", 100);
        compare_with_full(&g, "C -> E", 100);
    }

    #[test]
    fn agrees_on_child_edges_and_single_node() {
        let g = paper_graph();
        compare_with_full(&g, "a => b", 100);
        compare_with_full(&g, "a => c\nc => d", 100);
        compare_with_full(&g, "a", 100);
    }

    #[test]
    fn agrees_on_duplicate_labels_and_wildcards() {
        let g = paper_graph();
        compare_with_full(&g, "a#1 -> a#2", 100);
        compare_with_full(&g, "c -> *#1", 100);
        compare_with_full(&g, "a -> *#1\n*#1 -> s", 100);
    }

    #[test]
    fn loads_fewer_edges_than_full_for_small_k() {
        let g = paper_graph();
        let q = TreeQuery::parse("a -> b\na -> c\nc -> d\nc -> e")
            .unwrap()
            .resolve(g.interner());
        let store = MemStore::with_block_edges(ClosureTables::compute(&g), 1);
        let full_edges = RuntimeGraph::load(&q, &store).num_edges() as u64;
        let mut en = TopkEnEnumerator::new(&q, &store);
        let top1 = en.next().unwrap();
        assert_eq!(top1.score, 4);
        assert!(
            en.edges_loaded() <= full_edges,
            "EN loaded {} vs full {full_edges}",
            en.edges_loaded()
        );
    }

    #[test]
    fn exhausts_to_none() {
        let g = citation_graph();
        let q = TreeQuery::parse("C -> E\nC -> S")
            .unwrap()
            .resolve(g.interner());
        let store = MemStore::new(ClosureTables::compute(&g));
        let mut en = TopkEnEnumerator::new(&q, &store);
        let all: Vec<_> = en.by_ref().collect();
        assert_eq!(all.len(), 5);
        assert_eq!(en.next(), None);
        assert_eq!(en.next(), None);
    }

    #[test]
    fn no_match_queries_yield_nothing() {
        let g = paper_graph();
        let q = TreeQuery::parse("s -> a").unwrap().resolve(g.interner());
        let store = MemStore::new(ClosureTables::compute(&g));
        assert_eq!(TopkEnEnumerator::new(&q, &store).count(), 0);
    }

    #[test]
    fn shared_enumerator_is_send_and_agrees_with_borrowed() {
        fn assert_send<T: Send>(_: &T) {}
        let g = citation_graph();
        let q = TreeQuery::parse("C -> E\nC -> S")
            .unwrap()
            .resolve(g.interner());
        let store = MemStore::with_block_edges(ClosureTables::compute(&g), 2);
        let borrowed: Vec<Score> = TopkEnEnumerator::new(&q, &store).map(|m| m.score).collect();
        let mut shared = TopkEnEnumerator::new_shared(&q, store.into_shared());
        assert_send(&shared);
        // Drive it from another thread — the whole point of `new_shared`.
        let scores: Vec<Score> = std::thread::spawn(move || {
            let first = shared.next().map(|m| m.score);
            first
                .into_iter()
                .chain(shared.by_ref().map(|m| m.score))
                .collect()
        })
        .join()
        .unwrap();
        assert_eq!(borrowed, scores);
    }
}
