//! Match representation: the compact candidate encoding of §3.3 and the
//! arena-backed deviation encoding behind every popped match.
//!
//! Following "Recovering the Match from Score", a candidate produced by
//! a subspace division is **not** stored as a full assignment: it is a
//! link to the popped match that generated it, the replaced position,
//! the rank of the replacement inside the relevant `L`/`H` list, and
//! the score (computed in O(1) as the parent's score plus the local key
//! difference).
//!
//! Popped matches themselves use the same idea one level up
//! ([`MatchArena`]): each one is a compact record `(parent id, div_pos,
//! rank_at_div, score)` plus a *patch* — the `(position, candidate)`
//! pairs this match changed relative to its parent (the replaced
//! position and its re-derived subtree, recorded at pop time so
//! reconstruction never depends on later list growth). All patches live
//! in one flat pool; nothing in the pop → divide → emit cycle allocates
//! per match. Full assignments materialize only at emission, by a
//! parent-pointer walk bounded by periodic checkpoints (a record whose
//! chain depth reaches [`MatchArena::CHECKPOINT_DEPTH`] stores its
//! whole row, so walks are O(depth × patch) with a small constant).

use ktpm_graph::{NodeRow, Score};

/// A fully-materialized top-k result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScoredMatch {
    /// Total penalty score (Definition 2.2).
    pub score: Score,
    /// Mapped data node per query node, in the query's BFS node order.
    /// Inline (allocation-free) for queries up to
    /// [`NodeRow::INLINE`] nodes.
    pub assignment: NodeRow,
}

/// Sentinel "no parent" id (the initial top-1 candidate).
pub(crate) const NO_PARENT: u32 = u32::MAX;

/// A compact, not-yet-materialized candidate (one subspace's best match).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct CandidateSpec {
    /// Score of the candidate match.
    pub score: Score,
    /// Id of the popped match this candidate replaces one node of
    /// (`NO_PARENT` for the initial top-1 candidate).
    pub parent: u32,
    /// The replaced position (query node BFS index; 0 = root).
    pub pos: u32,
    /// Rank of the replacement within the `(parent candidate, slot)` list.
    pub rank: u32,
}

/// A compact min-heap entry: `BinaryHeap<HeapEntry>` pops the smallest
/// `(key, a, b)` triple. One flat 16-byte struct instead of the nested
/// `Reverse<(Score, u32, u32)>` tuples the queues used to hold —
/// the `Q`/`Q_l` queues key it as `(score, insertion seq, spec id)`,
/// the parked heap of `Topk-EN` as `(score, spec id, version)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct HeapEntry {
    /// Primary key (a match score).
    pub key: Score,
    /// First tie-breaker.
    pub a: u32,
    /// Second tie-breaker / payload.
    pub b: u32,
}

impl Ord for HeapEntry {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed so the std max-heap pops the minimum.
        (other.key, other.a, other.b).cmp(&(self.key, self.a, self.b))
    }
}

impl PartialOrd for HeapEntry {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// One popped match's compact record; see module docs.
#[derive(Debug, Clone, Copy)]
struct DevRecord {
    /// Arena id of the popped match this one deviates from
    /// (`NO_PARENT` for the initial top-1).
    parent: u32,
    /// Total score.
    score: Score,
    /// The position where this match's subspace division starts (`j` in
    /// §3.2), `NO_PARENT` for the initial top-1 (divides everywhere).
    div_pos: u32,
    /// The rank of this match's element at `div_pos` within its list
    /// (`|U_j| + 1`); drives the Theorem 3.1 chain.
    rank_at_div: u32,
    /// This record's `(position, candidate)` patch in the shared pool.
    patch_start: u32,
    patch_len: u32,
    /// Parent-pointer distance to the nearest self-contained record
    /// (0 = this record's patch covers every position).
    depth: u32,
}

/// The arena of popped matches; see module docs. One arena per
/// enumerator — `ParTopk` shards each own one, so the k-way merge
/// stays lock-free.
#[derive(Debug)]
pub(crate) struct MatchArena {
    n_t: usize,
    recs: Vec<DevRecord>,
    /// Flat `(position, candidate index)` patch pool.
    pool: Vec<(u32, u32)>,
    /// Scratch row: the assignment of `scratch_for` (or the row being
    /// built between `begin` and `commit`).
    scratch: Vec<u32>,
    /// Arena id the scratch currently holds; `NO_PARENT` when dirty.
    scratch_for: u32,
    /// The patch being collected between `begin` and `commit`.
    pending: Vec<(u32, u32)>,
    /// Walk scratch for reconstruction (record ids, newest first).
    walk: Vec<u32>,
}

impl MatchArena {
    /// A chain of deviation records longer than this is cut by storing
    /// the full row: reconstruction walks are bounded, at ~1/32 of the
    /// memory a full-row-per-match (clone) encoding would pay.
    pub(crate) const CHECKPOINT_DEPTH: u32 = 32;

    /// An empty arena for `n_t`-node queries, sized for about
    /// `hint` popped matches up front.
    pub(crate) fn new(n_t: usize, hint: usize) -> Self {
        let hint = hint.min(1 << 16);
        MatchArena {
            n_t,
            recs: Vec::with_capacity(hint),
            // Most deviations patch a leaf (1 entry) or a small
            // subtree; 2/record absorbs typical shapes.
            pool: Vec::with_capacity(hint.saturating_mul(2)),
            scratch: vec![u32::MAX; n_t],
            scratch_for: NO_PARENT,
            pending: Vec::with_capacity(n_t),
            walk: Vec::new(),
        }
    }

    pub(crate) fn score(&self, id: u32) -> Score {
        self.recs[id as usize].score
    }

    pub(crate) fn div_pos(&self, id: u32) -> u32 {
        self.recs[id as usize].div_pos
    }

    pub(crate) fn rank_at_div(&self, id: u32) -> u32 {
        self.recs[id as usize].rank_at_div
    }

    /// Starts building a new match deviating from `parent`: the scratch
    /// row is loaded with the parent's assignment (all-`MAX` for
    /// `NO_PARENT`) and the pending patch cleared. Memoized: when the
    /// scratch already holds `parent` (the common chain case) nothing
    /// is walked.
    pub(crate) fn begin(&mut self, parent: u32) {
        self.pending.clear();
        if parent == NO_PARENT {
            self.scratch.fill(u32::MAX);
            self.scratch_for = NO_PARENT;
            return;
        }
        self.load(parent);
        // The scratch is about to diverge from `parent`.
        self.scratch_for = NO_PARENT;
    }

    /// Sets one position of the row being built, recording it in the
    /// pending patch.
    #[inline]
    pub(crate) fn set(&mut self, pos: u32, node: u32) {
        self.scratch[pos as usize] = node;
        self.pending.push((pos, node));
    }

    /// The row being built (or the row of the last `load`).
    #[inline]
    pub(crate) fn scratch_at(&self, pos: u32) -> u32 {
        self.scratch[pos as usize]
    }

    /// Finishes the record begun by [`Self::begin`], returning its id.
    pub(crate) fn commit(
        &mut self,
        parent: u32,
        score: Score,
        div_pos: u32,
        rank_at_div: u32,
    ) -> u32 {
        let depth = if parent == NO_PARENT {
            0
        } else {
            self.recs[parent as usize].depth + 1
        };
        let patch_start = self.pool.len() as u32;
        let (patch_len, depth) = if depth >= Self::CHECKPOINT_DEPTH || parent == NO_PARENT {
            // Self-contained record: store the whole row so walks
            // terminate here. (The initial match writes every position
            // anyway; checkpoints pay n_t entries once per
            // CHECKPOINT_DEPTH chain links.)
            self.pool
                .extend((0..self.n_t).map(|p| (p as u32, self.scratch[p])));
            (self.n_t as u32, 0)
        } else {
            self.pool.extend_from_slice(&self.pending);
            (self.pending.len() as u32, depth)
        };
        let id = self.recs.len() as u32;
        self.recs.push(DevRecord {
            parent,
            score,
            div_pos,
            rank_at_div,
            patch_start,
            patch_len,
            depth,
        });
        self.scratch_for = id;
        id
    }

    fn is_full(&self, id: u32) -> bool {
        self.recs[id as usize].patch_len as usize == self.n_t
    }

    fn apply_patch(&mut self, id: u32) {
        let r = self.recs[id as usize];
        let start = r.patch_start as usize;
        for i in start..start + r.patch_len as usize {
            let (pos, node) = self.pool[i];
            self.scratch[pos as usize] = node;
        }
    }

    /// Loads match `id`'s full assignment into the scratch row
    /// (allocation-free; memoized on `scratch_for`) and returns it.
    /// This is the emission-time materialization walk: ancestors up to
    /// the nearest self-contained record, patches applied oldest-first.
    pub(crate) fn load(&mut self, id: u32) -> &[u32] {
        if self.scratch_for != id {
            let mut walk = std::mem::take(&mut self.walk);
            walk.clear();
            let mut cur = id;
            loop {
                walk.push(cur);
                if self.is_full(cur) {
                    break;
                }
                cur = self.recs[cur as usize].parent;
                debug_assert_ne!(cur, NO_PARENT, "walks end at a full record");
            }
            for rid in walk.iter().rev() {
                self.apply_patch(*rid);
            }
            self.walk = walk;
            self.scratch_for = id;
        }
        &self.scratch
    }

    /// The candidate at one `pos`ition of match `id`, without
    /// materializing the row: the parent-pointer walk stops at the
    /// first (newest) patch covering `pos`. Used by the parked-spec
    /// machinery of `Topk-EN`, which only ever needs single positions
    /// of arbitrary (not-current) parents.
    pub(crate) fn node_at(&self, id: u32, pos: u32) -> u32 {
        if self.scratch_for == id {
            return self.scratch[pos as usize];
        }
        let mut cur = id;
        loop {
            let r = &self.recs[cur as usize];
            if r.patch_len as usize == self.n_t {
                // Full rows are written in position order: direct index.
                return self.pool[r.patch_start as usize + pos as usize].1;
            }
            let start = r.patch_start as usize;
            // Newest-first: within one record later writes win, so scan
            // the patch backwards.
            for i in (start..start + r.patch_len as usize).rev() {
                let (p, node) = self.pool[i];
                if p == pos {
                    return node;
                }
            }
            cur = r.parent;
            debug_assert_ne!(cur, NO_PARENT, "walks end at a full record");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    #[test]
    fn heap_entry_pops_minimum_triple() {
        let mut h = BinaryHeap::new();
        for (key, a, b) in [(5u64, 1, 1), (2, 9, 9), (2, 3, 7), (2, 3, 4)] {
            h.push(HeapEntry { key, a, b });
        }
        let order: Vec<_> = std::iter::from_fn(|| h.pop().map(|e| (e.key, e.a, e.b))).collect();
        assert_eq!(order, vec![(2, 3, 4), (2, 3, 7), (2, 9, 9), (5, 1, 1)]);
    }

    /// Drives an arena alongside a plain clone-based mirror through a
    /// pseudo-random deviation tree: every `load`/`node_at` must agree
    /// with the mirror, across checkpoint boundaries.
    #[test]
    fn arena_reconstruction_matches_clone_mirror() {
        let n_t = 5usize;
        let mut arena = MatchArena::new(n_t, 8);
        let mut mirror: Vec<Vec<u32>> = Vec::new();
        let mut state = 0x5EEDu64;
        let mut rnd = move |m: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % m) as u32
        };
        // Initial match.
        arena.begin(NO_PARENT);
        let init: Vec<u32> = (0..n_t as u32).map(|_| rnd(100)).collect();
        for (p, &v) in init.iter().enumerate() {
            arena.set(p as u32, v);
        }
        assert_eq!(arena.commit(NO_PARENT, 0, NO_PARENT, 1), 0);
        mirror.push(init);
        // 200 deviations from random parents (long chains cross the
        // checkpoint depth).
        for i in 1..200u32 {
            // Bias towards the previous record so chains grow deep.
            let parent = if rnd(4) > 0 { i - 1 } else { rnd(i as u64) };
            let pos = rnd(n_t as u64);
            arena.begin(parent);
            let mut row = mirror[parent as usize].clone();
            // Patch `pos` and a couple of later positions, as a real
            // subtree re-derivation would.
            for p in pos..n_t as u32 {
                if p == pos || rnd(2) == 0 {
                    let v = rnd(100);
                    arena.set(p, v);
                    row[p as usize] = v;
                }
            }
            let id = arena.commit(parent, i as Score, pos, 2);
            assert_eq!(id, i);
            mirror.push(row);
        }
        // Point lookups against a *cold* scratch.
        for i in (0..200u32).rev() {
            for pos in 0..n_t as u32 {
                assert_eq!(
                    arena.node_at(i, pos),
                    mirror[i as usize][pos as usize],
                    "node_at({i}, {pos})"
                );
            }
        }
        // Full loads in pseudo-random order.
        for _ in 0..300 {
            let i = rnd(200);
            assert_eq!(arena.load(i), &mirror[i as usize][..], "load({i})");
        }
    }

    #[test]
    fn checkpoints_bound_walk_depth() {
        let n_t = 3usize;
        let mut arena = MatchArena::new(n_t, 8);
        arena.begin(NO_PARENT);
        for p in 0..n_t as u32 {
            arena.set(p, p);
        }
        arena.commit(NO_PARENT, 0, NO_PARENT, 1);
        // One long Theorem-3.1 chain.
        for i in 1..200u32 {
            arena.begin(i - 1);
            arena.set(2, 100 + i);
            arena.commit(i - 1, i as Score, 2, i + 1);
        }
        for id in 0..200u32 {
            let d = arena.recs[id as usize].depth;
            assert!(d < MatchArena::CHECKPOINT_DEPTH, "depth {d} at {id}");
        }
        // Deep record reconstructs correctly despite the cut chains.
        assert_eq!(arena.load(199), &[0, 1, 299][..]);
        assert_eq!(arena.node_at(150, 2), 250);
    }
}
