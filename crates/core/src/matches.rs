//! Match representation and the compact candidate encoding of §3.3.
//!
//! Following "Recovering the Match from Score", a candidate produced by a
//! subspace division is **not** stored as a full assignment: it is a link
//! to the popped match that generated it, the replaced position, the rank
//! of the replacement inside the relevant `L`/`H` list, and the score
//! (computed in O(1) as the parent's score plus the local key
//! difference). Full assignments are materialized only for matches
//! actually popped as top-l results, in O(n_T) each.

use ktpm_graph::{NodeId, Score};

/// A fully-materialized top-k result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScoredMatch {
    /// Total penalty score (Definition 2.2).
    pub score: Score,
    /// Mapped data node per query node, in the query's BFS node order.
    pub assignment: Vec<NodeId>,
}

/// Sentinel "no parent" id (the initial top-1 candidate).
pub(crate) const NO_PARENT: u32 = u32::MAX;

/// A popped (output) match with its division bookkeeping.
#[derive(Debug, Clone)]
pub(crate) struct PoppedMatch {
    /// Candidate index per query node (dense per-node indices).
    pub assignment: Vec<u32>,
    /// Total score.
    pub score: Score,
    /// The position where this match's subspace division starts (`j` in
    /// §3.2), `NO_PARENT` for the initial top-1 (divides everywhere).
    pub div_pos: u32,
    /// The rank of this match's element at `div_pos` within its list
    /// (`|U_j| + 1`); drives the Theorem 3.1 chain.
    pub rank_at_div: u32,
}

/// A compact, not-yet-materialized candidate (one subspace's best match).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct CandidateSpec {
    /// Score of the candidate match.
    pub score: Score,
    /// Id of the popped match this candidate replaces one node of
    /// (`NO_PARENT` for the initial top-1 candidate).
    pub parent: u32,
    /// The replaced position (query node BFS index; 0 = root).
    pub pos: u32,
    /// Rank of the replacement within the `(parent candidate, slot)` list.
    pub rank: u32,
}
