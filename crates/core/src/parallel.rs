//! `ParTopk` — parallel partitioned top-k enumeration.
//!
//! The paper's enumerators are strictly sequential per query. Ranked-
//! enumeration theory (Tziavelis et al., *Optimal Join Algorithms Meet
//! Top-k*) observes that any-k enumeration decomposes by disjoint
//! subproblem and re-merges through a heap without losing the score-
//! order guarantee. Here the decomposition is by **root candidate**:
//! a [`ktpm_storage::ShardSpec`] split slices the root candidate set
//! into `P` disjoint, exhaustive shards; each shard runs an independent
//! sequential enumerator ([`TopkEnumerator`] over a *shared* run-time
//! graph, or [`TopkEnEnumerator`] over the shared store), and the
//! shard streams are lazily k-way merged on `(score, assignment)`.
//! Because each stream is first put into the canonical order
//! ([`crate::partition`]), the merged stream equals [`crate::topk_full`]
//! exactly — order, scores and witnesses — for every shard count.
//!
//! ## Scheduling
//!
//! Shard work runs as **finite jobs** on a shared [`WorkerPool`]
//! (`ktpm-exec`): setup plus one batch of matches per job, enumerator
//! state handed back to the caller between batches. Jobs never block on
//! other jobs, so any number of concurrent `ParTopk` runs share one
//! pool without deadlock, and a `ParTopk` parked inside a service
//! session holds no pool thread. The merge refills every near-empty
//! shard in one scatter, so balanced streams keep all workers busy
//! while skewed streams only pay for what the merge actually consumes
//! (at most one batch of lookahead per shard).

use crate::enhanced::TopkEnEnumerator;
use crate::lawler::TopkEnumerator;
use crate::matches::ScoredMatch;
use crate::partition::{canonical, Canonical};
use crate::plan::QueryPlan;
use ktpm_exec::WorkerPool;
use ktpm_graph::{NodeRow, Score};
use ktpm_query::ResolvedQuery;
use ktpm_storage::{ShardSpec, SharedSource};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;

/// Which sequential enumerator runs inside each shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardEngine {
    /// Algorithm 1 per shard over one *shared* run-time graph: the
    /// O(m_R) load and `bs` pass happen once, shards build their slot
    /// lists on demand. Best when several/all shards will be consumed.
    Full,
    /// Algorithm 3 per shard: each shard loads lazily from the shared
    /// store, driven by its own root bucket. Cheapest for tiny `k` on
    /// huge graphs; candidate discovery is done once per run (shared
    /// through the plan) and root-restricted per shard.
    Lazy,
}

/// How a query is split across shard workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelPolicy {
    /// Number of root shards (1 = sequential execution on the pool).
    pub shards: usize,
    /// Matches pulled from a shard per job; bounds both per-shard
    /// lookahead and scheduling overhead.
    pub batch: usize,
    /// The per-shard enumerator.
    pub engine: ShardEngine,
}

impl Default for ParallelPolicy {
    fn default() -> Self {
        ParallelPolicy {
            shards: std::thread::available_parallelism().map_or(4, |n| n.get().clamp(1, 8)),
            batch: 64,
            engine: ShardEngine::Full,
        }
    }
}

impl ParallelPolicy {
    /// A policy with `shards` shards and default batch/engine.
    pub fn with_shards(shards: usize) -> Self {
        ParallelPolicy {
            shards,
            ..ParallelPolicy::default()
        }
    }
}

/// One shard's sequential enumerator, already in canonical order.
/// Boxed: the enumerators are hundreds of bytes and hop between the
/// caller and pool workers every batch.
enum ShardIter {
    Full(Box<Canonical<TopkEnumerator<'static>>>),
    Lazy(Box<Canonical<TopkEnEnumerator<'static>>>),
}

impl Iterator for ShardIter {
    type Item = ScoredMatch;

    fn next(&mut self) -> Option<ScoredMatch> {
        match self {
            ShardIter::Full(it) => it.next(),
            ShardIter::Lazy(it) => it.next(),
        }
    }
}

/// Pulls up to `n` matches; the flag is false once the stream ended.
fn pull(it: &mut ShardIter, n: usize) -> (VecDeque<ScoredMatch>, bool) {
    let mut out = VecDeque::with_capacity(n);
    for _ in 0..n {
        match it.next() {
            Some(m) => out.push_back(m),
            None => return (out, false),
        }
    }
    (out, true)
}

/// A shard's parked enumerator (`None` once exhausted) plus the batch
/// buffer the merge drains between refills.
struct ShardStream {
    iter: Option<ShardIter>,
    buf: VecDeque<ScoredMatch>,
}

type ShardJobResult = (Option<ShardIter>, VecDeque<ScoredMatch>);

/// The parallel enumerator's execution mode.
enum ParInner {
    /// One shard covers the whole root set: scatter, batching and the
    /// k-way merge all collapse — the run *is* its single canonical
    /// shard stream, driven inline on the calling thread with zero
    /// pool round-trips (`ParTopk/1` used to cost ~2x plain `Topk`
    /// purely in scheduling and buffering overhead).
    Single(ShardIter),
    /// The genuinely partitioned form: per-shard batch jobs on the
    /// pool, lazily k-way merged.
    Multi {
        shards: Vec<ShardStream>,
        /// Merge heap: the current head of every live shard, keyed by
        /// the canonical `(score, assignment)` order (shard index only
        /// breaks the tie between — impossible — identical
        /// assignments). Rows are memoized [`NodeRow`]s moved through
        /// the heap, so the tiebreak never re-materializes a match.
        heap: BinaryHeap<Reverse<(Score, NodeRow, usize)>>,
        pool: Arc<WorkerPool>,
        batch: usize,
    },
}

/// The lazily merged parallel enumerator; see module docs. Yields the
/// exact [`crate::topk_full`] stream; `take(k)` gives the top-k.
pub struct ParTopk {
    inner: ParInner,
    shards: usize,
}

/// Builds one shard's canonical enumerator per the policy's engine.
fn shard_iter(plan: &QueryPlan, engine: ShardEngine, spec: ShardSpec) -> ShardIter {
    match engine {
        ShardEngine::Full => ShardIter::Full(Box::new(canonical(TopkEnumerator::from_templates(
            Arc::clone(plan.slot_templates()),
            spec,
        )))),
        ShardEngine::Lazy => {
            let restricted = plan.lazy().restrict_root(spec);
            ShardIter::Lazy(Box::new(canonical(TopkEnEnumerator::from_setup(
                plan.query(),
                Arc::clone(plan.source()),
                crate::BoundMode::Tight,
                &restricted,
            ))))
        }
    }
}

impl ParTopk {
    /// Splits `query` per `policy` and runs shard setup (plus each
    /// shard's first batch) concurrently on `pool`, over a transient
    /// one-run [`QueryPlan`]. Callers that serve the same query
    /// repeatedly should hold a plan and use [`Self::from_plan`], which
    /// skips every per-query setup cost on warm runs.
    pub fn new(
        query: &ResolvedQuery,
        source: SharedSource,
        policy: &ParallelPolicy,
        pool: Arc<WorkerPool>,
    ) -> ParTopk {
        Self::from_plan(&QueryPlan::new(query.clone(), source), policy, pool)
    }

    /// As [`Self::new`] over a shared [`QueryPlan`]: shard setup comes
    /// from the plan (run-time graph + `bs` + slot templates for
    /// [`ShardEngine::Full`], cached candidate discovery for
    /// [`ShardEngine::Lazy`]), built on the plan's first use and shared
    /// by every later run *and* by the `P` shards of this run. With one
    /// shard the pool is bypassed entirely (the run drives its single
    /// canonical shard stream inline).
    pub fn from_plan(plan: &QueryPlan, policy: &ParallelPolicy, pool: Arc<WorkerPool>) -> ParTopk {
        let batch = policy.batch.max(1);
        let specs = ShardSpec::split(policy.shards);
        if specs.len() == 1 {
            let spec = specs[0];
            return ParTopk {
                inner: ParInner::Single(shard_iter(plan, policy.engine, spec)),
                shards: 1,
            };
        }
        let jobs: Vec<Box<dyn FnOnce() -> ShardJobResult + Send>> = match policy.engine {
            ShardEngine::Full => {
                let templates = Arc::clone(plan.slot_templates());
                specs
                    .into_iter()
                    .map(|spec| {
                        let templates = Arc::clone(&templates);
                        Box::new(move || {
                            let mut it = ShardIter::Full(Box::new(canonical(
                                TopkEnumerator::from_templates(templates, spec),
                            )));
                            let (buf, alive) = pull(&mut it, batch);
                            (alive.then_some(it), buf)
                        }) as Box<dyn FnOnce() -> ShardJobResult + Send>
                    })
                    .collect()
            }
            ShardEngine::Lazy => {
                let setup = Arc::clone(plan.lazy());
                specs
                    .into_iter()
                    .map(|spec| {
                        let setup = Arc::clone(&setup);
                        let query = plan.query().clone();
                        let source = Arc::clone(plan.source());
                        Box::new(move || {
                            let restricted = setup.restrict_root(spec);
                            let mut it =
                                ShardIter::Lazy(Box::new(canonical(TopkEnEnumerator::from_setup(
                                    &query,
                                    source,
                                    crate::BoundMode::Tight,
                                    &restricted,
                                ))));
                            let (buf, alive) = pull(&mut it, batch);
                            (alive.then_some(it), buf)
                        }) as Box<dyn FnOnce() -> ShardJobResult + Send>
                    })
                    .collect()
            }
        };
        let results = pool.scatter(jobs);
        let mut shards = Vec::with_capacity(results.len());
        for (iter, buf) in results {
            shards.push(ShardStream { iter, buf });
        }
        let n = shards.len();
        let mut par = ParTopk {
            inner: ParInner::Multi {
                shards,
                heap: BinaryHeap::new(),
                pool,
                batch,
            },
            shards: n,
        };
        for i in 0..n {
            par.push_head(i);
        }
        par
    }

    /// Number of shards this run was split into.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Moves shard `s`'s next buffered match into the merge heap.
    fn push_head(&mut self, s: usize) {
        let ParInner::Multi { shards, heap, .. } = &mut self.inner else {
            unreachable!("push_head is a merge-path helper");
        };
        if let Some(m) = shards[s].buf.pop_front() {
            heap.push(Reverse((m.score, m.assignment, s)));
        }
    }

    /// One scatter refilling every live shard whose buffer ran dry.
    /// Balanced shards drain in lockstep, so this usually refills all of
    /// them in parallel rather than one at a time.
    fn refill_dry(&mut self) {
        let ParInner::Multi {
            shards,
            pool,
            batch,
            ..
        } = &mut self.inner
        else {
            unreachable!("refill_dry is a merge-path helper");
        };
        let batch = *batch;
        let mut idx = Vec::new();
        let mut jobs: Vec<Box<dyn FnOnce() -> ShardJobResult + Send>> = Vec::new();
        for (i, sh) in shards.iter_mut().enumerate() {
            if sh.buf.is_empty() {
                if let Some(mut it) = sh.iter.take() {
                    idx.push(i);
                    jobs.push(Box::new(move || {
                        let (buf, alive) = pull(&mut it, batch);
                        (alive.then_some(it), buf)
                    }));
                }
            }
        }
        let results = match jobs.len() {
            0 => return,
            // One dry shard: the pool round-trip buys nothing.
            1 => vec![jobs.pop().expect("len checked")()],
            _ => pool.scatter(jobs),
        };
        for (i, (iter, buf)) in idx.into_iter().zip(results) {
            shards[i].iter = iter;
            shards[i].buf = buf;
        }
    }
}

impl Iterator for ParTopk {
    type Item = ScoredMatch;

    fn next(&mut self) -> Option<ScoredMatch> {
        // 1-shard fast path: delegate to the underlying canonical
        // enumerator — no batching, no merge, no pool.
        let (score, assignment, s) = match &mut self.inner {
            ParInner::Single(it) => return it.next(),
            ParInner::Multi { heap, .. } => {
                let Reverse(head) = heap.pop()?;
                head
            }
        };
        let needs_refill = {
            let ParInner::Multi { shards, .. } = &self.inner else {
                unreachable!("Single returned above");
            };
            shards[s].buf.is_empty() && shards[s].iter.is_some()
        };
        if needs_refill {
            self.refill_dry();
        }
        self.push_head(s);
        Some(ScoredMatch { score, assignment })
    }
}

/// Convenience: the exact [`crate::topk_full`] top-k, computed by
/// `policy.shards`-way partitioned execution on `pool`.
pub fn par_topk(
    query: &ResolvedQuery,
    source: SharedSource,
    k: usize,
    policy: &ParallelPolicy,
    pool: Arc<WorkerPool>,
) -> Vec<ScoredMatch> {
    ParTopk::new(query, source, policy, pool).take(k).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topk_full;
    use ktpm_closure::ClosureTables;
    use ktpm_graph::fixtures::{citation_graph, paper_graph};
    use ktpm_graph::LabeledGraph;
    use ktpm_query::TreeQuery;
    use ktpm_storage::MemStore;

    fn pool() -> Arc<WorkerPool> {
        ktpm_exec::default_pool()
    }

    fn check(g: &LabeledGraph, query: &str) {
        let q = TreeQuery::parse(query).unwrap().resolve(g.interner());
        let tables = ClosureTables::compute(g);
        let store = MemStore::new(tables.clone());
        let shared = MemStore::with_block_edges(tables, 2).into_shared();
        let want = topk_full(&q, &store, usize::MAX);
        for engine in [ShardEngine::Full, ShardEngine::Lazy] {
            for shards in [1usize, 2, 3, 4, 7] {
                for batch in [1usize, 3, 64] {
                    let policy = ParallelPolicy {
                        shards,
                        batch,
                        engine,
                    };
                    let got = par_topk(&q, Arc::clone(&shared), usize::MAX, &policy, pool());
                    assert_eq!(
                        got, want,
                        "query {query:?} {engine:?} shards {shards} batch {batch}"
                    );
                }
            }
        }
    }

    #[test]
    fn exactly_reproduces_topk_full_on_fixtures() {
        let g = paper_graph();
        check(&g, "a -> b\na -> c\nc -> d\nc -> e");
        check(&g, "a -> c\nc -> d");
        check(&g, "a");
        let g = citation_graph();
        check(&g, "C -> E\nC -> S");
    }

    #[test]
    fn duplicate_labels_and_wildcards_partition_cleanly() {
        let g = paper_graph();
        check(&g, "a#1 -> a#2");
        check(&g, "c -> *#1");
        check(&g, "a => b");
    }

    #[test]
    fn no_match_queries_yield_nothing() {
        let g = paper_graph();
        let q = TreeQuery::parse("s -> a").unwrap().resolve(g.interner());
        let shared = MemStore::new(ClosureTables::compute(&g)).into_shared();
        let policy = ParallelPolicy::with_shards(4);
        assert_eq!(par_topk(&q, shared, 10, &policy, pool()), Vec::new());
    }

    #[test]
    fn take_k_prefixes_agree_across_shard_counts() {
        let g = paper_graph();
        let q = TreeQuery::parse("a -> b\na -> c\nc -> d\nc -> e")
            .unwrap()
            .resolve(g.interner());
        let shared = MemStore::new(ClosureTables::compute(&g)).into_shared();
        let all = par_topk(
            &q,
            Arc::clone(&shared),
            usize::MAX,
            &ParallelPolicy::with_shards(1),
            pool(),
        );
        for k in [1usize, 2, 5, 17] {
            for shards in [2usize, 4] {
                let got = par_topk(
                    &q,
                    Arc::clone(&shared),
                    k,
                    &ParallelPolicy::with_shards(shards),
                    pool(),
                );
                assert_eq!(
                    got,
                    all[..k.min(all.len())].to_vec(),
                    "k {k} shards {shards}"
                );
            }
        }
    }

    #[test]
    fn partopk_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<ParTopk>();
    }
}
