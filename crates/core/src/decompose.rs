//! Spanning-tree decomposition of a graph pattern.
//!
//! [7]'s central idea: "decompose q into a set of spanning trees" such
//! that every pattern edge appears in at least one tree. We build trees
//! greedily: each round runs a BFS that prefers still-uncovered edges;
//! rounds repeat until all edges are covered. For a pattern with `m`
//! edges and `n` nodes this needs at most `m - n + 2` trees.

use ktpm_query::{EdgeKind, GraphQuery, TreeQuery, TreeQueryBuilder};
use std::collections::HashSet;
use std::collections::VecDeque;

/// One rooted spanning tree of the pattern, plus which pattern edges it
/// covers and which it leaves out.
#[derive(Debug, Clone)]
pub struct SpanningTree {
    /// The rooted tree as a `//`-edge tree query (undirected tree matching
    /// roots the tree per §5 "choose a node in T to be the root node").
    pub tree: TreeQuery,
    /// For each tree-query node (BFS order), the pattern node it stands for.
    pub pattern_node: Vec<usize>,
    /// Pattern edges (as `(min,max)` pairs) not covered by this tree.
    pub non_tree_edges: Vec<(usize, usize)>,
}

/// Decomposes `q` into rooted spanning trees covering every pattern edge.
/// The first tree maximizes coverage from the highest-degree root.
pub fn decompose(q: &GraphQuery) -> Vec<SpanningTree> {
    let n = q.len();
    let mut covered: HashSet<(usize, usize)> = HashSet::new();
    let mut trees = Vec::new();
    while covered.len() < q.num_edges() {
        // Root: highest-degree node touching an uncovered edge (first
        // round: plain highest degree).
        let root = (0..n)
            .filter(|&u| {
                trees.is_empty()
                    || q.neighbors(u)
                        .iter()
                        .any(|&v| !covered.contains(&(u.min(v), u.max(v))))
            })
            .max_by_key(|&u| q.neighbors(u).len())
            .expect("uncovered edges imply an uncovered endpoint");
        // BFS preferring uncovered edges.
        let mut parent = vec![usize::MAX; n];
        let mut visited = vec![false; n];
        visited[root] = true;
        let mut queue = VecDeque::from([root]);
        let mut order = vec![root];
        while let Some(u) = queue.pop_front() {
            // Two passes: uncovered edges first.
            for pass in 0..2 {
                for &v in q.neighbors(u) {
                    if visited[v] {
                        continue;
                    }
                    let key = (u.min(v), u.max(v));
                    let uncovered = !covered.contains(&key);
                    if (pass == 0) == uncovered {
                        if pass == 1 && uncovered {
                            continue;
                        }
                        visited[v] = true;
                        parent[v] = u;
                        order.push(v);
                        queue.push_back(v);
                    }
                }
            }
        }
        debug_assert_eq!(order.len(), n, "pattern is connected");
        // Mark coverage and build the tree query.
        let mut tree_edges: HashSet<(usize, usize)> = HashSet::new();
        for &v in &order {
            if parent[v] != usize::MAX {
                let key = (v.min(parent[v]), v.max(parent[v]));
                covered.insert(key);
                tree_edges.insert(key);
            }
        }
        let mut b = TreeQueryBuilder::new();
        let qnodes: Vec<_> = order.iter().map(|&u| b.node(q.label(u))).collect();
        let index_of = |u: usize| order.iter().position(|&x| x == u).expect("in order");
        for &v in &order {
            if parent[v] != usize::MAX {
                b.edge(
                    qnodes[index_of(parent[v])],
                    qnodes[index_of(v)],
                    EdgeKind::Descendant,
                );
            }
        }
        let tree = b.build().expect("spanning tree is a valid rooted tree");
        // The builder BFS-normalizes; recover the pattern-node mapping by
        // walking both trees in parallel: since we inserted nodes in BFS
        // order already and edges parent->child, the normalization is the
        // identity permutation of `order`.
        let pattern_node = order.clone();
        let non_tree_edges = q
            .edges()
            .iter()
            .copied()
            .filter(|&e| !tree_edges.contains(&e))
            .collect();
        trees.push(SpanningTree {
            tree,
            pattern_node,
            non_tree_edges,
        });
        if trees.len() > q.num_edges() + 1 {
            unreachable!("decomposition failed to make progress");
        }
    }
    if trees.is_empty() {
        // Single-node pattern: one trivial tree.
        let mut b = TreeQueryBuilder::new();
        b.node(q.label(0));
        trees.push(SpanningTree {
            tree: b.build().expect("single node"),
            pattern_node: vec![0],
            non_tree_edges: Vec::new(),
        });
    }
    trees
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn triangle_needs_two_trees() {
        let q = GraphQuery::new(labels(&["a", "b", "c"]), vec![(0, 1), (1, 2), (2, 0)]).unwrap();
        let trees = decompose(&q);
        assert!(trees.len() >= 2);
        // Every edge covered by some tree.
        let mut covered = HashSet::new();
        for t in &trees {
            for (p, c, _) in t.tree.edges() {
                let a = t.pattern_node[p.index()];
                let b = t.pattern_node[c.index()];
                covered.insert((a.min(b), a.max(b)));
            }
        }
        assert_eq!(covered.len(), 3);
    }

    #[test]
    fn tree_pattern_needs_one_tree() {
        let q =
            GraphQuery::new(labels(&["a", "b", "c", "d"]), vec![(0, 1), (0, 2), (2, 3)]).unwrap();
        let trees = decompose(&q);
        assert_eq!(trees.len(), 1);
        assert!(trees[0].non_tree_edges.is_empty());
        assert_eq!(trees[0].tree.len(), 4);
    }

    #[test]
    fn first_tree_non_tree_edges_are_the_excess() {
        let q = GraphQuery::new(
            labels(&["a", "b", "c", "d"]),
            vec![(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)],
        )
        .unwrap();
        let trees = decompose(&q);
        assert_eq!(trees[0].non_tree_edges.len(), q.excess_edges());
        // Mapping covers all pattern nodes exactly once.
        let mut seen: Vec<usize> = trees[0].pattern_node.clone();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn single_node_pattern() {
        let q = GraphQuery::new(labels(&["a"]), vec![]).unwrap();
        let trees = decompose(&q);
        assert_eq!(trees.len(), 1);
        assert_eq!(trees[0].tree.len(), 1);
    }

    #[test]
    fn labels_carried_into_tree_queries() {
        let q = GraphQuery::new(labels(&["x", "y", "z"]), vec![(0, 1), (1, 2), (2, 0)]).unwrap();
        for t in decompose(&q) {
            for u in t.tree.node_ids() {
                let pattern = t.pattern_node[u.index()];
                assert_eq!(t.tree.label_name(u), Some(q.label(pattern)));
            }
        }
    }
}
