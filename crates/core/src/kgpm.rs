//! kGPM as a first-class streaming engine: [`KgpmStream`] enumerates
//! top graph-pattern matches (§5 of the paper / Cheng, Zeng & Yu,
//! ICDE'13) behind the same [`MatchStream`](crate::MatchStream)
//! surface as every tree engine.
//!
//! The pattern's decomposition lives in the **pattern plan**
//! ([`QueryPlan::new_pattern`]): the primary spanning tree is the
//! plan's resolved query, the source is the store's undirected mirror,
//! and the non-tree edges plus the §5 residual lower bound ride along
//! as pattern metadata. The stream then composes:
//!
//! * a **driver** — a tree-match stream over the spanning tree, in
//!   canonical order: sequentially DP-B (the ICDE'13 *mtree* matcher,
//!   [`ShardEngine::Full`]) or Topk-EN (*mtree+*,
//!   [`ShardEngine::Lazy`]); with `shards > 1` the [`ParTopk`]
//!   root-sharded merger, whose stream is byte-identical to the
//!   sequential one — so the kGPM output is byte-identical for every
//!   shard count;
//! * **lazy verification** — each tree match's non-tree edges are
//!   checked by `lookup_dist` point probes against the mirror
//!   (disconnected ⇒ rejected), the verified distances added to the
//!   tree score, and the assignment reordered into pattern-node order;
//! * a **threshold-driven reorder heap** — verified matches wait in a
//!   min-heap and are emitted only once `tree frontier + residual
//!   lower bound` proves no later tree match can beat (or tie into)
//!   them, which makes the output the canonical ascending
//!   `(score, assignment)` order without knowing `k`. Consumers cap
//!   with [`crate::limit`]; the heap never holds more than the matches
//!   of one unresolved score window.

use crate::dpb::DpBEnumerator;
use crate::enhanced::TopkEnEnumerator;
use crate::matches::ScoredMatch;
use crate::parallel::{ParTopk, ParallelPolicy, ShardEngine};
use crate::partition::canonical;
use crate::plan::{PatternMeta, QueryPlan};
use crate::stream::{BoxedMatchStream, MatchStream, StreamState};
use ktpm_exec::WorkerPool;
use ktpm_graph::{NodeId, NodeRow, Score};
use ktpm_storage::SharedSource;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// A fully-verified graph-pattern match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphMatch {
    /// Sum of shortest distances over all pattern edges.
    pub score: Score,
    /// Mapped data node per pattern node (pattern node order).
    pub assignment: Vec<NodeId>,
}

/// Work counters for one kGPM stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KgpmStats {
    /// Tree matches pulled from the driver so far.
    pub tree_matches_enumerated: u64,
    /// Candidates discarded because a non-tree edge had no path.
    pub rejected_disconnected: u64,
}

/// The streaming kGPM engine; see module docs. Built by
/// [`crate::build_stream`] for [`crate::Algo::Kgpm`], or directly when
/// the caller wants [`Self::stats`].
pub struct KgpmStream {
    driver: BoxedMatchStream,
    meta: Arc<PatternMeta>,
    /// The undirected mirror (the plan's source) for verification probes.
    source: SharedSource,
    residual_lb: Score,
    /// Verified matches not yet proven safe to emit, min-first.
    pending: BinaryHeap<Reverse<(Score, NodeRow)>>,
    /// Tree score of the last driver match; later ones score ≥ this.
    frontier: Score,
    driver_done: bool,
    stats: KgpmStats,
}

impl KgpmStream {
    /// Builds the stream from a pattern plan. Sequential engine choice
    /// (`policy.shards <= 1`): [`ShardEngine::Full`] drives with DP-B
    /// (mtree), [`ShardEngine::Lazy`] with Topk-EN (mtree+). With more
    /// shards the driver is [`ParTopk`] over the same plan — the
    /// output is byte-identical either way.
    ///
    /// # Panics
    ///
    /// If `plan` is not a pattern plan ([`QueryPlan::new_pattern`]);
    /// upstream surfaces validate before dispatching.
    pub fn from_plan(plan: &QueryPlan, policy: &ParallelPolicy, pool: Arc<WorkerPool>) -> Self {
        let meta = Arc::clone(
            plan.pattern_meta()
                .expect("Algo::Kgpm requires a pattern plan (QueryPlan::new_pattern)"),
        );
        let residual_lb = plan.residual_lb();
        let driver: BoxedMatchStream = if policy.shards > 1 {
            Box::new(ParTopk::from_plan(plan, policy, pool))
        } else {
            match policy.engine {
                ShardEngine::Full => Box::new(canonical(DpBEnumerator::from_plan(plan))),
                ShardEngine::Lazy => Box::new(canonical(TopkEnEnumerator::from_plan(plan))),
            }
        };
        KgpmStream {
            driver,
            meta,
            source: Arc::clone(plan.source()),
            residual_lb,
            pending: BinaryHeap::new(),
            frontier: 0,
            driver_done: false,
            stats: KgpmStats::default(),
        }
    }

    /// Work counters so far.
    pub fn stats(&self) -> KgpmStats {
        self.stats
    }

    /// Pulls one driver match: verify its non-tree edges, reorder into
    /// pattern order and park it in the emit heap (or reject it).
    fn pull_driver(&mut self) {
        let Some(tm) = MatchStream::next(&mut *self.driver) else {
            self.driver_done = true;
            return;
        };
        self.frontier = tm.score;
        self.stats.tree_matches_enumerated += 1;
        let mut full = tm.score;
        for &(ta, tb) in &self.meta.non_tree {
            match self
                .source
                .lookup_dist(tm.assignment[ta], tm.assignment[tb])
            {
                Some(d) => full += d as Score,
                None => {
                    self.stats.rejected_disconnected += 1;
                    return;
                }
            }
        }
        let mut row = vec![NodeId(u32::MAX); self.meta.pattern.len()];
        for (t, &p) in self.meta.pattern_node.iter().enumerate() {
            row[p] = tm.assignment[t];
        }
        self.pending.push(Reverse((full, NodeRow::from(row))));
    }

    fn next_match(&mut self) -> Option<ScoredMatch> {
        loop {
            if let Some(Reverse((score, _))) = self.pending.peek() {
                // Strict `<`: a later tree match may still tie this
                // score with a smaller assignment, so equal-bound
                // entries wait until the frontier passes them.
                if self.driver_done || *score < self.frontier + self.residual_lb {
                    let Reverse((score, assignment)) =
                        self.pending.pop().expect("peeked non-empty");
                    return Some(ScoredMatch { score, assignment });
                }
            } else if self.driver_done {
                return None;
            }
            self.pull_driver();
        }
    }
}

impl MatchStream for KgpmStream {
    fn next_batch(&mut self, n: usize, out: &mut Vec<ScoredMatch>) -> StreamState {
        out.reserve(n.min(1024));
        for _ in 0..n {
            match self.next_match() {
                Some(m) => out.push(m),
                None => return StreamState::Done,
            }
        }
        StreamState::More
    }

    fn next(&mut self) -> Option<ScoredMatch> {
        self.next_match()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_stream, limit, Algo};
    use ktpm_closure::ClosureTables;
    use ktpm_graph::fixtures::{citation_graph, paper_graph};
    use ktpm_graph::{undirect, LabeledGraph};
    use ktpm_query::GraphQuery;
    use ktpm_storage::MemStore;

    fn labels(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    fn shared_for(g: &LabeledGraph) -> SharedSource {
        MemStore::new(ClosureTables::compute(g))
            .with_graph(g.clone())
            .into_shared()
    }

    fn pattern_plan(g: &LabeledGraph, q: GraphQuery) -> QueryPlan {
        QueryPlan::new_pattern(q, g.interner(), &shared_for(g)).unwrap()
    }

    /// Brute-force kGPM oracle over the undirected closure.
    fn oracle(g: &LabeledGraph, q: &GraphQuery) -> Vec<(Score, Vec<NodeId>)> {
        let ug = undirect(g);
        let tc = ClosureTables::compute(&ug);
        let mut candidates: Vec<Vec<NodeId>> = Vec::new();
        for u in 0..q.len() {
            let Some(l) = ug.interner().get(q.label(u)) else {
                return Vec::new();
            };
            candidates.push(ug.nodes_with_label(l).to_vec());
        }
        let mut out = Vec::new();
        let mut pick = vec![0usize; q.len()];
        'outer: loop {
            let assignment: Vec<NodeId> = pick
                .iter()
                .enumerate()
                .map(|(u, &i)| candidates[u][i])
                .collect();
            let mut total: Score = 0;
            let mut ok = true;
            for &(a, b) in q.edges() {
                match tc.dist(assignment[a], assignment[b]) {
                    Some(d) => total += d as Score,
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                out.push((total, assignment));
            }
            for u in 0..q.len() {
                pick[u] += 1;
                if pick[u] < candidates[u].len() {
                    continue 'outer;
                }
                pick[u] = 0;
            }
            break;
        }
        out.sort();
        out
    }

    fn collect(plan: &QueryPlan, policy: &ParallelPolicy) -> Vec<(Score, Vec<NodeId>)> {
        let stream: BoxedMatchStream = Box::new(KgpmStream::from_plan(
            plan,
            policy,
            ktpm_exec::default_pool(),
        ));
        stream
            .map(|m: ScoredMatch| (m.score, m.assignment.to_vec()))
            .collect()
    }

    #[test]
    fn stream_matches_oracle_exhaustively_for_both_engines() {
        let g = paper_graph();
        let queries = vec![
            GraphQuery::new(labels(&["a", "c", "d"]), vec![(0, 1), (1, 2), (0, 2)]).unwrap(),
            GraphQuery::new(labels(&["c", "d", "e"]), vec![(0, 1), (1, 2), (2, 0)]).unwrap(),
            GraphQuery::new(
                labels(&["a", "b", "c", "d"]),
                vec![(0, 1), (0, 2), (2, 3), (1, 3)],
            )
            .unwrap(),
            GraphQuery::new(labels(&["a"]), vec![]).unwrap(),
        ];
        for q in queries {
            let want = oracle(&g, &q);
            for engine in [ShardEngine::Full, ShardEngine::Lazy] {
                let plan = pattern_plan(&g, q.clone());
                let policy = ParallelPolicy {
                    shards: 1,
                    engine,
                    ..ParallelPolicy::default()
                };
                assert_eq!(collect(&plan, &policy), want, "{engine:?} on {q:?}");
            }
        }
    }

    #[test]
    fn sharded_stream_is_byte_identical_for_every_shard_count() {
        let g = paper_graph();
        let q = GraphQuery::new(labels(&["a", "c", "d"]), vec![(0, 1), (1, 2), (0, 2)]).unwrap();
        let plan = pattern_plan(&g, q);
        let want = collect(&plan, &ParallelPolicy::with_shards(1));
        assert!(!want.is_empty());
        for shards in [2, 3, 5, 16] {
            assert_eq!(
                collect(&plan, &ParallelPolicy::with_shards(shards)),
                want,
                "{shards} shards"
            );
        }
    }

    #[test]
    fn build_stream_dispatches_kgpm_and_limit_caps_it() {
        let g = citation_graph();
        let q = GraphQuery::new(labels(&["C", "E", "S"]), vec![(0, 1), (0, 2), (1, 2)]).unwrap();
        let plan = pattern_plan(&g, q.clone());
        let full: Vec<ScoredMatch> = build_stream(
            Algo::Kgpm,
            &plan,
            &ParallelPolicy::default(),
            ktpm_exec::default_pool(),
        )
        .collect();
        let want = oracle(&g, &q);
        let got: Vec<_> = full
            .iter()
            .map(|m| (m.score, m.assignment.to_vec()))
            .collect();
        assert_eq!(got, want);
        let capped: Vec<ScoredMatch> = limit(
            build_stream(
                Algo::Kgpm,
                &plan,
                &ParallelPolicy::default(),
                ktpm_exec::default_pool(),
            ),
            2,
        )
        .collect();
        assert_eq!(capped, full[..2.min(full.len())].to_vec());
    }

    #[test]
    fn stats_count_enumeration_and_rejections() {
        let g = paper_graph();
        let q = GraphQuery::new(labels(&["a", "c", "d"]), vec![(0, 1), (1, 2), (0, 2)]).unwrap();
        let plan = pattern_plan(&g, q);
        let mut stream = KgpmStream::from_plan(
            &plan,
            &ParallelPolicy::with_shards(1),
            ktpm_exec::default_pool(),
        );
        let mut out = Vec::new();
        while !stream.next_batch(16, &mut out).is_done() {}
        let stats = stream.stats();
        assert!(stats.tree_matches_enumerated >= out.len() as u64);
    }

    #[test]
    fn warm_pattern_plan_skips_decomposition_state() {
        // Two streams from one plan: the second must not redo the
        // residual-bound probes (plan caches them) and must agree.
        let g = paper_graph();
        let q = GraphQuery::new(labels(&["a", "c", "d"]), vec![(0, 1), (1, 2), (0, 2)]).unwrap();
        let plan = pattern_plan(&g, q);
        let cold = collect(&plan, &ParallelPolicy::with_shards(1));
        plan.source().reset_io();
        let warm = collect(&plan, &ParallelPolicy::with_shards(1));
        assert_eq!(cold, warm);
        // Warm: no D/E discovery; only the lookup_dist verification
        // probes (which do not count block I/O on MemStore) and DP-B's
        // list build remain — but that reads the plan's cached halves.
        assert_eq!(plan.source().io().d_entries, 0);
    }

    #[test]
    fn unmatchable_label_streams_empty() {
        let g = paper_graph();
        let q = GraphQuery::new(labels(&["a", "zz"]), vec![(0, 1)]).unwrap();
        let plan = pattern_plan(&g, q);
        assert!(collect(&plan, &ParallelPolicy::default()).is_empty());
    }

    #[test]
    fn snapshot_sources_reject_pattern_plans() {
        // A MemStore without an attached graph has no mirror.
        let g = paper_graph();
        let source = MemStore::new(ClosureTables::compute(&g)).into_shared();
        let q = GraphQuery::new(labels(&["a", "b"]), vec![(0, 1)]).unwrap();
        assert_eq!(
            QueryPlan::new_pattern(q, g.interner(), &source).err(),
            Some(crate::PatternUnsupported)
        );
    }
}
