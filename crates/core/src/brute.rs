//! Exhaustive reference enumeration — the test oracle.
//!
//! Enumerates *every* tree pattern match of a query by cartesian product
//! over the run-time graph, sorted by score. Exponential; only for small
//! inputs inside tests and cross-algorithm validation.

use crate::matches::ScoredMatch;
use ktpm_graph::Score;
use ktpm_query::QNodeId;
use ktpm_runtime::RuntimeGraph;

/// All matches of the query, sorted by `(score, assignment)`.
pub fn all_matches(rg: &RuntimeGraph) -> Vec<ScoredMatch> {
    let tree = rg.query().tree();
    let n_t = tree.len();
    let mut out = Vec::new();
    let mut assignment = vec![u32::MAX; n_t];
    for root_idx in 0..rg.candidates().len(tree.root()) as u32 {
        assignment[0] = root_idx;
        extend(rg, 1, 0, &mut assignment, &mut out);
    }
    let mut result: Vec<ScoredMatch> = out
        .into_iter()
        .map(|(score, assignment)| ScoredMatch {
            score,
            assignment: tree
                .node_ids()
                .map(|u| rg.node(u, assignment[u.index()]))
                .collect(),
        })
        .collect();
    result.sort_by(|a, b| (a.score, &a.assignment).cmp(&(b.score, &b.assignment)));
    result
}

/// The top-k scores of the query (the multiset the algorithms must agree
/// on; assignments with tied scores may legally differ between them).
pub fn topk_scores(rg: &RuntimeGraph, k: usize) -> Vec<Score> {
    all_matches(rg)
        .into_iter()
        .take(k)
        .map(|m| m.score)
        .collect()
}

fn extend(
    rg: &RuntimeGraph,
    pos: usize,
    score: Score,
    assignment: &mut Vec<u32>,
    out: &mut Vec<(Score, Vec<u32>)>,
) {
    let tree = rg.query().tree();
    if pos == tree.len() {
        out.push((score, assignment.clone()));
        return;
    }
    let u = QNodeId(pos as u32);
    let p = tree.parent(u).expect("non-root in BFS order");
    let pi = assignment[p.index()];
    // Iterate this position's possible children under the parent's pick.
    let edges: Vec<(u32, u32)> = rg.edges(u, pi).to_vec();
    for (j, d) in edges {
        assignment[pos] = j;
        extend(rg, pos + 1, score + d as Score, assignment, out);
    }
    assignment[pos] = u32::MAX;
}

#[cfg(test)]
mod tests {
    use super::*;
    use ktpm_closure::ClosureTables;
    use ktpm_graph::fixtures::citation_graph;
    use ktpm_query::TreeQuery;
    use ktpm_storage::MemStore;

    #[test]
    fn figure1_has_five_matches() {
        let g = citation_graph();
        let q = TreeQuery::parse("C -> E\nC -> S")
            .unwrap()
            .resolve(g.interner());
        let store = MemStore::new(ClosureTables::compute(&g));
        let rg = RuntimeGraph::load(&q, &store);
        let all = all_matches(&rg);
        assert_eq!(all.len(), 5);
        assert_eq!(
            all.iter().map(|m| m.score).collect::<Vec<_>>(),
            vec![2, 2, 3, 3, 3]
        );
        assert_eq!(topk_scores(&rg, 2), vec![2, 2]);
    }
}
