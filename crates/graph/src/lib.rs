//! # ktpm-graph
//!
//! The graph substrate for the kTPM (top-k tree pattern matching) system:
//! a node-labeled, edge-weighted directed graph stored in compressed
//! sparse row (CSR) form, with both outgoing and incoming adjacency, plus
//! a label interner and basic statistics.
//!
//! Everything downstream (transitive closure, run-time graphs, the
//! matching algorithms) consumes [`LabeledGraph`].
//!
//! ## Example
//!
//! ```
//! use ktpm_graph::{GraphBuilder, LabelId, NodeId};
//!
//! let mut b = GraphBuilder::new();
//! let a = b.add_node("A");
//! let c = b.add_node("C");
//! b.add_edge(a, c, 1);
//! let g = b.build().unwrap();
//! assert_eq!(g.num_nodes(), 2);
//! assert_eq!(g.out_edges(a).count(), 1);
//! assert_eq!(g.label_name(g.label(c)), "C");
//! ```

mod delta;
mod digraph;
pub mod fixtures;
pub mod io;
mod labels;
mod noderow;
mod types;
mod undirected;

pub use delta::{DeltaEffects, DeltaError, GraphDelta, GraphDeltaOp};
pub use digraph::{EdgeRef, GraphBuilder, GraphError, GraphStats, LabeledGraph};
pub use labels::LabelInterner;
pub use noderow::NodeRow;
pub use types::{Dist, LabelId, NodeId, Score, INF_DIST, INF_SCORE};
pub use undirected::undirect;
