//! Shared example graphs reconstructed from the paper's figures.
//!
//! The figures are only partially legible in the source text, so these
//! reconstructions are pinned to the paper's *explicit* claims instead:
//! [`paper_graph`] satisfies every closure fact stated in Example 4.1
//! (`Lᵃᵥ₅ = {(v1,1),(v2,2)}`, `Eᵥ₅`, `Eᵥ₆`, `Dᶜd = {(v8,2)}`, ...), and
//! [`citation_graph`] reproduces Figure 1's patent-citation example.

use crate::digraph::{GraphBuilder, LabeledGraph};
use crate::types::NodeId;

/// A reconstruction of the Figure 2(b) data graph (13 nodes, labels
/// `a a b b c c d d e e s s s`), consistent with Example 4.1.
///
/// Node `vᵢ` of the paper is `NodeId(i-1)` here.
pub fn paper_graph() -> LabeledGraph {
    let mut b = GraphBuilder::new();
    let labels = [
        "a", "a", "b", "b", "c", "c", "d", "d", "e", "e", "s", "s", "s",
    ];
    let nodes: Vec<NodeId> = labels.iter().map(|l| b.add_node(l)).collect();
    let edges = [
        (1, 0),  // v2 -> v1  (so δ(v2, v5) = δ(v2, v6) = 2)
        (0, 2),  // v1 -> v3
        (0, 4),  // v1 -> v5
        (0, 5),  // v1 -> v6
        (2, 3),  // v3 -> v4  (so δ(v1, v4) = 2 > δ(v1, v3))
        (4, 6),  // v5 -> v7
        (4, 8),  // v5 -> v9
        (4, 10), // v5 -> v11
        (5, 6),  // v6 -> v7
        (5, 11), // v6 -> v12
        (6, 7),  // v7 -> v8  (so d^c_{v8} = 2, the one stored D^c_d entry)
        (6, 8),  // v7 -> v9  (so δ(v6, v9) = 2, Example 4.1's E^c_e entry)
        (6, 12), // v7 -> v13
        (8, 9),  // v9 -> v10
    ];
    for (u, v) in edges {
        b.add_edge(nodes[u], nodes[v], 1);
    }
    b.build().expect("fixture graph is valid")
}

/// The Figure 1(b) patent-citation graph: 7 patents labeled with
/// disciplines C (computer science), E (economy), S (social science).
///
/// Figure 1 states: the top-1 match of the twig `C -> E, C -> S` is
/// `(v1, v5, v4)` with score 2, the top-2 has score 2, there are 5
/// matches in total, and the worst score is 3 (e.g. `(v2, ..., v4)` with
/// `δ(v2, v4) = 2`).
pub fn citation_graph() -> LabeledGraph {
    let mut b = GraphBuilder::new();
    let labels = ["C", "C", "C", "S", "E", "E", "S"];
    let nodes: Vec<NodeId> = labels.iter().map(|l| b.add_node(l)).collect();
    // v1 cites an S and two E patents directly; v2 reaches v4 at distance
    // 2; v3 reaches no E patent at all. This yields exactly 5 matches
    // with scores {2, 2, 3, 3, 3} as Figure 1 describes.
    let edges = [
        (0, 3), // v1 -> v4 (S)
        (0, 4), // v1 -> v5 (E)
        (0, 5), // v1 -> v6 (E)
        (1, 5), // v2 -> v6 (E)
        (1, 2), // v2 -> v3
        (2, 3), // v3 -> v4 (so δ(v2, v4) = 2, the Figure 1(e) match)
        (4, 6), // v5 -> v7 (S)
    ];
    for (u, v) in edges {
        b.add_edge(nodes[u], nodes[v], 1);
    }
    b.build().expect("fixture graph is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_graph_shape() {
        let g = paper_graph();
        assert_eq!(g.num_nodes(), 13);
        assert_eq!(g.num_edges(), 14);
        assert!(g.is_unit_weighted());
        assert_eq!(g.stats().labels, 6);
    }

    #[test]
    fn citation_graph_shape() {
        let g = citation_graph();
        assert_eq!(g.num_nodes(), 7);
        let c = g.interner().get("C").unwrap();
        assert_eq!(g.nodes_with_label(c).len(), 3);
    }
}
