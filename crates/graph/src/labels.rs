//! String-to-[`LabelId`] interning.
//!
//! Labels in the paper's datasets are venue names (DBLP) or small
//! alphabets (synthetic); all algorithms only ever compare interned ids.

use crate::types::LabelId;
use std::collections::HashMap;

/// A bidirectional map between label names and dense [`LabelId`]s.
#[derive(Debug, Clone, Default)]
pub struct LabelInterner {
    names: Vec<String>,
    ids: HashMap<String, LabelId>,
}

impl LabelInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its id (existing or fresh).
    pub fn intern(&mut self, name: &str) -> LabelId {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = LabelId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.ids.insert(name.to_owned(), id);
        id
    }

    /// Looks up an already-interned label.
    pub fn get(&self, name: &str) -> Option<LabelId> {
        self.ids.get(name).copied()
    }

    /// The name for `id`.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this interner.
    pub fn name(&self, id: LabelId) -> &str {
        &self.names[id.index()]
    }

    /// Number of distinct labels interned so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no labels have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (LabelId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (LabelId(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut li = LabelInterner::new();
        let a = li.intern("SIGMOD");
        let b = li.intern("VLDB");
        assert_ne!(a, b);
        assert_eq!(li.intern("SIGMOD"), a);
        assert_eq!(li.len(), 2);
    }

    #[test]
    fn name_lookup_roundtrips() {
        let mut li = LabelInterner::new();
        let a = li.intern("ICDE");
        assert_eq!(li.name(a), "ICDE");
        assert_eq!(li.get("ICDE"), Some(a));
        assert_eq!(li.get("nope"), None);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut li = LabelInterner::new();
        for i in 0..100 {
            let id = li.intern(&format!("L{i}"));
            assert_eq!(id, LabelId(i));
        }
        let collected: Vec<_> = li.iter().map(|(id, _)| id.0).collect();
        assert_eq!(collected, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn empty_interner() {
        let li = LabelInterner::new();
        assert!(li.is_empty());
        assert_eq!(li.len(), 0);
    }
}
