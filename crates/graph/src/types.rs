//! Core identifier and numeric types shared by the whole workspace.
//!
//! Following the sizing guidance for database-style Rust (small integer
//! ids, index-based adjacency), nodes and labels are `u32` newtypes and
//! distances are `u32`. Scores are `u64` sums of distances, so a match
//! over a query with `n_T` nodes can never overflow
//! (`n_T * u32::MAX < u64::MAX`).

use std::fmt;

/// A node in a data graph. Dense, 0-based.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// An interned node label. Dense, 0-based.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LabelId(pub u32);

/// An edge weight or shortest-path distance.
pub type Dist = u32;

/// A match penalty score: a sum of [`Dist`]s.
pub type Score = u64;

/// Sentinel "unreachable" distance.
pub const INF_DIST: Dist = u32::MAX;

/// Sentinel "no match" score.
pub const INF_SCORE: Score = u64::MAX;

impl NodeId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl LabelId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for NodeId {
    #[inline]
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<u32> for LabelId {
    #[inline]
    fn from(v: u32) -> Self {
        LabelId(v)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Debug for LabelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl fmt::Display for LabelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let n = NodeId(42);
        assert_eq!(n.index(), 42);
        assert_eq!(NodeId::from(42u32), n);
        assert_eq!(format!("{n}"), "v42");
        assert_eq!(format!("{n:?}"), "v42");
    }

    #[test]
    fn label_id_roundtrip() {
        let l = LabelId(7);
        assert_eq!(l.index(), 7);
        assert_eq!(LabelId::from(7u32), l);
        assert_eq!(format!("{l}"), "l7");
    }

    #[test]
    fn score_cannot_overflow_for_realistic_queries() {
        // 1000-node query, every edge at max distance: still far below u64::MAX.
        let s: Score = 1000u64 * (INF_DIST as u64 - 1);
        assert!(s < INF_SCORE);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(NodeId(1) < NodeId(2));
        assert!(LabelId(0) < LabelId(10));
    }
}
