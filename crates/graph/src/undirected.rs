//! Undirected data graph transform.
//!
//! §5: "For each edge in the data graph, we make it bidirectional. Thus,
//! our algorithms are immediately applicable."
//!
//! Node ids, labels and the interner's label-id assignment are all
//! preserved (nodes are re-added in id order, so first-use label order
//! is unchanged) — queries resolved against the directed graph's
//! interner are valid against the mirror.

use crate::{GraphBuilder, LabeledGraph};

/// Returns the bidirectional version of `g`: every edge doubled in both
/// directions with its weight (parallel edges keep the minimum weight).
pub fn undirect(g: &LabeledGraph) -> LabeledGraph {
    let mut b = GraphBuilder::with_capacity(g.num_nodes(), g.num_edges() * 2);
    for v in g.nodes() {
        let name = g.label_name(g.label(v)).to_owned();
        b.add_node(&name);
    }
    for e in g.edges() {
        b.add_edge(e.from, e.to, e.weight);
        b.add_edge(e.to, e.from, e.weight);
    }
    b.build().expect("mirrored edges stay valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::citation_graph;

    #[test]
    fn doubles_every_edge() {
        let g = citation_graph();
        let u = undirect(&g);
        assert_eq!(u.num_nodes(), g.num_nodes());
        assert_eq!(u.num_edges(), g.num_edges() * 2);
        for e in g.edges() {
            assert!(u
                .out_edges(e.to)
                .any(|x| x.to == e.from && x.weight == e.weight));
        }
    }

    #[test]
    fn labels_preserved() {
        let g = citation_graph();
        let u = undirect(&g);
        for v in g.nodes() {
            assert_eq!(
                g.label_name(g.label(v)),
                u.label_name(u.label(v)),
                "label of {v}"
            );
        }
    }

    #[test]
    fn interner_label_ids_preserved() {
        let g = citation_graph();
        let u = undirect(&g);
        for v in g.nodes() {
            assert_eq!(g.label(v), u.label(v), "label id of {v}");
        }
    }
}
