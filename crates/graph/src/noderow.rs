//! [`NodeRow`] — the inline small-row representation of a match
//! assignment.
//!
//! Enumeration emits one assignment row per match; at k = 50 000 a
//! `Vec<NodeId>` row means 50 000 heap allocations on the hottest path
//! for no reason — real queries are small (the paper's twigs are
//! typically 2–8 nodes). `NodeRow` stores up to [`NodeRow::INLINE`]
//! nodes inline (one enum word + a fixed array, no heap) and spills to
//! a `Vec` only beyond that, so the emission path of every enumerator
//! is allocation-free for typical queries while arbitrarily large
//! queries still work.
//!
//! The type dereferences to `[NodeId]` (indexing, iteration, slicing)
//! and compares lexicographically — including against plain
//! `Vec<NodeId>` / `[NodeId]`, so call sites and tests read as before.

use crate::types::NodeId;
use std::fmt;
use std::ops::Deref;

/// How a row's nodes are stored; see module docs.
#[derive(Clone)]
enum Repr {
    /// Up to [`NodeRow::INLINE`] nodes, no heap.
    Inline {
        len: u8,
        buf: [NodeId; NodeRow::INLINE],
    },
    /// The spill representation for larger queries.
    Heap(Vec<NodeId>),
}

/// A match assignment row: one mapped data node per query node, in the
/// query's BFS node order. Inline (allocation-free) up to
/// [`NodeRow::INLINE`] nodes.
#[derive(Clone)]
pub struct NodeRow(Repr);

impl NodeRow {
    /// Rows up to this many nodes are stored inline, without touching
    /// the heap. Sized for the paper's twig workloads (T2–T8); larger
    /// queries spill transparently.
    pub const INLINE: usize = 8;

    /// An empty row.
    #[inline]
    pub fn new() -> Self {
        NodeRow(Repr::Inline {
            len: 0,
            buf: [NodeId(0); Self::INLINE],
        })
    }

    /// An empty row that will hold `n` nodes (heap-backed when
    /// `n > INLINE`, so pushes never re-spill).
    pub fn with_capacity(n: usize) -> Self {
        if n <= Self::INLINE {
            Self::new()
        } else {
            NodeRow(Repr::Heap(Vec::with_capacity(n)))
        }
    }

    /// Appends a node.
    #[inline]
    pub fn push(&mut self, v: NodeId) {
        match &mut self.0 {
            Repr::Inline { len, buf } if (*len as usize) < Self::INLINE => {
                buf[*len as usize] = v;
                *len += 1;
            }
            Repr::Inline { len, buf } => {
                let mut vec = Vec::with_capacity(Self::INLINE * 2);
                vec.extend_from_slice(&buf[..*len as usize]);
                vec.push(v);
                self.0 = Repr::Heap(vec);
            }
            Repr::Heap(vec) => vec.push(v),
        }
    }

    /// The nodes as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[NodeId] {
        match &self.0 {
            Repr::Inline { len, buf } => &buf[..*len as usize],
            Repr::Heap(vec) => vec,
        }
    }

    /// Copies the row into a plain `Vec`.
    pub fn to_vec(&self) -> Vec<NodeId> {
        self.as_slice().to_vec()
    }
}

impl Default for NodeRow {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for NodeRow {
    type Target = [NodeId];

    #[inline]
    fn deref(&self) -> &[NodeId] {
        self.as_slice()
    }
}

impl fmt::Debug for NodeRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl PartialEq for NodeRow {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for NodeRow {}

impl PartialOrd for NodeRow {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for NodeRow {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::hash::Hash for NodeRow {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl PartialEq<Vec<NodeId>> for NodeRow {
    fn eq(&self, other: &Vec<NodeId>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<NodeRow> for Vec<NodeId> {
    fn eq(&self, other: &NodeRow) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<[NodeId]> for NodeRow {
    fn eq(&self, other: &[NodeId]) -> bool {
        self.as_slice() == other
    }
}

impl FromIterator<NodeId> for NodeRow {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let iter = iter.into_iter();
        let mut row = NodeRow::with_capacity(iter.size_hint().0);
        for v in iter {
            row.push(v);
        }
        row
    }
}

impl From<Vec<NodeId>> for NodeRow {
    fn from(v: Vec<NodeId>) -> Self {
        if v.len() <= Self::INLINE {
            v.iter().copied().collect()
        } else {
            NodeRow(Repr::Heap(v))
        }
    }
}

impl From<&[NodeId]> for NodeRow {
    fn from(v: &[NodeId]) -> Self {
        v.iter().copied().collect()
    }
}

impl<'a> IntoIterator for &'a NodeRow {
    type Item = &'a NodeId;
    type IntoIter = std::slice::Iter<'a, NodeId>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(ids: &[u32]) -> NodeRow {
        ids.iter().map(|&v| NodeId(v)).collect()
    }

    #[test]
    fn inline_rows_stay_inline_and_roundtrip() {
        let r = row(&[3, 1, 4, 1, 5, 9, 2, 6]);
        assert!(matches!(r.0, Repr::Inline { .. }));
        assert_eq!(r.len(), 8);
        assert_eq!(r[2], NodeId(4));
        assert_eq!(
            r.to_vec(),
            vec![
                NodeId(3),
                NodeId(1),
                NodeId(4),
                NodeId(1),
                NodeId(5),
                NodeId(9),
                NodeId(2),
                NodeId(6)
            ]
        );
    }

    #[test]
    fn ninth_push_spills_to_heap() {
        let mut r = row(&[0, 1, 2, 3, 4, 5, 6, 7]);
        r.push(NodeId(8));
        assert!(matches!(r.0, Repr::Heap(_)));
        assert_eq!(r.len(), 9);
        assert_eq!(r[8], NodeId(8));
        r.push(NodeId(9));
        assert_eq!(r.len(), 10);
    }

    #[test]
    fn comparisons_are_lexicographic_and_cross_type() {
        assert!(row(&[1, 2]) < row(&[1, 3]));
        assert!(row(&[1]) < row(&[1, 0]));
        assert_eq!(row(&[5, 6]), vec![NodeId(5), NodeId(6)]);
        assert_eq!(vec![NodeId(5), NodeId(6)], row(&[5, 6]));
        // Spilled and inline rows with equal contents compare equal.
        let long: Vec<NodeId> = (0..12).map(NodeId).collect();
        let spilled = NodeRow::from(long.clone());
        assert!(matches!(spilled.0, Repr::Heap(_)));
        let rebuilt: NodeRow = long.iter().copied().collect();
        assert_eq!(spilled, rebuilt);
    }

    #[test]
    fn hash_agrees_across_representations() {
        use std::collections::HashSet;
        let long: Vec<NodeId> = (0..12).map(NodeId).collect();
        let mut set = HashSet::new();
        set.insert(NodeRow::from(long.clone()));
        assert!(!set.insert(long.iter().copied().collect::<NodeRow>()));
    }

    #[test]
    fn deref_gives_slice_api() {
        let r = row(&[2, 0, 1]);
        assert_eq!(r.first(), Some(&NodeId(2)));
        assert_eq!(r.iter().count(), 3);
        assert!((&r)
            .into_iter()
            .eq([NodeId(2), NodeId(0), NodeId(1)].iter()));
        assert!(!r.is_empty());
        assert!(NodeRow::new().is_empty());
    }

    #[test]
    fn from_small_vec_goes_inline() {
        let r = NodeRow::from(vec![NodeId(1), NodeId(2)]);
        assert!(matches!(r.0, Repr::Inline { .. }));
        assert_eq!(r.len(), 2);
    }
}
