//! Live graph mutations.
//!
//! A [`GraphDelta`] batches edge updates — weight changes first, then
//! edge insert/delete, per the roadmap — that are applied to an
//! otherwise-immutable [`LabeledGraph`] via [`LabeledGraph::apply_delta`].
//! Applying a delta produces the mutated graph plus a [`DeltaEffects`]
//! classification that downstream layers consume: the closure repair
//! picks the cheap propagation path for *eased* edges (weight decreases
//! and insertions, where old distances stay valid upper bounds) and a
//! targeted re-SSSP for *tightened* tails (weight increases and
//! deletions, where old distances may overestimate reachability).
//!
//! Deltas reference existing nodes only: the node set and label
//! assignment are fixed at build time. That invariant is what keeps
//! candidate-bucket membership stable across updates and makes
//! delta-aware plan invalidation a pure label-pair predicate.

use crate::digraph::{GraphBuilder, LabeledGraph};
use crate::types::{Dist, NodeId};
use std::collections::HashMap;
use std::fmt;

/// One edge mutation inside a [`GraphDelta`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphDeltaOp {
    /// Changes the weight of an existing edge `from -> to`.
    SetWeight {
        /// Edge source.
        from: NodeId,
        /// Edge target.
        to: NodeId,
        /// New weight (>= 1).
        weight: Dist,
    },
    /// Inserts a new edge `from -> to`; the edge must not already exist.
    InsertEdge {
        /// Edge source.
        from: NodeId,
        /// Edge target.
        to: NodeId,
        /// Edge weight (>= 1).
        weight: Dist,
    },
    /// Deletes the existing edge `from -> to`.
    DeleteEdge {
        /// Edge source.
        from: NodeId,
        /// Edge target.
        to: NodeId,
    },
}

/// An error raised while validating or applying a [`GraphDelta`].
///
/// Ops are validated *sequentially*: a `DeleteEdge` may target an edge
/// inserted earlier in the same delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DeltaError {
    /// An op referenced a node id outside the graph.
    UnknownNode(NodeId),
    /// A weight of zero was supplied (weights must be >= 1).
    ZeroWeight(NodeId, NodeId),
    /// A self-loop was supplied.
    SelfLoop(NodeId),
    /// `SetWeight`/`DeleteEdge` targeted an edge that does not exist.
    MissingEdge(NodeId, NodeId),
    /// `InsertEdge` targeted an edge that already exists.
    DuplicateEdge(NodeId, NodeId),
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::UnknownNode(v) => write!(f, "delta references unknown node {v}"),
            DeltaError::ZeroWeight(u, v) => {
                write!(
                    f,
                    "delta sets zero weight on ({u},{v}); weights must be >= 1"
                )
            }
            DeltaError::SelfLoop(v) => write!(f, "delta self-loop on {v} is not allowed"),
            DeltaError::MissingEdge(u, v) => write!(f, "delta targets missing edge ({u},{v})"),
            DeltaError::DuplicateEdge(u, v) => {
                write!(f, "delta inserts already-existing edge ({u},{v})")
            }
        }
    }
}

impl std::error::Error for DeltaError {}

/// An ordered batch of edge mutations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GraphDelta {
    ops: Vec<GraphDeltaOp>,
}

impl GraphDelta {
    /// An empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a weight change; returns `self` for chaining.
    pub fn set_weight(mut self, from: NodeId, to: NodeId, weight: Dist) -> Self {
        self.ops.push(GraphDeltaOp::SetWeight { from, to, weight });
        self
    }

    /// Appends an edge insertion; returns `self` for chaining.
    pub fn insert_edge(mut self, from: NodeId, to: NodeId, weight: Dist) -> Self {
        self.ops.push(GraphDeltaOp::InsertEdge { from, to, weight });
        self
    }

    /// Appends an edge deletion; returns `self` for chaining.
    pub fn delete_edge(mut self, from: NodeId, to: NodeId) -> Self {
        self.ops.push(GraphDeltaOp::DeleteEdge { from, to });
        self
    }

    /// Appends an op in place.
    pub fn push(&mut self, op: GraphDeltaOp) {
        self.ops.push(op);
    }

    /// The ops in application order.
    pub fn ops(&self) -> &[GraphDeltaOp] {
        &self.ops
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the delta carries no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Net effect of a delta, classified against the *pre-delta* graph.
///
/// Ops compose within a batch (a weight raised then restored is a
/// no-op), so effects describe the final edge set only.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaEffects {
    /// Edges whose weight decreased plus newly inserted edges, with
    /// their final weight. Old shortest distances remain valid upper
    /// bounds, so these propagate incrementally.
    pub eased: Vec<(NodeId, NodeId, Dist)>,
    /// Tail (source) nodes of edges whose weight increased or that were
    /// deleted. Every closure row that could reach such a tail needs a
    /// targeted recompute.
    pub tightened_tails: Vec<NodeId>,
    /// Endpoints of every edge whose final state differs from the
    /// pre-delta graph, ascending and deduplicated.
    pub touched_nodes: Vec<NodeId>,
}

impl DeltaEffects {
    /// Whether the delta left the graph unchanged.
    pub fn is_noop(&self) -> bool {
        self.eased.is_empty() && self.tightened_tails.is_empty()
    }
}

impl LabeledGraph {
    /// Applies a batch of edge mutations, returning the mutated graph and
    /// the net [`DeltaEffects`]. The receiver is left untouched; nodes
    /// and labels carry over verbatim.
    pub fn apply_delta(
        &self,
        delta: &GraphDelta,
    ) -> Result<(LabeledGraph, DeltaEffects), DeltaError> {
        let n = self.num_nodes();
        let check = |u: NodeId, v: NodeId| -> Result<(), DeltaError> {
            if u.index() >= n {
                return Err(DeltaError::UnknownNode(u));
            }
            if v.index() >= n {
                return Err(DeltaError::UnknownNode(v));
            }
            if u == v {
                return Err(DeltaError::SelfLoop(u));
            }
            Ok(())
        };

        let orig: HashMap<(NodeId, NodeId), Dist> =
            self.edges().map(|e| ((e.from, e.to), e.weight)).collect();
        let mut edges = orig.clone();
        for &op in delta.ops() {
            match op {
                GraphDeltaOp::SetWeight { from, to, weight } => {
                    check(from, to)?;
                    if weight == 0 {
                        return Err(DeltaError::ZeroWeight(from, to));
                    }
                    match edges.get_mut(&(from, to)) {
                        Some(w) => *w = weight,
                        None => return Err(DeltaError::MissingEdge(from, to)),
                    }
                }
                GraphDeltaOp::InsertEdge { from, to, weight } => {
                    check(from, to)?;
                    if weight == 0 {
                        return Err(DeltaError::ZeroWeight(from, to));
                    }
                    if edges.insert((from, to), weight).is_some() {
                        return Err(DeltaError::DuplicateEdge(from, to));
                    }
                }
                GraphDeltaOp::DeleteEdge { from, to } => {
                    check(from, to)?;
                    if edges.remove(&(from, to)).is_none() {
                        return Err(DeltaError::MissingEdge(from, to));
                    }
                }
            }
        }

        // Classify the net effect against the pre-delta edge set.
        let mut fx = DeltaEffects::default();
        for (&(u, v), &w) in &edges {
            match orig.get(&(u, v)) {
                None => fx.eased.push((u, v, w)),
                Some(&ow) if w < ow => fx.eased.push((u, v, w)),
                Some(&ow) if w > ow => fx.tightened_tails.push(u),
                Some(_) => continue,
            }
            fx.touched_nodes.push(u);
            fx.touched_nodes.push(v);
        }
        for (&(u, v), _) in orig.iter().filter(|(k, _)| !edges.contains_key(k)) {
            fx.tightened_tails.push(u);
            fx.touched_nodes.push(u);
            fx.touched_nodes.push(v);
        }
        fx.eased.sort_unstable();
        fx.tightened_tails.sort_unstable();
        fx.tightened_tails.dedup();
        fx.touched_nodes.sort_unstable();
        fx.touched_nodes.dedup();

        let mut b = GraphBuilder::from_nodes_of(self);
        let mut flat: Vec<((NodeId, NodeId), Dist)> = edges.into_iter().collect();
        flat.sort_unstable();
        for ((u, v), w) in flat {
            b.add_edge(u, v, w);
        }
        let g = b.build().expect("delta ops were validated");
        Ok((g, fx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::paper_graph;

    #[test]
    fn weight_decrease_is_eased() {
        let g = paper_graph();
        let e = g.edges().next().unwrap();
        // Paper graph is unit-weighted; raise first so a decrease exists.
        let (g2, fx) = g
            .apply_delta(&GraphDelta::new().set_weight(e.from, e.to, 5))
            .unwrap();
        assert_eq!(fx.eased, vec![]);
        assert_eq!(fx.tightened_tails, vec![e.from]);
        let (g3, fx2) = g2
            .apply_delta(&GraphDelta::new().set_weight(e.from, e.to, 2))
            .unwrap();
        assert_eq!(fx2.eased, vec![(e.from, e.to, 2)]);
        assert!(fx2.tightened_tails.is_empty());
        assert_eq!(g3.edge_weight(e.from, e.to), Some(2));
        assert_eq!(fx2.touched_nodes, {
            let mut t = vec![e.from, e.to];
            t.sort_unstable();
            t
        });
    }

    #[test]
    fn insert_and_delete_roundtrip_is_noop() {
        let g = paper_graph();
        let (a, b) = (NodeId(0), NodeId(12));
        assert_eq!(g.edge_weight(a, b), None);
        let delta = GraphDelta::new().insert_edge(a, b, 3).delete_edge(a, b);
        let (g2, fx) = g.apply_delta(&delta).unwrap();
        assert!(fx.is_noop());
        assert!(fx.touched_nodes.is_empty());
        assert_eq!(g2.num_edges(), g.num_edges());
    }

    #[test]
    fn insert_then_reweight_composes() {
        let g = paper_graph();
        let (a, b) = (NodeId(0), NodeId(12));
        let delta = GraphDelta::new().insert_edge(a, b, 9).set_weight(a, b, 4);
        let (g2, fx) = g.apply_delta(&delta).unwrap();
        assert_eq!(fx.eased, vec![(a, b, 4)]);
        assert!(fx.tightened_tails.is_empty());
        assert_eq!(g2.edge_weight(a, b), Some(4));
    }

    #[test]
    fn delete_is_tightened() {
        let g = paper_graph();
        let e = g.edges().next().unwrap();
        let (g2, fx) = g
            .apply_delta(&GraphDelta::new().delete_edge(e.from, e.to))
            .unwrap();
        assert_eq!(fx.tightened_tails, vec![e.from]);
        assert!(fx.eased.is_empty());
        assert_eq!(g2.edge_weight(e.from, e.to), None);
        assert_eq!(g2.num_edges(), g.num_edges() - 1);
    }

    #[test]
    fn labels_and_nodes_carry_over() {
        let g = paper_graph();
        let e = g.edges().next().unwrap();
        let (g2, _) = g
            .apply_delta(&GraphDelta::new().set_weight(e.from, e.to, 7))
            .unwrap();
        assert_eq!(g2.num_nodes(), g.num_nodes());
        assert_eq!(g2.num_labels(), g.num_labels());
        for v in g.nodes() {
            assert_eq!(g.label(v), g2.label(v));
        }
        for l in 0..g.num_labels() as u32 {
            let l = crate::LabelId(l);
            assert_eq!(g.nodes_with_label(l), g2.nodes_with_label(l));
        }
    }

    #[test]
    fn validation_errors() {
        let g = paper_graph();
        let e = g.edges().next().unwrap();
        let far = NodeId(999);
        assert_eq!(
            g.apply_delta(&GraphDelta::new().set_weight(far, e.to, 1))
                .unwrap_err(),
            DeltaError::UnknownNode(far)
        );
        assert_eq!(
            g.apply_delta(&GraphDelta::new().set_weight(e.from, e.to, 0))
                .unwrap_err(),
            DeltaError::ZeroWeight(e.from, e.to)
        );
        assert_eq!(
            g.apply_delta(&GraphDelta::new().insert_edge(e.from, e.from, 1))
                .unwrap_err(),
            DeltaError::SelfLoop(e.from)
        );
        assert_eq!(
            g.apply_delta(&GraphDelta::new().insert_edge(e.from, e.to, 1))
                .unwrap_err(),
            DeltaError::DuplicateEdge(e.from, e.to)
        );
        assert_eq!(
            g.apply_delta(&GraphDelta::new().delete_edge(NodeId(0), NodeId(12)))
                .unwrap_err(),
            DeltaError::MissingEdge(NodeId(0), NodeId(12))
        );
    }

    #[test]
    fn same_weight_set_is_noop() {
        let g = paper_graph();
        let e = g.edges().next().unwrap();
        let (_, fx) = g
            .apply_delta(&GraphDelta::new().set_weight(e.from, e.to, e.weight))
            .unwrap();
        assert!(fx.is_noop());
    }
}
