//! Plain-text graph exchange format.
//!
//! One record per line; `#` starts a comment:
//!
//! ```text
//! # nodes: n <id> <label>     (ids must be dense, starting at 0)
//! n 0 paperA
//! n 1 paperB
//! # edges: e <src> <dst> [weight]   (weight defaults to 1)
//! e 0 1
//! e 1 0 3
//! ```
//!
//! Used by the `ktpm` CLI and handy for small reproducible datasets in
//! tests and docs.

use crate::digraph::{GraphBuilder, GraphError, LabeledGraph};
use crate::types::NodeId;
use std::fmt;
use std::io::{BufRead, Write};

/// Errors raised while parsing the text graph format.
#[derive(Debug)]
pub enum GraphIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number.
    Parse(usize, String),
    /// Node ids were not dense/ordered.
    NodeOrder(usize),
    /// Structural validation failed.
    Graph(GraphError),
}

impl fmt::Display for GraphIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphIoError::Io(e) => write!(f, "i/o error: {e}"),
            GraphIoError::Parse(n, l) => write!(f, "line {n}: cannot parse {l:?}"),
            GraphIoError::NodeOrder(n) => {
                write!(f, "line {n}: node ids must be dense and ascending from 0")
            }
            GraphIoError::Graph(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

impl std::error::Error for GraphIoError {}

impl From<std::io::Error> for GraphIoError {
    fn from(e: std::io::Error) -> Self {
        GraphIoError::Io(e)
    }
}

impl From<GraphError> for GraphIoError {
    fn from(e: GraphError) -> Self {
        GraphIoError::Graph(e)
    }
}

/// Parses the text format from any buffered reader.
pub fn read_graph<R: BufRead>(reader: R) -> Result<LabeledGraph, GraphIoError> {
    let mut b = GraphBuilder::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("n") => {
                let (Some(id), Some(label), None) = (parts.next(), parts.next(), parts.next())
                else {
                    return Err(GraphIoError::Parse(lineno + 1, line.to_string()));
                };
                let id: u32 = id
                    .parse()
                    .map_err(|_| GraphIoError::Parse(lineno + 1, line.to_string()))?;
                if id as usize != b.num_nodes() {
                    return Err(GraphIoError::NodeOrder(lineno + 1));
                }
                b.add_node(label);
            }
            Some("e") => {
                let (Some(src), Some(dst)) = (parts.next(), parts.next()) else {
                    return Err(GraphIoError::Parse(lineno + 1, line.to_string()));
                };
                let w = parts.next().unwrap_or("1");
                if parts.next().is_some() {
                    return Err(GraphIoError::Parse(lineno + 1, line.to_string()));
                }
                let (Ok(src), Ok(dst), Ok(w)) =
                    (src.parse::<u32>(), dst.parse::<u32>(), w.parse::<u32>())
                else {
                    return Err(GraphIoError::Parse(lineno + 1, line.to_string()));
                };
                b.add_edge(NodeId(src), NodeId(dst), w);
            }
            _ => return Err(GraphIoError::Parse(lineno + 1, line.to_string())),
        }
    }
    Ok(b.build()?)
}

/// Writes a graph in the text format.
pub fn write_graph<W: Write>(g: &LabeledGraph, mut w: W) -> std::io::Result<()> {
    writeln!(w, "# {} nodes, {} edges", g.num_nodes(), g.num_edges())?;
    for v in g.nodes() {
        writeln!(w, "n {} {}", v.0, g.label_name(g.label(v)))?;
    }
    for e in g.edges() {
        if e.weight == 1 {
            writeln!(w, "e {} {}", e.from.0, e.to.0)?;
        } else {
            writeln!(w, "e {} {} {}", e.from.0, e.to.0, e.weight)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::paper_graph;

    #[test]
    fn roundtrip_paper_graph() {
        let g = paper_graph();
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let g2 = read_graph(&buf[..]).unwrap();
        assert_eq!(g.num_nodes(), g2.num_nodes());
        assert_eq!(g.num_edges(), g2.num_edges());
        for v in g.nodes() {
            assert_eq!(g.label_name(g.label(v)), g2.label_name(g2.label(v)));
        }
        let e1: Vec<_> = g.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn parses_comments_weights_and_blank_lines() {
        let text = "# demo\n\nn 0 a\nn 1 b\n\ne 0 1 5\n";
        let g = read_graph(text.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.out_edges(NodeId(0)).next().unwrap().weight, 5);
    }

    #[test]
    fn rejects_bad_lines() {
        assert!(matches!(
            read_graph("x 0 a".as_bytes()).unwrap_err(),
            GraphIoError::Parse(1, _)
        ));
        assert!(matches!(
            read_graph("n 0 a extra".as_bytes()).unwrap_err(),
            GraphIoError::Parse(1, _)
        ));
        assert!(matches!(
            read_graph("n 0 a\ne 0".as_bytes()).unwrap_err(),
            GraphIoError::Parse(2, _)
        ));
    }

    #[test]
    fn rejects_non_dense_node_ids() {
        assert!(matches!(
            read_graph("n 1 a".as_bytes()).unwrap_err(),
            GraphIoError::NodeOrder(1)
        ));
    }

    #[test]
    fn rejects_invalid_structure() {
        assert!(matches!(
            read_graph("n 0 a\ne 0 9".as_bytes()).unwrap_err(),
            GraphIoError::Graph(_)
        ));
    }
}
