//! The node-labeled, edge-weighted directed graph in CSR form.
//!
//! Built once via [`GraphBuilder`], then immutable. Both outgoing and
//! incoming adjacency are materialized: the closure computation walks
//! outgoing edges, while the priority-based loader of §4 conceptually
//! retrieves *incoming* edges grouped by parent label.

use crate::labels::LabelInterner;
use crate::types::{Dist, LabelId, NodeId};
use std::collections::HashMap;
use std::fmt;

/// An error raised while constructing a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge referenced a node id that was never added.
    UnknownNode(NodeId),
    /// An edge carried a zero weight (the paper's scores require
    /// every hop to cost at least 1; §4's lower bound `L(u)` relies on it).
    ZeroWeight(NodeId, NodeId),
    /// A self-loop was supplied (meaningless under path semantics).
    SelfLoop(NodeId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode(v) => write!(f, "edge references unknown node {v}"),
            GraphError::ZeroWeight(u, v) => {
                write!(f, "edge ({u},{v}) has zero weight; weights must be >= 1")
            }
            GraphError::SelfLoop(v) => write!(f, "self-loop on {v} is not allowed"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A reference to one edge during iteration.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct EdgeRef {
    /// Source node.
    pub from: NodeId,
    /// Target node.
    pub to: NodeId,
    /// Edge weight (>= 1).
    pub weight: Dist,
}

/// Aggregate statistics of a graph (used by the experiment harness).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of edges.
    pub edges: usize,
    /// Number of distinct labels actually used.
    pub labels: usize,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Maximum in-degree.
    pub max_in_degree: usize,
}

/// An immutable node-labeled directed graph in CSR form.
#[derive(Clone)]
pub struct LabeledGraph {
    labels: Vec<LabelId>,
    interner: LabelInterner,
    // Outgoing CSR.
    out_offsets: Vec<u32>,
    out_targets: Vec<NodeId>,
    out_weights: Vec<Dist>,
    // Incoming CSR.
    in_offsets: Vec<u32>,
    in_sources: Vec<NodeId>,
    in_weights: Vec<Dist>,
    // Nodes grouped per label, in node-id order.
    nodes_by_label: Vec<Vec<NodeId>>,
}

impl LabeledGraph {
    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.labels.len()
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out_targets.len()
    }

    /// Number of distinct labels known to the interner.
    #[inline]
    pub fn num_labels(&self) -> usize {
        self.interner.len()
    }

    /// Label of `v`.
    #[inline]
    pub fn label(&self, v: NodeId) -> LabelId {
        self.labels[v.index()]
    }

    /// Human-readable name of a label.
    pub fn label_name(&self, l: LabelId) -> &str {
        self.interner.name(l)
    }

    /// The interner (for resolving names in callers).
    pub fn interner(&self) -> &LabelInterner {
        &self.interner
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.labels.len() as u32).map(NodeId)
    }

    /// Nodes carrying label `l`, ascending by id. Empty if the label is unused.
    pub fn nodes_with_label(&self, l: LabelId) -> &[NodeId] {
        self.nodes_by_label
            .get(l.index())
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Outgoing edges of `v`.
    pub fn out_edges(&self, v: NodeId) -> impl Iterator<Item = EdgeRef> + '_ {
        let lo = self.out_offsets[v.index()] as usize;
        let hi = self.out_offsets[v.index() + 1] as usize;
        (lo..hi).map(move |i| EdgeRef {
            from: v,
            to: self.out_targets[i],
            weight: self.out_weights[i],
        })
    }

    /// Incoming edges of `v`.
    pub fn in_edges(&self, v: NodeId) -> impl Iterator<Item = EdgeRef> + '_ {
        let lo = self.in_offsets[v.index()] as usize;
        let hi = self.in_offsets[v.index() + 1] as usize;
        (lo..hi).map(move |i| EdgeRef {
            from: self.in_sources[i],
            to: v,
            weight: self.in_weights[i],
        })
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        (self.out_offsets[v.index() + 1] - self.out_offsets[v.index()]) as usize
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        (self.in_offsets[v.index() + 1] - self.in_offsets[v.index()]) as usize
    }

    /// All edges in source-major order.
    pub fn edges(&self) -> impl Iterator<Item = EdgeRef> + '_ {
        self.nodes().flat_map(move |v| self.out_edges(v))
    }

    /// Whether all edge weights equal 1 (enables BFS instead of Dijkstra).
    pub fn is_unit_weighted(&self) -> bool {
        self.out_weights.iter().all(|&w| w == 1)
    }

    /// Weight of the edge `u -> v`, if present. Binary search over `u`'s
    /// out-neighbors (sorted by target id at build time).
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<Dist> {
        if u.index() >= self.num_nodes() {
            return None;
        }
        let lo = self.out_offsets[u.index()] as usize;
        let hi = self.out_offsets[u.index() + 1] as usize;
        self.out_targets[lo..hi]
            .binary_search(&v)
            .ok()
            .map(|i| self.out_weights[lo + i])
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> GraphStats {
        let max_out = self.nodes().map(|v| self.out_degree(v)).max().unwrap_or(0);
        let max_in = self.nodes().map(|v| self.in_degree(v)).max().unwrap_or(0);
        let used = self.nodes_by_label.iter().filter(|b| !b.is_empty()).count();
        GraphStats {
            nodes: self.num_nodes(),
            edges: self.num_edges(),
            labels: used,
            max_out_degree: max_out,
            max_in_degree: max_in,
        }
    }
}

impl fmt::Debug for LabeledGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LabeledGraph")
            .field("nodes", &self.num_nodes())
            .field("edges", &self.num_edges())
            .field("labels", &self.num_labels())
            .finish()
    }
}

/// Incremental builder for [`LabeledGraph`].
///
/// Duplicate parallel edges are collapsed keeping the minimum weight
/// (shortest-path semantics make heavier parallels irrelevant).
#[derive(Debug, Default)]
pub struct GraphBuilder {
    labels: Vec<LabelId>,
    interner: LabelInterner,
    edges: Vec<(NodeId, NodeId, Dist)>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-sizes internal buffers.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        Self {
            labels: Vec::with_capacity(nodes),
            interner: LabelInterner::new(),
            edges: Vec::with_capacity(edges),
        }
    }

    /// Adds a node with label `label`, returning its id.
    pub fn add_node(&mut self, label: &str) -> NodeId {
        let l = self.interner.intern(label);
        self.add_node_with_label_id(l)
    }

    /// Adds a node with an already-interned label id.
    pub fn add_node_with_label_id(&mut self, l: LabelId) -> NodeId {
        let id = NodeId(self.labels.len() as u32);
        self.labels.push(l);
        id
    }

    /// Interns a label without adding a node.
    pub fn intern_label(&mut self, label: &str) -> LabelId {
        self.interner.intern(label)
    }

    /// Adds a directed edge `from -> to` with `weight >= 1`.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, weight: Dist) {
        self.edges.push((from, to, weight));
    }

    /// Seeds a builder with the nodes and interner of an existing graph,
    /// but no edges — the delta path uses this to rebuild a mutated
    /// graph with identical node ids and label assignment.
    pub fn from_nodes_of(g: &LabeledGraph) -> Self {
        Self {
            labels: g.labels.clone(),
            interner: g.interner.clone(),
            edges: Vec::new(),
        }
    }

    /// Current number of nodes added.
    pub fn num_nodes(&self) -> usize {
        self.labels.len()
    }

    /// Finalizes into a CSR graph, validating edges.
    pub fn build(self) -> Result<LabeledGraph, GraphError> {
        let n = self.labels.len();
        // Validate.
        for &(u, v, w) in &self.edges {
            if u.index() >= n {
                return Err(GraphError::UnknownNode(u));
            }
            if v.index() >= n {
                return Err(GraphError::UnknownNode(v));
            }
            if w == 0 {
                return Err(GraphError::ZeroWeight(u, v));
            }
            if u == v {
                return Err(GraphError::SelfLoop(u));
            }
        }
        // Dedup parallel edges keeping the minimum weight.
        let mut dedup: HashMap<(NodeId, NodeId), Dist> = HashMap::with_capacity(self.edges.len());
        for &(u, v, w) in &self.edges {
            dedup
                .entry((u, v))
                .and_modify(|cur| *cur = (*cur).min(w))
                .or_insert(w);
        }
        let mut edges: Vec<(NodeId, NodeId, Dist)> =
            dedup.into_iter().map(|((u, v), w)| (u, v, w)).collect();
        edges.sort_unstable_by_key(|&(u, v, _)| (u, v));

        // Outgoing CSR.
        let mut out_offsets = vec![0u32; n + 1];
        for &(u, _, _) in &edges {
            out_offsets[u.index() + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }
        let mut out_targets = Vec::with_capacity(edges.len());
        let mut out_weights = Vec::with_capacity(edges.len());
        for &(_, v, w) in &edges {
            out_targets.push(v);
            out_weights.push(w);
        }

        // Incoming CSR.
        let mut in_offsets = vec![0u32; n + 1];
        for &(_, v, _) in &edges {
            in_offsets[v.index() + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut cursor = in_offsets.clone();
        let mut in_sources = vec![NodeId(0); edges.len()];
        let mut in_weights = vec![0 as Dist; edges.len()];
        for &(u, v, w) in &edges {
            let slot = cursor[v.index()] as usize;
            in_sources[slot] = u;
            in_weights[slot] = w;
            cursor[v.index()] += 1;
        }

        // Label buckets.
        let mut nodes_by_label = vec![Vec::new(); self.interner.len()];
        for (i, &l) in self.labels.iter().enumerate() {
            nodes_by_label[l.index()].push(NodeId(i as u32));
        }

        Ok(LabeledGraph {
            labels: self.labels,
            interner: self.interner,
            out_offsets,
            out_targets,
            out_weights,
            in_offsets,
            in_sources,
            in_weights,
            nodes_by_label,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_fig2_graph() -> LabeledGraph {
        crate::fixtures::paper_graph()
    }

    #[test]
    fn build_and_query_basic() {
        let g = paper_fig2_graph();
        assert_eq!(g.num_nodes(), 13);
        assert_eq!(g.num_edges(), 14);
        assert!(g.is_unit_weighted());
        let a = g.interner().get("a").unwrap();
        assert_eq!(g.nodes_with_label(a), &[NodeId(0), NodeId(1)]);
    }

    #[test]
    fn out_and_in_adjacency_are_consistent() {
        let g = paper_fig2_graph();
        let mut out_pairs: Vec<_> = g.edges().map(|e| (e.from, e.to, e.weight)).collect();
        let mut in_pairs: Vec<_> = g
            .nodes()
            .flat_map(|v| g.in_edges(v).collect::<Vec<_>>())
            .map(|e| (e.from, e.to, e.weight))
            .collect();
        out_pairs.sort_unstable();
        in_pairs.sort_unstable();
        assert_eq!(out_pairs, in_pairs);
    }

    #[test]
    fn degrees_match_iteration() {
        let g = paper_fig2_graph();
        for v in g.nodes() {
            assert_eq!(g.out_degree(v), g.out_edges(v).count());
            assert_eq!(g.in_degree(v), g.in_edges(v).count());
        }
    }

    #[test]
    fn parallel_edges_keep_min_weight() {
        let mut b = GraphBuilder::new();
        let x = b.add_node("x");
        let y = b.add_node("y");
        b.add_edge(x, y, 5);
        b.add_edge(x, y, 2);
        b.add_edge(x, y, 9);
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.out_edges(x).next().unwrap().weight, 2);
    }

    #[test]
    fn zero_weight_rejected() {
        let mut b = GraphBuilder::new();
        let x = b.add_node("x");
        let y = b.add_node("y");
        b.add_edge(x, y, 0);
        assert_eq!(b.build().unwrap_err(), GraphError::ZeroWeight(x, y));
    }

    #[test]
    fn self_loop_rejected() {
        let mut b = GraphBuilder::new();
        let x = b.add_node("x");
        b.add_edge(x, x, 1);
        assert_eq!(b.build().unwrap_err(), GraphError::SelfLoop(x));
    }

    #[test]
    fn unknown_node_rejected() {
        let mut b = GraphBuilder::new();
        let x = b.add_node("x");
        b.add_edge(x, NodeId(99), 1);
        assert_eq!(b.build().unwrap_err(), GraphError::UnknownNode(NodeId(99)));
    }

    #[test]
    fn stats_reflect_structure() {
        let g = paper_fig2_graph();
        let s = g.stats();
        assert_eq!(s.nodes, 13);
        assert_eq!(s.edges, 14);
        assert_eq!(s.labels, 6); // a b c d e s
        assert!(s.max_out_degree >= 3); // v5 has 3 outgoing
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = GraphBuilder::new().build().unwrap();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.stats().max_out_degree, 0);
    }

    #[test]
    fn nodes_with_unused_label_is_empty() {
        let mut b = GraphBuilder::new();
        let unused = b.intern_label("unused");
        b.add_node("used");
        let g = b.build().unwrap();
        assert!(g.nodes_with_label(unused).is_empty());
    }
}
