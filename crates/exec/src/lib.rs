//! # ktpm-exec
//!
//! A fixed-size worker pool for query execution, shared by every layer
//! that schedules CPU-bound jobs: the service engine runs request
//! batches on one, and the parallel partitioned enumerator (`ParTopk`
//! in `ktpm-core`) scatters per-shard jobs on another — both from the
//! batch CLI and from `ktpm serve`.
//!
//! Deliberately minimal (std-only, no external executor): one shared
//! MPMC-by-mutex job queue drained by N threads. Jobs are short and
//! CPU-bound, so a simple queue is enough; the pool's function is to
//! cap concurrent work at a configured width no matter how many
//! callers pile in.
//!
//! Jobs must run to completion without blocking on other jobs of the
//! same pool — that discipline is what makes it safe for a request
//! worker (on the service's request pool) to block in
//! [`WorkerPool::scatter`] on a *different* pool: shard jobs never
//! wait on anything, so there is no circular wait.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed set of worker threads executing submitted closures.
pub struct WorkerPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads (at least one).
    pub fn new(workers: usize) -> Self {
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("ktpm-worker-{i}"))
                    .spawn(move || worker_loop(rx))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            workers,
        }
    }

    /// Enqueues a job; some worker will run it.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.tx
            .as_ref()
            .expect("pool is alive while tx is Some")
            .send(Box::new(job))
            .expect("workers outlive the pool handle");
    }

    /// Runs `job` on a worker and blocks for its result. If the job
    /// panics, the panic is re-raised *here* (on the caller's thread);
    /// the worker itself survives and keeps serving the queue.
    pub fn run<T: Send + 'static>(&self, job: impl FnOnce() -> T + Send + 'static) -> T {
        let (tx, rx): (Sender<T>, Receiver<T>) = channel();
        self.execute(move || {
            // A dropped tx (client gone) is fine; result is discarded.
            let _ = tx.send(job());
        });
        rx.recv()
            .expect("job panicked on a worker thread (see worker's panic output)")
    }

    /// Runs every job concurrently on the pool and blocks until all
    /// finish, returning results in submission order. Panics on the
    /// caller's thread if any job panicked.
    pub fn scatter<T: Send + 'static>(
        &self,
        jobs: Vec<Box<dyn FnOnce() -> T + Send + 'static>>,
    ) -> Vec<T> {
        let n = jobs.len();
        let (tx, rx) = channel::<(usize, T)>();
        for (i, job) in jobs.into_iter().enumerate() {
            let tx = tx.clone();
            self.execute(move || {
                let _ = tx.send((i, job()));
            });
        }
        drop(tx); // receivers below terminate once every job-held clone is gone
        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let mut received = 0;
        while let Ok((i, v)) = rx.recv() {
            out[i] = Some(v);
            received += 1;
        }
        assert_eq!(
            received, n,
            "a scatter job panicked on a worker thread (see worker's panic output)"
        );
        out.into_iter().map(|v| v.expect("all received")).collect()
    }

    /// Number of worker threads.
    pub fn width(&self) -> usize {
        self.workers.len()
    }
}

/// A lazily-created process-wide pool sized to the machine (at least 2,
/// at most 16 workers), for callers without their own pool — the batch
/// CLI and the test suites. Long-lived services size their own.
pub fn default_pool() -> Arc<WorkerPool> {
    static POOL: OnceLock<Arc<WorkerPool>> = OnceLock::new();
    Arc::clone(POOL.get_or_init(|| {
        let width = std::thread::available_parallelism().map_or(4, |n| n.get().clamp(2, 16));
        Arc::new(WorkerPool::new(width))
    }))
}

fn worker_loop(rx: Arc<Mutex<Receiver<Job>>>) {
    loop {
        let job = match rx.lock() {
            Ok(guard) => match guard.recv() {
                Ok(job) => job,
                Err(_) => return, // pool dropped: drain and exit
            },
            // A sibling worker panicked while holding the queue lock
            // (only possible between recv and job; harmless): continue.
            Err(poisoned) => match poisoned.into_inner().recv() {
                Ok(job) => job,
                Err(_) => return,
            },
        };
        // Contain panics to the failing job: the worker (and therefore
        // the pool) must survive a pathological query. The caller
        // blocked in `run` observes the panic through its dropped
        // channel sender.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        drop(self.tx.take()); // disconnect: workers exit after current job
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn executes_all_jobs_across_workers() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.width(), 4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool); // join
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn run_returns_job_result() {
        let pool = WorkerPool::new(2);
        let results: Vec<usize> = (0..10).map(|i| pool.run(move || i * i)).collect();
        assert_eq!(results, (0..10).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn scatter_preserves_submission_order() {
        let pool = WorkerPool::new(4);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..32usize)
            .map(|i| {
                Box::new(move || {
                    // Stagger so completion order scrambles.
                    std::thread::sleep(std::time::Duration::from_micros(((32 - i) * 50) as u64));
                    i * 10
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let out = pool.scatter(jobs);
        assert_eq!(out, (0..32).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn scatter_of_nothing_is_empty() {
        let pool = WorkerPool::new(1);
        let out: Vec<u8> = pool.scatter(Vec::new());
        assert!(out.is_empty());
    }

    #[test]
    fn scatter_panics_if_any_job_panics() {
        let pool = WorkerPool::new(2);
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("bad shard")),
            Box::new(|| 3),
        ];
        let observed =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pool.scatter(jobs)));
        assert!(observed.is_err(), "caller must observe the panic");
        // The pool survives.
        assert_eq!(pool.run(|| 41 + 1), 42);
    }

    #[test]
    fn panicking_job_does_not_kill_the_pool() {
        let pool = WorkerPool::new(1);
        // The panic surfaces on the caller thread...
        let observed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(|| -> usize { panic!("bad query") })
        }));
        assert!(observed.is_err(), "caller must observe the panic");
        // ...but the single worker survives and serves the next job.
        assert_eq!(pool.run(|| 41 + 1), 42);
    }

    #[test]
    fn zero_width_is_clamped_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.width(), 1);
        assert_eq!(pool.run(|| 7), 7);
    }

    #[test]
    fn default_pool_is_shared_and_alive() {
        let a = default_pool();
        let b = default_pool();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(a.width() >= 2);
        assert_eq!(a.run(|| 5), 5);
    }
}
