//! An offline, dependency-free stand-in for `proptest`, exposing the
//! API subset this workspace's property tests use: the [`Strategy`]
//! trait with `prop_map` / `prop_flat_map` / `boxed`, range and tuple
//! strategies, [`collection::vec`], [`Just`], [`BoxedStrategy`], the
//! [`proptest!`] macro, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from the real crate (deliberate, to stay dependency
//! free): no shrinking — a failing case reports its inputs via the
//! panic message but is not minimized — and no persisted failure seeds;
//! each test derives a deterministic seed from its own name, so runs
//! are reproducible. Swap the path dependency for the real crate to get
//! shrinking back.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Test-runner configuration (subset: case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values (no shrinking; see crate docs).
pub trait Strategy: 'static {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O + 'static,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S + 'static,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O + 'static,
    O: 'static,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2 + 'static,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A type-erased strategy (cheaply clonable).
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut StdRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut StdRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Each element drawn from the strategy at its position.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::*;

    /// Lengths accepted by [`vec()`]: a fixed size or a range.
    pub trait IntoSizeRange {
        fn pick(&self, rng: &mut StdRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            if self.is_empty() {
                self.start
            } else {
                rng.random_range(self.clone())
            }
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    /// A `Vec` of values from `element`, sized by `size`.
    pub fn vec<S: Strategy, R: IntoSizeRange + 'static>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: IntoSizeRange + 'static> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The common imports.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

#[doc(hidden)]
pub fn test_seed(name: &str, case: u32) -> StdRng {
    // FNV-1a over the test name, mixed with the case index, so every
    // test walks its own deterministic sequence.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
}

/// `assert!` that reports through the proptest harness (here: panics,
/// as there is no shrinking to drive).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares property tests: each `name(arg in strategy, ...)` runs
/// `cases` times with fresh random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)
        $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let mut prop_rng = $crate::test_seed(stringify!($name), case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut prop_rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_vecs_generate_in_bounds() {
        let mut rng = crate::test_seed("unit", 0);
        let s = (2..10usize).prop_flat_map(|n| {
            let items = crate::collection::vec(0..5u32, n);
            (Just(n), items).prop_map(|(n, v)| (n, v))
        });
        for _ in 0..200 {
            let (n, v) = s.generate(&mut rng);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn boxed_strategies_compose_in_vecs() {
        let mut rng = crate::test_seed("unit2", 0);
        let parts: Vec<BoxedStrategy<usize>> =
            vec![Just(7).boxed(), (0..3usize).boxed(), (4..5usize).boxed()];
        for _ in 0..50 {
            let v = parts.generate(&mut rng);
            assert_eq!(v[0], 7);
            assert!(v[1] < 3);
            assert_eq!(v[2], 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_runs_cases(x in 1..100u32, y in 0..10usize) {
            prop_assert!((1..100).contains(&x));
            prop_assert_eq!(y.min(9), y);
        }
    }
}
