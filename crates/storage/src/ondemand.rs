//! On-demand closure source — §5 "Managing Closure Size".
//!
//! The paper notes that the full transitive closure "may be extremely
//! large due to possible O(n²G) size" and proposes keeping only hot
//! lists while computing the rest on the fly. [`OnDemandStore`]
//! implements the no-precomputation end of that spectrum: it wraps the
//! data graph directly and materializes each `Lᵅᵦ` pair table lazily,
//! by running SSSP from the α-labeled nodes the first time any table
//! with source label α is requested. Tables are cached, so a query
//! workload touching few label pairs never pays for the rest of the
//! closure.
//!
//! Trade-off: the first query touching label α pays O(|Vα| · m) SSSP
//! time instead of a table read; wildcard query nodes touch every label
//! and therefore degrade to a full closure computation (as §5 predicts
//! for wildcards).

use crate::format::{DEFAULT_BLOCK_EDGES, L_ENTRY_BYTES};
use crate::iostats::{IoSnapshot, IoStats};
use crate::source::{ClosureSource, EdgeCursor};
use ktpm_closure::{sssp, PairTable};
use ktpm_graph::{Dist, LabelId, LabeledGraph, NodeId, INF_DIST};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A [`ClosureSource`] that computes label-pair tables on demand.
pub struct OnDemandStore {
    graph: LabeledGraph,
    /// Pair tables materialized so far.
    tables: Mutex<HashMap<(LabelId, LabelId), Arc<PairTable>>>,
    /// Source labels whose SSSP sweep already ran (all pairs from that
    /// label are materialized together — one sweep serves every β).
    swept: Mutex<std::collections::HashSet<LabelId>>,
    /// Lazily-built undirected mirror — itself on-demand, so a pattern
    /// workload only sweeps the labels it touches.
    mirror: std::sync::OnceLock<crate::SharedSource>,
    io: IoStats,
    sweeps: AtomicU64,
    block_edges: usize,
}

impl OnDemandStore {
    /// Wraps `graph`; nothing is computed until a table is requested.
    pub fn new(graph: LabeledGraph) -> Self {
        Self::with_block_edges(graph, DEFAULT_BLOCK_EDGES)
    }

    /// Wraps with an explicit cursor block size.
    pub fn with_block_edges(graph: LabeledGraph, block_edges: usize) -> Self {
        OnDemandStore {
            graph,
            tables: Mutex::new(HashMap::new()),
            swept: Mutex::new(std::collections::HashSet::new()),
            mirror: std::sync::OnceLock::new(),
            io: IoStats::new(),
            sweeps: AtomicU64::new(0),
            block_edges: block_edges.max(1),
        }
    }

    /// The wrapped graph.
    pub fn graph(&self) -> &LabeledGraph {
        &self.graph
    }

    /// Number of per-source-label SSSP sweeps performed so far (a cache
    /// effectiveness metric: one per distinct source label touched).
    pub fn sweeps(&self) -> u64 {
        self.sweeps.load(Ordering::Relaxed)
    }

    /// Ensures all tables with source label `a` exist.
    fn sweep(&self, a: LabelId) {
        {
            let swept = self.swept.lock().expect("swept set");
            if swept.contains(&a) {
                return;
            }
        }
        // Run SSSP from every α-labeled node and bucket by target label.
        let mut buckets: HashMap<LabelId, Vec<(NodeId, NodeId, Dist)>> = HashMap::new();
        let mut scratch = vec![INF_DIST; self.graph.num_nodes()];
        for &src in self.graph.nodes_with_label(a) {
            for (dst, dist) in sssp(&self.graph, src, &mut scratch) {
                buckets
                    .entry(self.graph.label(dst))
                    .or_default()
                    .push((src, dst, dist));
            }
        }
        let mut tables = self.tables.lock().expect("tables");
        let mut swept = self.swept.lock().expect("swept set");
        if swept.insert(a) {
            self.sweeps.fetch_add(1, Ordering::Relaxed);
            for (b, triples) in buckets {
                tables.insert((a, b), Arc::new(PairTable::build(triples)));
            }
        }
    }

    /// Wraps the store in a [`crate::SharedSource`] for concurrent use.
    pub fn into_shared(self) -> crate::SharedSource {
        Arc::new(self)
    }

    fn table(&self, a: LabelId, b: LabelId) -> Option<Arc<PairTable>> {
        self.sweep(a);
        self.tables.lock().expect("tables").get(&(a, b)).cloned()
    }
}

impl ClosureSource for OnDemandStore {
    fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    fn node_label(&self, v: NodeId) -> LabelId {
        self.graph.label(v)
    }

    fn pair_keys(&self) -> Vec<(LabelId, LabelId)> {
        // Without computing, the best sound answer is every pair of
        // *present* labels; absent pairs just materialize empty.
        let present: Vec<LabelId> = (0..self.graph.num_labels() as u32)
            .map(LabelId)
            .filter(|&l| !self.graph.nodes_with_label(l).is_empty())
            .collect();
        let mut keys = Vec::with_capacity(present.len() * present.len());
        for &a in &present {
            for &b in &present {
                keys.push((a, b));
            }
        }
        keys
    }

    fn load_d(&self, a: LabelId, b: LabelId) -> Vec<(NodeId, Dist)> {
        let Some(t) = self.table(a, b) else {
            return Vec::new();
        };
        let out: Vec<(NodeId, Dist)> = t
            .dst_nodes()
            .iter()
            .map(|&v| (v, t.min_incoming_dist(v).expect("non-empty group")))
            .collect();
        self.io.add_block((out.len() * 8 + 4) as u64);
        self.io.add_d_entries(out.len() as u64);
        out
    }

    fn load_e(&self, a: LabelId, b: LabelId) -> Vec<(NodeId, NodeId, Dist)> {
        let Some(t) = self.table(a, b) else {
            return Vec::new();
        };
        let out = t.min_out().to_vec();
        self.io.add_block((out.len() * 12 + 4) as u64);
        self.io.add_e_entries(out.len() as u64);
        out
    }

    fn load_pair(&self, a: LabelId, b: LabelId) -> Vec<(NodeId, NodeId, Dist)> {
        let Some(t) = self.table(a, b) else {
            return Vec::new();
        };
        let out: Vec<_> = t.iter_edges().collect();
        self.io.add_block((out.len() * L_ENTRY_BYTES) as u64);
        self.io.add_edges(out.len() as u64);
        out
    }

    fn incoming_cursor(&self, a: LabelId, v: NodeId) -> Box<dyn EdgeCursor + Send> {
        let entries = self
            .table(a, self.node_label(v))
            .map(|t| t.incoming(v).to_vec())
            .unwrap_or_default();
        Box::new(OnDemandCursor {
            io: self.io.clone(),
            entries,
            pos: 0,
            block_edges: self.block_edges,
        })
    }

    fn lookup_dist(&self, u: NodeId, v: NodeId) -> Option<Dist> {
        self.table(self.node_label(u), self.node_label(v))
            .and_then(|t| t.dist(u, v))
    }

    fn io(&self) -> IoSnapshot {
        self.io.snapshot()
    }

    fn reset_io(&self) {
        self.io.reset();
    }

    fn undirected(&self) -> Option<crate::SharedSource> {
        Some(Arc::clone(self.mirror.get_or_init(|| {
            OnDemandStore::new(ktpm_graph::undirect(&self.graph)).into_shared()
        })))
    }
}

struct OnDemandCursor {
    io: IoStats,
    entries: Vec<(NodeId, Dist)>,
    pos: usize,
    block_edges: usize,
}

impl EdgeCursor for OnDemandCursor {
    fn next_block(&mut self) -> Vec<(NodeId, Dist)> {
        if self.pos >= self.entries.len() {
            return Vec::new();
        }
        let take = (self.entries.len() - self.pos).min(self.block_edges);
        let out = self.entries[self.pos..self.pos + take].to_vec();
        self.pos += take;
        self.io.add_block((take * L_ENTRY_BYTES) as u64);
        self.io.add_edges(take as u64);
        out
    }

    fn remaining(&self) -> usize {
        self.entries.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemStore;
    use ktpm_closure::ClosureTables;
    use ktpm_graph::fixtures::paper_graph;

    #[test]
    fn tables_match_precomputed_closure() {
        let g = paper_graph();
        let mem = MemStore::new(ClosureTables::compute(&g));
        let od = OnDemandStore::new(g.clone());
        for (a, b) in mem.pair_keys() {
            assert_eq!(mem.load_d(a, b), od.load_d(a, b), "D {a:?}->{b:?}");
            assert_eq!(mem.load_e(a, b), od.load_e(a, b), "E {a:?}->{b:?}");
            let mut pm = mem.load_pair(a, b);
            let mut po = od.load_pair(a, b);
            pm.sort_unstable();
            po.sort_unstable();
            assert_eq!(pm, po, "L {a:?}->{b:?}");
        }
    }

    #[test]
    fn sweeps_are_cached_per_source_label() {
        let g = paper_graph();
        let od = OnDemandStore::new(g.clone());
        let a = g.interner().get("a").unwrap();
        let c = g.interner().get("c").unwrap();
        let d = g.interner().get("d").unwrap();
        od.load_pair(a, c);
        assert_eq!(od.sweeps(), 1);
        od.load_pair(a, d); // same source label: no new sweep
        assert_eq!(od.sweeps(), 1);
        od.load_pair(c, d);
        assert_eq!(od.sweeps(), 2);
    }

    #[test]
    fn lookup_dist_matches_closure() {
        let g = paper_graph();
        let tc = ClosureTables::compute(&g);
        let od = OnDemandStore::new(g.clone());
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(od.lookup_dist(u, v), tc.dist(u, v), "({u},{v})");
            }
        }
    }

    #[test]
    fn cursor_streams_in_distance_order() {
        let g = paper_graph();
        let od = OnDemandStore::with_block_edges(g.clone(), 1);
        let a = g.interner().get("a").unwrap();
        let mut cur = od.incoming_cursor(a, NodeId(4)); // v5
        assert_eq!(cur.next_block(), vec![(NodeId(0), 1)]);
        assert_eq!(cur.next_block(), vec![(NodeId(1), 2)]);
        assert!(cur.next_block().is_empty());
    }

    #[test]
    fn io_counters_track_loads() {
        let g = paper_graph();
        let od = OnDemandStore::new(g.clone());
        let a = g.interner().get("a").unwrap();
        let c = g.interner().get("c").unwrap();
        od.load_pair(a, c);
        assert!(od.io().edges_read > 0);
        od.reset_io();
        assert_eq!(od.io().edges_read, 0);
    }
}
