//! [`RemoteStore`]: a [`ClosureSource`] whose blocks live behind a
//! `ktpm blockd` block server, fetched over TCP on demand.
//!
//! The store connects, pulls the snapshot's v4 `MANIFEST` (so all
//! metadata queries are answered locally), and then reads shard-file
//! bytes through [`RemoteBlockSource`]s — one per shard file, all
//! feeding the same byte-budgeted [`BlockCache`], so a warm cache
//! answers repeat queries with **zero** remote reads. Every fetched
//! payload is CRC-checked client-side twice over: the response frame
//! carries a CRC-32 of the payload, and the payload itself is a v3
//! group block with its own trailing CRC (re-verified by
//! [`PagedStore`]'s block reader, which re-fetches once for retryable
//! sources before giving up).
//!
//! Failure policy: transport errors (connect, timeout, short frame)
//! are retried with capped exponential backoff up to
//! [`RemoteOptions::attempts`]; server-reported errors are not
//! (they're deterministic). Exhausted retries surface
//! [`StorageError::Remote`] — recorded in the store's error slot and
//! counted in `remote_errors` — instead of hanging or panicking, and
//! the infallible [`ClosureSource`] reads degrade to empty results.

use crate::cache::BlockCache;
use crate::format::crc32;
use crate::iostats::{IoSnapshot, IoStats};
use crate::manifest::Manifest;
use crate::paged::{BlockSource, ErrorSlot, PagedStore, DEFAULT_BLOCK_CACHE_BYTES};
use crate::sharded::{Opener, ShardSet};
use crate::source::{ClosureSource, EdgeCursor, SharedSource, StorageError};
use ktpm_graph::{Dist, LabelId, NodeId};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The length-prefixed binary protocol between [`RemoteStore`] and
/// `ktpm blockd`.
///
/// Every message (both directions) is one **frame**: a `u32` LE byte
/// length followed by that many payload bytes, capped at
/// [`MAX_FRAME_BYTES`](blockproto::MAX_FRAME_BYTES). Request payloads start with an opcode byte:
///
/// * [`OP_FETCH`](blockproto::OP_FETCH) — `u32 file_id`, `u64 offset`, `u32 len`: read a
///   byte range of one shard file (file ids index the manifest's
///   shard list);
/// * [`OP_MANIFEST`](blockproto::OP_MANIFEST) — no operands: the snapshot's encoded v4
///   `MANIFEST` (synthesized for single-file stores);
/// * [`OP_STATS`](blockproto::OP_STATS) — no operands: server counters as `key=value` text,
///   one per line.
///
/// Response payloads start with a status byte — [`STATUS_OK`](blockproto::STATUS_OK) or
/// [`STATUS_ERR`](blockproto::STATUS_ERR) (body = UTF-8 error text). A `FETCH` OK body is
/// `u32 crc32(data)` followed by the data, so clients detect on-wire
/// corruption without trusting the transport.
pub mod blockproto {
    use std::io::{self, Read, Write};

    /// Opcode: read a byte range of one shard file.
    pub const OP_FETCH: u8 = 1;
    /// Opcode: fetch the snapshot's encoded v4 `MANIFEST`.
    pub const OP_MANIFEST: u8 = 2;
    /// Opcode: fetch server counters as `key=value` text.
    pub const OP_STATS: u8 = 3;
    /// Response status: success; body follows.
    pub const STATUS_OK: u8 = 0;
    /// Response status: failure; body is UTF-8 error text.
    pub const STATUS_ERR: u8 = 1;
    /// Upper bound on any frame's payload, requests and responses
    /// alike — a desynced or hostile peer cannot make us allocate
    /// unboundedly.
    pub const MAX_FRAME_BYTES: usize = 64 * 1024 * 1024;
    /// Byte length of an encoded `FETCH` request payload.
    pub const FETCH_REQUEST_BYTES: usize = 17;

    /// Writes one length-prefixed frame.
    pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
        w.write_all(&(payload.len() as u32).to_le_bytes())?;
        w.write_all(payload)?;
        w.flush()
    }

    /// Reads one length-prefixed frame, rejecting oversized lengths.
    pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
        let mut len = [0u8; 4];
        r.read_exact(&mut len)?;
        let len = u32::from_le_bytes(len) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"),
            ));
        }
        let mut buf = vec![0u8; len];
        r.read_exact(&mut buf)?;
        Ok(buf)
    }

    /// Encodes a `FETCH` request payload.
    pub fn encode_fetch(file_id: u32, offset: u64, len: u32) -> Vec<u8> {
        let mut b = Vec::with_capacity(FETCH_REQUEST_BYTES);
        b.push(OP_FETCH);
        b.extend_from_slice(&file_id.to_le_bytes());
        b.extend_from_slice(&offset.to_le_bytes());
        b.extend_from_slice(&len.to_le_bytes());
        b
    }

    /// Decodes a `FETCH` request payload (opcode byte included);
    /// `None` if malformed.
    pub fn decode_fetch(payload: &[u8]) -> Option<(u32, u64, u32)> {
        if payload.len() != FETCH_REQUEST_BYTES || payload[0] != OP_FETCH {
            return None;
        }
        let file_id = u32::from_le_bytes(payload[1..5].try_into().ok()?);
        let offset = u64::from_le_bytes(payload[5..13].try_into().ok()?);
        let len = u32::from_le_bytes(payload[13..17].try_into().ok()?);
        Some((file_id, offset, len))
    }
}

/// Tunables of the remote tier. The defaults favor failing fast and
/// loudly over hanging: a dead server costs at most
/// `attempts × request_timeout` plus backoff before the read degrades
/// with a recorded [`StorageError::Remote`].
#[derive(Debug, Clone)]
pub struct RemoteOptions {
    /// TCP connect timeout per address (default 2 s).
    pub connect_timeout: Duration,
    /// Read/write timeout per request round trip (default 2 s).
    pub request_timeout: Duration,
    /// Total request attempts, first try included (default 3).
    pub attempts: u32,
    /// First retry backoff; doubles per retry (default 10 ms).
    pub backoff_base: Duration,
    /// Backoff ceiling (default 250 ms).
    pub backoff_cap: Duration,
    /// Idle connections kept for reuse (default 4).
    pub pool_size: usize,
    /// Shared block-cache budget in bytes, `0` = unlimited (default
    /// [`DEFAULT_BLOCK_CACHE_BYTES`](crate::DEFAULT_BLOCK_CACHE_BYTES)).
    pub cache_bytes: u64,
}

impl Default for RemoteOptions {
    fn default() -> Self {
        RemoteOptions {
            connect_timeout: Duration::from_secs(2),
            request_timeout: Duration::from_secs(2),
            attempts: 3,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(250),
            pool_size: 4,
            cache_bytes: DEFAULT_BLOCK_CACHE_BYTES,
        }
    }
}

/// A bounded pool of blockd connections. Requests check a connection
/// out (reusing an idle one when available), run one frame round trip
/// under the request timeout, and check it back in on success; failed
/// connections are dropped, not reused.
struct ConnPool {
    addr: String,
    idle: Mutex<Vec<TcpStream>>,
    opts: RemoteOptions,
    io: IoStats,
}

impl ConnPool {
    fn connect(&self) -> io::Result<TcpStream> {
        let mut last = None;
        for sa in self.addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&sa, self.opts.connect_timeout) {
                Ok(s) => {
                    s.set_nodelay(true).ok();
                    return Ok(s);
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            io::Error::new(
                io::ErrorKind::AddrNotAvailable,
                "address resolved to nothing",
            )
        }))
    }

    fn checkout(&self) -> io::Result<TcpStream> {
        if let Some(s) = self.idle.lock().expect("conn pool lock").pop() {
            return Ok(s);
        }
        self.connect()
    }

    fn checkin(&self, s: TcpStream) {
        let mut idle = self.idle.lock().expect("conn pool lock");
        if idle.len() < self.opts.pool_size {
            idle.push(s);
        }
    }

    fn round_trip(&self, req: &[u8]) -> io::Result<(TcpStream, Vec<u8>)> {
        let mut s = self.checkout()?;
        s.set_read_timeout(Some(self.opts.request_timeout))?;
        s.set_write_timeout(Some(self.opts.request_timeout))?;
        blockproto::write_frame(&mut s, req)?;
        let resp = blockproto::read_frame(&mut s)?;
        Ok((s, resp))
    }

    /// One request with capped exponential-backoff retries on
    /// transport failures. Returns the OK body; a server-reported
    /// error or exhausted retries is [`StorageError::Remote`] (counted
    /// in `remote_errors`; each re-attempt counts a `remote_retry`).
    fn request(&self, req: &[u8]) -> Result<Vec<u8>, StorageError> {
        let attempts = self.opts.attempts.max(1);
        let mut backoff = self.opts.backoff_base;
        let mut last = String::from("request failed");
        for attempt in 0..attempts {
            if attempt > 0 {
                self.io.add_remote_retry();
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(self.opts.backoff_cap);
            }
            match self.round_trip(req) {
                Ok((s, resp)) => match resp.split_first() {
                    Some((&blockproto::STATUS_OK, body)) => {
                        self.checkin(s);
                        return Ok(body.to_vec());
                    }
                    Some((&blockproto::STATUS_ERR, msg)) => {
                        // Deterministic server-side failure: reusing the
                        // connection is fine, burning retries is not.
                        self.checkin(s);
                        self.io.add_remote_error();
                        return Err(StorageError::Remote {
                            addr: self.addr.clone(),
                            detail: format!("server error: {}", String::from_utf8_lossy(msg)),
                        });
                    }
                    // Unknown status byte or empty frame: drop the
                    // (possibly desynced) connection and retry.
                    _ => last = "malformed response frame".into(),
                },
                Err(e) => last = e.to_string(),
            }
        }
        self.io.add_remote_error();
        Err(StorageError::Remote {
            addr: self.addr.clone(),
            detail: format!("{last} (after {attempts} attempt(s))"),
        })
    }
}

/// One shard file's bytes, fetched over the pool. Frame-level CRC
/// mismatches get one immediate re-request; `is_retryable` additionally
/// lets the paged reader re-fetch once when a v3 block's own CRC fails
/// (an on-wire flip the frame CRC missed, or a stale cache of a
/// rewritten file).
struct RemoteBlockSource {
    pool: Arc<ConnPool>,
    file_id: u32,
    len: u64,
    io: IoStats,
}

impl BlockSource for RemoteBlockSource {
    fn read_at(&self, off: u64, bytes: usize) -> Result<Vec<u8>, StorageError> {
        let req = blockproto::encode_fetch(self.file_id, off, bytes as u32);
        for attempt in 0..2 {
            let body = self.pool.request(&req)?;
            if body.len() == bytes + 4 {
                let stored = u32::from_le_bytes(body[..4].try_into().expect("4 bytes"));
                let data = &body[4..];
                if crc32(data) == stored {
                    self.io.add_remote_fetch(bytes as u64);
                    return Ok(data.to_vec());
                }
            }
            if attempt == 0 {
                self.io.add_remote_retry();
            }
        }
        self.io.add_remote_error();
        Err(StorageError::Remote {
            addr: self.pool.addr.clone(),
            detail: format!(
                "fetch {}@{off}+{bytes}: response failed the frame checksum twice",
                self.file_id
            ),
        })
    }

    fn len(&self) -> u64 {
        self.len
    }

    fn is_retryable(&self) -> bool {
        true
    }
}

/// A sharded (or single-file) snapshot served by `ktpm blockd`,
/// opened from a `tcp://host:port` address; see the module docs.
/// Everything downstream of [`ClosureSource`] — engines, serving tier,
/// CLI — runs unchanged over it.
pub struct RemoteStore {
    inner: ShardSet,
    pool: Arc<ConnPool>,
}

impl RemoteStore {
    /// Connects with default [`RemoteOptions`]. `addr` is
    /// `host:port`, with or without the `tcp://` scheme prefix. The
    /// only eager request is the `MANIFEST` pull.
    pub fn connect(addr: &str) -> Result<Self, StorageError> {
        Self::connect_with(addr, RemoteOptions::default())
    }

    /// Connects with explicit options.
    pub fn connect_with(addr: &str, opts: RemoteOptions) -> Result<Self, StorageError> {
        let addr = addr.strip_prefix("tcp://").unwrap_or(addr).to_owned();
        let io = IoStats::new();
        let cache_bytes = opts.cache_bytes;
        let pool = Arc::new(ConnPool {
            addr,
            idle: Mutex::new(Vec::new()),
            opts,
            io: io.clone(),
        });
        let manifest_bytes = pool.request(&[blockproto::OP_MANIFEST])?;
        io.add_remote_fetch(manifest_bytes.len() as u64);
        let manifest = Manifest::decode(&manifest_bytes)?;
        let cache = Arc::new(Mutex::new(BlockCache::new(cache_bytes)));
        let errors = ErrorSlot::default();
        let opener: Opener = {
            let pool = Arc::clone(&pool);
            let lens: Vec<u64> = manifest.shards.iter().map(|s| s.file_len).collect();
            let cache = Arc::clone(&cache);
            let io = io.clone();
            let errors = errors.clone();
            Box::new(move |shard| {
                PagedStore::from_source(
                    Box::new(RemoteBlockSource {
                        pool: Arc::clone(&pool),
                        file_id: shard,
                        len: lens[shard as usize],
                        io: io.clone(),
                    }),
                    Arc::clone(&cache),
                    io.clone(),
                    shard,
                    errors.clone(),
                )
            })
        };
        Ok(RemoteStore {
            inner: ShardSet::new(manifest, opener, io, errors),
            pool,
        })
    }

    /// Wraps the store in a [`SharedSource`] for concurrent use.
    pub fn into_shared(self) -> SharedSource {
        Arc::new(self)
    }

    /// The server address (no scheme prefix).
    pub fn addr(&self) -> &str {
        &self.pool.addr
    }

    /// The decoded manifest announced by the server.
    pub fn manifest(&self) -> &Manifest {
        &self.inner.manifest
    }

    /// Remote shard files opened (i.e. header-parsed) so far.
    pub fn files_open(&self) -> usize {
        self.inner.files_open()
    }

    /// The server's own counters (`key=value` text, one per line) —
    /// the `STATS` op, for diagnostics and tests.
    pub fn server_stats(&self) -> Result<String, StorageError> {
        let body = self.pool.request(&[blockproto::OP_STATS])?;
        String::from_utf8(body)
            .map_err(|_| StorageError::BadFormat("STATS response is not UTF-8".into()))
    }
}

impl ClosureSource for RemoteStore {
    fn num_nodes(&self) -> usize {
        self.inner.manifest.num_nodes()
    }

    fn node_label(&self, v: NodeId) -> LabelId {
        self.inner.manifest.node_label(v)
    }

    fn pair_keys(&self) -> Vec<(LabelId, LabelId)> {
        self.inner.manifest.pair_keys()
    }

    fn load_d(&self, a: LabelId, b: LabelId) -> Vec<(NodeId, Dist)> {
        self.inner.load_d(a, b)
    }

    fn load_e(&self, a: LabelId, b: LabelId) -> Vec<(NodeId, NodeId, Dist)> {
        self.inner.load_e(a, b)
    }

    fn load_pair(&self, a: LabelId, b: LabelId) -> Vec<(NodeId, NodeId, Dist)> {
        self.inner.load_pair(a, b)
    }

    fn incoming_cursor(&self, a: LabelId, v: NodeId) -> Box<dyn EdgeCursor + Send> {
        self.inner.incoming_cursor(a, v)
    }

    fn lookup_dist(&self, u: NodeId, v: NodeId) -> Option<Dist> {
        self.inner.lookup_dist(u, v)
    }

    fn io(&self) -> IoSnapshot {
        self.inner.io.snapshot()
    }

    fn reset_io(&self) {
        self.inner.io.reset();
    }

    fn take_error(&self) -> Option<StorageError> {
        self.inner.errors.take()
    }
}

/// [`crate::open_store_auto`] plus the remote scheme: a
/// `tcp://host:port` URI connects a [`RemoteStore`] (with
/// `block_cache_bytes` as its cache budget when given); anything else
/// is a local path dispatched on its format. This is what `--store`
/// arguments should flow through.
pub fn open_store_uri(
    uri: &str,
    block_cache_bytes: Option<u64>,
) -> Result<SharedSource, StorageError> {
    if uri.starts_with("tcp://") {
        let mut opts = RemoteOptions::default();
        if let Some(b) = block_cache_bytes {
            opts.cache_bytes = b;
        }
        return Ok(RemoteStore::connect_with(uri, opts)?.into_shared());
    }
    crate::open_store_auto(Path::new(uri), block_cache_bytes)
}
