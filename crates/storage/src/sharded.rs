//! [`ShardedStore`]: one [`ClosureSource`] over a sharded multi-file
//! snapshot ([`crate::write_store_sharded`]).
//!
//! The store opens only the `MANIFEST` eagerly — node count, labels,
//! and pair keys are all answered from it — and opens a shard file
//! lazily the first time a query touches a label pair routed to it
//! (counted as `files_opened` in [`IoStats`]). All member files share
//! **one** byte-budgeted [`BlockCache`] (namespaced by file id) and
//! one set of I/O counters, so the cache budget bounds the whole
//! snapshot, not each file.
//!
//! The shared [`ShardSet`] core also powers [`crate::RemoteStore`]:
//! the only difference between the two tiers is the
//! [`BlockSource`](crate::paged) each member [`PagedStore`] reads
//! through.

use crate::cache::BlockCache;
use crate::format::crc32;
use crate::iostats::{IoSnapshot, IoStats};
use crate::manifest::{Manifest, ShardFileMeta};
use crate::paged::{ErrorSlot, LocalFile, PagedStore, DEFAULT_BLOCK_CACHE_BYTES};
use crate::source::{ClosureSource, EdgeCursor, StorageError};
use ktpm_graph::{Dist, LabelId, NodeId};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

/// Opens the member store for one file id, on first touch.
pub(crate) type Opener = Box<dyn Fn(u32) -> Result<PagedStore, StorageError> + Send + Sync>;

/// The manifest-routed set of lazily opened member [`PagedStore`]s —
/// the shared core of [`ShardedStore`] and [`crate::RemoteStore`].
pub(crate) struct ShardSet {
    pub(crate) manifest: Manifest,
    slots: Vec<OnceLock<Option<Arc<PagedStore>>>>,
    opener: Opener,
    pub(crate) io: IoStats,
    pub(crate) errors: ErrorSlot,
}

impl ShardSet {
    pub(crate) fn new(manifest: Manifest, opener: Opener, io: IoStats, errors: ErrorSlot) -> Self {
        let slots = (0..manifest.shards.len())
            .map(|_| OnceLock::new())
            .collect();
        ShardSet {
            manifest,
            slots,
            opener,
            io,
            errors,
        }
    }

    /// The member store for file id `shard`, opened lazily on first
    /// touch (counted as `files_opened`). An open failure is recorded
    /// in the error slot and the shard degrades to empty, like every
    /// infallible read path.
    fn store(&self, shard: u32) -> Option<&Arc<PagedStore>> {
        let slot = self.slots.get(shard as usize)?;
        slot.get_or_init(|| match (self.opener)(shard) {
            Ok(s) => {
                self.io.add_file_opened();
                Some(Arc::new(s))
            }
            Err(e) => {
                self.errors.record(e);
                None
            }
        })
        .as_ref()
    }

    fn store_for_pair(&self, a: LabelId, b: LabelId) -> Option<&Arc<PagedStore>> {
        self.store(self.manifest.shard_of(a, b)?)
    }

    /// Member files opened so far (the laziness observable).
    pub(crate) fn files_open(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| matches!(s.get(), Some(Some(_))))
            .count()
    }

    pub(crate) fn load_d(&self, a: LabelId, b: LabelId) -> Vec<(NodeId, Dist)> {
        self.store_for_pair(a, b)
            .map(|s| s.load_d(a, b))
            .unwrap_or_default()
    }

    pub(crate) fn load_e(&self, a: LabelId, b: LabelId) -> Vec<(NodeId, NodeId, Dist)> {
        self.store_for_pair(a, b)
            .map(|s| s.load_e(a, b))
            .unwrap_or_default()
    }

    pub(crate) fn load_pair(&self, a: LabelId, b: LabelId) -> Vec<(NodeId, NodeId, Dist)> {
        self.store_for_pair(a, b)
            .map(|s| s.load_pair(a, b))
            .unwrap_or_default()
    }

    pub(crate) fn incoming_cursor(&self, a: LabelId, v: NodeId) -> Box<dyn EdgeCursor + Send> {
        let b = self.manifest.node_label(v);
        match self.store_for_pair(a, b) {
            Some(s) => s.incoming_cursor(a, v),
            None => Box::new(EmptyCursor),
        }
    }

    pub(crate) fn lookup_dist(&self, u: NodeId, v: NodeId) -> Option<Dist> {
        let a = self.manifest.node_label(u);
        let b = self.manifest.node_label(v);
        self.store_for_pair(a, b)?.lookup_dist(u, v)
    }
}

/// The zero-entry cursor returned for label pairs absent from the
/// snapshot.
struct EmptyCursor;

impl EdgeCursor for EmptyCursor {
    fn next_block(&mut self) -> Vec<(NodeId, Dist)> {
        Vec::new()
    }

    fn remaining(&self) -> usize {
        0
    }
}

/// A sharded multi-file snapshot opened from its `MANIFEST`; see the
/// module docs. Constructed by [`ShardedStore::open`] or dispatched by
/// [`crate::open_store_auto`] (on the manifest path, a file with the
/// v4 magic, or the snapshot directory).
pub struct ShardedStore {
    inner: ShardSet,
    dir: PathBuf,
}

impl ShardedStore {
    /// Opens a sharded snapshot from its `MANIFEST` path, with the
    /// default cache budget
    /// ([`DEFAULT_BLOCK_CACHE_BYTES`](crate::DEFAULT_BLOCK_CACHE_BYTES)).
    pub fn open(manifest_path: &Path) -> Result<Self, StorageError> {
        Self::open_with_cache_bytes(manifest_path, DEFAULT_BLOCK_CACHE_BYTES)
    }

    /// Opens with an explicit shared block-cache byte budget (`0` =
    /// unlimited). Only the manifest is read here; shard files are
    /// opened lazily as queries touch their label pairs.
    pub fn open_with_cache_bytes(
        manifest_path: &Path,
        cache_bytes: u64,
    ) -> Result<Self, StorageError> {
        let bytes = std::fs::read(manifest_path)?;
        let manifest = Manifest::decode(&bytes)?;
        let dir = manifest_path
            .parent()
            .map(Path::to_path_buf)
            .unwrap_or_else(|| PathBuf::from("."));
        let cache = Arc::new(Mutex::new(BlockCache::new(cache_bytes)));
        let io = IoStats::new();
        let errors = ErrorSlot::default();
        let opener: Opener = {
            let dir = dir.clone();
            let names: Vec<String> = manifest.shards.iter().map(|s| s.name.clone()).collect();
            let cache = Arc::clone(&cache);
            let io = io.clone();
            let errors = errors.clone();
            Box::new(move |shard| {
                let name = &names[shard as usize];
                // Name the shard file in any open failure: a swallowed
                // "No such file" without the file is undebuggable.
                let wrap = |e: StorageError| StorageError::CorruptShard {
                    file: name.clone(),
                    error: Box::new(e),
                };
                PagedStore::from_source(
                    Box::new(LocalFile::open(&dir.join(name)).map_err(wrap)?),
                    Arc::clone(&cache),
                    io.clone(),
                    shard,
                    errors.clone(),
                )
                .map_err(wrap)
            })
        };
        Ok(ShardedStore {
            inner: ShardSet::new(manifest, opener, io, errors),
            dir,
        })
    }

    /// Wraps the store in a [`crate::SharedSource`] for concurrent use.
    pub fn into_shared(self) -> crate::SharedSource {
        Arc::new(self)
    }

    /// The decoded manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.inner.manifest
    }

    /// Number of shard files in the snapshot.
    pub fn shard_count(&self) -> usize {
        self.inner.manifest.shards.len()
    }

    /// Member files opened so far — stays below
    /// [`Self::shard_count`] while queries touch only some pairs.
    pub fn files_open(&self) -> usize {
        self.inner.files_open()
    }

    /// Scrubs the whole snapshot: for every shard file, checks its
    /// length and whole-file content hash against the manifest, then
    /// re-verifies every section and group block
    /// ([`PagedStore::verify`]). The first failure is returned as
    /// [`StorageError::CorruptShard`], naming the file and carrying
    /// the inner offset. Scrub reads bypass (and never pollute) the
    /// shared block cache.
    pub fn verify(&self) -> Result<(), StorageError> {
        for meta in &self.inner.manifest.shards {
            self.verify_shard(meta)
                .map_err(|e| StorageError::CorruptShard {
                    file: meta.name.clone(),
                    error: Box::new(e),
                })?;
        }
        Ok(())
    }

    fn verify_shard(&self, meta: &ShardFileMeta) -> Result<(), StorageError> {
        let path = self.dir.join(&meta.name);
        let bytes = std::fs::read(&path)?;
        if bytes.len() as u64 != meta.file_len {
            return Err(StorageError::BadFormat(format!(
                "file is {} byte(s), manifest sealed {}",
                bytes.len(),
                meta.file_len
            )));
        }
        if crc32(&bytes) != meta.content_crc {
            return Err(StorageError::BadFormat(
                "whole-file content hash does not match the manifest".into(),
            ));
        }
        // A scrub-private store: verify() bypasses the cache, and this
        // keeps scrub failures out of the serving error slot.
        let store = PagedStore::open_with_cache_bytes(&path, 1)?;
        store.verify()
    }
}

impl ClosureSource for ShardedStore {
    fn num_nodes(&self) -> usize {
        self.inner.manifest.num_nodes()
    }

    fn node_label(&self, v: NodeId) -> LabelId {
        self.inner.manifest.node_label(v)
    }

    fn pair_keys(&self) -> Vec<(LabelId, LabelId)> {
        self.inner.manifest.pair_keys()
    }

    fn load_d(&self, a: LabelId, b: LabelId) -> Vec<(NodeId, Dist)> {
        self.inner.load_d(a, b)
    }

    fn load_e(&self, a: LabelId, b: LabelId) -> Vec<(NodeId, NodeId, Dist)> {
        self.inner.load_e(a, b)
    }

    fn load_pair(&self, a: LabelId, b: LabelId) -> Vec<(NodeId, NodeId, Dist)> {
        self.inner.load_pair(a, b)
    }

    fn incoming_cursor(&self, a: LabelId, v: NodeId) -> Box<dyn EdgeCursor + Send> {
        self.inner.incoming_cursor(a, v)
    }

    fn lookup_dist(&self, u: NodeId, v: NodeId) -> Option<Dist> {
        self.inner.lookup_dist(u, v)
    }

    fn io(&self) -> IoSnapshot {
        self.inner.io.snapshot()
    }

    fn reset_io(&self) {
        self.inner.io.reset();
    }

    fn take_error(&self) -> Option<StorageError> {
        self.inner.errors.take()
    }
}

/// Loads (or synthesizes) the manifest a block server should announce
/// for `store_path`, returning it with the directory its shard files
/// live in. Accepts a snapshot directory, a `MANIFEST` path, or a
/// plain single v3 file — the latter gets a synthesized one-file
/// manifest, so `ktpm blockd` can serve any snapshot.
pub fn load_snapshot_manifest(store_path: &Path) -> Result<(Manifest, PathBuf), StorageError> {
    let manifest_path = if store_path.is_dir() {
        let p = store_path.join("MANIFEST");
        if !p.is_file() {
            return Err(StorageError::BadFormat(format!(
                "{} is a directory without a MANIFEST — did you mean the manifest path \
                 of a sharded snapshot (<dir>/MANIFEST, written by write_store_sharded)?",
                store_path.display()
            )));
        }
        p
    } else {
        store_path.to_path_buf()
    };
    let dir = manifest_path
        .parent()
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."));
    let bytes = std::fs::read(&manifest_path)?;
    if bytes.starts_with(crate::format::MAGIC_V4) {
        return Ok((Manifest::decode(&bytes)?, dir));
    }
    // A single v3 file: synthesize the one-file manifest.
    let store = PagedStore::open_with_cache_bytes(&manifest_path, 1)?;
    let labels: Vec<LabelId> = (0..store.num_nodes())
        .map(|i| store.node_label(NodeId(i as u32)))
        .collect();
    let num_labels = labels.iter().map(|l| l.0 + 1).max().unwrap_or(0);
    let name = manifest_path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| StorageError::BadFormat("store file name is not UTF-8".into()))?
        .to_owned();
    let routing = store.pair_keys().into_iter().map(|k| (k, 0)).collect();
    Ok((
        Manifest {
            block_entries: store.block_entries() as u32,
            num_labels,
            labels,
            shards: vec![ShardFileMeta {
                name,
                file_len: bytes.len() as u64,
                content_crc: crc32(&bytes),
            }],
            routing,
        },
        dir,
    ))
}
