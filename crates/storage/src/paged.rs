//! The paged [`ClosureSource`] over format-v3 stores: lazy verified
//! block fetch behind a byte-budgeted LRU block cache.
//!
//! A [`PagedStore`] never materializes a group region: every `L` read
//! — block cursors, whole-pair loads, point lookups — goes through
//! [`fetch_block`](PagedShared::fetch_block), which serves the block
//! from the cache or reads it off disk, verifies its CRC-32 *before*
//! anything consumes it, and inserts it under the byte budget. This is
//! the backend for closures that exceed RAM: resident bytes are
//! bounded by `--block-cache-bytes` while enumeration streams the
//! paper's §5 block-at-a-time I/O model.
//!
//! Because the v3 writer starts every destination node's group on a
//! fresh block, [`crate::ShardSpec`]-partitioned root candidates touch
//! disjoint block sets — parallel shards warm the cache for their own
//! partition without false sharing.
//!
//! The store reads its bytes through a [`BlockSource`] — a positioned
//! `read_at` over one sealed v3 file. [`LocalFile`] is the plain
//! on-disk implementation; the remote tier plugs a network-backed
//! source into the *same* `PagedStore` (`crate::RemoteStore`), so
//! parsing, verification, caching, and accounting are written once.
//! Multi-file snapshots ([`crate::ShardedStore`]) give each member
//! file a distinct `file_id` and one shared cache, so the byte budget
//! bounds the whole snapshot.
//!
//! Cache traffic is accounted in [`IoStats`]: `cache_hits` /
//! `cache_misses` / `cache_evictions` plus the `cache_bytes_resident`
//! gauge, alongside the usual block/byte/edge counters (which, here,
//! count *disk* traffic only — a warm cache serves reads with zero
//! `block_reads`).
//!
//! The [`ClosureSource`] read API is infallible: a corrupt or
//! unreadable block degrades to an empty result or an exhausted
//! cursor. Every such silent degradation also records the swallowed
//! error into a sticky [`ErrorSlot`] surfaced via
//! [`ClosureSource::take_error`], so the serving tier can refuse to
//! ship a truncated batch (essential once the "disk" is a remote
//! server that can die mid-stream).

use crate::cache::BlockCache;
use crate::format::*;
use crate::iostats::{IoSnapshot, IoStats};
use crate::source::{ClosureSource, EdgeCursor, StorageError};
use ktpm_closure::ClosureTables;
use ktpm_graph::{undirect, Dist, LabelId, LabeledGraph, NodeId};
use std::collections::HashMap;
use std::io::{Read, Seek, SeekFrom};
use std::ops::Range;
use std::path::Path;
use std::sync::{Arc, Mutex, OnceLock};

/// Default block-cache byte budget (8 MiB) used by [`PagedStore::open`].
pub const DEFAULT_BLOCK_CACHE_BYTES: u64 = 8 * 1024 * 1024;

/// One `L` directory entry: `(dst, absolute offset of the group's
/// first block, entry count)`.
type DirEntry = (NodeId, u64, u32);

type DirCache = HashMap<(LabelId, LabelId), Arc<Vec<DirEntry>>>;

/// A positioned byte source over one sealed v3 store file — the seam
/// between [`PagedStore`]'s parsing/caching logic and where the bytes
/// actually live (local disk, or a remote block server).
pub(crate) trait BlockSource: Send + Sync {
    /// Reads exactly `bytes` at `off`. Short reads are errors
    /// ([`StorageError::Corrupt`] for a truncated file,
    /// [`StorageError::Remote`] for a failed remote fetch).
    fn read_at(&self, off: u64, bytes: usize) -> Result<Vec<u8>, StorageError>;

    /// Total length of the file, fixed at open.
    fn len(&self) -> u64;

    /// Whether a failed CRC check is worth one re-read (true for
    /// remote sources, where the wire — not the medium — may have
    /// flipped a bit; false for local files, where a re-read would
    /// return the same rotten bytes).
    fn is_retryable(&self) -> bool {
        false
    }
}

/// [`BlockSource`] over a local file.
pub(crate) struct LocalFile {
    file: Mutex<std::fs::File>,
    len: u64,
}

impl LocalFile {
    pub(crate) fn open(path: &Path) -> Result<Self, StorageError> {
        let file = std::fs::File::open(path)?;
        let len = file.metadata()?.len();
        Ok(LocalFile {
            file: Mutex::new(file),
            len,
        })
    }
}

impl BlockSource for LocalFile {
    fn read_at(&self, off: u64, bytes: usize) -> Result<Vec<u8>, StorageError> {
        let mut buf = vec![0u8; bytes];
        let mut f = self.file.lock().expect("store file lock");
        f.seek(SeekFrom::Start(off))?;
        f.read_exact(&mut buf).map_err(|e| map_eof(e, off, bytes))?;
        Ok(buf)
    }

    fn len(&self) -> u64 {
        self.len
    }
}

/// A sticky first-error slot shared by a store, its cursors, and (for
/// multi-file snapshots) all member files. The infallible read paths
/// record the first error they swallow; [`ErrorSlot::take`] hands it
/// to the serving layer and re-arms the slot. First-wins: the root
/// cause, not the last symptom.
#[derive(Clone, Default)]
pub(crate) struct ErrorSlot(Arc<Mutex<Option<StorageError>>>);

impl ErrorSlot {
    pub(crate) fn record(&self, e: StorageError) {
        let mut slot = self.0.lock().expect("error slot");
        if slot.is_none() {
            *slot = Some(e);
        }
    }

    pub(crate) fn take(&self) -> Option<StorageError> {
        self.0.lock().expect("error slot").take()
    }
}

struct PagedShared {
    source: Box<dyn BlockSource>,
    io: IoStats,
    /// Shared with every sibling file of a sharded snapshot; keys are
    /// namespaced by `file_id`.
    cache: Arc<Mutex<BlockCache>>,
    block_entries: usize,
    /// This file's id within its snapshot (0 for standalone stores).
    file_id: u32,
    errors: ErrorSlot,
}

impl PagedShared {
    /// One positioned read = one counted block fetch (identical
    /// contract to the v1/v2 reader's), validated against the file
    /// length before buffers are allocated.
    fn read_vec(&self, off: u64, bytes: usize) -> Result<Vec<u8>, StorageError> {
        if off
            .checked_add(bytes as u64)
            .is_none_or(|end| end > self.source.len())
        {
            return Err(StorageError::Corrupt {
                offset: off,
                needed: bytes,
            });
        }
        let buf = self.source.read_at(off, bytes)?;
        self.io.add_block(bytes as u64);
        Ok(buf)
    }

    fn block_bytes(&self) -> usize {
        v3_block_bytes(self.block_entries)
    }

    /// One read + CRC check of the group block at `off`; returns the
    /// padded payload only.
    fn read_block_once(&self, off: u64) -> Result<Vec<u8>, StorageError> {
        let bb = self.block_bytes();
        let mut buf = self.read_vec(off, bb)?;
        let payload = self.block_entries * L_ENTRY_BYTES;
        let expect = u32::from_le_bytes(
            buf[payload..]
                .try_into()
                .expect("sliced the trailing 4 bytes"),
        );
        if crc32(&buf[..payload]) != expect {
            return Err(StorageError::Corrupt {
                offset: off,
                needed: bb,
            });
        }
        buf.truncate(payload);
        Ok(buf)
    }

    /// Reads and CRC-verifies the group block at `off`, bypassing the
    /// cache (also the scrub path). On a retryable source (remote), a
    /// CRC mismatch earns exactly one counted re-read — the flip may
    /// have happened on the wire — before the error stands.
    fn read_block_verified(&self, off: u64) -> Result<Vec<u8>, StorageError> {
        match self.read_block_once(off) {
            Err(StorageError::Corrupt { .. }) if self.source.is_retryable() => {
                self.io.add_remote_retry();
                self.read_block_once(off)
            }
            other => other,
        }
    }

    /// The lazy verified fetch: cache hit, or disk read + CRC check +
    /// budgeted insert. Every consumer of group bytes funnels through
    /// here, so a block is verified exactly once per residency.
    fn fetch_block(&self, off: u64) -> Result<Arc<Vec<u8>>, StorageError> {
        let key = (self.file_id, off);
        if let Some(data) = self.cache.lock().expect("block cache").get(key) {
            self.io.add_cache_hit();
            return Ok(data);
        }
        self.io.add_cache_miss();
        let data = Arc::new(self.read_block_verified(off)?);
        let (evicted, resident) = self
            .cache
            .lock()
            .expect("block cache")
            .insert(key, Arc::clone(&data));
        if evicted > 0 {
            self.io.add_cache_evictions(evicted);
        }
        self.io.set_cache_resident(resident);
        Ok(data)
    }
}

/// Maps a short read onto [`StorageError::Corrupt`].
fn map_eof(e: std::io::Error, offset: u64, needed: usize) -> StorageError {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        StorageError::Corrupt { offset, needed }
    } else {
        StorageError::Io(e)
    }
}

/// A format-v3 closure store opened from disk: group regions are
/// fixed-size CRC-checked blocks, fetched lazily through an LRU block
/// cache. See the module docs.
pub struct PagedStore {
    shared: Arc<PagedShared>,
    labels: Vec<LabelId>,
    index: HashMap<(LabelId, LabelId), (u64, u64, u64)>,
    dirs: Mutex<DirCache>,
    /// The data graph, when attached ([`PagedStore::with_graph`]) —
    /// enables the lazily-built undirected mirror for graph patterns.
    graph: Option<LabeledGraph>,
    mirror: OnceLock<crate::SharedSource>,
}

impl PagedStore {
    /// Opens a v3 store with the default cache budget
    /// ([`DEFAULT_BLOCK_CACHE_BYTES`]).
    ///
    /// Errors: [`StorageError::BadFormat`] when the file is not a
    /// closure store or is a v1/v2 store (open those with
    /// [`crate::FileStore`], or dispatch via
    /// [`crate::open_store_auto`]); [`StorageError::Corrupt`] when it
    /// is a v3 store but truncated or damaged (header and index
    /// checksums are verified eagerly here; group blocks verify on
    /// first fetch).
    pub fn open(path: &Path) -> Result<Self, StorageError> {
        Self::open_with_cache_bytes(path, DEFAULT_BLOCK_CACHE_BYTES)
    }

    /// Opens with an explicit block-cache byte budget. `0` means
    /// unlimited (no block is ever evicted).
    pub fn open_with_cache_bytes(path: &Path, cache_bytes: u64) -> Result<Self, StorageError> {
        Self::from_source(
            Box::new(LocalFile::open(path)?),
            Arc::new(Mutex::new(BlockCache::new(cache_bytes))),
            IoStats::new(),
            0,
            ErrorSlot::default(),
        )
    }

    /// Opens a v3 store over any [`BlockSource`] — the shared
    /// constructor behind standalone opens, [`crate::ShardedStore`]
    /// member files (shared `cache`/`io`/`errors`, distinct
    /// `file_id`s), and [`crate::RemoteStore`] (network-backed
    /// source). Header and index checksums are verified eagerly, via
    /// the source.
    pub(crate) fn from_source(
        source: Box<dyn BlockSource>,
        cache: Arc<Mutex<BlockCache>>,
        io: IoStats,
        file_id: u32,
        errors: ErrorSlot,
    ) -> Result<Self, StorageError> {
        const HEAD_LEN: usize = 20; // magic + nodes + labels + block_entries
        let len = source.len();
        if len < FOOTER_LEN + HEAD_LEN as u64 {
            let head = source.read_at(0, len.min(8) as usize)?;
            // All format versions share the first 7 magic bytes; require
            // at least half of them before diagnosing a damaged store.
            let is_store_prefix = if head.len() < 8 {
                head.len() >= 4 && head == MAGIC_V3[..head.len().min(7)]
            } else {
                FormatVersion::from_magic(&head).is_some()
            };
            if !is_store_prefix {
                return Err(StorageError::BadFormat("bad magic".into()));
            }
            return Err(StorageError::Corrupt {
                offset: len,
                needed: (FOOTER_LEN + HEAD_LEN as u64 - len) as usize,
            });
        }
        // Header.
        let head = source.read_at(0, HEAD_LEN)?;
        match FormatVersion::from_magic(&head[..8]) {
            Some(FormatVersion::V3) => {}
            Some(_) => {
                return Err(StorageError::BadFormat(
                    "format v1/v2 store; open it with FileStore or open_store_auto".into(),
                ))
            }
            None => return Err(StorageError::BadFormat("bad magic".into())),
        }
        let mut pos = 8;
        let num_nodes = get_u32(&head, &mut pos)? as usize;
        let _num_labels = get_u32(&head, &mut pos)?;
        let block_entries = get_u32(&head, &mut pos)? as usize;
        if block_entries == 0 {
            return Err(StorageError::BadFormat(
                "v3 header declares a zero block capacity".into(),
            ));
        }
        let label_bytes = num_nodes
            .checked_mul(4)
            .filter(|&b| HEAD_LEN as u64 + b as u64 + 4 + FOOTER_LEN <= len)
            .ok_or(StorageError::Corrupt {
                offset: HEAD_LEN as u64,
                needed: num_nodes.saturating_mul(4),
            })?;
        // Labels + their trailing header CRC in one read.
        let tail = source.read_at(HEAD_LEN as u64, label_bytes + 4)?;
        let label_buf = &tail[..label_bytes];
        // Eager header verification: counts + block capacity + labels.
        let state = crc32_update(CRC_INIT, &head[8..HEAD_LEN]);
        let state = crc32_update(state, label_buf);
        let stored = u32::from_le_bytes(tail[label_bytes..].try_into().expect("4-byte tail"));
        if crc32_finish(state) != stored {
            return Err(StorageError::Corrupt {
                offset: 8,
                needed: HEAD_LEN - 8 + label_bytes,
            });
        }
        let labels: Vec<LabelId> = label_buf
            .chunks_exact(4)
            .map(|c| LabelId(u32::from_le_bytes(c.try_into().expect("chunked to 4"))))
            .collect();
        // Footer.
        let foot = source.read_at(len - FOOTER_LEN, FOOTER_LEN as usize)?;
        if &foot[8..] != MAGIC_V3 {
            return Err(StorageError::Corrupt {
                offset: len - 8,
                needed: 8,
            });
        }
        let mut pos = 0;
        let index_off = get_u64(&foot, &mut pos)?;
        // Index (bounds-check the count before trusting it).
        if index_off
            .checked_add(4)
            .is_none_or(|end| end > len - FOOTER_LEN)
        {
            return Err(StorageError::Corrupt {
                offset: index_off,
                needed: 4,
            });
        }
        let count_buf = source.read_at(index_off, 4)?;
        let num_pairs = u32::from_le_bytes(count_buf[..].try_into().expect("read 4")) as usize;
        let idx_bytes = num_pairs
            .checked_mul(4 + 4 + 8 + 8 + 8)
            .filter(|&b| index_off + 4 + b as u64 + 4 <= len - FOOTER_LEN)
            .ok_or(StorageError::Corrupt {
                offset: index_off + 4,
                needed: num_pairs.saturating_mul(32),
            })?;
        // Index entries + their trailing CRC in one read; verify
        // eagerly.
        let idx_tail = source.read_at(index_off + 4, idx_bytes + 4)?;
        let idx_buf = &idx_tail[..idx_bytes];
        let state = crc32_update(CRC_INIT, &count_buf);
        let state = crc32_update(state, idx_buf);
        let stored = u32::from_le_bytes(idx_tail[idx_bytes..].try_into().expect("4-byte tail"));
        if crc32_finish(state) != stored {
            return Err(StorageError::Corrupt {
                offset: index_off,
                needed: idx_bytes + 4,
            });
        }
        let mut index = HashMap::with_capacity(num_pairs);
        let mut pos = 0;
        for _ in 0..num_pairs {
            let a = LabelId(get_u32(idx_buf, &mut pos)?);
            let b = LabelId(get_u32(idx_buf, &mut pos)?);
            let d = get_u64(idx_buf, &mut pos)?;
            let e = get_u64(idx_buf, &mut pos)?;
            let dir = get_u64(idx_buf, &mut pos)?;
            index.insert((a, b), (d, e, dir));
        }
        Ok(PagedStore {
            shared: Arc::new(PagedShared {
                source,
                io,
                cache,
                block_entries,
                file_id,
                errors,
            }),
            labels,
            index,
            dirs: Mutex::new(HashMap::new()),
            graph: None,
            mirror: OnceLock::new(),
        })
    }

    /// Attaches the data graph, enabling [`ClosureSource::undirected`]
    /// (graph patterns need the bidirectional closure, which only the
    /// graph — not its persisted directed closure — can produce).
    /// Returns `self`.
    pub fn with_graph(mut self, graph: LabeledGraph) -> Self {
        self.graph = Some(graph);
        self
    }

    /// Wraps the store in a [`crate::SharedSource`] for concurrent use.
    pub fn into_shared(self) -> crate::SharedSource {
        Arc::new(self)
    }

    /// Always [`FormatVersion::V3`].
    pub fn version(&self) -> FormatVersion {
        FormatVersion::V3
    }

    /// The on-disk block capacity declared by the header, in `L`
    /// entries per block.
    pub fn block_entries(&self) -> usize {
        self.shared.block_entries
    }

    /// Live blocks currently held by the block cache. For a snapshot
    /// member file this counts the whole *shared* cache.
    pub fn cache_blocks(&self) -> usize {
        self.shared.cache.lock().expect("block cache").len()
    }

    /// Payload bytes currently resident in the block cache (the same
    /// value the `cache_bytes_resident` gauge tracks).
    pub fn cache_resident_bytes(&self) -> u64 {
        self.shared
            .cache
            .lock()
            .expect("block cache")
            .resident_bytes()
    }

    /// The byte ranges of every destination node's group blocks for one
    /// label pair, as `(dst, file byte range)`. Groups never share a
    /// block, so the ranges of distinct nodes are always disjoint —
    /// the placement property [`crate::ShardSpec`] partitions rely on.
    pub fn group_block_ranges(
        &self,
        a: LabelId,
        b: LabelId,
    ) -> Result<Vec<(NodeId, Range<u64>)>, StorageError> {
        let Some(dir) = self.directory(a, b)? else {
            return Ok(Vec::new());
        };
        let bb = self.shared.block_bytes() as u64;
        Ok(dir
            .iter()
            .map(|&(v, off, len)| {
                let blocks = v3_group_blocks(len as usize, self.shared.block_entries) as u64;
                (v, off..off + blocks * bb)
            })
            .collect())
    }

    /// Scrubs the whole snapshot: re-verifies every `D`/`E`/directory
    /// section checksum and **every group block**, reading straight
    /// from disk (the cache is neither consulted nor polluted). The
    /// header and index were already verified at open. Returns the
    /// first mismatch as [`StorageError::Corrupt`].
    pub fn verify(&self) -> Result<(), StorageError> {
        let mut keys: Vec<_> = self.index.iter().map(|(&k, &v)| (k, v)).collect();
        keys.sort_unstable_by_key(|&(k, _)| k);
        let bb = self.shared.block_bytes() as u64;
        for ((a, b), (d_off, e_off, _)) in keys {
            let count = self.read_count(d_off)?;
            self.read_body(d_off, count, 8)?;
            let count = self.read_count(e_off)?;
            self.read_body(e_off, count, 12)?;
            let dir = self.directory(a, b)?.expect("pair key came from the index");
            for &(_, off, len) in dir.iter() {
                let blocks = v3_group_blocks(len as usize, self.shared.block_entries) as u64;
                for i in 0..blocks {
                    self.shared.read_block_verified(off + i * bb)?;
                }
            }
        }
        Ok(())
    }

    /// Reads the 4-byte count at `off`, bounds-validated.
    fn read_count(&self, off: u64) -> Result<usize, StorageError> {
        let buf = self.shared.read_vec(off, 4)?;
        Ok(u32::from_le_bytes(buf.try_into().expect("read 4 bytes")) as usize)
    }

    /// Reads a counted section's body (`count * entry_bytes` at
    /// `count_off + 4`), verifying the trailing CRC over count + body
    /// (always present in v3). Returns exactly the body bytes.
    fn read_body(
        &self,
        count_off: u64,
        count: usize,
        entry_bytes: usize,
    ) -> Result<Vec<u8>, StorageError> {
        let body_bytes = count
            .checked_mul(entry_bytes)
            .ok_or(StorageError::Corrupt {
                offset: count_off,
                needed: count.saturating_mul(entry_bytes),
            })?;
        let mut buf = self.shared.read_vec(count_off + 4, body_bytes + 4)?;
        let expect = u32::from_le_bytes(
            buf[body_bytes..]
                .try_into()
                .expect("sliced the trailing 4 bytes"),
        );
        let state = crc32_update(CRC_INIT, &(count as u32).to_le_bytes());
        let state = crc32_update(state, &buf[..body_bytes]);
        if crc32_finish(state) != expect {
            return Err(StorageError::Corrupt {
                offset: count_off,
                needed: body_bytes + 8,
            });
        }
        buf.truncate(body_bytes);
        Ok(buf)
    }

    /// The cached verified D/E section fetch: body bytes keyed by the
    /// section's count offset in the shared block cache, so warm table
    /// loads re-read nothing — locally or over the network. On a
    /// retryable (remote) source a CRC mismatch earns exactly one
    /// counted re-read, mirroring [`PagedShared::read_block_verified`].
    fn fetch_section(
        &self,
        count_off: u64,
        entry_bytes: usize,
    ) -> Result<Arc<Vec<u8>>, StorageError> {
        let key = (self.shared.file_id, count_off);
        if let Some(data) = self.shared.cache.lock().expect("block cache").get(key) {
            self.shared.io.add_cache_hit();
            return Ok(data);
        }
        self.shared.io.add_cache_miss();
        let read = || -> Result<Vec<u8>, StorageError> {
            let count = self.read_count(count_off)?;
            self.read_body(count_off, count, entry_bytes)
        };
        let body = match read() {
            Err(StorageError::Corrupt { .. }) if self.shared.source.is_retryable() => {
                self.shared.io.add_remote_retry();
                read()?
            }
            other => other?,
        };
        let data = Arc::new(body);
        let (evicted, resident) = self
            .shared
            .cache
            .lock()
            .expect("block cache")
            .insert(key, Arc::clone(&data));
        if evicted > 0 {
            self.shared.io.add_cache_evictions(evicted);
        }
        self.shared.io.set_cache_resident(resident);
        Ok(data)
    }

    fn directory(
        &self,
        a: LabelId,
        b: LabelId,
    ) -> Result<Option<Arc<Vec<DirEntry>>>, StorageError> {
        if let Some(dir) = self.dirs.lock().expect("dir cache").get(&(a, b)) {
            return Ok(Some(dir.clone()));
        }
        let Some(&(_, _, dir_off)) = self.index.get(&(a, b)) else {
            return Ok(None);
        };
        let count = self.read_count(dir_off)?;
        let buf = self.read_body(dir_off, count, 4 + 8 + 4)?;
        let mut pos = 0;
        let mut dir = Vec::with_capacity(count);
        for _ in 0..count {
            let v = NodeId(get_u32(&buf, &mut pos)?);
            let off = get_u64(&buf, &mut pos)?;
            let len = get_u32(&buf, &mut pos)?;
            dir.push((v, off, len));
        }
        let dir = Arc::new(dir);
        self.dirs
            .lock()
            .expect("dir cache")
            .insert((a, b), dir.clone());
        Ok(Some(dir))
    }

    /// As [`Self::directory`], but on the infallible read paths: an
    /// error degrades to `None` and is recorded in the error slot.
    fn directory_noted(&self, a: LabelId, b: LabelId) -> Option<Arc<Vec<DirEntry>>> {
        match self.directory(a, b) {
            Ok(dir) => dir,
            Err(e) => {
                self.shared.errors.record(e);
                None
            }
        }
    }

    /// Reads one group's entries `[from, len)` through the block cache.
    /// Every touched block is verified on (first) fetch.
    fn read_group_range(
        &self,
        group_off: u64,
        len: usize,
        from: usize,
        out: &mut Vec<(NodeId, Dist)>,
    ) -> Result<(), StorageError> {
        let be = self.shared.block_entries;
        let bb = self.shared.block_bytes() as u64;
        let mut i = from;
        while i < len {
            let block_idx = i / be;
            let block = self.shared.fetch_block(group_off + block_idx as u64 * bb)?;
            let upto = len.min((block_idx + 1) * be);
            let mut pos = (i % be) * L_ENTRY_BYTES;
            for _ in i..upto {
                let s = get_u32(&block, &mut pos)?;
                let d = get_u32(&block, &mut pos)?;
                out.push((NodeId(s), d));
            }
            i = upto;
        }
        Ok(())
    }
}

impl ClosureSource for PagedStore {
    fn num_nodes(&self) -> usize {
        self.labels.len()
    }

    fn node_label(&self, v: NodeId) -> LabelId {
        self.labels[v.index()]
    }

    fn pair_keys(&self) -> Vec<(LabelId, LabelId)> {
        let mut keys: Vec<_> = self.index.keys().copied().collect();
        keys.sort_unstable();
        keys
    }

    fn load_d(&self, a: LabelId, b: LabelId) -> Vec<(NodeId, Dist)> {
        let Some(&(d_off, _, _)) = self.index.get(&(a, b)) else {
            return Vec::new();
        };
        let inner = || -> Result<Vec<(NodeId, Dist)>, StorageError> {
            let buf = self.fetch_section(d_off, 8)?;
            let count = buf.len() / 8;
            let mut pos = 0;
            let mut out = Vec::with_capacity(count);
            for _ in 0..count {
                let v = NodeId(get_u32(&buf, &mut pos)?);
                let dist = get_u32(&buf, &mut pos)?;
                out.push((v, dist));
            }
            self.shared.io.add_d_entries(count as u64);
            Ok(out)
        };
        inner().unwrap_or_else(|e| {
            self.shared.errors.record(e);
            Vec::new()
        })
    }

    fn load_e(&self, a: LabelId, b: LabelId) -> Vec<(NodeId, NodeId, Dist)> {
        let Some(&(_, e_off, _)) = self.index.get(&(a, b)) else {
            return Vec::new();
        };
        let inner = || -> Result<Vec<(NodeId, NodeId, Dist)>, StorageError> {
            let buf = self.fetch_section(e_off, 12)?;
            let count = buf.len() / 12;
            let mut pos = 0;
            let mut out = Vec::with_capacity(count);
            for _ in 0..count {
                let s = NodeId(get_u32(&buf, &mut pos)?);
                let d = NodeId(get_u32(&buf, &mut pos)?);
                let dist = get_u32(&buf, &mut pos)?;
                out.push((s, d, dist));
            }
            self.shared.io.add_e_entries(count as u64);
            Ok(out)
        };
        inner().unwrap_or_else(|e| {
            self.shared.errors.record(e);
            Vec::new()
        })
    }

    fn load_pair(&self, a: LabelId, b: LabelId) -> Vec<(NodeId, NodeId, Dist)> {
        let Some(dir) = self.directory_noted(a, b) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut group = Vec::new();
        let mut total = 0u64;
        for &(v, off, len) in dir.iter() {
            group.clear();
            // A corrupt block degrades to a partial result, like every
            // corrupt read on the infallible trait methods — recorded
            // in the error slot.
            if let Err(e) = self.read_group_range(off, len as usize, 0, &mut group) {
                self.shared.errors.record(e);
                break;
            }
            out.extend(group.iter().map(|&(s, d)| (s, v, d)));
            total += len as u64;
        }
        self.shared.io.add_edges(total);
        out
    }

    fn incoming_cursor(&self, a: LabelId, v: NodeId) -> Box<dyn EdgeCursor + Send> {
        let entry = self.directory_noted(a, self.node_label(v)).and_then(|dir| {
            dir.binary_search_by_key(&v, |&(n, _, _)| n)
                .ok()
                .map(|i| dir[i])
        });
        let (group_off, len) = match entry {
            Some((_, off, len)) => (off, len as usize),
            None => (0, 0),
        };
        Box::new(PagedCursor {
            shared: self.shared.clone(),
            group_off,
            len,
            pos: 0,
        })
    }

    fn lookup_dist(&self, u: NodeId, v: NodeId) -> Option<Dist> {
        let a = self.node_label(u);
        let dir = self.directory_noted(a, self.node_label(v))?;
        let i = dir.binary_search_by_key(&v, |&(n, _, _)| n).ok()?;
        let (_, off, len) = dir[i];
        let mut group = Vec::with_capacity(len as usize);
        if let Err(e) = self.read_group_range(off, len as usize, 0, &mut group) {
            self.shared.errors.record(e);
            return None;
        }
        self.shared.io.add_edges(len as u64);
        group.into_iter().find(|&(s, _)| s == u).map(|(_, d)| d)
    }

    fn io(&self) -> IoSnapshot {
        self.shared.io.snapshot()
    }

    fn reset_io(&self) {
        self.shared.io.reset();
    }

    fn undirected(&self) -> Option<crate::SharedSource> {
        let g = self.graph.as_ref()?;
        Some(Arc::clone(self.mirror.get_or_init(|| {
            crate::MemStore::new(ClosureTables::compute(&undirect(g))).into_shared()
        })))
    }

    fn take_error(&self) -> Option<StorageError> {
        self.shared.errors.take()
    }
}

/// A block cursor over one group: each `next_block` call yields the
/// rest of the current on-disk block (so reads stay block-aligned and
/// every fragment comes off a CRC-verified, cache-resident block).
struct PagedCursor {
    shared: Arc<PagedShared>,
    group_off: u64,
    len: usize,
    pos: usize,
}

impl EdgeCursor for PagedCursor {
    fn next_block(&mut self) -> Vec<(NodeId, Dist)> {
        if self.pos >= self.len {
            return Vec::new();
        }
        let be = self.shared.block_entries;
        let block_idx = self.pos / be;
        let block_off = self.group_off + (block_idx * self.shared.block_bytes()) as u64;
        let block = match self.shared.fetch_block(block_off) {
            Ok(block) => block,
            Err(e) => {
                // A corrupt or unreadable block degrades to exhaustion,
                // like the v1/v2 cursor — recorded in the error slot so
                // the serving layer can refuse the truncated stream.
                self.shared.errors.record(e);
                self.pos = self.len;
                return Vec::new();
            }
        };
        let upto = self.len.min((block_idx + 1) * be);
        let take = upto - self.pos;
        let mut out = Vec::with_capacity(take);
        let mut pos = (self.pos % be) * L_ENTRY_BYTES;
        for _ in 0..take {
            let Ok(s) = get_u32(&block, &mut pos) else {
                break;
            };
            let Ok(d) = get_u32(&block, &mut pos) else {
                break;
            };
            out.push((NodeId(s), d));
        }
        self.pos = upto;
        self.shared.io.add_edges(take as u64);
        out
    }

    fn remaining(&self) -> usize {
        self.len - self.pos
    }
}

/// Opens a store path of any kind behind the right backend:
///
/// * a v3 file through a [`PagedStore`] (with `block_cache_bytes` as
///   the cache budget when given — `Some(0)` means unlimited);
/// * a v1/v2 file through a [`FileStore`](crate::FileStore);
/// * a sharded snapshot through a [`crate::ShardedStore`] — either the
///   `MANIFEST` file itself or the snapshot **directory** containing
///   one (a directory without a `MANIFEST` is a pointed
///   [`StorageError::BadFormat`], not a raw io error).
///
/// This is what the CLI and the bench harness use, so old snapshots
/// keep working next to v3 and sharded output. For `tcp://` remote
/// stores, see [`crate::open_store_uri`].
pub fn open_store_auto(
    path: &Path,
    block_cache_bytes: Option<u64>,
) -> Result<crate::SharedSource, StorageError> {
    let budget = block_cache_bytes.unwrap_or(DEFAULT_BLOCK_CACHE_BYTES);
    if path.is_dir() {
        let manifest = path.join("MANIFEST");
        if manifest.is_file() {
            return Ok(
                crate::ShardedStore::open_with_cache_bytes(&manifest, budget)?.into_shared(),
            );
        }
        return Err(StorageError::BadFormat(format!(
            "{} is a directory without a MANIFEST — did you mean the manifest path \
             of a sharded snapshot (<dir>/MANIFEST, written by write_store_sharded)?",
            path.display()
        )));
    }
    let mut head = [0u8; 8];
    let known = {
        let mut f = std::fs::File::open(path)?;
        if f.read_exact(&mut head).is_ok() {
            Some(head)
        } else {
            None
        }
    };
    match known {
        Some(h) if &h == MAGIC_V4 => {
            Ok(crate::ShardedStore::open_with_cache_bytes(path, budget)?.into_shared())
        }
        Some(h) if &h == MAGIC_V3 => {
            Ok(PagedStore::open_with_cache_bytes(path, budget)?.into_shared())
        }
        _ => Ok(crate::FileStore::open(path)?.into_shared()),
    }
}
