//! # ktpm-storage
//!
//! The storage layer of §4.1: the transitive closure serialized as
//! label-pair tables (`Dᵅᵦ`, `Eᵅᵦ`, and `Lᵅᵦ` grouped per destination
//! node sorted by distance), read back block by block with I/O
//! accounting.
//!
//! Seven interchangeable backends implement [`ClosureSource`]:
//!
//! * [`PagedStore`] — the current (format v3) disk backend: group
//!   regions split into fixed-size CRC-verified blocks, fetched lazily
//!   through a byte-budgeted LRU block cache, so enumeration over a
//!   closure larger than RAM keeps a bounded resident set
//!   ([`write_store`] emits v3 by default);
//! * [`FileStore`] — the v1/v2 single-file reader with positioned
//!   whole-section block reads; kept for old snapshots (use
//!   [`open_store_auto`] to dispatch on the file's version);
//! * [`MemStore`] — the same logical layout in memory, with the same
//!   logical I/O counters, for tests and pure-CPU benchmarks;
//! * [`OnDemandStore`] — no precomputation at all: pair tables are
//!   materialized lazily from the data graph, one SSSP sweep per source
//!   label (§5 "Managing Closure Size");
//! * [`LiveStore`] — the mutable backend: graph + closure behind one
//!   lock, accepting [`ktpm_graph::GraphDelta`]s with incremental
//!   closure repair and a monotonic [`ClosureSource::graph_version`];
//! * [`ShardedStore`] — a multi-file v3 snapshot ([`write_store_sharded`])
//!   opened from its CRC'd v4 `MANIFEST`: label pairs are routed to
//!   owning shard files, opened lazily so a query touches only the
//!   files it owns, all sharing one byte-budgeted block cache;
//! * [`RemoteStore`] — the same snapshot served by `ktpm blockd` over
//!   TCP ([`open_store_uri`] with `tcp://host:port`): blocks are
//!   fetched on demand with client-side CRC re-verification, bounded
//!   connection pooling, timeouts, and capped-backoff retries that
//!   surface [`StorageError::Remote`] instead of hanging.
//!
//! All counters live in [`IoStats`] snapshots so experiments can report
//! edges/blocks/bytes read per phase (Figures 6(c)–6(f)), including the
//! paged backend's block-cache hit/miss/eviction/residency traffic.

mod cache;
mod format;
mod iostats;
mod live;
mod manifest;
mod mem;
mod ondemand;
mod paged;
mod reader;
mod remote;
mod shard;
mod sharded;
mod source;
mod writer;

pub use format::{FormatVersion, DEFAULT_BLOCK_EDGES, MAGIC_V4};
pub use iostats::{IoSnapshot, IoStats};
pub use live::LiveStore;
pub use manifest::{Manifest, ShardFileMeta};
pub use mem::MemStore;
pub use ondemand::OnDemandStore;
pub use paged::{open_store_auto, PagedStore, DEFAULT_BLOCK_CACHE_BYTES};
pub use reader::FileStore;
pub use remote::{blockproto, open_store_uri, RemoteOptions, RemoteStore};
pub use shard::ShardSpec;
pub use sharded::{load_snapshot_manifest, ShardedStore};
pub use source::{
    merge_sorted_blocks, ClosureSource, DeltaReport, EdgeCursor, SharedSource, SourceRef,
    StorageError,
};
pub use writer::{write_store, write_store_sharded, write_store_v3, write_store_versioned};
