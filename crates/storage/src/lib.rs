//! # ktpm-storage
//!
//! The storage layer of §4.1: the transitive closure serialized as
//! label-pair tables (`Dᵅᵦ`, `Eᵅᵦ`, and `Lᵅᵦ` grouped per destination
//! node sorted by distance), read back block by block with I/O
//! accounting.
//!
//! Five interchangeable backends implement [`ClosureSource`]:
//!
//! * [`PagedStore`] — the current (format v3) disk backend: group
//!   regions split into fixed-size CRC-verified blocks, fetched lazily
//!   through a byte-budgeted LRU block cache, so enumeration over a
//!   closure larger than RAM keeps a bounded resident set
//!   ([`write_store`] emits v3 by default);
//! * [`FileStore`] — the v1/v2 single-file reader with positioned
//!   whole-section block reads; kept for old snapshots (use
//!   [`open_store_auto`] to dispatch on the file's version);
//! * [`MemStore`] — the same logical layout in memory, with the same
//!   logical I/O counters, for tests and pure-CPU benchmarks;
//! * [`OnDemandStore`] — no precomputation at all: pair tables are
//!   materialized lazily from the data graph, one SSSP sweep per source
//!   label (§5 "Managing Closure Size");
//! * [`LiveStore`] — the mutable backend: graph + closure behind one
//!   lock, accepting [`ktpm_graph::GraphDelta`]s with incremental
//!   closure repair and a monotonic [`ClosureSource::graph_version`].
//!
//! All counters live in [`IoStats`] snapshots so experiments can report
//! edges/blocks/bytes read per phase (Figures 6(c)–6(f)), including the
//! paged backend's block-cache hit/miss/eviction/residency traffic.

mod cache;
mod format;
mod iostats;
mod live;
mod mem;
mod ondemand;
mod paged;
mod reader;
mod shard;
mod source;
mod writer;

pub use format::FormatVersion;
pub use iostats::{IoSnapshot, IoStats};
pub use live::LiveStore;
pub use mem::MemStore;
pub use ondemand::OnDemandStore;
pub use paged::{open_store_auto, PagedStore, DEFAULT_BLOCK_CACHE_BYTES};
pub use reader::FileStore;
pub use shard::ShardSpec;
pub use source::{
    merge_sorted_blocks, ClosureSource, DeltaReport, EdgeCursor, SharedSource, SourceRef,
    StorageError,
};
pub use writer::{write_store, write_store_v3, write_store_versioned};
