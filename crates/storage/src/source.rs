//! The [`ClosureSource`] trait — the storage interface every matching
//! algorithm consumes — plus cursor utilities.

use crate::iostats::IoSnapshot;
use ktpm_graph::{DeltaError, Dist, GraphDelta, LabelId, NodeId};
use std::fmt;
use std::sync::Arc;

/// Errors raised by storage backends.
#[derive(Debug)]
#[non_exhaustive]
pub enum StorageError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is not a closure store or has an unsupported version.
    BadFormat(String),
    /// The file *is* a closure store but its bytes are inconsistent —
    /// truncated, bit-rotted, or carrying out-of-bounds offsets or
    /// counts. `offset` is where the reader needed `needed` more valid
    /// bytes than the snapshot provides. Every read path returns this
    /// instead of panicking, so a corrupt snapshot can never abort the
    /// process that opens it.
    Corrupt {
        /// File (or section-relative) offset of the failed read.
        offset: u64,
        /// Bytes the reader needed at `offset`.
        needed: usize,
    },
    /// The backend is an immutable snapshot and cannot apply graph
    /// deltas. Carries the backend name for diagnostics.
    UpdatesUnsupported(&'static str),
    /// A caller-supplied configuration value is unusable (e.g. a zero
    /// cursor block size or on-disk block capacity). Raised before any
    /// state is touched, instead of silently clamping.
    InvalidConfig(String),
    /// A delta was rejected before any state changed (unknown node,
    /// zero weight, missing/duplicate edge, ...).
    DeltaRejected(DeltaError),
    /// A remote block server could not be reached or kept failing after
    /// the client exhausted its capped-backoff retries (connect/request
    /// timeout, connection reset, server-reported failure, or repeated
    /// CRC mismatches on re-fetch). Surfaced instead of hanging so a
    /// dead `ktpm blockd` turns into a clean error at the serving tier.
    Remote {
        /// The `host:port` the client was talking to.
        addr: String,
        /// What failed, after how many attempts.
        detail: String,
    },
    /// One shard file of a sharded snapshot failed verification; wraps
    /// the per-file error so scrub reports can name the file *and* the
    /// offset.
    CorruptShard {
        /// Manifest-listed file name of the corrupt shard.
        file: String,
        /// The failure inside that file.
        error: Box<StorageError>,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "i/o error: {e}"),
            StorageError::BadFormat(m) => write!(f, "bad store format: {m}"),
            StorageError::Corrupt { offset, needed } => write!(
                f,
                "corrupt store: needed {needed} byte(s) at offset {offset} \
                 (truncated or damaged snapshot)"
            ),
            StorageError::UpdatesUnsupported(backend) => write!(
                f,
                "graph updates unsupported: {backend} store is an immutable snapshot"
            ),
            StorageError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            StorageError::DeltaRejected(e) => write!(f, "delta rejected: {e}"),
            StorageError::Remote { addr, detail } => {
                write!(f, "remote store {addr} unavailable: {detail}")
            }
            StorageError::CorruptShard { file, error } => {
                write!(f, "corrupt shard file {file}: {error}")
            }
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

impl From<DeltaError> for StorageError {
    fn from(e: DeltaError) -> Self {
        StorageError::DeltaRejected(e)
    }
}

/// What one applied delta did to a live store — the invalidation signal
/// the serving layer consumes.
#[derive(Debug, Clone, Default)]
pub struct DeltaReport {
    /// Store version after the delta (monotonic, starts at 0).
    pub version: u64,
    /// Label pairs whose closure tables changed, ascending. A cached
    /// plan is stale iff one of its query-tree label pairs is listed
    /// here (wildcards match any label).
    pub touched_pairs: Vec<(LabelId, LabelId)>,
    /// Label pairs whose **undirected** closure tables changed — the
    /// invalidation signal for graph-pattern (kGPM) state, which reads
    /// the bidirectional mirror instead of the directed closure. Empty
    /// when the backend has no materialized mirror (then no pattern
    /// plans exist either: building one forces the mirror via
    /// [`ClosureSource::undirected`]) or when the delta was masked by
    /// the opposite direction and changed nothing undirected.
    pub undirected_touched_pairs: Vec<(LabelId, LabelId)>,
    /// Repair work counters.
    pub stats: ktpm_closure::RepairStats,
}

/// A block-at-a-time cursor over `Lᵅᵥ`: the incoming closure edges of one
/// node from one source label, in ascending distance order (§4.1).
pub trait EdgeCursor {
    /// Loads the next block of `(source, dist)` entries. An empty vector
    /// means the list is exhausted.
    fn next_block(&mut self) -> Vec<(NodeId, Dist)>;

    /// Entries not yet returned.
    fn remaining(&self) -> usize;

    /// Whether all entries have been returned.
    fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }
}

/// A thread-safe, shared handle to a closure store — what the serving
/// layer passes around (one store, many concurrent queries).
pub type SharedSource = Arc<dyn ClosureSource>;

/// A closure source held either by borrow (the classic single-query
/// path) or by shared ownership (long-lived enumeration sessions that
/// must outlive their creator's stack frame).
pub enum SourceRef<'s> {
    /// Borrowed for the duration of one query.
    Borrowed(&'s dyn ClosureSource),
    /// Shared ownership; the `'static` variant used by sessions.
    Shared(SharedSource),
}

impl SourceRef<'_> {
    /// The underlying source.
    #[inline]
    pub fn get(&self) -> &dyn ClosureSource {
        match self {
            SourceRef::Borrowed(s) => *s,
            SourceRef::Shared(a) => a.as_ref(),
        }
    }
}

impl<'s> From<&'s dyn ClosureSource> for SourceRef<'s> {
    fn from(s: &'s dyn ClosureSource) -> Self {
        SourceRef::Borrowed(s)
    }
}

impl From<SharedSource> for SourceRef<'static> {
    fn from(s: SharedSource) -> Self {
        SourceRef::Shared(s)
    }
}

/// The storage interface of §3.1/§4.1: label-pair tables over the
/// transitive closure. Implemented by [`crate::FileStore`] (real block
/// I/O) and [`crate::MemStore`].
///
/// `Send + Sync` is a supertrait: every backend must be safely sharable
/// across threads (`Arc<dyn ClosureSource>`), which the serving layer
/// relies on. All backends use atomic I/O counters and internal locks,
/// so queries never need external synchronization.
pub trait ClosureSource: Send + Sync {
    /// Number of nodes of the underlying data graph.
    fn num_nodes(&self) -> usize;

    /// The label of a data node.
    fn node_label(&self, v: NodeId) -> LabelId;

    /// All non-empty label pairs `(src label, dst label)`.
    fn pair_keys(&self) -> Vec<(LabelId, LabelId)>;

    /// `Dᵅᵦ`: per β-labeled destination node, the minimum incoming
    /// distance from any α-labeled node. Ascending node order.
    fn load_d(&self, src_label: LabelId, dst_label: LabelId) -> Vec<(NodeId, Dist)>;

    /// `Eᵅᵦ`: per α-labeled source node with at least one β-labeled
    /// descendant, its minimum outgoing closure edge. Ascending source.
    fn load_e(&self, src_label: LabelId, dst_label: LabelId) -> Vec<(NodeId, NodeId, Dist)>;

    /// The whole `Lᵅᵦ` table as `(src, dst, dist)` triples (used by the
    /// full-loading algorithms `Topk` and `DP-B`).
    fn load_pair(&self, src_label: LabelId, dst_label: LabelId) -> Vec<(NodeId, NodeId, Dist)>;

    /// Opens a block cursor over `Lᵅᵥ` (incoming edges of `v` from
    /// α-labeled sources, ascending distance). Cursors own their state
    /// (`Send + 'static`) so enumerators holding them can migrate
    /// between worker threads and outlive the opening stack frame.
    fn incoming_cursor(&self, src_label: LabelId, v: NodeId) -> Box<dyn EdgeCursor + Send>;

    /// Point lookup `δ_min(u, v)` (used by kGPM verification).
    fn lookup_dist(&self, u: NodeId, v: NodeId) -> Option<Dist>;

    /// Current I/O counters.
    fn io(&self) -> IoSnapshot;

    /// Zeroes the I/O counters.
    fn reset_io(&self);

    /// Monotonic version of the underlying graph, bumped once per
    /// applied delta. Immutable snapshot backends always report 0 —
    /// their graph can never change, so every plan stamped against them
    /// stays current forever.
    fn graph_version(&self) -> u64 {
        0
    }

    /// Applies a batch of graph mutations, repairing the closure tables
    /// in place and returning what changed. Default: this backend is an
    /// immutable snapshot ([`StorageError::UpdatesUnsupported`]); only
    /// live backends ([`crate::LiveStore`]) override it.
    fn apply_delta(&self, _delta: &GraphDelta) -> Result<DeltaReport, StorageError> {
        Err(StorageError::UpdatesUnsupported("snapshot"))
    }

    /// The closure of the **bidirectional** data graph (§5: "for each
    /// edge in the data graph, we make it bidirectional"), behind the
    /// same [`ClosureSource`] surface — what kGPM graph-pattern queries
    /// enumerate and verify against. Built lazily on first request and
    /// cached; on live backends it is kept consistent under
    /// [`ClosureSource::apply_delta`] (see
    /// [`DeltaReport::undirected_touched_pairs`]).
    ///
    /// Default: `None` — the backend has no data graph to mirror
    /// (e.g. a persisted closure snapshot), so graph patterns are
    /// unsupported on it.
    fn undirected(&self) -> Option<SharedSource> {
        None
    }

    /// Takes (and clears) the first storage error this source silently
    /// degraded over since the last call. The read API is infallible by
    /// design — a corrupt block becomes an empty group, an exhausted
    /// cursor — which is the right call for local bit-rot but would let
    /// a dead remote serve *silently truncated* match streams. Backends
    /// that can fail mid-read ([`crate::PagedStore`] and everything
    /// built on it) record the first swallowed error here; the serving
    /// layer checks after each batch and turns a set slot into a
    /// protocol error instead of shipping the partial batch. Default:
    /// `None` (in-memory backends cannot fail mid-read).
    fn take_error(&self) -> Option<StorageError> {
        None
    }
}

/// Merges pre-sorted `(src, dist)` blocks from several cursors into a
/// single ascending-distance stream, used for wildcard query nodes whose
/// incoming lists span every source label.
///
/// This is an eager k-way merge of whole lists (wildcards are rare; §5
/// notes they make the run-time graph large regardless).
pub fn merge_sorted_blocks(mut lists: Vec<Vec<(NodeId, Dist)>>) -> Vec<(NodeId, Dist)> {
    match lists.len() {
        0 => Vec::new(),
        1 => lists.pop().unwrap(),
        _ => {
            let mut all: Vec<(NodeId, Dist)> = lists.into_iter().flatten().collect();
            all.sort_unstable_by_key(|&(s, d)| (d, s));
            all
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backends_are_thread_safe() {
        // Compile-time: every backend (and shared handles to them) can
        // cross threads. A failure here is a regression in the serving
        // layer's foundation.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::MemStore>();
        assert_send_sync::<crate::LiveStore>();
        assert_send_sync::<crate::OnDemandStore>();
        assert_send_sync::<crate::FileStore>();
        assert_send_sync::<crate::PagedStore>();
        assert_send_sync::<crate::ShardedStore>();
        assert_send_sync::<crate::RemoteStore>();
        assert_send_sync::<SharedSource>();
    }

    #[test]
    fn merge_empty() {
        assert!(merge_sorted_blocks(vec![]).is_empty());
    }

    #[test]
    fn merge_single_passthrough() {
        let l = vec![(NodeId(3), 1), (NodeId(1), 5)];
        assert_eq!(merge_sorted_blocks(vec![l.clone()]), l);
    }

    #[test]
    fn merge_orders_by_distance_then_node() {
        let a = vec![(NodeId(0), 2), (NodeId(1), 4)];
        let b = vec![(NodeId(5), 1), (NodeId(2), 2)];
        let merged = merge_sorted_blocks(vec![a, b]);
        assert_eq!(
            merged,
            vec![
                (NodeId(5), 1),
                (NodeId(0), 2),
                (NodeId(2), 2),
                (NodeId(1), 4)
            ]
        );
    }
}
