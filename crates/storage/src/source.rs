//! The [`ClosureSource`] trait — the storage interface every matching
//! algorithm consumes — plus cursor utilities.

use crate::iostats::IoSnapshot;
use ktpm_graph::{Dist, LabelId, NodeId};
use std::fmt;

/// Errors raised by storage backends.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is not a closure store or has an unsupported version.
    BadFormat(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "i/o error: {e}"),
            StorageError::BadFormat(m) => write!(f, "bad store format: {m}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// A block-at-a-time cursor over `Lᵅᵥ`: the incoming closure edges of one
/// node from one source label, in ascending distance order (§4.1).
pub trait EdgeCursor {
    /// Loads the next block of `(source, dist)` entries. An empty vector
    /// means the list is exhausted.
    fn next_block(&mut self) -> Vec<(NodeId, Dist)>;

    /// Entries not yet returned.
    fn remaining(&self) -> usize;

    /// Whether all entries have been returned.
    fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }
}

/// The storage interface of §3.1/§4.1: label-pair tables over the
/// transitive closure. Implemented by [`crate::FileStore`] (real block
/// I/O) and [`crate::MemStore`].
pub trait ClosureSource {
    /// Number of nodes of the underlying data graph.
    fn num_nodes(&self) -> usize;

    /// The label of a data node.
    fn node_label(&self, v: NodeId) -> LabelId;

    /// All non-empty label pairs `(src label, dst label)`.
    fn pair_keys(&self) -> Vec<(LabelId, LabelId)>;

    /// `Dᵅᵦ`: per β-labeled destination node, the minimum incoming
    /// distance from any α-labeled node. Ascending node order.
    fn load_d(&self, src_label: LabelId, dst_label: LabelId) -> Vec<(NodeId, Dist)>;

    /// `Eᵅᵦ`: per α-labeled source node with at least one β-labeled
    /// descendant, its minimum outgoing closure edge. Ascending source.
    fn load_e(&self, src_label: LabelId, dst_label: LabelId) -> Vec<(NodeId, NodeId, Dist)>;

    /// The whole `Lᵅᵦ` table as `(src, dst, dist)` triples (used by the
    /// full-loading algorithms `Topk` and `DP-B`).
    fn load_pair(&self, src_label: LabelId, dst_label: LabelId) -> Vec<(NodeId, NodeId, Dist)>;

    /// Opens a block cursor over `Lᵅᵥ` (incoming edges of `v` from
    /// α-labeled sources, ascending distance).
    fn incoming_cursor(&self, src_label: LabelId, v: NodeId) -> Box<dyn EdgeCursor + '_>;

    /// Point lookup `δ_min(u, v)` (used by kGPM verification).
    fn lookup_dist(&self, u: NodeId, v: NodeId) -> Option<Dist>;

    /// Current I/O counters.
    fn io(&self) -> IoSnapshot;

    /// Zeroes the I/O counters.
    fn reset_io(&self);
}

/// Merges pre-sorted `(src, dist)` blocks from several cursors into a
/// single ascending-distance stream, used for wildcard query nodes whose
/// incoming lists span every source label.
///
/// This is an eager k-way merge of whole lists (wildcards are rare; §5
/// notes they make the run-time graph large regardless).
pub fn merge_sorted_blocks(mut lists: Vec<Vec<(NodeId, Dist)>>) -> Vec<(NodeId, Dist)> {
    match lists.len() {
        0 => Vec::new(),
        1 => lists.pop().unwrap(),
        _ => {
            let mut all: Vec<(NodeId, Dist)> = lists.into_iter().flatten().collect();
            all.sort_unstable_by_key(|&(s, d)| (d, s));
            all
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_empty() {
        assert!(merge_sorted_blocks(vec![]).is_empty());
    }

    #[test]
    fn merge_single_passthrough() {
        let l = vec![(NodeId(3), 1), (NodeId(1), 5)];
        assert_eq!(merge_sorted_blocks(vec![l.clone()]), l);
    }

    #[test]
    fn merge_orders_by_distance_then_node() {
        let a = vec![(NodeId(0), 2), (NodeId(1), 4)];
        let b = vec![(NodeId(5), 1), (NodeId(2), 2)];
        let merged = merge_sorted_blocks(vec![a, b]);
        assert_eq!(
            merged,
            vec![(NodeId(5), 1), (NodeId(0), 2), (NodeId(2), 2), (NodeId(1), 4)]
        );
    }
}
