//! A byte-budgeted LRU cache of verified on-disk blocks, keyed by
//! `(file id, file offset)` — the resident set behind
//! [`crate::PagedStore`]. A standalone store uses file id 0 throughout;
//! [`crate::ShardedStore`] / [`crate::RemoteStore`] share **one** cache
//! across all shard files, with each file's blocks namespaced by its
//! manifest position, so the byte budget bounds the whole snapshot and
//! a hot shard can evict a cold one's blocks.
//!
//! The cache itself is a plain (non-thread-safe) structure; the store
//! wraps it in a `Mutex` and forwards hit/miss/eviction/residency
//! deltas into [`crate::IoStats`]. Recency is tracked with a lazy
//! queue: every touch pushes a freshly stamped `(key, stamp)` entry
//! and eviction skips entries whose stamp is stale, so a hit is O(1)
//! amortized with no linked-list surgery.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Cache key: `(file id, block offset within that file)`.
pub(crate) type BlockKey = (u32, u64);

struct Slot {
    data: Arc<Vec<u8>>,
    /// Stamp of this slot's *newest* queue entry; older queue entries
    /// for the same key are stale and skipped during eviction.
    stamp: u64,
}

/// LRU over verified block payloads. `budget` is in payload bytes;
/// `0` means unlimited (nothing is ever evicted).
pub(crate) struct BlockCache {
    map: HashMap<BlockKey, Slot>,
    lru: VecDeque<(BlockKey, u64)>,
    next_stamp: u64,
    resident: u64,
    budget: u64,
}

impl BlockCache {
    pub(crate) fn new(budget: u64) -> Self {
        BlockCache {
            map: HashMap::new(),
            lru: VecDeque::new(),
            next_stamp: 0,
            resident: 0,
            budget,
        }
    }

    fn touch(&mut self, key: BlockKey) -> u64 {
        self.next_stamp += 1;
        self.lru.push_back((key, self.next_stamp));
        self.next_stamp
    }

    /// Looks up the block at `key`, refreshing its recency on a hit.
    pub(crate) fn get(&mut self, key: BlockKey) -> Option<Arc<Vec<u8>>> {
        self.next_stamp += 1;
        let stamp = self.next_stamp;
        let slot = self.map.get_mut(&key)?;
        slot.stamp = stamp;
        let data = Arc::clone(&slot.data);
        self.lru.push_back((key, stamp));
        self.compact();
        Some(data)
    }

    /// Inserts (or replaces) the block at `key`, then evicts
    /// least-recently-used blocks until the budget holds again. The
    /// block just inserted is never evicted, even when it alone
    /// exceeds the budget — a fetched block must survive long enough
    /// to be returned. Returns `(evicted_blocks, resident_bytes)`.
    pub(crate) fn insert(&mut self, key: BlockKey, data: Arc<Vec<u8>>) -> (u64, u64) {
        let bytes = data.len() as u64;
        let stamp = self.touch(key);
        if let Some(old) = self.map.insert(key, Slot { data, stamp }) {
            self.resident -= old.data.len() as u64;
        }
        self.resident += bytes;
        let mut evicted = 0u64;
        if self.budget > 0 {
            while self.resident > self.budget {
                let Some((victim, victim_stamp)) = self.lru.pop_front() else {
                    break;
                };
                if victim == key {
                    // The entry being inserted reached the front: it is
                    // the only live block left. Keep it.
                    self.lru.push_front((victim, victim_stamp));
                    break;
                }
                match self.map.get(&victim) {
                    Some(slot) if slot.stamp == victim_stamp => {
                        let slot = self.map.remove(&victim).expect("checked above");
                        self.resident -= slot.data.len() as u64;
                        evicted += 1;
                    }
                    _ => {} // stale queue entry (re-touched or replaced)
                }
            }
        }
        self.compact();
        (evicted, self.resident)
    }

    /// Prunes stale queue entries once they dominate, keeping the queue
    /// O(live blocks).
    fn compact(&mut self) {
        if self.lru.len() <= 2 * self.map.len() + 16 {
            return;
        }
        let map = &self.map;
        self.lru
            .retain(|&(key, stamp)| map.get(&key).is_some_and(|s| s.stamp == stamp));
    }

    /// Live blocks currently cached.
    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    /// Payload bytes currently resident.
    pub(crate) fn resident_bytes(&self) -> u64 {
        self.resident
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(n: usize) -> Arc<Vec<u8>> {
        Arc::new(vec![0u8; n])
    }

    fn k(off: u64) -> BlockKey {
        (0, off)
    }

    #[test]
    fn unlimited_budget_never_evicts() {
        let mut c = BlockCache::new(0);
        for off in 0..100u64 {
            let (ev, _) = c.insert(k(off), block(100));
            assert_eq!(ev, 0);
        }
        assert_eq!(c.len(), 100);
        assert_eq!(c.resident_bytes(), 10_000);
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let mut c = BlockCache::new(250);
        c.insert(k(0), block(100));
        c.insert(k(1), block(100));
        assert!(c.get(k(0)).is_some(), "refresh 0 so 1 is the LRU victim");
        let (ev, resident) = c.insert(k(2), block(100));
        assert_eq!(ev, 1);
        assert_eq!(resident, 200);
        assert!(c.get(k(1)).is_none(), "1 was evicted");
        assert!(c.get(k(0)).is_some() && c.get(k(2)).is_some());
    }

    #[test]
    fn oversized_block_survives_its_own_insert() {
        let mut c = BlockCache::new(50);
        let (ev, resident) = c.insert(k(7), block(200));
        assert_eq!(ev, 0);
        assert_eq!(resident, 200, "the just-inserted block is kept");
        assert!(c.get(k(7)).is_some());
        // The next insert evicts it.
        let (ev, resident) = c.insert(k(8), block(40));
        assert_eq!(ev, 1);
        assert_eq!(resident, 40);
        assert!(c.get(k(7)).is_none());
    }

    #[test]
    fn replacing_a_key_adjusts_residency() {
        let mut c = BlockCache::new(0);
        c.insert(k(3), block(100));
        c.insert(k(3), block(60));
        assert_eq!(c.len(), 1);
        assert_eq!(c.resident_bytes(), 60);
    }

    #[test]
    fn same_offset_in_different_files_are_distinct_blocks() {
        let mut c = BlockCache::new(0);
        c.insert((0, 64), block(10));
        c.insert((1, 64), block(20));
        assert_eq!(c.len(), 2);
        assert_eq!(c.resident_bytes(), 30);
        assert_eq!(c.get((0, 64)).unwrap().len(), 10);
        assert_eq!(c.get((1, 64)).unwrap().len(), 20);
    }

    #[test]
    fn budget_holds_under_churn() {
        let mut c = BlockCache::new(1000);
        let mut evicted = 0;
        for round in 0..10u64 {
            for off in 0..40u64 {
                let (ev, resident) = c.insert(k(off * 1000 + round % 3), block(100));
                evicted += ev;
                assert!(resident <= 1000, "budget violated: {resident}");
            }
        }
        assert!(evicted > 0);
        assert!(c.resident_bytes() <= 1000);
        // The lazy queue stays bounded relative to live blocks.
        assert!(c.lru.len() <= 2 * c.map.len() + 16);
    }
}
