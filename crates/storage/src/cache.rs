//! A byte-budgeted LRU cache of verified on-disk blocks, keyed by file
//! offset — the resident set behind [`crate::PagedStore`].
//!
//! The cache itself is a plain (non-thread-safe) structure; the store
//! wraps it in a `Mutex` and forwards hit/miss/eviction/residency
//! deltas into [`crate::IoStats`]. Recency is tracked with a lazy
//! queue: every touch pushes a freshly stamped `(offset, stamp)` entry
//! and eviction skips entries whose stamp is stale, so a hit is O(1)
//! amortized with no linked-list surgery.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

struct Slot {
    data: Arc<Vec<u8>>,
    /// Stamp of this slot's *newest* queue entry; older queue entries
    /// for the same offset are stale and skipped during eviction.
    stamp: u64,
}

/// LRU over verified block payloads. `budget` is in payload bytes;
/// `0` means unlimited (nothing is ever evicted).
pub(crate) struct BlockCache {
    map: HashMap<u64, Slot>,
    lru: VecDeque<(u64, u64)>,
    next_stamp: u64,
    resident: u64,
    budget: u64,
}

impl BlockCache {
    pub(crate) fn new(budget: u64) -> Self {
        BlockCache {
            map: HashMap::new(),
            lru: VecDeque::new(),
            next_stamp: 0,
            resident: 0,
            budget,
        }
    }

    fn touch(&mut self, off: u64) -> u64 {
        self.next_stamp += 1;
        self.lru.push_back((off, self.next_stamp));
        self.next_stamp
    }

    /// Looks up the block at `off`, refreshing its recency on a hit.
    pub(crate) fn get(&mut self, off: u64) -> Option<Arc<Vec<u8>>> {
        self.next_stamp += 1;
        let stamp = self.next_stamp;
        let slot = self.map.get_mut(&off)?;
        slot.stamp = stamp;
        let data = Arc::clone(&slot.data);
        self.lru.push_back((off, stamp));
        self.compact();
        Some(data)
    }

    /// Inserts (or replaces) the block at `off`, then evicts
    /// least-recently-used blocks until the budget holds again. The
    /// block just inserted is never evicted, even when it alone
    /// exceeds the budget — a fetched block must survive long enough
    /// to be returned. Returns `(evicted_blocks, resident_bytes)`.
    pub(crate) fn insert(&mut self, off: u64, data: Arc<Vec<u8>>) -> (u64, u64) {
        let bytes = data.len() as u64;
        let stamp = self.touch(off);
        if let Some(old) = self.map.insert(off, Slot { data, stamp }) {
            self.resident -= old.data.len() as u64;
        }
        self.resident += bytes;
        let mut evicted = 0u64;
        if self.budget > 0 {
            while self.resident > self.budget {
                let Some((victim, victim_stamp)) = self.lru.pop_front() else {
                    break;
                };
                if victim == off {
                    // The entry being inserted reached the front: it is
                    // the only live block left. Keep it.
                    self.lru.push_front((victim, victim_stamp));
                    break;
                }
                match self.map.get(&victim) {
                    Some(slot) if slot.stamp == victim_stamp => {
                        let slot = self.map.remove(&victim).expect("checked above");
                        self.resident -= slot.data.len() as u64;
                        evicted += 1;
                    }
                    _ => {} // stale queue entry (re-touched or replaced)
                }
            }
        }
        self.compact();
        (evicted, self.resident)
    }

    /// Prunes stale queue entries once they dominate, keeping the queue
    /// O(live blocks).
    fn compact(&mut self) {
        if self.lru.len() <= 2 * self.map.len() + 16 {
            return;
        }
        let map = &self.map;
        self.lru
            .retain(|&(off, stamp)| map.get(&off).is_some_and(|s| s.stamp == stamp));
    }

    /// Live blocks currently cached.
    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    /// Payload bytes currently resident.
    pub(crate) fn resident_bytes(&self) -> u64 {
        self.resident
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(n: usize) -> Arc<Vec<u8>> {
        Arc::new(vec![0u8; n])
    }

    #[test]
    fn unlimited_budget_never_evicts() {
        let mut c = BlockCache::new(0);
        for off in 0..100u64 {
            let (ev, _) = c.insert(off, block(100));
            assert_eq!(ev, 0);
        }
        assert_eq!(c.len(), 100);
        assert_eq!(c.resident_bytes(), 10_000);
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let mut c = BlockCache::new(250);
        c.insert(0, block(100));
        c.insert(1, block(100));
        assert!(c.get(0).is_some(), "refresh 0 so 1 is the LRU victim");
        let (ev, resident) = c.insert(2, block(100));
        assert_eq!(ev, 1);
        assert_eq!(resident, 200);
        assert!(c.get(1).is_none(), "1 was evicted");
        assert!(c.get(0).is_some() && c.get(2).is_some());
    }

    #[test]
    fn oversized_block_survives_its_own_insert() {
        let mut c = BlockCache::new(50);
        let (ev, resident) = c.insert(7, block(200));
        assert_eq!(ev, 0);
        assert_eq!(resident, 200, "the just-inserted block is kept");
        assert!(c.get(7).is_some());
        // The next insert evicts it.
        let (ev, resident) = c.insert(8, block(40));
        assert_eq!(ev, 1);
        assert_eq!(resident, 40);
        assert!(c.get(7).is_none());
    }

    #[test]
    fn replacing_an_offset_adjusts_residency() {
        let mut c = BlockCache::new(0);
        c.insert(3, block(100));
        c.insert(3, block(60));
        assert_eq!(c.len(), 1);
        assert_eq!(c.resident_bytes(), 60);
    }

    #[test]
    fn budget_holds_under_churn() {
        let mut c = BlockCache::new(1000);
        let mut evicted = 0;
        for round in 0..10u64 {
            for off in 0..40u64 {
                let (ev, resident) = c.insert(off * 1000 + round % 3, block(100));
                evicted += ev;
                assert!(resident <= 1000, "budget violated: {resident}");
            }
        }
        assert!(evicted > 0);
        assert!(c.resident_bytes() <= 1000);
        // The lazy queue stays bounded relative to live blocks.
        assert!(c.lru.len() <= 2 * c.map.len() + 16);
    }
}
