//! Data-node sharding for partitioned execution.
//!
//! A [`ShardSpec`] names one of `of` disjoint, exhaustive slices of the
//! data graph's node-id space (residue classes `id ≡ index (mod of)`).
//! The parallel enumerator (`ParTopk` in `ktpm-core`) restricts each
//! shard's *root* candidate set through such a spec: every match has
//! exactly one root node, so the specs of [`ShardSpec::split`]
//! partition the match universe — no match is lost and none is
//! produced twice, which is what lets shard streams be re-merged into
//! the exact global stream.
//!
//! The residue-class (strided) layout is chosen over contiguous ranges
//! because node ids in both generated and real graphs correlate with
//! age/community structure: striding spreads every community across
//! all shards, balancing per-shard match counts.
//!
//! The spec lives in the storage crate because it slices the stored
//! node space: shard-restricted views of one [`crate::SharedSource`]
//! (all shards share the same store handle) are taken per query by the
//! layers above, not by copying tables.
//!
//! The format-v3 paged layout is shard-aligned with these specs: every
//! destination node's `L` group starts on a fresh fixed-size block, so
//! no block holds entries of two nodes and the block sets touched by
//! different shards' root partitions are disjoint
//! ([`crate::PagedStore::group_block_ranges`] exposes the ranges).
//! Parallel shard workers therefore never re-fetch or re-verify each
//! other's blocks, and each warms the shared block cache only with its
//! own partition.

use ktpm_graph::NodeId;
use std::fmt;

/// One of `of` disjoint node-id slices; see module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardSpec {
    index: u32,
    of: u32,
}

impl ShardSpec {
    /// The shard `index` of `of` total. Panics unless `index < of`.
    pub fn new(index: u32, of: u32) -> Self {
        assert!(of >= 1, "shard count must be at least 1");
        assert!(index < of, "shard index {index} out of range (of {of})");
        ShardSpec { index, of }
    }

    /// The trivial single-shard spec containing every node.
    pub fn full() -> Self {
        ShardSpec { index: 0, of: 1 }
    }

    /// All `n` shards of an `n`-way split (at least one), in order.
    pub fn split(n: usize) -> Vec<ShardSpec> {
        let of = n.max(1) as u32;
        (0..of).map(|index| ShardSpec { index, of }).collect()
    }

    /// Whether data node `v` belongs to this shard.
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        v.0 % self.of == self.index
    }

    /// This shard's index within the split.
    pub fn index(&self) -> u32 {
        self.index
    }

    /// Total shards in the split this spec belongs to.
    pub fn of(&self) -> u32 {
        self.of
    }

    /// Whether this spec admits every node (a 1-way split).
    pub fn is_full(&self) -> bool {
        self.of == 1
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.of)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_partitions_every_node() {
        for n in 1..8usize {
            let shards = ShardSpec::split(n);
            assert_eq!(shards.len(), n);
            for id in 0..100u32 {
                let owners = shards.iter().filter(|s| s.contains(NodeId(id))).count();
                assert_eq!(owners, 1, "node {id} must live in exactly one of {n}");
            }
        }
    }

    #[test]
    fn split_zero_clamps_to_one_full_shard() {
        let shards = ShardSpec::split(0);
        assert_eq!(shards, vec![ShardSpec::full()]);
        assert!(shards[0].is_full());
        assert!((0..50).all(|i| shards[0].contains(NodeId(i))));
    }

    #[test]
    fn strided_layout_balances_counts() {
        let shards = ShardSpec::split(4);
        for s in &shards {
            let owned = (0..1000u32).filter(|&i| s.contains(NodeId(i))).count();
            assert_eq!(owned, 250);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        ShardSpec::new(3, 3);
    }

    #[test]
    fn display_is_index_slash_of() {
        assert_eq!(ShardSpec::new(2, 4).to_string(), "2/4");
    }
}
