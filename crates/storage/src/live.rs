//! The mutable [`ClosureSource`]: an in-memory store that accepts
//! [`GraphDelta`]s.
//!
//! [`LiveStore`] pairs the data graph with its closure tables behind one
//! `RwLock`. Reads (the whole [`ClosureSource`] surface) take the shared
//! lock and snapshot what they need eagerly — cursors copy their entry
//! run up front, exactly like [`crate::MemStore`] — so an update can
//! never tear an in-flight block stream. [`LiveStore::apply_delta`]
//! takes the exclusive lock, validates and applies the delta to the
//! graph, repairs the closure incrementally
//! ([`ktpm_closure::ClosureTables::repair`]), and bumps the monotonic
//! graph version the serving layer stamps into plans and cache entries.

use crate::format::{DEFAULT_BLOCK_EDGES, L_ENTRY_BYTES};
use crate::iostats::{IoSnapshot, IoStats};
use crate::source::{ClosureSource, DeltaReport, EdgeCursor, StorageError};
use ktpm_closure::ClosureTables;
use ktpm_graph::{Dist, GraphDelta, LabelId, LabeledGraph, NodeId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

struct LiveInner {
    graph: LabeledGraph,
    tables: ClosureTables,
}

/// An in-memory closure store that accepts live graph updates.
pub struct LiveStore {
    inner: RwLock<LiveInner>,
    version: AtomicU64,
    io: IoStats,
    block_edges: usize,
}

impl LiveStore {
    /// Computes the closure of `graph` and wraps both.
    pub fn new(graph: LabeledGraph) -> Self {
        let tables = ClosureTables::compute(&graph);
        Self::with_tables(graph, tables)
    }

    /// Wraps a graph with already-computed closure tables.
    pub fn with_tables(graph: LabeledGraph, tables: ClosureTables) -> Self {
        LiveStore {
            inner: RwLock::new(LiveInner { graph, tables }),
            version: AtomicU64::new(0),
            io: IoStats::new(),
            block_edges: DEFAULT_BLOCK_EDGES,
        }
    }

    /// Sets the cursor block size (in `L` entries); returns `self`.
    pub fn with_block_edges(mut self, block_edges: usize) -> Self {
        self.block_edges = block_edges.max(1);
        self
    }

    /// A clone of the current graph (tests and diagnostics).
    pub fn graph(&self) -> LabeledGraph {
        self.inner
            .read()
            .expect("live store poisoned")
            .graph
            .clone()
    }

    /// Wraps the store in a [`crate::SharedSource`] for concurrent use.
    pub fn into_shared(self) -> crate::SharedSource {
        std::sync::Arc::new(self)
    }
}

impl ClosureSource for LiveStore {
    fn num_nodes(&self) -> usize {
        self.inner
            .read()
            .expect("live store poisoned")
            .tables
            .num_nodes()
    }

    fn node_label(&self, v: NodeId) -> LabelId {
        self.inner
            .read()
            .expect("live store poisoned")
            .tables
            .label(v)
    }

    fn pair_keys(&self) -> Vec<(LabelId, LabelId)> {
        let inner = self.inner.read().expect("live store poisoned");
        let mut keys: Vec<_> = inner.tables.iter_pairs().map(|(k, _)| k).collect();
        keys.sort_unstable();
        keys
    }

    fn load_d(&self, a: LabelId, b: LabelId) -> Vec<(NodeId, Dist)> {
        let inner = self.inner.read().expect("live store poisoned");
        let Some(t) = inner.tables.pair(a, b) else {
            return Vec::new();
        };
        let out: Vec<(NodeId, Dist)> = t
            .dst_nodes()
            .iter()
            .map(|&v| (v, t.min_incoming_dist(v).expect("non-empty group")))
            .collect();
        self.io.add_block((out.len() * 8 + 4) as u64);
        self.io.add_d_entries(out.len() as u64);
        out
    }

    fn load_e(&self, a: LabelId, b: LabelId) -> Vec<(NodeId, NodeId, Dist)> {
        let inner = self.inner.read().expect("live store poisoned");
        let Some(t) = inner.tables.pair(a, b) else {
            return Vec::new();
        };
        let out = t.min_out().to_vec();
        self.io.add_block((out.len() * 12 + 4) as u64);
        self.io.add_e_entries(out.len() as u64);
        out
    }

    fn load_pair(&self, a: LabelId, b: LabelId) -> Vec<(NodeId, NodeId, Dist)> {
        let inner = self.inner.read().expect("live store poisoned");
        let Some(t) = inner.tables.pair(a, b) else {
            return Vec::new();
        };
        let out: Vec<_> = t.iter_edges().collect();
        self.io.add_block((out.len() * L_ENTRY_BYTES) as u64);
        self.io.add_edges(out.len() as u64);
        out
    }

    fn incoming_cursor(&self, a: LabelId, v: NodeId) -> Box<dyn EdgeCursor + Send> {
        let inner = self.inner.read().expect("live store poisoned");
        // Snapshot eagerly: the cursor stays coherent with the graph
        // version it was opened against even if a delta lands mid-stream.
        let entries = inner
            .tables
            .pair(a, inner.tables.label(v))
            .map(|t| t.incoming(v).to_vec())
            .unwrap_or_default();
        Box::new(LiveCursor {
            io: self.io.clone(),
            entries,
            pos: 0,
            block_edges: self.block_edges,
        })
    }

    fn lookup_dist(&self, u: NodeId, v: NodeId) -> Option<Dist> {
        self.inner
            .read()
            .expect("live store poisoned")
            .tables
            .dist(u, v)
    }

    fn io(&self) -> IoSnapshot {
        self.io.snapshot()
    }

    fn reset_io(&self) {
        self.io.reset();
    }

    fn graph_version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    fn apply_delta(&self, delta: &GraphDelta) -> Result<DeltaReport, StorageError> {
        let mut inner = self.inner.write().expect("live store poisoned");
        let (new_graph, effects) = inner.graph.apply_delta(delta)?;
        let outcome = inner.tables.repair(&new_graph, &effects);
        inner.graph = new_graph;
        // Publish the version while still holding the write lock so
        // readers never observe new tables under an old version.
        let version = self.version.fetch_add(1, Ordering::AcqRel) + 1;
        Ok(DeltaReport {
            version,
            touched_pairs: outcome.touched_pairs,
            stats: outcome.stats,
        })
    }
}

struct LiveCursor {
    io: IoStats,
    entries: Vec<(NodeId, Dist)>,
    pos: usize,
    block_edges: usize,
}

impl EdgeCursor for LiveCursor {
    fn next_block(&mut self) -> Vec<(NodeId, Dist)> {
        if self.pos >= self.entries.len() {
            return Vec::new();
        }
        let take = (self.entries.len() - self.pos).min(self.block_edges);
        let out = self.entries[self.pos..self.pos + take].to_vec();
        self.pos += take;
        self.io.add_block((take * L_ENTRY_BYTES) as u64);
        self.io.add_edges(take as u64);
        out
    }

    fn remaining(&self) -> usize {
        self.entries.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStore;
    use ktpm_graph::fixtures::paper_graph;

    #[test]
    fn starts_at_version_zero_and_bumps_per_delta() {
        let g = paper_graph();
        let e = g.edges().next().unwrap();
        let s = LiveStore::new(g);
        assert_eq!(s.graph_version(), 0);
        let r1 = s
            .apply_delta(&GraphDelta::new().set_weight(e.from, e.to, 5))
            .unwrap();
        assert_eq!(r1.version, 1);
        assert_eq!(s.graph_version(), 1);
        let r2 = s
            .apply_delta(&GraphDelta::new().set_weight(e.from, e.to, 1))
            .unwrap();
        assert_eq!(r2.version, 2);
    }

    #[test]
    fn rejected_delta_leaves_state_untouched() {
        let g = paper_graph();
        let s = LiveStore::new(g);
        let err = s
            .apply_delta(&GraphDelta::new().delete_edge(NodeId(0), NodeId(12)))
            .unwrap_err();
        assert!(matches!(err, StorageError::DeltaRejected(_)));
        assert_eq!(s.graph_version(), 0);
    }

    #[test]
    fn reads_match_memstore_after_update() {
        let g = paper_graph();
        let e = g.edges().next().unwrap();
        let live = LiveStore::new(g.clone());
        live.apply_delta(&GraphDelta::new().set_weight(e.from, e.to, 3))
            .unwrap();
        let (g2, _) = g
            .apply_delta(&GraphDelta::new().set_weight(e.from, e.to, 3))
            .unwrap();
        let cold = MemStore::new(ClosureTables::compute(&g2));
        for (a, b) in cold.pair_keys() {
            assert_eq!(live.load_d(a, b), cold.load_d(a, b));
            assert_eq!(live.load_e(a, b), cold.load_e(a, b));
            let mut lp = live.load_pair(a, b);
            let mut cp = cold.load_pair(a, b);
            lp.sort_unstable();
            cp.sort_unstable();
            assert_eq!(lp, cp);
        }
        assert_eq!(live.pair_keys(), cold.pair_keys());
    }

    #[test]
    fn snapshot_backends_reject_updates() {
        let g = paper_graph();
        let e = g.edges().next().unwrap();
        let mem = MemStore::new(ClosureTables::compute(&g));
        let err = mem
            .apply_delta(&GraphDelta::new().set_weight(e.from, e.to, 2))
            .unwrap_err();
        assert!(matches!(err, StorageError::UpdatesUnsupported(_)));
        assert_eq!(mem.graph_version(), 0);
    }

    #[test]
    fn open_cursor_survives_concurrent_update() {
        let g = paper_graph();
        let a = g.interner().get("a").unwrap();
        let e = g.edges().next().unwrap();
        let s = LiveStore::new(g).with_block_edges(1);
        let mut cur = s.incoming_cursor(a, NodeId(4));
        let first = cur.next_block();
        s.apply_delta(&GraphDelta::new().set_weight(e.from, e.to, 9))
            .unwrap();
        // The cursor keeps streaming its opening-time snapshot.
        let rest = cur.next_block();
        assert_eq!(first.len() + rest.len() + cur.remaining(), 2);
    }
}
