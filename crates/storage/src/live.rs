//! The mutable [`ClosureSource`]: an in-memory store that accepts
//! [`GraphDelta`]s.
//!
//! [`LiveStore`] pairs the data graph with its closure tables behind one
//! `RwLock`. Reads (the whole [`ClosureSource`] surface) take the shared
//! lock and snapshot what they need eagerly — cursors copy their entry
//! run up front, exactly like [`crate::MemStore`] — so an update can
//! never tear an in-flight block stream. [`LiveStore::apply_delta`]
//! takes the exclusive lock, validates and applies the delta to the
//! graph, repairs the closure incrementally
//! ([`ktpm_closure::ClosureTables::repair`]), and bumps the monotonic
//! graph version the serving layer stamps into plans and cache entries.

use crate::format::{DEFAULT_BLOCK_EDGES, L_ENTRY_BYTES};
use crate::iostats::{IoSnapshot, IoStats};
use crate::source::{ClosureSource, DeltaReport, EdgeCursor, StorageError};
use ktpm_closure::ClosureTables;
use ktpm_graph::{undirect, Dist, GraphDelta, LabelId, LabeledGraph, NodeId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

struct LiveInner {
    graph: LabeledGraph,
    tables: ClosureTables,
}

/// An in-memory closure store that accepts live graph updates.
pub struct LiveStore {
    inner: RwLock<LiveInner>,
    /// Lazily-built undirected mirror ([`ClosureSource::undirected`]) —
    /// itself a `LiveStore` so deltas repair it incrementally too.
    /// Lock order is `mirror` before `inner`, on both the build path
    /// (write + inner read held across the whole closure computation,
    /// so no delta can slip between snapshotting the graph and
    /// publishing the mirror) and the delta path (read + inner write).
    mirror: RwLock<Option<Arc<LiveStore>>>,
    version: AtomicU64,
    io: IoStats,
    block_edges: usize,
}

impl LiveStore {
    /// Computes the closure of `graph` and wraps both.
    pub fn new(graph: LabeledGraph) -> Self {
        let tables = ClosureTables::compute(&graph);
        Self::with_tables(graph, tables)
    }

    /// Wraps a graph with already-computed closure tables.
    pub fn with_tables(graph: LabeledGraph, tables: ClosureTables) -> Self {
        LiveStore {
            inner: RwLock::new(LiveInner { graph, tables }),
            mirror: RwLock::new(None),
            version: AtomicU64::new(0),
            io: IoStats::new(),
            block_edges: DEFAULT_BLOCK_EDGES,
        }
    }

    /// Sets the cursor block size (in `L` entries); returns `self`.
    pub fn with_block_edges(mut self, block_edges: usize) -> Self {
        self.block_edges = block_edges.max(1);
        self
    }

    /// A clone of the current graph (tests and diagnostics).
    pub fn graph(&self) -> LabeledGraph {
        self.inner
            .read()
            .expect("live store poisoned")
            .graph
            .clone()
    }

    /// Wraps the store in a [`crate::SharedSource`] for concurrent use.
    pub fn into_shared(self) -> crate::SharedSource {
        std::sync::Arc::new(self)
    }
}

impl ClosureSource for LiveStore {
    fn num_nodes(&self) -> usize {
        self.inner
            .read()
            .expect("live store poisoned")
            .tables
            .num_nodes()
    }

    fn node_label(&self, v: NodeId) -> LabelId {
        self.inner
            .read()
            .expect("live store poisoned")
            .tables
            .label(v)
    }

    fn pair_keys(&self) -> Vec<(LabelId, LabelId)> {
        let inner = self.inner.read().expect("live store poisoned");
        let mut keys: Vec<_> = inner.tables.iter_pairs().map(|(k, _)| k).collect();
        keys.sort_unstable();
        keys
    }

    fn load_d(&self, a: LabelId, b: LabelId) -> Vec<(NodeId, Dist)> {
        let inner = self.inner.read().expect("live store poisoned");
        let Some(t) = inner.tables.pair(a, b) else {
            return Vec::new();
        };
        let out: Vec<(NodeId, Dist)> = t
            .dst_nodes()
            .iter()
            .map(|&v| (v, t.min_incoming_dist(v).expect("non-empty group")))
            .collect();
        self.io.add_block((out.len() * 8 + 4) as u64);
        self.io.add_d_entries(out.len() as u64);
        out
    }

    fn load_e(&self, a: LabelId, b: LabelId) -> Vec<(NodeId, NodeId, Dist)> {
        let inner = self.inner.read().expect("live store poisoned");
        let Some(t) = inner.tables.pair(a, b) else {
            return Vec::new();
        };
        let out = t.min_out().to_vec();
        self.io.add_block((out.len() * 12 + 4) as u64);
        self.io.add_e_entries(out.len() as u64);
        out
    }

    fn load_pair(&self, a: LabelId, b: LabelId) -> Vec<(NodeId, NodeId, Dist)> {
        let inner = self.inner.read().expect("live store poisoned");
        let Some(t) = inner.tables.pair(a, b) else {
            return Vec::new();
        };
        let out: Vec<_> = t.iter_edges().collect();
        self.io.add_block((out.len() * L_ENTRY_BYTES) as u64);
        self.io.add_edges(out.len() as u64);
        out
    }

    fn incoming_cursor(&self, a: LabelId, v: NodeId) -> Box<dyn EdgeCursor + Send> {
        let inner = self.inner.read().expect("live store poisoned");
        // Snapshot eagerly: the cursor stays coherent with the graph
        // version it was opened against even if a delta lands mid-stream.
        let entries = inner
            .tables
            .pair(a, inner.tables.label(v))
            .map(|t| t.incoming(v).to_vec())
            .unwrap_or_default();
        Box::new(LiveCursor {
            io: self.io.clone(),
            entries,
            pos: 0,
            block_edges: self.block_edges,
        })
    }

    fn lookup_dist(&self, u: NodeId, v: NodeId) -> Option<Dist> {
        self.inner
            .read()
            .expect("live store poisoned")
            .tables
            .dist(u, v)
    }

    fn io(&self) -> IoSnapshot {
        self.io.snapshot()
    }

    fn reset_io(&self) {
        self.io.reset();
    }

    fn graph_version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    fn apply_delta(&self, delta: &GraphDelta) -> Result<DeltaReport, StorageError> {
        // Lock order: mirror before inner. Holding the mirror slot for
        // reading across the whole apply keeps a concurrent mirror
        // build (slot write) from racing the graph mutation.
        let mirror = self.mirror.read().expect("live store poisoned");
        let mut inner = self.inner.write().expect("live store poisoned");
        let (new_graph, effects) = inner.graph.apply_delta(delta)?;
        // Mirror the delta into the undirected store (if built) as net
        // min-weight changes per unordered endpoint pair, *before*
        // swapping the new graph in — the old graph is still needed to
        // compute pre-delta undirected weights.
        let undirected_touched_pairs = match mirror.as_ref() {
            Some(m) => {
                let ud = undirected_delta(&inner.graph, &new_graph, delta);
                if ud.ops().is_empty() {
                    Vec::new()
                } else {
                    m.apply_delta(&ud)
                        .expect("derived undirected delta is valid by construction")
                        .touched_pairs
                }
            }
            None => Vec::new(),
        };
        let outcome = inner.tables.repair(&new_graph, &effects);
        inner.graph = new_graph;
        // Publish the version while still holding the write lock so
        // readers never observe new tables under an old version.
        let version = self.version.fetch_add(1, Ordering::AcqRel) + 1;
        Ok(DeltaReport {
            version,
            touched_pairs: outcome.touched_pairs,
            undirected_touched_pairs,
            stats: outcome.stats,
        })
    }

    fn undirected(&self) -> Option<crate::SharedSource> {
        if let Some(m) = self.mirror.read().expect("live store poisoned").as_ref() {
            return Some(Arc::clone(m) as crate::SharedSource);
        }
        let mut slot = self.mirror.write().expect("live store poisoned");
        if slot.is_none() {
            // Hold `inner` for reading across the whole closure build
            // (lock order mirror → inner): a delta cannot land between
            // snapshotting the graph and publishing the mirror.
            let inner = self.inner.read().expect("live store poisoned");
            *slot = Some(Arc::new(LiveStore::new(undirect(&inner.graph))));
        }
        slot.as_ref().map(|m| Arc::clone(m) as crate::SharedSource)
    }
}

/// The undirected projection of one directed delta: for every unordered
/// endpoint pair an op names, compare the pre- and post-delta undirected
/// weight (the min over both directions — the weight [`undirect`] gives
/// that pair) and emit the matching mutation for *both* mirror
/// directions. Deltas masked by the opposite direction (e.g. bumping
/// `u→v` while `v→u` is shorter) project to nothing.
fn undirected_delta(old: &LabeledGraph, new: &LabeledGraph, delta: &GraphDelta) -> GraphDelta {
    use ktpm_graph::GraphDeltaOp;
    let und_weight = |g: &LabeledGraph, u: NodeId, v: NodeId| -> Option<Dist> {
        match (g.edge_weight(u, v), g.edge_weight(v, u)) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    };
    let mut pairs: Vec<(NodeId, NodeId)> = delta
        .ops()
        .iter()
        .map(|op| match *op {
            GraphDeltaOp::SetWeight { from, to, .. }
            | GraphDeltaOp::InsertEdge { from, to, .. }
            | GraphDeltaOp::DeleteEdge { from, to } => (from.min(to), from.max(to)),
        })
        .collect();
    pairs.sort_unstable();
    pairs.dedup();
    let mut out = GraphDelta::new();
    for (u, v) in pairs {
        match (und_weight(old, u, v), und_weight(new, u, v)) {
            (None, Some(w)) => out = out.insert_edge(u, v, w).insert_edge(v, u, w),
            (Some(_), None) => out = out.delete_edge(u, v).delete_edge(v, u),
            (Some(a), Some(b)) if a != b => out = out.set_weight(u, v, b).set_weight(v, u, b),
            _ => {}
        }
    }
    out
}

struct LiveCursor {
    io: IoStats,
    entries: Vec<(NodeId, Dist)>,
    pos: usize,
    block_edges: usize,
}

impl EdgeCursor for LiveCursor {
    fn next_block(&mut self) -> Vec<(NodeId, Dist)> {
        if self.pos >= self.entries.len() {
            return Vec::new();
        }
        let take = (self.entries.len() - self.pos).min(self.block_edges);
        let out = self.entries[self.pos..self.pos + take].to_vec();
        self.pos += take;
        self.io.add_block((take * L_ENTRY_BYTES) as u64);
        self.io.add_edges(take as u64);
        out
    }

    fn remaining(&self) -> usize {
        self.entries.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStore;
    use ktpm_graph::fixtures::paper_graph;

    #[test]
    fn starts_at_version_zero_and_bumps_per_delta() {
        let g = paper_graph();
        let e = g.edges().next().unwrap();
        let s = LiveStore::new(g);
        assert_eq!(s.graph_version(), 0);
        let r1 = s
            .apply_delta(&GraphDelta::new().set_weight(e.from, e.to, 5))
            .unwrap();
        assert_eq!(r1.version, 1);
        assert_eq!(s.graph_version(), 1);
        let r2 = s
            .apply_delta(&GraphDelta::new().set_weight(e.from, e.to, 1))
            .unwrap();
        assert_eq!(r2.version, 2);
    }

    #[test]
    fn rejected_delta_leaves_state_untouched() {
        let g = paper_graph();
        let s = LiveStore::new(g);
        let err = s
            .apply_delta(&GraphDelta::new().delete_edge(NodeId(0), NodeId(12)))
            .unwrap_err();
        assert!(matches!(err, StorageError::DeltaRejected(_)));
        assert_eq!(s.graph_version(), 0);
    }

    #[test]
    fn reads_match_memstore_after_update() {
        let g = paper_graph();
        let e = g.edges().next().unwrap();
        let live = LiveStore::new(g.clone());
        live.apply_delta(&GraphDelta::new().set_weight(e.from, e.to, 3))
            .unwrap();
        let (g2, _) = g
            .apply_delta(&GraphDelta::new().set_weight(e.from, e.to, 3))
            .unwrap();
        let cold = MemStore::new(ClosureTables::compute(&g2));
        for (a, b) in cold.pair_keys() {
            assert_eq!(live.load_d(a, b), cold.load_d(a, b));
            assert_eq!(live.load_e(a, b), cold.load_e(a, b));
            let mut lp = live.load_pair(a, b);
            let mut cp = cold.load_pair(a, b);
            lp.sort_unstable();
            cp.sort_unstable();
            assert_eq!(lp, cp);
        }
        assert_eq!(live.pair_keys(), cold.pair_keys());
    }

    #[test]
    fn snapshot_backends_reject_updates() {
        let g = paper_graph();
        let e = g.edges().next().unwrap();
        let mem = MemStore::new(ClosureTables::compute(&g));
        let err = mem
            .apply_delta(&GraphDelta::new().set_weight(e.from, e.to, 2))
            .unwrap_err();
        assert!(matches!(err, StorageError::UpdatesUnsupported(_)));
        assert_eq!(mem.graph_version(), 0);
    }

    /// Every read surface of `live` must equal `cold`'s.
    fn assert_sources_equal(live: &dyn ClosureSource, cold: &dyn ClosureSource) {
        assert_eq!(live.pair_keys(), cold.pair_keys());
        for (a, b) in cold.pair_keys() {
            assert_eq!(live.load_d(a, b), cold.load_d(a, b));
            assert_eq!(live.load_e(a, b), cold.load_e(a, b));
            let mut lp = live.load_pair(a, b);
            let mut cp = cold.load_pair(a, b);
            lp.sort_unstable();
            cp.sort_unstable();
            assert_eq!(lp, cp);
        }
    }

    #[test]
    fn undirected_mirror_matches_cold_undirected_closure() {
        let g = paper_graph();
        let s = LiveStore::new(g.clone());
        let m = s.undirected().expect("live stores mirror");
        let cold = MemStore::new(ClosureTables::compute(&ktpm_graph::undirect(&g)));
        assert_sources_equal(m.as_ref(), &cold);
        // The mirror handle is cached, not rebuilt.
        let m2 = s.undirected().expect("mirror");
        assert!(std::sync::Arc::ptr_eq(&m, &m2));
    }

    #[test]
    fn deltas_keep_the_mirror_consistent_and_report_undirected_pairs() {
        let g = paper_graph();
        let e = g.edges().next().unwrap();
        let s = LiveStore::new(g.clone());
        // Before the mirror exists, reports carry no undirected pairs.
        let r = s
            .apply_delta(&GraphDelta::new().set_weight(e.from, e.to, 4))
            .unwrap();
        assert!(r.undirected_touched_pairs.is_empty());
        let m = s.undirected().expect("mirror");
        // A real weight change must flow through to the mirror...
        let r = s
            .apply_delta(&GraphDelta::new().set_weight(e.from, e.to, 2))
            .unwrap();
        assert!(
            !r.undirected_touched_pairs.is_empty(),
            "weight change must touch undirected tables"
        );
        // ...and the mirror must read exactly like a cold undirected
        // closure of the mutated graph.
        let (g2, _) = g
            .apply_delta(&GraphDelta::new().set_weight(e.from, e.to, 2))
            .unwrap();
        let cold = MemStore::new(ClosureTables::compute(&ktpm_graph::undirect(&g2)));
        assert_sources_equal(m.as_ref(), &cold);
    }

    #[test]
    fn masked_delta_projects_to_no_undirected_change() {
        // u -> v weight 5 and v -> u weight 1: bumping the heavy
        // direction leaves the undirected min weight (1) intact.
        let mut b = ktpm_graph::GraphBuilder::new();
        let u = b.add_node("a");
        let v = b.add_node("b");
        b.add_edge(u, v, 5);
        b.add_edge(v, u, 1);
        let g = b.build().unwrap();
        let s = LiveStore::new(g);
        let m = s.undirected().expect("mirror");
        let v0 = m.graph_version();
        let r = s
            .apply_delta(&GraphDelta::new().set_weight(u, v, 7))
            .unwrap();
        assert!(r.undirected_touched_pairs.is_empty(), "masked: no change");
        assert_eq!(m.graph_version(), v0, "mirror untouched by masked delta");
        assert_eq!(m.lookup_dist(u, v), Some(1));
    }

    #[test]
    fn open_cursor_survives_concurrent_update() {
        let g = paper_graph();
        let a = g.interner().get("a").unwrap();
        let e = g.edges().next().unwrap();
        let s = LiveStore::new(g).with_block_edges(1);
        let mut cur = s.incoming_cursor(a, NodeId(4));
        let first = cur.next_block();
        s.apply_delta(&GraphDelta::new().set_weight(e.from, e.to, 9))
            .unwrap();
        // The cursor keeps streaming its opening-time snapshot.
        let rest = cur.next_block();
        assert_eq!(first.len() + rest.len() + cur.remaining(), 2);
    }
}
