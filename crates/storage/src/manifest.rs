//! The v4 `MANIFEST` of a sharded snapshot: which shard file owns each
//! label pair, plus enough header material (labels, block capacity,
//! per-file content hashes) that a reader can answer metadata queries
//! and verify shard files without opening any of them. See the
//! `format` module docs for the byte layout.

use crate::format::{crc32, get_u32, get_u64, put_u32, put_u64, MAGIC_V4};
use crate::source::StorageError;
use ktpm_graph::{LabelId, NodeId};
use std::collections::BTreeMap;

/// One shard file as recorded in the manifest, in file-id order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardFileMeta {
    /// File name (no directory components); resolved relative to the
    /// manifest's parent directory.
    pub name: String,
    /// Expected byte length of the shard file.
    pub file_len: u64,
    /// CRC-32 over the whole shard file, sealed at write time.
    pub content_crc: u32,
}

/// Decoded v4 manifest: the routing and integrity metadata of a
/// sharded snapshot ([`crate::write_store_sharded`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// On-disk block capacity (in `L` entries) shared by every shard
    /// file.
    pub block_entries: u32,
    /// Number of distinct labels (v3 header parity).
    pub num_labels: u32,
    /// Per-node labels of the underlying data graph, indexed by node id.
    pub labels: Vec<LabelId>,
    /// The shard files, indexed by file id.
    pub shards: Vec<ShardFileMeta>,
    /// Label pair → owning file id, ascending `(a, b)`.
    pub routing: BTreeMap<(LabelId, LabelId), u32>,
}

impl Manifest {
    /// Number of nodes of the underlying data graph.
    pub fn num_nodes(&self) -> usize {
        self.labels.len()
    }

    /// The label of a data node (panics on out-of-range ids, exactly
    /// like the in-memory backends).
    pub fn node_label(&self, v: NodeId) -> LabelId {
        self.labels[v.0 as usize]
    }

    /// The file id owning `(a, b)`, or `None` when the pair is empty.
    pub fn shard_of(&self, a: LabelId, b: LabelId) -> Option<u32> {
        self.routing.get(&(a, b)).copied()
    }

    /// All non-empty label pairs, ascending.
    pub fn pair_keys(&self) -> Vec<(LabelId, LabelId)> {
        self.routing.keys().copied().collect()
    }

    /// Serializes to the on-disk v4 layout, trailing CRC included.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC_V4);
        put_u32(&mut buf, self.shards.len() as u32);
        put_u32(&mut buf, self.block_entries);
        put_u32(&mut buf, self.labels.len() as u32);
        put_u32(&mut buf, self.num_labels);
        for &l in &self.labels {
            put_u32(&mut buf, l.0);
        }
        for s in &self.shards {
            put_u32(&mut buf, s.name.len() as u32);
            buf.extend_from_slice(s.name.as_bytes());
            put_u64(&mut buf, s.file_len);
            put_u32(&mut buf, s.content_crc);
        }
        put_u32(&mut buf, self.routing.len() as u32);
        for (&(a, b), &shard) in &self.routing {
            put_u32(&mut buf, a.0);
            put_u32(&mut buf, b.0);
            put_u32(&mut buf, shard);
        }
        let sum = crc32(&buf[MAGIC_V4.len()..]);
        put_u32(&mut buf, sum);
        buf
    }

    /// Parses and validates a v4 manifest. Any truncation, bit flip,
    /// or inconsistency (CRC mismatch, routing to a nonexistent shard,
    /// non-UTF-8 file name) is an error — never a panic.
    pub fn decode(bytes: &[u8]) -> Result<Manifest, StorageError> {
        if bytes.len() < MAGIC_V4.len() || &bytes[..MAGIC_V4.len()] != MAGIC_V4 {
            return Err(StorageError::BadFormat(
                "not a sharded-snapshot MANIFEST (bad magic)".into(),
            ));
        }
        // Verify the trailing CRC before trusting any field.
        if bytes.len() < MAGIC_V4.len() + 4 {
            return Err(StorageError::Corrupt {
                offset: bytes.len() as u64,
                needed: MAGIC_V4.len() + 4 - bytes.len(),
            });
        }
        let body = &bytes[MAGIC_V4.len()..bytes.len() - 4];
        let mut tail = bytes.len() - 4;
        let stored = get_u32(bytes, &mut tail).expect("4 bytes checked above");
        if crc32(body) != stored {
            return Err(StorageError::BadFormat(
                "MANIFEST checksum mismatch (truncated or damaged manifest)".into(),
            ));
        }
        let mut pos = MAGIC_V4.len();
        let shard_count = get_u32(bytes, &mut pos)?;
        let block_entries = get_u32(bytes, &mut pos)?;
        let num_nodes = get_u32(bytes, &mut pos)?;
        let num_labels = get_u32(bytes, &mut pos)?;
        if block_entries == 0 {
            return Err(StorageError::BadFormat(
                "MANIFEST block capacity must be at least 1 entry".into(),
            ));
        }
        let mut labels = Vec::with_capacity(num_nodes as usize);
        for _ in 0..num_nodes {
            labels.push(LabelId(get_u32(bytes, &mut pos)?));
        }
        let mut shards = Vec::with_capacity(shard_count as usize);
        for _ in 0..shard_count {
            let name_len = get_u32(bytes, &mut pos)? as usize;
            let name_bytes =
                bytes
                    .get(pos..)
                    .and_then(|b| b.get(..name_len))
                    .ok_or(StorageError::Corrupt {
                        offset: pos as u64,
                        needed: name_len,
                    })?;
            let name = std::str::from_utf8(name_bytes)
                .map_err(|_| {
                    StorageError::BadFormat("MANIFEST shard file name is not UTF-8".into())
                })?
                .to_owned();
            pos += name_len;
            let file_len = get_u64(bytes, &mut pos)?;
            let content_crc = get_u32(bytes, &mut pos)?;
            shards.push(ShardFileMeta {
                name,
                file_len,
                content_crc,
            });
        }
        let pair_count = get_u32(bytes, &mut pos)?;
        let mut routing = BTreeMap::new();
        for _ in 0..pair_count {
            let a = LabelId(get_u32(bytes, &mut pos)?);
            let b = LabelId(get_u32(bytes, &mut pos)?);
            let shard = get_u32(bytes, &mut pos)?;
            if shard >= shard_count {
                return Err(StorageError::BadFormat(format!(
                    "MANIFEST routes pair ({}, {}) to shard {shard} of {shard_count}",
                    a.0, b.0
                )));
            }
            routing.insert((a, b), shard);
        }
        Ok(Manifest {
            block_entries,
            num_labels,
            labels,
            shards,
            routing,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        let mut routing = BTreeMap::new();
        routing.insert((LabelId(0), LabelId(1)), 0);
        routing.insert((LabelId(1), LabelId(0)), 1);
        routing.insert((LabelId(1), LabelId(2)), 0);
        Manifest {
            block_entries: 64,
            num_labels: 3,
            labels: vec![LabelId(0), LabelId(1), LabelId(2), LabelId(1)],
            shards: vec![
                ShardFileMeta {
                    name: "shard-0000.tc".into(),
                    file_len: 1234,
                    content_crc: 0xDEAD_BEEF,
                },
                ShardFileMeta {
                    name: "shard-0001.tc".into(),
                    file_len: 999,
                    content_crc: 7,
                },
            ],
            routing,
        }
    }

    #[test]
    fn roundtrip() {
        let m = sample();
        let decoded = Manifest::decode(&m.encode()).unwrap();
        assert_eq!(decoded, m);
        assert_eq!(decoded.num_nodes(), 4);
        assert_eq!(decoded.node_label(NodeId(3)), LabelId(1));
        assert_eq!(decoded.shard_of(LabelId(1), LabelId(0)), Some(1));
        assert_eq!(decoded.shard_of(LabelId(2), LabelId(2)), None);
        assert_eq!(decoded.pair_keys().len(), 3);
    }

    #[test]
    fn truncation_at_every_byte_errors_cleanly() {
        let bytes = sample().encode();
        for len in 0..bytes.len() {
            assert!(
                Manifest::decode(&bytes[..len]).is_err(),
                "truncation at byte {len} must not decode"
            );
        }
        assert!(Manifest::decode(&bytes).is_ok());
    }

    #[test]
    fn bit_flips_are_detected() {
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                Manifest::decode(&bad).is_err(),
                "bit flip at byte {i} must not decode"
            );
        }
    }

    #[test]
    fn routing_to_missing_shard_is_rejected() {
        let mut m = sample();
        m.routing.insert((LabelId(2), LabelId(2)), 9);
        let err = Manifest::decode(&m.encode()).unwrap_err();
        assert!(matches!(err, StorageError::BadFormat(_)), "{err}");
    }

    #[test]
    fn wrong_magic_is_a_pointed_error() {
        let err = Manifest::decode(b"KTPMCLO3rest").unwrap_err();
        assert!(err.to_string().contains("MANIFEST"), "{err}");
    }
}
