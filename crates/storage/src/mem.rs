//! The in-memory [`ClosureSource`] used for tests and CPU-only benches.
//!
//! Wraps a [`ClosureTables`] and *logically* counts the same I/O a
//! [`crate::FileStore`] would perform, so algorithm comparisons that
//! report "edges loaded" work identically on both backends.

use crate::format::{DEFAULT_BLOCK_EDGES, L_ENTRY_BYTES};
use crate::iostats::{IoSnapshot, IoStats};
use crate::source::{ClosureSource, EdgeCursor};
use ktpm_closure::ClosureTables;
use ktpm_graph::{undirect, Dist, LabelId, LabeledGraph, NodeId};
use std::sync::OnceLock;

/// An in-memory closure store.
pub struct MemStore {
    tables: ClosureTables,
    /// The data graph, when attached ([`MemStore::with_graph`]) —
    /// enables the lazily-built undirected mirror for graph patterns.
    graph: Option<LabeledGraph>,
    mirror: OnceLock<crate::SharedSource>,
    io: IoStats,
    block_edges: usize,
}

impl MemStore {
    /// Wraps already-computed closure tables.
    pub fn new(tables: ClosureTables) -> Self {
        Self::with_block_edges(tables, DEFAULT_BLOCK_EDGES)
    }

    /// Wraps with an explicit cursor block size (in `L` entries).
    pub fn with_block_edges(tables: ClosureTables, block_edges: usize) -> Self {
        MemStore {
            tables,
            graph: None,
            mirror: OnceLock::new(),
            io: IoStats::new(),
            block_edges: block_edges.max(1),
        }
    }

    /// Attaches the data graph, enabling [`ClosureSource::undirected`]
    /// (graph patterns need the bidirectional closure, which only the
    /// graph — not its directed closure — can produce). Returns `self`.
    pub fn with_graph(mut self, graph: LabeledGraph) -> Self {
        self.graph = Some(graph);
        self
    }

    /// The wrapped tables.
    pub fn tables(&self) -> &ClosureTables {
        &self.tables
    }

    /// Wraps the store in a [`crate::SharedSource`] for concurrent use.
    pub fn into_shared(self) -> crate::SharedSource {
        std::sync::Arc::new(self)
    }
}

impl ClosureSource for MemStore {
    fn num_nodes(&self) -> usize {
        self.tables.num_nodes()
    }

    fn node_label(&self, v: NodeId) -> LabelId {
        self.tables.label(v)
    }

    fn pair_keys(&self) -> Vec<(LabelId, LabelId)> {
        let mut keys: Vec<_> = self.tables.iter_pairs().map(|(k, _)| k).collect();
        keys.sort_unstable();
        keys
    }

    fn load_d(&self, a: LabelId, b: LabelId) -> Vec<(NodeId, Dist)> {
        let Some(t) = self.tables.pair(a, b) else {
            return Vec::new();
        };
        let out: Vec<(NodeId, Dist)> = t
            .dst_nodes()
            .iter()
            .map(|&v| (v, t.min_incoming_dist(v).expect("non-empty group")))
            .collect();
        self.io.add_block((out.len() * 8 + 4) as u64);
        self.io.add_d_entries(out.len() as u64);
        out
    }

    fn load_e(&self, a: LabelId, b: LabelId) -> Vec<(NodeId, NodeId, Dist)> {
        let Some(t) = self.tables.pair(a, b) else {
            return Vec::new();
        };
        let out = t.min_out().to_vec();
        self.io.add_block((out.len() * 12 + 4) as u64);
        self.io.add_e_entries(out.len() as u64);
        out
    }

    fn load_pair(&self, a: LabelId, b: LabelId) -> Vec<(NodeId, NodeId, Dist)> {
        let Some(t) = self.tables.pair(a, b) else {
            return Vec::new();
        };
        let out: Vec<_> = t.iter_edges().collect();
        self.io.add_block((out.len() * L_ENTRY_BYTES) as u64);
        self.io.add_edges(out.len() as u64);
        out
    }

    fn incoming_cursor(&self, a: LabelId, v: NodeId) -> Box<dyn EdgeCursor + Send> {
        let entries = self
            .tables
            .pair(a, self.node_label(v))
            .map(|t| t.incoming(v).to_vec())
            .unwrap_or_default();
        Box::new(MemCursor {
            io: self.io.clone(),
            entries,
            pos: 0,
            block_edges: self.block_edges,
        })
    }

    fn lookup_dist(&self, u: NodeId, v: NodeId) -> Option<Dist> {
        self.tables.dist(u, v)
    }

    fn io(&self) -> IoSnapshot {
        self.io.snapshot()
    }

    fn reset_io(&self) {
        self.io.reset();
    }

    fn undirected(&self) -> Option<crate::SharedSource> {
        let g = self.graph.as_ref()?;
        Some(std::sync::Arc::clone(self.mirror.get_or_init(|| {
            MemStore::new(ClosureTables::compute(&undirect(g))).into_shared()
        })))
    }
}

struct MemCursor {
    io: IoStats,
    entries: Vec<(NodeId, Dist)>,
    pos: usize,
    block_edges: usize,
}

impl EdgeCursor for MemCursor {
    fn next_block(&mut self) -> Vec<(NodeId, Dist)> {
        if self.pos >= self.entries.len() {
            return Vec::new();
        }
        let take = (self.entries.len() - self.pos).min(self.block_edges);
        let out = self.entries[self.pos..self.pos + take].to_vec();
        self.pos += take;
        self.io.add_block((take * L_ENTRY_BYTES) as u64);
        self.io.add_edges(take as u64);
        out
    }

    fn remaining(&self) -> usize {
        self.entries.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ktpm_graph::fixtures::paper_graph;

    fn store() -> MemStore {
        MemStore::with_block_edges(ClosureTables::compute(&paper_graph()), 1)
    }

    #[test]
    fn cursor_yields_blocks_in_distance_order() {
        let g = paper_graph();
        let s = store();
        let a = g.interner().get("a").unwrap();
        let mut cur = s.incoming_cursor(a, NodeId(4)); // v5
        assert_eq!(cur.remaining(), 2);
        assert_eq!(cur.next_block(), vec![(NodeId(0), 1)]);
        assert_eq!(cur.next_block(), vec![(NodeId(1), 2)]);
        assert!(cur.next_block().is_empty());
        assert!(cur.is_exhausted());
    }

    #[test]
    fn io_counters_track_cursor_reads() {
        let g = paper_graph();
        let s = store();
        let a = g.interner().get("a").unwrap();
        let mut cur = s.incoming_cursor(a, NodeId(4));
        cur.next_block();
        drop(cur);
        let io = s.io();
        assert_eq!(io.edges_read, 1);
        assert_eq!(io.block_reads, 1);
        s.reset_io();
        assert_eq!(s.io().edges_read, 0);
    }

    #[test]
    fn missing_pair_is_empty() {
        let g = paper_graph();
        let s = store();
        let sl = g.interner().get("s").unwrap();
        let a = g.interner().get("a").unwrap();
        // Nothing flows from s back to a.
        assert!(s.load_d(sl, a).is_empty());
        assert!(s.load_pair(sl, a).is_empty());
        let mut cur = s.incoming_cursor(sl, NodeId(0));
        assert!(cur.next_block().is_empty());
    }

    #[test]
    fn lookup_dist_delegates() {
        let s = store();
        assert_eq!(s.lookup_dist(NodeId(1), NodeId(4)), Some(2)); // δ(v2,v5)=2
        assert_eq!(s.lookup_dist(NodeId(4), NodeId(1)), None);
    }
}
