//! Serializes a [`ClosureTables`] into the on-disk store format —
//! single-file v1/v2/v3 snapshots and sharded multi-file v3 snapshots
//! with a v4 `MANIFEST` ([`write_store_sharded`]).

use crate::format::*;
use crate::manifest::{Manifest, ShardFileMeta};
use crate::shard::ShardSpec;
use crate::source::StorageError;
use ktpm_closure::ClosureTables;
use ktpm_graph::{LabelId, NodeId};
use std::io::{BufWriter, Write};
use std::path::Path;

/// Writes the closure store file for `tables` at `path`, in the current
/// format version (v3: paged group blocks, CRC-32 per block, default
/// block capacity `DEFAULT_BLOCK_EDGES` (64) entries; see the `format`
/// module docs). Use [`write_store_versioned`] to emit the older v1/v2
/// layouts, or [`write_store_v3`] to choose the block capacity.
///
/// Pairs are written in sorted key order so the output is deterministic.
pub fn write_store(tables: &ClosureTables, path: &Path) -> Result<(), StorageError> {
    write_store_versioned(tables, path, FormatVersion::V3)
}

/// As [`write_store`] with an explicit [`FormatVersion`] — `V1` emits
/// the checksum-free legacy layout, `V2` the packed per-section-CRC
/// layout (both used to exercise the readers' old-version paths and to
/// produce files for older consumers).
pub fn write_store_versioned(
    tables: &ClosureTables,
    path: &Path,
    version: FormatVersion,
) -> Result<(), StorageError> {
    let block_entries = match version {
        FormatVersion::V3 => Some(DEFAULT_BLOCK_EDGES),
        _ => None,
    };
    write_store_inner(tables, path, version, block_entries, None)
}

/// Writes a v3 store with an explicit on-disk block capacity (in `L`
/// entries per block). Small capacities force multi-block groups and
/// cache churn — useful in tests; `DEFAULT_BLOCK_EDGES` (64) is the
/// production default. `block_entries == 0` is
/// [`StorageError::InvalidConfig`].
pub fn write_store_v3(
    tables: &ClosureTables,
    path: &Path,
    block_entries: usize,
) -> Result<(), StorageError> {
    if block_entries == 0 {
        return Err(StorageError::InvalidConfig(
            "v3 block capacity must be at least 1 entry".into(),
        ));
    }
    write_store_inner(tables, path, FormatVersion::V3, Some(block_entries), None)
}

/// Writes a sharded snapshot: one v3 shard file per partition of
/// `spec`'s split (so `spec.of()` files — any member of the split
/// names the same layout) plus a CRC'd v4 `MANIFEST` in `dir`, all
/// sharing the block capacity `block_entries`. Label pairs are routed
/// round-robin over their sorted order, so shards stay balanced and
/// the layout is deterministic; the manifest records the explicit
/// pair → file routing, so readers never depend on the rule.
///
/// `dir` is created if missing. Open the snapshot via
/// [`crate::open_store_auto`] on `dir/MANIFEST` (or on `dir` itself).
/// Returns the manifest that was written.
pub fn write_store_sharded(
    tables: &ClosureTables,
    dir: &Path,
    spec: &ShardSpec,
    block_entries: usize,
) -> Result<Manifest, StorageError> {
    if block_entries == 0 {
        return Err(StorageError::InvalidConfig(
            "v3 block capacity must be at least 1 entry".into(),
        ));
    }
    let shard_count = spec.of();
    std::fs::create_dir_all(dir)?;

    let mut keys: Vec<_> = tables.iter_pairs().map(|(k, _)| k).collect();
    keys.sort_unstable();
    let mut routing = std::collections::BTreeMap::new();
    let mut owned: Vec<Vec<(LabelId, LabelId)>> = vec![Vec::new(); shard_count as usize];
    for (i, &key) in keys.iter().enumerate() {
        let shard = (i % shard_count as usize) as u32;
        routing.insert(key, shard);
        owned[shard as usize].push(key);
    }

    let mut shards = Vec::with_capacity(shard_count as usize);
    for (shard, keys) in owned.iter().enumerate() {
        let name = format!("shard-{shard:04}.tc");
        let path = dir.join(&name);
        write_store_inner(
            tables,
            &path,
            FormatVersion::V3,
            Some(block_entries),
            Some(keys),
        )?;
        // Seal the exact bytes just written: length + whole-file CRC.
        let bytes = std::fs::read(&path)?;
        shards.push(ShardFileMeta {
            name,
            file_len: bytes.len() as u64,
            content_crc: crc32(&bytes),
        });
    }

    let n = tables.num_nodes();
    let labels: Vec<LabelId> = (0..n).map(|i| tables.label(NodeId(i as u32))).collect();
    let num_labels = labels.iter().map(|l| l.0 + 1).max().unwrap_or(0);
    let manifest = Manifest {
        block_entries: block_entries as u32,
        num_labels,
        labels,
        shards,
        routing,
    };
    std::fs::write(dir.join("MANIFEST"), manifest.encode())?;
    Ok(manifest)
}

fn write_store_inner(
    tables: &ClosureTables,
    path: &Path,
    version: FormatVersion,
    block_entries: Option<usize>,
    // When set, emit only this subset of label pairs (a shard file);
    // `None` emits every pair in sorted order.
    only_pairs: Option<&[(LabelId, LabelId)]>,
) -> Result<(), StorageError> {
    let crc = version.has_crc();
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    let mut offset: u64 = 0;
    let emit = |w: &mut BufWriter<std::fs::File>, buf: &[u8], offset: &mut u64| {
        w.write_all(buf).map(|()| *offset += buf.len() as u64)
    };
    /// Appends the CRC-32 of everything in `buf` past `from`.
    fn seal(buf: &mut Vec<u8>, from: usize) {
        let sum = crc32(&buf[from..]);
        put_u32(buf, sum);
    }

    // Header: magic, counts [, v3 block capacity], labels
    // [, crc over everything past the magic].
    let mut buf = Vec::new();
    buf.extend_from_slice(version.magic());
    let n = tables.num_nodes();
    let num_labels = (0..n)
        .map(|i| tables.label(NodeId(i as u32)).0 + 1)
        .max()
        .unwrap_or(0);
    put_u32(&mut buf, n as u32);
    put_u32(&mut buf, num_labels);
    if let Some(be) = block_entries {
        put_u32(&mut buf, be as u32);
    }
    for i in 0..n {
        put_u32(&mut buf, tables.label(NodeId(i as u32)).0);
    }
    if crc {
        seal(&mut buf, 8);
    }
    emit(&mut w, &buf, &mut offset)?;

    let mut keys: Vec<_> = match only_pairs {
        Some(subset) => subset.to_vec(),
        None => tables.iter_pairs().map(|(k, _)| k).collect(),
    };
    keys.sort_unstable();

    // Per-pair sections.
    let mut index_entries: Vec<(u32, u32, u64, u64, u64)> = Vec::with_capacity(keys.len());
    for &(a, b) in &keys {
        let table = tables.pair(a, b).expect("key from iter_pairs");
        let d_off = offset;
        let mut buf = Vec::new();
        // D section: min incoming distance per destination node.
        put_u32(&mut buf, table.dst_nodes().len() as u32);
        for &v in table.dst_nodes() {
            put_u32(&mut buf, v.0);
            put_u32(
                &mut buf,
                table.min_incoming_dist(v).expect("non-empty group"),
            );
        }
        if crc {
            seal(&mut buf, 0);
        }
        emit(&mut w, &buf, &mut offset)?;

        // E section.
        let e_off = offset;
        let mut buf = Vec::new();
        put_u32(&mut buf, table.min_out().len() as u32);
        for &(s, d, dist) in table.min_out() {
            put_u32(&mut buf, s.0);
            put_u32(&mut buf, d.0);
            put_u32(&mut buf, dist);
        }
        if crc {
            seal(&mut buf, 0);
        }
        emit(&mut w, &buf, &mut offset)?;

        // L directory + groups. Directory entries carry absolute offsets
        // (a group's first byte — in v3, its first block), so compute
        // the groups' base first (past the directory and, with
        // checksums, its trailing CRC).
        let dir_off = offset;
        let dir_bytes = 4 + table.dst_nodes().len() * (4 + 8 + 4) + if crc { 4 } else { 0 };
        let mut groups_base = dir_off + dir_bytes as u64;
        let mut buf = Vec::new();
        put_u32(&mut buf, table.dst_nodes().len() as u32);
        for &v in table.dst_nodes() {
            let len = table.incoming(v).len();
            put_u32(&mut buf, v.0);
            put_u64(&mut buf, groups_base);
            put_u32(&mut buf, len as u32);
            groups_base += match block_entries {
                // v3: every group starts on a fresh block boundary and
                // occupies whole (padded, individually sealed) blocks.
                Some(be) => (v3_group_blocks(len, be) * v3_block_bytes(be)) as u64,
                None => (len * L_ENTRY_BYTES) as u64,
            };
        }
        if crc {
            seal(&mut buf, 0);
        }
        match block_entries {
            Some(be) => {
                // v3 blocks: fixed payload (zero-padded tail) + CRC each.
                for &v in table.dst_nodes() {
                    let group = table.incoming(v);
                    for chunk in group.chunks(be) {
                        let from = buf.len();
                        for &(s, dist) in chunk {
                            put_u32(&mut buf, s.0);
                            put_u32(&mut buf, dist);
                        }
                        buf.resize(from + be * L_ENTRY_BYTES, 0);
                        seal(&mut buf, from);
                    }
                }
            }
            None => {
                let groups_from = buf.len();
                for &v in table.dst_nodes() {
                    for &(s, dist) in table.incoming(v) {
                        put_u32(&mut buf, s.0);
                        put_u32(&mut buf, dist);
                    }
                }
                if crc {
                    // One checksum over the pair's whole group region,
                    // verified on whole-pair loads (v2 cursors stream
                    // and stay unchecked).
                    seal(&mut buf, groups_from);
                }
            }
        }
        emit(&mut w, &buf, &mut offset)?;
        index_entries.push((a.0, b.0, d_off, e_off, dir_off));
    }

    // Index + footer.
    let index_off = offset;
    let mut buf = Vec::new();
    put_u32(&mut buf, index_entries.len() as u32);
    for (a, b, d, e, dir) in index_entries {
        put_u32(&mut buf, a);
        put_u32(&mut buf, b);
        put_u64(&mut buf, d);
        put_u64(&mut buf, e);
        put_u64(&mut buf, dir);
    }
    if crc {
        seal(&mut buf, 0);
    }
    put_u64(&mut buf, index_off);
    buf.extend_from_slice(version.magic());
    emit(&mut w, &buf, &mut offset)?;
    w.flush()?;
    Ok(())
}
