//! Serializes a [`ClosureTables`] into the on-disk store format.

use crate::format::*;
use crate::source::StorageError;
use ktpm_closure::ClosureTables;
use ktpm_graph::NodeId;
use std::io::{BufWriter, Write};
use std::path::Path;

/// Writes the closure store file for `tables` at `path`, in the current
/// format version (per-section CRC-32 checksums; see the `format`
/// module docs).
///
/// Pairs are written in sorted key order so the output is deterministic.
pub fn write_store(tables: &ClosureTables, path: &Path) -> Result<(), StorageError> {
    write_store_versioned(tables, path, FormatVersion::V2)
}

/// As [`write_store`] with an explicit [`FormatVersion`] — `V1` emits
/// the checksum-free legacy layout (used to exercise the reader's
/// old-version path and to produce files for pre-checksum consumers).
pub fn write_store_versioned(
    tables: &ClosureTables,
    path: &Path,
    version: FormatVersion,
) -> Result<(), StorageError> {
    let crc = version.has_crc();
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    let mut offset: u64 = 0;
    let emit = |w: &mut BufWriter<std::fs::File>, buf: &[u8], offset: &mut u64| {
        w.write_all(buf).map(|()| *offset += buf.len() as u64)
    };
    /// Appends the CRC-32 of everything in `buf` past `from`.
    fn seal(buf: &mut Vec<u8>, from: usize) {
        let sum = crc32(&buf[from..]);
        put_u32(buf, sum);
    }

    // Header: magic, counts, labels [, crc over counts + labels].
    let mut buf = Vec::new();
    buf.extend_from_slice(version.magic());
    let n = tables.num_nodes();
    let num_labels = (0..n)
        .map(|i| tables.label(NodeId(i as u32)).0 + 1)
        .max()
        .unwrap_or(0);
    put_u32(&mut buf, n as u32);
    put_u32(&mut buf, num_labels);
    for i in 0..n {
        put_u32(&mut buf, tables.label(NodeId(i as u32)).0);
    }
    if crc {
        seal(&mut buf, 8);
    }
    emit(&mut w, &buf, &mut offset)?;

    let mut keys: Vec<_> = tables.iter_pairs().map(|(k, _)| k).collect();
    keys.sort_unstable();

    // Per-pair sections.
    let mut index_entries: Vec<(u32, u32, u64, u64, u64)> = Vec::with_capacity(keys.len());
    for &(a, b) in &keys {
        let table = tables.pair(a, b).expect("key from iter_pairs");
        let d_off = offset;
        let mut buf = Vec::new();
        // D section: min incoming distance per destination node.
        put_u32(&mut buf, table.dst_nodes().len() as u32);
        for &v in table.dst_nodes() {
            put_u32(&mut buf, v.0);
            put_u32(
                &mut buf,
                table.min_incoming_dist(v).expect("non-empty group"),
            );
        }
        if crc {
            seal(&mut buf, 0);
        }
        emit(&mut w, &buf, &mut offset)?;

        // E section.
        let e_off = offset;
        let mut buf = Vec::new();
        put_u32(&mut buf, table.min_out().len() as u32);
        for &(s, d, dist) in table.min_out() {
            put_u32(&mut buf, s.0);
            put_u32(&mut buf, d.0);
            put_u32(&mut buf, dist);
        }
        if crc {
            seal(&mut buf, 0);
        }
        emit(&mut w, &buf, &mut offset)?;

        // L directory + groups. Directory entries carry absolute offsets,
        // so compute the groups' base first (past the directory and, in
        // v2, its trailing checksum).
        let dir_off = offset;
        let dir_bytes = 4 + table.dst_nodes().len() * (4 + 8 + 4) + if crc { 4 } else { 0 };
        let mut groups_base = dir_off + dir_bytes as u64;
        let mut buf = Vec::new();
        put_u32(&mut buf, table.dst_nodes().len() as u32);
        for &v in table.dst_nodes() {
            let len = table.incoming(v).len();
            put_u32(&mut buf, v.0);
            put_u64(&mut buf, groups_base);
            put_u32(&mut buf, len as u32);
            groups_base += (len * L_ENTRY_BYTES) as u64;
        }
        if crc {
            seal(&mut buf, 0);
        }
        let groups_from = buf.len();
        for &v in table.dst_nodes() {
            for &(s, dist) in table.incoming(v) {
                put_u32(&mut buf, s.0);
                put_u32(&mut buf, dist);
            }
        }
        if crc {
            // One checksum over the pair's whole group region, verified
            // on whole-pair loads (cursors stream and stay unchecked).
            seal(&mut buf, groups_from);
        }
        emit(&mut w, &buf, &mut offset)?;
        index_entries.push((a.0, b.0, d_off, e_off, dir_off));
    }

    // Index + footer.
    let index_off = offset;
    let mut buf = Vec::new();
    put_u32(&mut buf, index_entries.len() as u32);
    for (a, b, d, e, dir) in index_entries {
        put_u32(&mut buf, a);
        put_u32(&mut buf, b);
        put_u64(&mut buf, d);
        put_u64(&mut buf, e);
        put_u64(&mut buf, dir);
    }
    if crc {
        seal(&mut buf, 0);
    }
    put_u64(&mut buf, index_off);
    buf.extend_from_slice(version.magic());
    emit(&mut w, &buf, &mut offset)?;
    w.flush()?;
    Ok(())
}
