//! Binary layout of the closure store file.
//!
//! ```text
//! magic "KTPMCLO1"
//! u32 num_nodes, u32 num_labels
//! labels: num_nodes * u32
//! per pair (in index order):
//!   D section:    u32 count, count * (u32 node, u32 dist)
//!   E section:    u32 count, count * (u32 src, u32 dst, u32 dist)
//!   L directory:  u32 group_count, group_count * (u32 dst, u64 abs_off, u32 len)
//!   L groups:     per group: len * (u32 src, u32 dist), ascending dist
//! index: u32 num_pairs, num_pairs * (u32 a, u32 b, u64 d_off, u64 e_off, u64 dir_off)
//! footer: u64 index_offset, magic "KTPMCLO1"
//! ```
//!
//! All integers little-endian. The `L` layout mirrors §4.1: incoming
//! edges of each node, grouped exclusively per (source label, node),
//! sorted by distance, addressable without scanning the table.

pub const MAGIC: &[u8; 8] = b"KTPMCLO1";
pub const FOOTER_LEN: u64 = 8 + 8;

/// Size of one `L` entry on disk: `(u32 src, u32 dist)`.
pub const L_ENTRY_BYTES: usize = 8;

/// Default cursor block size in `L` entries (512 bytes per block).
pub const DEFAULT_BLOCK_EDGES: usize = 64;

pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn get_u32(buf: &[u8], pos: &mut usize) -> u32 {
    let v = u32::from_le_bytes(buf[*pos..*pos + 4].try_into().expect("u32"));
    *pos += 4;
    v
}

pub fn get_u64(buf: &[u8], pos: &mut usize) -> u64 {
    let v = u64::from_le_bytes(buf[*pos..*pos + 8].try_into().expect("u64"));
    *pos += 8;
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_roundtrip() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u32(&mut buf, 7);
        let mut pos = 0;
        assert_eq!(get_u32(&buf, &mut pos), 0xDEAD_BEEF);
        assert_eq!(get_u32(&buf, &mut pos), 7);
        assert_eq!(pos, 8);
    }

    #[test]
    fn u64_roundtrip() {
        let mut buf = Vec::new();
        put_u64(&mut buf, u64::MAX - 3);
        let mut pos = 0;
        assert_eq!(get_u64(&buf, &mut pos), u64::MAX - 3);
    }
}
