//! Binary layout of the closure store file.
//!
//! ```text
//! magic "KTPMCLO2"
//! u32 num_nodes, u32 num_labels
//! labels: num_nodes * u32
//! u32 crc32 over [num_nodes .. labels]                  (v2 only)
//! per pair (in index order):
//!   D section:    u32 count, count * (u32 node, u32 dist), u32 crc32†
//!   E section:    u32 count, count * (u32 src, u32 dst, u32 dist), u32 crc32†
//!   L directory:  u32 group_count, group_count * (u32 dst, u64 abs_off, u32 len), u32 crc32†
//!   L groups:     per group: len * (u32 src, u32 dist), ascending dist,
//!                 then u32 crc32 over all of the pair's groups†
//! index: u32 num_pairs, num_pairs * (u32 a, u32 b, u64 d_off, u64 e_off, u64 dir_off), u32 crc32†
//! footer: u64 index_offset, magic "KTPMCLO2"
//! ```
//!
//! († = format versions 2 and 3.)
//!
//! All integers little-endian. The `L` layout mirrors §4.1: incoming
//! edges of each node, grouped exclusively per (source label, node),
//! sorted by distance, addressable without scanning the table.
//!
//! ## Version 3: paged group blocks
//!
//! Version 3 (magic `KTPMCLO3`, read by [`crate::PagedStore`]) keeps
//! the v2 header/D/E/directory/index shape but re-lays the `L` group
//! regions as fixed-size, individually checksummed blocks:
//!
//! ```text
//! magic "KTPMCLO3"
//! u32 num_nodes, u32 num_labels, u32 block_entries
//! labels: num_nodes * u32
//! u32 crc32 over [num_nodes .. labels]
//! per pair (in index order):
//!   D / E / L directory: exactly as v2 (directory offsets point at a
//!                        group's FIRST block)
//!   L blocks:     per group: ceil(len / block_entries) blocks; each
//!                 block = block_entries * 8 payload bytes (the final
//!                 block zero-padded) + u32 crc32 over the full padded
//!                 payload. Every group starts on a fresh block — no
//!                 block ever mixes two destination nodes.
//! index + footer: as v2, with the v3 magic
//! ```
//!
//! The per-block CRC closes v2's last verification gap: block cursors
//! can now verify each fragment as it is fetched without reading the
//! whole group. Because a block holds entries of exactly one
//! destination node, any [`crate::ShardSpec`] partition of the root
//! candidates touches *disjoint* block sets — parallel shards never
//! contend for (or falsely share) a cached block. The `block_entries`
//! header field makes files self-describing; writers choose it at
//! serialization time ([`crate::write_store_v3`]).
//!
//! ## Version 4: the sharded-snapshot `MANIFEST`
//!
//! Version 4 (magic `KTPMCLO4`) is not a new closure-file layout — it
//! is the **manifest** of a sharded snapshot written by
//! [`crate::write_store_sharded`]: one small routing file (`MANIFEST`)
//! next to a set of plain v3 shard files, each holding a disjoint
//! subset of the label-pair tables. Readers ([`crate::ShardedStore`],
//! [`crate::RemoteStore`]) open the manifest, answer
//! `num_nodes`/`node_label`/`pair_keys` from it directly, and open a
//! shard file only when a query first touches a label pair routed to
//! it.
//!
//! ```text
//! magic "KTPMCLO4"
//! u32 shard_count, u32 block_entries, u32 num_nodes, u32 num_labels
//! labels: num_nodes * u32
//! per shard (shard_count times, in file-id order):
//!   u32 name_len, name_len bytes (UTF-8 file name, no path),
//!   u64 file_len, u32 content_crc32 (over the whole shard file)
//! routing: u32 pair_count, pair_count * (u32 a, u32 b, u32 shard),
//!          ascending (a, b)
//! u32 crc32 over everything past the magic
//! ```
//!
//! The trailing CRC-32 covers every byte after the magic, so any
//! truncation or bit flip in the manifest is detected at open. Shard
//! file names are stored without directory components and resolved
//! relative to the manifest's parent directory. The per-file
//! `content_crc32` lets `ktpm store verify` prove a shard file is the
//! exact one the writer sealed before scrubbing its sections. A shard's
//! **file id** is its position in the manifest's shard list — the id
//! the remote `FETCH` protocol and the shared block-cache key use.
//!
//! ## Versions and checksums
//!
//! Version 2 (magic `KTPMCLO2`) appends a CRC-32 (IEEE) to every
//! section, covering the section's payload bytes (including its count
//! prefix). The reader verifies the header and index checksums
//! **eagerly at open**, every `D`/`E`/directory checksum on the read
//! that first touches the section, and a pair's group-region checksum
//! on whole-pair loads — so bit rot is detected the moment damaged
//! bytes are read, as [`StorageError::Corrupt`], not merely
//! bounds-checked. On v2, block cursors ([`crate::EdgeCursor`]) stream
//! group fragments and stay bounds-checked only (verifying would force
//! reading the whole group, defeating lazy loading); v3's per-block
//! checksums close that gap.
//!
//! Version 1 files (magic `KTPMCLO1`, no checksums) still open and
//! read — verification is simply skipped.
//!
//! The `get_*` readers are **fallible**: a buffer too short for the
//! requested integer yields [`StorageError::Corrupt`] instead of a
//! panic, so a truncated or bit-rotted snapshot surfaces as an `Err`
//! from [`crate::FileStore::open`] rather than aborting the process.

use crate::source::StorageError;
use std::sync::OnceLock;

/// Version-2 magic (per-section checksums, packed groups).
pub const MAGIC: &[u8; 8] = b"KTPMCLO2";
/// Version-1 magic (no checksums); still readable.
pub const MAGIC_V1: &[u8; 8] = b"KTPMCLO1";
/// Version-3 magic (paged, per-block checksummed groups — the default
/// the writer emits, read by [`crate::PagedStore`]).
pub const MAGIC_V3: &[u8; 8] = b"KTPMCLO3";
/// Version-4 magic: the `MANIFEST` of a sharded snapshot (routing +
/// integrity metadata over a set of v3 shard files; see the module
/// docs). Read by [`crate::ShardedStore`] / [`crate::RemoteStore`].
pub const MAGIC_V4: &[u8; 8] = b"KTPMCLO4";
pub const FOOTER_LEN: u64 = 8 + 8;

/// On-disk format versions the writer can emit and the readers accept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FormatVersion {
    /// Magic `KTPMCLO1`: no checksums.
    V1,
    /// Magic `KTPMCLO2`: CRC-32 per section, packed group regions.
    V2,
    /// Magic `KTPMCLO3`: paged group blocks, CRC-32 per block (the
    /// default the writer emits).
    V3,
}

impl FormatVersion {
    /// The magic bytes of this version.
    pub fn magic(self) -> &'static [u8; 8] {
        match self {
            FormatVersion::V1 => MAGIC_V1,
            FormatVersion::V2 => MAGIC,
            FormatVersion::V3 => MAGIC_V3,
        }
    }

    /// Detects the version from magic bytes.
    pub fn from_magic(bytes: &[u8]) -> Option<FormatVersion> {
        if bytes == MAGIC {
            Some(FormatVersion::V2)
        } else if bytes == MAGIC_V1 {
            Some(FormatVersion::V1)
        } else if bytes == MAGIC_V3 {
            Some(FormatVersion::V3)
        } else {
            None
        }
    }

    /// Whether sections carry a trailing CRC-32.
    pub fn has_crc(self) -> bool {
        !matches!(self, FormatVersion::V1)
    }
}

fn crc_table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    })
}

/// Streaming CRC-32 (IEEE 802.3) update; start from
/// [`CRC_INIT`], finish with [`crc32_finish`].
pub fn crc32_update(state: u32, bytes: &[u8]) -> u32 {
    let table = crc_table();
    let mut c = state;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

/// Initial CRC-32 state.
pub const CRC_INIT: u32 = 0xFFFF_FFFF;

/// Finalizes a streaming CRC-32 state.
pub fn crc32_finish(state: u32) -> u32 {
    state ^ 0xFFFF_FFFF
}

/// One-shot CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_finish(crc32_update(CRC_INIT, bytes))
}

/// Size of one `L` entry on disk: `(u32 src, u32 dist)`.
pub const L_ENTRY_BYTES: usize = 8;

/// Default cursor block size in `L` entries (512 bytes per block).
/// Doubles as the default v3 on-disk block capacity.
pub const DEFAULT_BLOCK_EDGES: usize = 64;

/// On-disk size of one v3 group block holding `entries` `L` entries:
/// the fixed (zero-padded) payload plus its trailing CRC-32.
pub const fn v3_block_bytes(entries: usize) -> usize {
    entries * L_ENTRY_BYTES + 4
}

/// Number of v3 blocks a group of `len` entries occupies.
pub const fn v3_group_blocks(len: usize, block_entries: usize) -> usize {
    len.div_ceil(block_entries)
}

pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Reads a little-endian `u32` at `*pos`, advancing the position.
/// Errors with [`StorageError::Corrupt`] when fewer than 4 bytes
/// remain — the offset reported is the read position within `buf`.
pub fn get_u32(buf: &[u8], pos: &mut usize) -> Result<u32, StorageError> {
    match buf.get(*pos..).and_then(|b| b.get(..4)) {
        Some(bytes) => {
            let v = u32::from_le_bytes(bytes.try_into().expect("sliced to 4 bytes"));
            *pos += 4;
            Ok(v)
        }
        None => Err(StorageError::Corrupt {
            offset: *pos as u64,
            needed: 4,
        }),
    }
}

/// Reads a little-endian `u64` at `*pos`, advancing the position;
/// fallible exactly like [`get_u32`].
pub fn get_u64(buf: &[u8], pos: &mut usize) -> Result<u64, StorageError> {
    match buf.get(*pos..).and_then(|b| b.get(..8)) {
        Some(bytes) => {
            let v = u64::from_le_bytes(bytes.try_into().expect("sliced to 8 bytes"));
            *pos += 8;
            Ok(v)
        }
        None => Err(StorageError::Corrupt {
            offset: *pos as u64,
            needed: 8,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_roundtrip() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u32(&mut buf, 7);
        let mut pos = 0;
        assert_eq!(get_u32(&buf, &mut pos).unwrap(), 0xDEAD_BEEF);
        assert_eq!(get_u32(&buf, &mut pos).unwrap(), 7);
        assert_eq!(pos, 8);
    }

    #[test]
    fn u64_roundtrip() {
        let mut buf = Vec::new();
        put_u64(&mut buf, u64::MAX - 3);
        let mut pos = 0;
        assert_eq!(get_u64(&buf, &mut pos).unwrap(), u64::MAX - 3);
    }

    #[test]
    fn short_buffers_error_instead_of_panicking() {
        // Every truncation point of a u32/u64 read must yield Corrupt
        // with the exact position and need — and leave `pos` untouched.
        let buf = [1u8, 2, 3];
        for start in 0..=buf.len() {
            let mut pos = start;
            match get_u32(&buf, &mut pos) {
                Err(StorageError::Corrupt { offset, needed }) => {
                    assert_eq!(offset, start as u64);
                    assert_eq!(needed, 4);
                }
                other => panic!("expected Corrupt, got {other:?}"),
            }
            assert_eq!(pos, start, "failed reads must not advance");
            let mut pos = start;
            assert!(matches!(
                get_u64(&buf, &mut pos),
                Err(StorageError::Corrupt { needed: 8, .. })
            ));
        }
    }

    #[test]
    fn reads_past_usize_boundary_do_not_overflow() {
        let buf = [0u8; 4];
        let mut pos = usize::MAX - 1;
        assert!(get_u32(&buf, &mut pos).is_err());
        assert!(get_u64(&buf, &mut pos).is_err());
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE 802.3 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // Streaming equals one-shot.
        let s = crc32_update(CRC_INIT, b"1234");
        let s = crc32_update(s, b"56789");
        assert_eq!(crc32_finish(s), 0xCBF4_3926);
    }

    #[test]
    fn version_magic_roundtrip() {
        assert_eq!(FormatVersion::from_magic(MAGIC), Some(FormatVersion::V2));
        assert_eq!(FormatVersion::from_magic(MAGIC_V1), Some(FormatVersion::V1));
        assert_eq!(FormatVersion::from_magic(MAGIC_V3), Some(FormatVersion::V3));
        assert_eq!(FormatVersion::from_magic(b"KTPMXXX9"), None);
        assert!(FormatVersion::V2.has_crc());
        assert!(FormatVersion::V3.has_crc());
        assert!(!FormatVersion::V1.has_crc());
    }

    #[test]
    fn v3_block_geometry() {
        assert_eq!(v3_block_bytes(64), 64 * 8 + 4);
        assert_eq!(v3_group_blocks(0, 64), 0);
        assert_eq!(v3_group_blocks(1, 64), 1);
        assert_eq!(v3_group_blocks(64, 64), 1);
        assert_eq!(v3_group_blocks(65, 64), 2);
        assert_eq!(v3_group_blocks(129, 64), 3);
    }
}
