//! Binary layout of the closure store file.
//!
//! ```text
//! magic "KTPMCLO1"
//! u32 num_nodes, u32 num_labels
//! labels: num_nodes * u32
//! per pair (in index order):
//!   D section:    u32 count, count * (u32 node, u32 dist)
//!   E section:    u32 count, count * (u32 src, u32 dst, u32 dist)
//!   L directory:  u32 group_count, group_count * (u32 dst, u64 abs_off, u32 len)
//!   L groups:     per group: len * (u32 src, u32 dist), ascending dist
//! index: u32 num_pairs, num_pairs * (u32 a, u32 b, u64 d_off, u64 e_off, u64 dir_off)
//! footer: u64 index_offset, magic "KTPMCLO1"
//! ```
//!
//! All integers little-endian. The `L` layout mirrors §4.1: incoming
//! edges of each node, grouped exclusively per (source label, node),
//! sorted by distance, addressable without scanning the table.
//!
//! The `get_*` readers are **fallible**: a buffer too short for the
//! requested integer yields [`StorageError::Corrupt`] instead of a
//! panic, so a truncated or bit-rotted snapshot surfaces as an `Err`
//! from [`crate::FileStore::open`] rather than aborting the process.

use crate::source::StorageError;

pub const MAGIC: &[u8; 8] = b"KTPMCLO1";
pub const FOOTER_LEN: u64 = 8 + 8;

/// Size of one `L` entry on disk: `(u32 src, u32 dist)`.
pub const L_ENTRY_BYTES: usize = 8;

/// Default cursor block size in `L` entries (512 bytes per block).
pub const DEFAULT_BLOCK_EDGES: usize = 64;

pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Reads a little-endian `u32` at `*pos`, advancing the position.
/// Errors with [`StorageError::Corrupt`] when fewer than 4 bytes
/// remain — the offset reported is the read position within `buf`.
pub fn get_u32(buf: &[u8], pos: &mut usize) -> Result<u32, StorageError> {
    match buf.get(*pos..).and_then(|b| b.get(..4)) {
        Some(bytes) => {
            let v = u32::from_le_bytes(bytes.try_into().expect("sliced to 4 bytes"));
            *pos += 4;
            Ok(v)
        }
        None => Err(StorageError::Corrupt {
            offset: *pos as u64,
            needed: 4,
        }),
    }
}

/// Reads a little-endian `u64` at `*pos`, advancing the position;
/// fallible exactly like [`get_u32`].
pub fn get_u64(buf: &[u8], pos: &mut usize) -> Result<u64, StorageError> {
    match buf.get(*pos..).and_then(|b| b.get(..8)) {
        Some(bytes) => {
            let v = u64::from_le_bytes(bytes.try_into().expect("sliced to 8 bytes"));
            *pos += 8;
            Ok(v)
        }
        None => Err(StorageError::Corrupt {
            offset: *pos as u64,
            needed: 8,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_roundtrip() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u32(&mut buf, 7);
        let mut pos = 0;
        assert_eq!(get_u32(&buf, &mut pos).unwrap(), 0xDEAD_BEEF);
        assert_eq!(get_u32(&buf, &mut pos).unwrap(), 7);
        assert_eq!(pos, 8);
    }

    #[test]
    fn u64_roundtrip() {
        let mut buf = Vec::new();
        put_u64(&mut buf, u64::MAX - 3);
        let mut pos = 0;
        assert_eq!(get_u64(&buf, &mut pos).unwrap(), u64::MAX - 3);
    }

    #[test]
    fn short_buffers_error_instead_of_panicking() {
        // Every truncation point of a u32/u64 read must yield Corrupt
        // with the exact position and need — and leave `pos` untouched.
        let buf = [1u8, 2, 3];
        for start in 0..=buf.len() {
            let mut pos = start;
            match get_u32(&buf, &mut pos) {
                Err(StorageError::Corrupt { offset, needed }) => {
                    assert_eq!(offset, start as u64);
                    assert_eq!(needed, 4);
                }
                other => panic!("expected Corrupt, got {other:?}"),
            }
            assert_eq!(pos, start, "failed reads must not advance");
            let mut pos = start;
            assert!(matches!(
                get_u64(&buf, &mut pos),
                Err(StorageError::Corrupt { needed: 8, .. })
            ));
        }
    }

    #[test]
    fn reads_past_usize_boundary_do_not_overflow() {
        let buf = [0u8; 4];
        let mut pos = usize::MAX - 1;
        assert!(get_u32(&buf, &mut pos).is_err());
        assert!(get_u64(&buf, &mut pos).is_err());
    }
}
