//! The file-backed [`ClosureSource`] with positioned block reads.

use crate::format::*;
use crate::iostats::{IoSnapshot, IoStats};
use crate::source::{ClosureSource, EdgeCursor, StorageError};
use ktpm_graph::{Dist, LabelId, NodeId};
use std::collections::HashMap;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// One `L` directory entry: `(dst, absolute offset, entry count)`.
type DirEntry = (NodeId, u64, u32);

/// Lazily loaded per-pair `L` directories.
type DirCache = HashMap<(LabelId, LabelId), Arc<Vec<DirEntry>>>;

struct Shared {
    file: Mutex<std::fs::File>,
    io: IoStats,
}

impl Shared {
    /// One positioned read = one counted block fetch.
    fn read_at(&self, off: u64, buf: &mut [u8]) -> Result<(), StorageError> {
        let mut f = self.file.lock().expect("store file lock");
        f.seek(SeekFrom::Start(off))?;
        f.read_exact(buf)?;
        self.io.add_block(buf.len() as u64);
        Ok(())
    }
}

/// A closure store opened from disk. All reads go through real positioned
/// I/O and are counted in [`IoStats`].
pub struct FileStore {
    shared: Arc<Shared>,
    labels: Vec<LabelId>,
    index: HashMap<(LabelId, LabelId), (u64, u64, u64)>,
    dirs: Mutex<DirCache>,
    block_edges: usize,
}

impl FileStore {
    /// Opens a store written by [`crate::write_store`].
    pub fn open(path: &Path) -> Result<Self, StorageError> {
        Self::open_with_block_edges(path, DEFAULT_BLOCK_EDGES)
    }

    /// Opens with an explicit cursor block size (in `L` entries).
    pub fn open_with_block_edges(path: &Path, block_edges: usize) -> Result<Self, StorageError> {
        let mut file = std::fs::File::open(path)?;
        let len = file.metadata()?.len();
        if len < FOOTER_LEN + 16 {
            return Err(StorageError::BadFormat("file too short".into()));
        }
        // Header.
        let mut head = [0u8; 16];
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(&mut head)?;
        if &head[..8] != MAGIC {
            return Err(StorageError::BadFormat("bad magic".into()));
        }
        let mut pos = 8;
        let num_nodes = get_u32(&head, &mut pos) as usize;
        let _num_labels = get_u32(&head, &mut pos);
        let mut label_buf = vec![0u8; num_nodes * 4];
        file.read_exact(&mut label_buf)?;
        let labels: Vec<LabelId> = label_buf
            .chunks_exact(4)
            .map(|c| LabelId(u32::from_le_bytes(c.try_into().unwrap())))
            .collect();
        // Footer.
        let mut foot = [0u8; FOOTER_LEN as usize];
        file.seek(SeekFrom::Start(len - FOOTER_LEN))?;
        file.read_exact(&mut foot)?;
        if &foot[8..] != MAGIC {
            return Err(StorageError::BadFormat("bad footer magic".into()));
        }
        let mut pos = 0;
        let index_off = get_u64(&foot, &mut pos);
        // Index.
        file.seek(SeekFrom::Start(index_off))?;
        let mut count_buf = [0u8; 4];
        file.read_exact(&mut count_buf)?;
        let num_pairs = u32::from_le_bytes(count_buf) as usize;
        let mut idx_buf = vec![0u8; num_pairs * (4 + 4 + 8 + 8 + 8)];
        file.read_exact(&mut idx_buf)?;
        let mut index = HashMap::with_capacity(num_pairs);
        let mut pos = 0;
        for _ in 0..num_pairs {
            let a = LabelId(get_u32(&idx_buf, &mut pos));
            let b = LabelId(get_u32(&idx_buf, &mut pos));
            let d = get_u64(&idx_buf, &mut pos);
            let e = get_u64(&idx_buf, &mut pos);
            let dir = get_u64(&idx_buf, &mut pos);
            index.insert((a, b), (d, e, dir));
        }
        Ok(FileStore {
            shared: Arc::new(Shared {
                file: Mutex::new(file),
                io: IoStats::new(),
            }),
            labels,
            index,
            dirs: Mutex::new(HashMap::new()),
            block_edges: block_edges.max(1),
        })
    }

    /// Wraps the store in a [`crate::SharedSource`] for concurrent use.
    pub fn into_shared(self) -> crate::SharedSource {
        Arc::new(self)
    }

    fn directory(
        &self,
        a: LabelId,
        b: LabelId,
    ) -> Result<Option<Arc<Vec<DirEntry>>>, StorageError> {
        if let Some(dir) = self.dirs.lock().expect("dir cache").get(&(a, b)) {
            return Ok(Some(dir.clone()));
        }
        let Some(&(_, _, dir_off)) = self.index.get(&(a, b)) else {
            return Ok(None);
        };
        let mut count_buf = [0u8; 4];
        self.shared.read_at(dir_off, &mut count_buf)?;
        let count = u32::from_le_bytes(count_buf) as usize;
        let mut buf = vec![0u8; count * (4 + 8 + 4)];
        self.shared.read_at(dir_off + 4, &mut buf)?;
        let mut pos = 0;
        let mut dir = Vec::with_capacity(count);
        for _ in 0..count {
            let v = NodeId(get_u32(&buf, &mut pos));
            let off = get_u64(&buf, &mut pos);
            let len = get_u32(&buf, &mut pos);
            dir.push((v, off, len));
        }
        let dir = Arc::new(dir);
        self.dirs
            .lock()
            .expect("dir cache")
            .insert((a, b), dir.clone());
        Ok(Some(dir))
    }

    fn read_group(&self, off: u64, len: usize) -> Result<Vec<(NodeId, Dist)>, StorageError> {
        let mut buf = vec![0u8; len * L_ENTRY_BYTES];
        self.shared.read_at(off, &mut buf)?;
        let mut pos = 0;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            let s = NodeId(get_u32(&buf, &mut pos));
            let d = get_u32(&buf, &mut pos);
            out.push((s, d));
        }
        self.shared.io.add_edges(len as u64);
        Ok(out)
    }
}

impl ClosureSource for FileStore {
    fn num_nodes(&self) -> usize {
        self.labels.len()
    }

    fn node_label(&self, v: NodeId) -> LabelId {
        self.labels[v.index()]
    }

    fn pair_keys(&self) -> Vec<(LabelId, LabelId)> {
        let mut keys: Vec<_> = self.index.keys().copied().collect();
        keys.sort_unstable();
        keys
    }

    fn load_d(&self, a: LabelId, b: LabelId) -> Vec<(NodeId, Dist)> {
        let Some(&(d_off, _, _)) = self.index.get(&(a, b)) else {
            return Vec::new();
        };
        let mut count_buf = [0u8; 4];
        if self.shared.read_at(d_off, &mut count_buf).is_err() {
            return Vec::new();
        }
        let count = u32::from_le_bytes(count_buf) as usize;
        let mut buf = vec![0u8; count * 8];
        if self.shared.read_at(d_off + 4, &mut buf).is_err() {
            return Vec::new();
        }
        let mut pos = 0;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let v = NodeId(get_u32(&buf, &mut pos));
            let dist = get_u32(&buf, &mut pos);
            out.push((v, dist));
        }
        self.shared.io.add_d_entries(count as u64);
        out
    }

    fn load_e(&self, a: LabelId, b: LabelId) -> Vec<(NodeId, NodeId, Dist)> {
        let Some(&(_, e_off, _)) = self.index.get(&(a, b)) else {
            return Vec::new();
        };
        let mut count_buf = [0u8; 4];
        if self.shared.read_at(e_off, &mut count_buf).is_err() {
            return Vec::new();
        }
        let count = u32::from_le_bytes(count_buf) as usize;
        let mut buf = vec![0u8; count * 12];
        if self.shared.read_at(e_off + 4, &mut buf).is_err() {
            return Vec::new();
        }
        let mut pos = 0;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let s = NodeId(get_u32(&buf, &mut pos));
            let d = NodeId(get_u32(&buf, &mut pos));
            let dist = get_u32(&buf, &mut pos);
            out.push((s, d, dist));
        }
        self.shared.io.add_e_entries(count as u64);
        out
    }

    fn load_pair(&self, a: LabelId, b: LabelId) -> Vec<(NodeId, NodeId, Dist)> {
        let Ok(Some(dir)) = self.directory(a, b) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for &(v, off, len) in dir.iter() {
            match self.read_group(off, len as usize) {
                Ok(group) => out.extend(group.into_iter().map(|(s, d)| (s, v, d))),
                Err(_) => return out,
            }
        }
        out
    }

    fn incoming_cursor(&self, a: LabelId, v: NodeId) -> Box<dyn EdgeCursor + Send> {
        let entry = self
            .directory(a, self.node_label(v))
            .ok()
            .flatten()
            .and_then(|dir| {
                dir.binary_search_by_key(&v, |&(n, _, _)| n)
                    .ok()
                    .map(|i| dir[i])
            });
        match entry {
            Some((_, off, len)) => Box::new(FileCursor {
                shared: self.shared.clone(),
                off,
                remaining: len as usize,
                block_edges: self.block_edges,
            }),
            None => Box::new(FileCursor {
                shared: self.shared.clone(),
                off: 0,
                remaining: 0,
                block_edges: self.block_edges,
            }),
        }
    }

    fn lookup_dist(&self, u: NodeId, v: NodeId) -> Option<Dist> {
        let a = self.node_label(u);
        let dir = self.directory(a, self.node_label(v)).ok().flatten()?;
        let i = dir.binary_search_by_key(&v, |&(n, _, _)| n).ok()?;
        let (_, off, len) = dir[i];
        let group = self.read_group(off, len as usize).ok()?;
        group.into_iter().find(|&(s, _)| s == u).map(|(_, d)| d)
    }

    fn io(&self) -> IoSnapshot {
        self.shared.io.snapshot()
    }

    fn reset_io(&self) {
        self.shared.io.reset();
    }
}

struct FileCursor {
    shared: Arc<Shared>,
    off: u64,
    remaining: usize,
    block_edges: usize,
}

impl EdgeCursor for FileCursor {
    fn next_block(&mut self) -> Vec<(NodeId, Dist)> {
        if self.remaining == 0 {
            return Vec::new();
        }
        let take = self.remaining.min(self.block_edges);
        let mut buf = vec![0u8; take * L_ENTRY_BYTES];
        if self.shared.read_at(self.off, &mut buf).is_err() {
            self.remaining = 0;
            return Vec::new();
        }
        let mut pos = 0;
        let mut out = Vec::with_capacity(take);
        for _ in 0..take {
            let s = NodeId(get_u32(&buf, &mut pos));
            let d = get_u32(&buf, &mut pos);
            out.push((s, d));
        }
        self.off += (take * L_ENTRY_BYTES) as u64;
        self.remaining -= take;
        self.shared.io.add_edges(take as u64);
        out
    }

    fn remaining(&self) -> usize {
        self.remaining
    }
}
