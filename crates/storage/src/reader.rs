//! The file-backed [`ClosureSource`] with positioned block reads.
//!
//! Every byte read off disk is bounds-checked against the file length
//! *before* buffers are allocated, and parsed with the fallible
//! [`crate::format`] readers — so a truncated or corrupted snapshot
//! surfaces as [`StorageError::Corrupt`] from [`FileStore::open`] (or
//! degrades to empty tables on the infallible trait methods), never as
//! a panic or an absurd allocation.
//!
//! Version-2 snapshots additionally carry per-section CRC-32 checksums
//! (see the `format` module docs): the header and index are verified eagerly
//! at [`FileStore::open`], each `D`/`E`/directory section on first
//! read, and a pair's group region on whole-pair loads —
//! [`FileStore::verify`] scrubs everything at once. Version-1 files
//! (no checksums) keep opening and reading unchanged.

use crate::format::*;
use crate::iostats::{IoSnapshot, IoStats};
use crate::source::{ClosureSource, EdgeCursor, StorageError};
use ktpm_graph::{Dist, LabelId, NodeId};
use std::collections::HashMap;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// One `L` directory entry: `(dst, absolute offset, entry count)`.
type DirEntry = (NodeId, u64, u32);

/// Lazily loaded per-pair `L` directories.
type DirCache = HashMap<(LabelId, LabelId), Arc<Vec<DirEntry>>>;

struct Shared {
    file: Mutex<std::fs::File>,
    /// Snapshot length at open time; every read is validated against it
    /// so corrupt counts/offsets cannot trigger huge allocations or
    /// reads past EOF.
    len: u64,
    io: IoStats,
}

impl Shared {
    /// One positioned read = one counted block fetch. Validates the
    /// range against the snapshot length *before* allocating — a
    /// corrupt on-disk count must neither size an allocation nor read
    /// past EOF; both cases are [`StorageError::Corrupt`].
    fn read_vec(&self, off: u64, bytes: usize) -> Result<Vec<u8>, StorageError> {
        if off
            .checked_add(bytes as u64)
            .is_none_or(|end| end > self.len)
        {
            return Err(StorageError::Corrupt {
                offset: off,
                needed: bytes,
            });
        }
        let mut buf = vec![0u8; bytes];
        let mut f = self.file.lock().expect("store file lock");
        f.seek(SeekFrom::Start(off))?;
        f.read_exact(&mut buf).map_err(|e| map_eof(e, off, bytes))?;
        self.io.add_block(bytes as u64);
        Ok(buf)
    }
}

/// Maps a short read onto [`StorageError::Corrupt`] (the snapshot ends
/// where the format says data should be); other I/O errors pass
/// through.
fn map_eof(e: std::io::Error, offset: u64, needed: usize) -> StorageError {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        StorageError::Corrupt { offset, needed }
    } else {
        StorageError::Io(e)
    }
}

/// A closure store opened from disk. All reads go through real positioned
/// I/O and are counted in [`IoStats`].
pub struct FileStore {
    shared: Arc<Shared>,
    labels: Vec<LabelId>,
    index: HashMap<(LabelId, LabelId), (u64, u64, u64)>,
    dirs: Mutex<DirCache>,
    block_edges: usize,
    version: FormatVersion,
}

impl FileStore {
    /// Opens a v1/v2 store written by [`crate::write_store_versioned`]
    /// (v2 checksums are verified, v1 has none). Format-v3 (paged)
    /// files — what [`crate::write_store`] emits today — are read by
    /// [`crate::PagedStore`]; use [`crate::open_store_auto`] to
    /// dispatch on the file's actual version.
    ///
    /// Errors: [`StorageError::BadFormat`] when the file is not a
    /// closure store at all (wrong magic) or is a v3 store,
    /// [`StorageError::Corrupt`] when it is one but truncated or
    /// damaged (including a header or index checksum mismatch, verified
    /// eagerly here).
    pub fn open(path: &Path) -> Result<Self, StorageError> {
        Self::open_with_block_edges(path, DEFAULT_BLOCK_EDGES)
    }

    /// Opens with an explicit cursor block size (in `L` entries).
    /// `block_edges == 0` is [`StorageError::InvalidConfig`] — a
    /// zero-entry cursor block can never make progress.
    pub fn open_with_block_edges(path: &Path, block_edges: usize) -> Result<Self, StorageError> {
        if block_edges == 0 {
            return Err(StorageError::InvalidConfig(
                "cursor block size must be at least 1 entry".into(),
            ));
        }
        let mut file = std::fs::File::open(path)?;
        let len = file.metadata()?.len();
        if len < FOOTER_LEN + 16 {
            // Too short to even hold header + footer. Still check what
            // magic there is, so "not our file at all" keeps reporting
            // BadFormat and only truncated *stores* report Corrupt. A
            // vacuous prefix match proves nothing — require at least
            // half the magic before diagnosing a damaged store.
            let mut head = vec![0u8; len.min(8) as usize];
            file.read_exact(&mut head)?;
            let is_store_prefix = if head.len() < 8 {
                // Both versions share the first 7 bytes.
                head.len() >= 4 && head == MAGIC[..head.len().min(7)]
            } else {
                FormatVersion::from_magic(&head).is_some()
            };
            if !is_store_prefix {
                return Err(StorageError::BadFormat("bad magic".into()));
            }
            return Err(StorageError::Corrupt {
                offset: len,
                needed: (FOOTER_LEN + 16 - len) as usize,
            });
        }
        // Header.
        let mut head = [0u8; 16];
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(&mut head).map_err(|e| map_eof(e, 0, 16))?;
        let Some(version) = FormatVersion::from_magic(&head[..8]) else {
            return Err(StorageError::BadFormat("bad magic".into()));
        };
        if version == FormatVersion::V3 {
            return Err(StorageError::BadFormat(
                "format v3 (paged) store; open it with PagedStore or open_store_auto".into(),
            ));
        }
        let head_crc_len: u64 = if version.has_crc() { 4 } else { 0 };
        let mut pos = 8;
        let num_nodes = get_u32(&head, &mut pos)? as usize;
        let _num_labels = get_u32(&head, &mut pos)?;
        let label_bytes = num_nodes
            .checked_mul(4)
            .filter(|&b| 16 + b as u64 + head_crc_len + FOOTER_LEN <= len)
            .ok_or(StorageError::Corrupt {
                offset: 16,
                needed: num_nodes.saturating_mul(4),
            })?;
        let mut label_buf = vec![0u8; label_bytes];
        file.read_exact(&mut label_buf)
            .map_err(|e| map_eof(e, 16, label_bytes))?;
        if version.has_crc() {
            // Eager header verification: counts + labels.
            let mut crc_buf = [0u8; 4];
            file.read_exact(&mut crc_buf)
                .map_err(|e| map_eof(e, 16 + label_bytes as u64, 4))?;
            let state = crc32_update(CRC_INIT, &head[8..16]);
            let state = crc32_update(state, &label_buf);
            if crc32_finish(state) != u32::from_le_bytes(crc_buf) {
                return Err(StorageError::Corrupt {
                    offset: 8,
                    needed: 8 + label_bytes,
                });
            }
        }
        let labels: Vec<LabelId> = label_buf
            .chunks_exact(4)
            .map(|c| LabelId(u32::from_le_bytes(c.try_into().expect("chunked to 4"))))
            .collect();
        // Footer.
        let mut foot = [0u8; FOOTER_LEN as usize];
        file.seek(SeekFrom::Start(len - FOOTER_LEN))?;
        file.read_exact(&mut foot)
            .map_err(|e| map_eof(e, len - FOOTER_LEN, foot.len()))?;
        if &foot[8..] != version.magic() {
            // The header proved this is one of our stores; a wrong
            // footer means the tail (where the index lives) is gone.
            return Err(StorageError::Corrupt {
                offset: len - 8,
                needed: 8,
            });
        }
        let mut pos = 0;
        let index_off = get_u64(&foot, &mut pos)?;
        // Index (bounds-check the count before trusting it).
        if index_off
            .checked_add(4)
            .is_none_or(|end| end > len - FOOTER_LEN)
        {
            return Err(StorageError::Corrupt {
                offset: index_off,
                needed: 4,
            });
        }
        file.seek(SeekFrom::Start(index_off))?;
        let mut count_buf = [0u8; 4];
        file.read_exact(&mut count_buf)
            .map_err(|e| map_eof(e, index_off, 4))?;
        let num_pairs = u32::from_le_bytes(count_buf) as usize;
        let idx_crc_len: u64 = if version.has_crc() { 4 } else { 0 };
        let idx_bytes = num_pairs
            .checked_mul(4 + 4 + 8 + 8 + 8)
            .filter(|&b| index_off + 4 + b as u64 + idx_crc_len <= len - FOOTER_LEN)
            .ok_or(StorageError::Corrupt {
                offset: index_off + 4,
                needed: num_pairs.saturating_mul(32),
            })?;
        let mut idx_buf = vec![0u8; idx_bytes];
        file.read_exact(&mut idx_buf)
            .map_err(|e| map_eof(e, index_off + 4, idx_bytes))?;
        if version.has_crc() {
            // Eager index verification.
            let mut crc_buf = [0u8; 4];
            file.read_exact(&mut crc_buf)
                .map_err(|e| map_eof(e, index_off + 4 + idx_bytes as u64, 4))?;
            let state = crc32_update(CRC_INIT, &count_buf);
            let state = crc32_update(state, &idx_buf);
            if crc32_finish(state) != u32::from_le_bytes(crc_buf) {
                return Err(StorageError::Corrupt {
                    offset: index_off,
                    needed: idx_bytes + 4,
                });
            }
        }
        let mut index = HashMap::with_capacity(num_pairs);
        let mut pos = 0;
        for _ in 0..num_pairs {
            let a = LabelId(get_u32(&idx_buf, &mut pos)?);
            let b = LabelId(get_u32(&idx_buf, &mut pos)?);
            let d = get_u64(&idx_buf, &mut pos)?;
            let e = get_u64(&idx_buf, &mut pos)?;
            let dir = get_u64(&idx_buf, &mut pos)?;
            index.insert((a, b), (d, e, dir));
        }
        Ok(FileStore {
            shared: Arc::new(Shared {
                file: Mutex::new(file),
                len,
                io: IoStats::new(),
            }),
            labels,
            index,
            dirs: Mutex::new(HashMap::new()),
            block_edges,
            version,
        })
    }

    /// Wraps the store in a [`crate::SharedSource`] for concurrent use.
    pub fn into_shared(self) -> crate::SharedSource {
        Arc::new(self)
    }

    /// The snapshot's on-disk format version.
    pub fn version(&self) -> FormatVersion {
        self.version
    }

    /// Scrubs the whole snapshot: re-verifies every `D`/`E`/directory
    /// section checksum and every pair's group-region checksum (the
    /// header and index were already verified at open). A no-op `Ok`
    /// on checksum-free v1 files. Returns the first mismatch as
    /// [`StorageError::Corrupt`].
    pub fn verify(&self) -> Result<(), StorageError> {
        if !self.version.has_crc() {
            return Ok(());
        }
        let mut keys: Vec<_> = self.index.iter().map(|(&k, &v)| (k, v)).collect();
        keys.sort_unstable_by_key(|&(k, _)| k);
        for ((a, b), (d_off, e_off, _)) in keys {
            let count = self.read_count(d_off)?;
            self.read_body(d_off, count, 8)?;
            let count = self.read_count(e_off)?;
            self.read_body(e_off, count, 12)?;
            let dir = self.directory(a, b)?.expect("pair key came from the index");
            self.read_group_region(&dir)?;
        }
        Ok(())
    }

    /// Reads the 4-byte count at `off`, bounds-validated.
    fn read_count(&self, off: u64) -> Result<usize, StorageError> {
        let buf = self.shared.read_vec(off, 4)?;
        Ok(u32::from_le_bytes(buf.try_into().expect("read 4 bytes")) as usize)
    }

    /// Reads a counted section's body (`count * entry_bytes` at
    /// `count_off + 4`), verifying the trailing CRC over count + body
    /// on v2 snapshots. Returns exactly the body bytes.
    fn read_body(
        &self,
        count_off: u64,
        count: usize,
        entry_bytes: usize,
    ) -> Result<Vec<u8>, StorageError> {
        let body_bytes = count
            .checked_mul(entry_bytes)
            .ok_or(StorageError::Corrupt {
                offset: count_off,
                needed: count.saturating_mul(entry_bytes),
            })?;
        if !self.version.has_crc() {
            return self.shared.read_vec(count_off + 4, body_bytes);
        }
        let mut buf = self.shared.read_vec(count_off + 4, body_bytes + 4)?;
        let expect = u32::from_le_bytes(
            buf[body_bytes..]
                .try_into()
                .expect("sliced the trailing 4 bytes"),
        );
        let state = crc32_update(CRC_INIT, &(count as u32).to_le_bytes());
        let state = crc32_update(state, &buf[..body_bytes]);
        if crc32_finish(state) != expect {
            return Err(StorageError::Corrupt {
                offset: count_off,
                needed: body_bytes + 8,
            });
        }
        buf.truncate(body_bytes);
        Ok(buf)
    }

    /// Reads (and on v2 verifies) a pair's whole contiguous group
    /// region, as laid out by the writer in directory order. Offsets
    /// come from the directory, which on v1 snapshots is *unverified* —
    /// all arithmetic is checked so corrupt offsets surface as
    /// [`StorageError::Corrupt`], never as an overflow panic.
    fn read_group_region(&self, dir: &[DirEntry]) -> Result<Vec<u8>, StorageError> {
        let Some(&(_, start, _)) = dir.first() else {
            return Ok(Vec::new());
        };
        let (_, last_off, last_len) = *dir.last().expect("non-empty");
        let end = last_off
            .checked_add(last_len as u64 * L_ENTRY_BYTES as u64)
            .filter(|&e| e >= start)
            .ok_or(StorageError::Corrupt {
                offset: last_off,
                needed: last_len as usize * L_ENTRY_BYTES,
            })?;
        let bytes = (end - start) as usize;
        if !self.version.has_crc() {
            return self.shared.read_vec(start, bytes);
        }
        let mut buf = self.shared.read_vec(start, bytes + 4)?;
        let expect = u32::from_le_bytes(
            buf[bytes..]
                .try_into()
                .expect("sliced the trailing 4 bytes"),
        );
        if crc32(&buf[..bytes]) != expect {
            return Err(StorageError::Corrupt {
                offset: start,
                needed: bytes + 4,
            });
        }
        buf.truncate(bytes);
        Ok(buf)
    }

    fn directory(
        &self,
        a: LabelId,
        b: LabelId,
    ) -> Result<Option<Arc<Vec<DirEntry>>>, StorageError> {
        if let Some(dir) = self.dirs.lock().expect("dir cache").get(&(a, b)) {
            return Ok(Some(dir.clone()));
        }
        let Some(&(_, _, dir_off)) = self.index.get(&(a, b)) else {
            return Ok(None);
        };
        let count = self.read_count(dir_off)?;
        let buf = self.read_body(dir_off, count, 4 + 8 + 4)?;
        let mut pos = 0;
        let mut dir = Vec::with_capacity(count);
        for _ in 0..count {
            let v = NodeId(get_u32(&buf, &mut pos)?);
            let off = get_u64(&buf, &mut pos)?;
            let len = get_u32(&buf, &mut pos)?;
            dir.push((v, off, len));
        }
        let dir = Arc::new(dir);
        self.dirs
            .lock()
            .expect("dir cache")
            .insert((a, b), dir.clone());
        Ok(Some(dir))
    }

    fn read_group(&self, off: u64, len: usize) -> Result<Vec<(NodeId, Dist)>, StorageError> {
        let bytes = len
            .checked_mul(L_ENTRY_BYTES)
            .ok_or(StorageError::Corrupt {
                offset: off,
                needed: len.saturating_mul(L_ENTRY_BYTES),
            })?;
        let buf = self.shared.read_vec(off, bytes)?;
        let mut pos = 0;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            let s = NodeId(get_u32(&buf, &mut pos)?);
            let d = get_u32(&buf, &mut pos)?;
            out.push((s, d));
        }
        self.shared.io.add_edges(len as u64);
        Ok(out)
    }

    fn load_d_inner(&self, d_off: u64) -> Result<Vec<(NodeId, Dist)>, StorageError> {
        let count = self.read_count(d_off)?;
        let buf = self.read_body(d_off, count, 8)?;
        let mut pos = 0;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let v = NodeId(get_u32(&buf, &mut pos)?);
            let dist = get_u32(&buf, &mut pos)?;
            out.push((v, dist));
        }
        self.shared.io.add_d_entries(count as u64);
        Ok(out)
    }

    fn load_e_inner(&self, e_off: u64) -> Result<Vec<(NodeId, NodeId, Dist)>, StorageError> {
        let count = self.read_count(e_off)?;
        let buf = self.read_body(e_off, count, 12)?;
        let mut pos = 0;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let s = NodeId(get_u32(&buf, &mut pos)?);
            let d = NodeId(get_u32(&buf, &mut pos)?);
            let dist = get_u32(&buf, &mut pos)?;
            out.push((s, d, dist));
        }
        self.shared.io.add_e_entries(count as u64);
        Ok(out)
    }
}

impl ClosureSource for FileStore {
    fn num_nodes(&self) -> usize {
        self.labels.len()
    }

    fn node_label(&self, v: NodeId) -> LabelId {
        self.labels[v.index()]
    }

    fn pair_keys(&self) -> Vec<(LabelId, LabelId)> {
        let mut keys: Vec<_> = self.index.keys().copied().collect();
        keys.sort_unstable();
        keys
    }

    fn load_d(&self, a: LabelId, b: LabelId) -> Vec<(NodeId, Dist)> {
        let Some(&(d_off, _, _)) = self.index.get(&(a, b)) else {
            return Vec::new();
        };
        self.load_d_inner(d_off).unwrap_or_default()
    }

    fn load_e(&self, a: LabelId, b: LabelId) -> Vec<(NodeId, NodeId, Dist)> {
        let Some(&(_, e_off, _)) = self.index.get(&(a, b)) else {
            return Vec::new();
        };
        self.load_e_inner(e_off).unwrap_or_default()
    }

    fn load_pair(&self, a: LabelId, b: LabelId) -> Vec<(NodeId, NodeId, Dist)> {
        let Ok(Some(dir)) = self.directory(a, b) else {
            return Vec::new();
        };
        // Whole-pair load: one read of the contiguous group region,
        // CRC-verified on v2 (a mismatch degrades to empty, like every
        // corrupt read on the infallible trait methods).
        let Ok(region) = self.read_group_region(&dir) else {
            return Vec::new();
        };
        let Some(&(_, base, _)) = dir.first() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut total = 0u64;
        for &(v, off, len) in dir.iter() {
            // Directory offsets are unverified on v1 snapshots: a
            // corrupt entry below the region base degrades to a partial
            // result instead of underflowing.
            let Some(rel) = off.checked_sub(base) else {
                return out;
            };
            let mut pos = rel as usize;
            for _ in 0..len {
                let Ok(s) = get_u32(&region, &mut pos) else {
                    return out;
                };
                let Ok(d) = get_u32(&region, &mut pos) else {
                    return out;
                };
                out.push((NodeId(s), v, d));
            }
            total += len as u64;
        }
        self.shared.io.add_edges(total);
        out
    }

    fn incoming_cursor(&self, a: LabelId, v: NodeId) -> Box<dyn EdgeCursor + Send> {
        let entry = self
            .directory(a, self.node_label(v))
            .ok()
            .flatten()
            .and_then(|dir| {
                dir.binary_search_by_key(&v, |&(n, _, _)| n)
                    .ok()
                    .map(|i| dir[i])
            });
        match entry {
            Some((_, off, len)) => Box::new(FileCursor {
                shared: self.shared.clone(),
                off,
                remaining: len as usize,
                block_edges: self.block_edges,
            }),
            None => Box::new(FileCursor {
                shared: self.shared.clone(),
                off: 0,
                remaining: 0,
                block_edges: self.block_edges,
            }),
        }
    }

    fn lookup_dist(&self, u: NodeId, v: NodeId) -> Option<Dist> {
        let a = self.node_label(u);
        let dir = self.directory(a, self.node_label(v)).ok().flatten()?;
        let i = dir.binary_search_by_key(&v, |&(n, _, _)| n).ok()?;
        let (_, off, len) = dir[i];
        let group = self.read_group(off, len as usize).ok()?;
        group.into_iter().find(|&(s, _)| s == u).map(|(_, d)| d)
    }

    fn io(&self) -> IoSnapshot {
        self.shared.io.snapshot()
    }

    fn reset_io(&self) {
        self.shared.io.reset();
    }
}

struct FileCursor {
    shared: Arc<Shared>,
    off: u64,
    remaining: usize,
    block_edges: usize,
}

impl EdgeCursor for FileCursor {
    fn next_block(&mut self) -> Vec<(NodeId, Dist)> {
        if self.remaining == 0 {
            return Vec::new();
        }
        let take = self.remaining.min(self.block_edges);
        let Ok(buf) = self.shared.read_vec(self.off, take * L_ENTRY_BYTES) else {
            self.remaining = 0;
            return Vec::new();
        };
        let mut pos = 0;
        let mut out = Vec::with_capacity(take);
        for _ in 0..take {
            let Ok(s) = get_u32(&buf, &mut pos) else {
                break;
            };
            let Ok(d) = get_u32(&buf, &mut pos) else {
                break;
            };
            out.push((NodeId(s), d));
        }
        self.off += (take * L_ENTRY_BYTES) as u64;
        self.remaining -= take;
        self.shared.io.add_edges(take as u64);
        out
    }

    fn remaining(&self) -> usize {
        self.remaining
    }
}
