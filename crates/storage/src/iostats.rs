//! Atomic I/O accounting shared between a store and its cursors.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared atomic I/O counters. Cloning shares the underlying counters.
#[derive(Debug, Default, Clone)]
pub struct IoStats {
    inner: Arc<Counters>,
}

#[derive(Debug, Default)]
struct Counters {
    block_reads: AtomicU64,
    bytes_read: AtomicU64,
    edges_read: AtomicU64,
    d_entries: AtomicU64,
    e_entries: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_evictions: AtomicU64,
    cache_bytes_resident: AtomicU64,
    files_opened: AtomicU64,
    remote_fetches: AtomicU64,
    remote_bytes: AtomicU64,
    remote_retries: AtomicU64,
    remote_errors: AtomicU64,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoSnapshot {
    /// Positioned block fetches issued (file) or simulated (memory).
    pub block_reads: u64,
    /// Bytes transferred (logical for [`crate::MemStore`]).
    pub bytes_read: u64,
    /// Closure edges materialized from `L` tables (the paper's `m'_R`).
    pub edges_read: u64,
    /// `D` table entries loaded at initialization.
    pub d_entries: u64,
    /// `E` table entries loaded at initialization.
    pub e_entries: u64,
    /// Block-cache hits (block served without touching disk). Only
    /// [`crate::PagedStore`] moves these four cache counters; every
    /// other backend leaves them at 0.
    pub cache_hits: u64,
    /// Block-cache misses (each one a verified disk fetch).
    pub cache_misses: u64,
    /// Blocks evicted to stay within the cache byte budget.
    pub cache_evictions: u64,
    /// Bytes currently resident in the block cache. A gauge, not a
    /// monotonic counter: [`IoSnapshot::since`] carries the later
    /// snapshot's value through unchanged, and after
    /// [`IoStats::reset`] it refreshes on the next cache operation.
    pub cache_bytes_resident: u64,
    /// Shard files opened lazily by [`crate::ShardedStore`] /
    /// [`crate::RemoteStore`] (a query that touches only some label
    /// pairs opens only their owning files).
    pub files_opened: u64,
    /// `FETCH` requests answered by a remote block server
    /// ([`crate::RemoteStore`] only; every other backend leaves the
    /// four `remote_*` counters at 0).
    pub remote_fetches: u64,
    /// Payload bytes received from the remote block server.
    pub remote_bytes: u64,
    /// Remote request retries (reconnects, timeouts, and one-shot
    /// re-fetches after a client-side CRC mismatch).
    pub remote_retries: u64,
    /// Remote requests that failed after exhausting retries.
    pub remote_errors: u64,
}

impl IoStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn add_block(&self, bytes: u64) {
        self.inner.block_reads.fetch_add(1, Ordering::Relaxed);
        self.inner.bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn add_edges(&self, n: u64) {
        self.inner.edges_read.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_d_entries(&self, n: u64) {
        self.inner.d_entries.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_e_entries(&self, n: u64) {
        self.inner.e_entries.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_cache_hit(&self) {
        self.inner.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_cache_miss(&self) {
        self.inner.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_cache_evictions(&self, n: u64) {
        self.inner.cache_evictions.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn set_cache_resident(&self, bytes: u64) {
        self.inner
            .cache_bytes_resident
            .store(bytes, Ordering::Relaxed);
    }

    pub(crate) fn add_file_opened(&self) {
        self.inner.files_opened.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_remote_fetch(&self, bytes: u64) {
        self.inner.remote_fetches.fetch_add(1, Ordering::Relaxed);
        self.inner.remote_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn add_remote_retry(&self) {
        self.inner.remote_retries.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_remote_error(&self) {
        self.inner.remote_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads all counters.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            block_reads: self.inner.block_reads.load(Ordering::Relaxed),
            bytes_read: self.inner.bytes_read.load(Ordering::Relaxed),
            edges_read: self.inner.edges_read.load(Ordering::Relaxed),
            d_entries: self.inner.d_entries.load(Ordering::Relaxed),
            e_entries: self.inner.e_entries.load(Ordering::Relaxed),
            cache_hits: self.inner.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.inner.cache_misses.load(Ordering::Relaxed),
            cache_evictions: self.inner.cache_evictions.load(Ordering::Relaxed),
            cache_bytes_resident: self.inner.cache_bytes_resident.load(Ordering::Relaxed),
            files_opened: self.inner.files_opened.load(Ordering::Relaxed),
            remote_fetches: self.inner.remote_fetches.load(Ordering::Relaxed),
            remote_bytes: self.inner.remote_bytes.load(Ordering::Relaxed),
            remote_retries: self.inner.remote_retries.load(Ordering::Relaxed),
            remote_errors: self.inner.remote_errors.load(Ordering::Relaxed),
        }
    }

    /// Zeroes all counters (including the residency gauge, which the
    /// owning cache refreshes on its next operation).
    pub fn reset(&self) {
        self.inner.block_reads.store(0, Ordering::Relaxed);
        self.inner.bytes_read.store(0, Ordering::Relaxed);
        self.inner.edges_read.store(0, Ordering::Relaxed);
        self.inner.d_entries.store(0, Ordering::Relaxed);
        self.inner.e_entries.store(0, Ordering::Relaxed);
        self.inner.cache_hits.store(0, Ordering::Relaxed);
        self.inner.cache_misses.store(0, Ordering::Relaxed);
        self.inner.cache_evictions.store(0, Ordering::Relaxed);
        self.inner.cache_bytes_resident.store(0, Ordering::Relaxed);
        self.inner.files_opened.store(0, Ordering::Relaxed);
        self.inner.remote_fetches.store(0, Ordering::Relaxed);
        self.inner.remote_bytes.store(0, Ordering::Relaxed);
        self.inner.remote_retries.store(0, Ordering::Relaxed);
        self.inner.remote_errors.store(0, Ordering::Relaxed);
    }
}

impl IoSnapshot {
    /// Difference since an earlier snapshot. Monotonic counters
    /// subtract; `cache_bytes_resident` is a gauge and carries `self`'s
    /// (the later snapshot's) value.
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            block_reads: self.block_reads - earlier.block_reads,
            bytes_read: self.bytes_read - earlier.bytes_read,
            edges_read: self.edges_read - earlier.edges_read,
            d_entries: self.d_entries - earlier.d_entries,
            e_entries: self.e_entries - earlier.e_entries,
            cache_hits: self.cache_hits - earlier.cache_hits,
            cache_misses: self.cache_misses - earlier.cache_misses,
            cache_evictions: self.cache_evictions - earlier.cache_evictions,
            cache_bytes_resident: self.cache_bytes_resident,
            files_opened: self.files_opened - earlier.files_opened,
            remote_fetches: self.remote_fetches - earlier.remote_fetches,
            remote_bytes: self.remote_bytes - earlier.remote_bytes,
            remote_retries: self.remote_retries - earlier.remote_retries,
            remote_errors: self.remote_errors - earlier.remote_errors,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = IoStats::new();
        s.add_block(4096);
        s.add_block(4096);
        s.add_edges(10);
        s.add_d_entries(3);
        s.add_e_entries(5);
        s.add_cache_hit();
        s.add_cache_hit();
        s.add_cache_miss();
        s.add_cache_evictions(4);
        s.set_cache_resident(1024);
        s.add_file_opened();
        s.add_remote_fetch(100);
        s.add_remote_fetch(28);
        s.add_remote_retry();
        s.add_remote_error();
        let snap = s.snapshot();
        assert_eq!(snap.block_reads, 2);
        assert_eq!(snap.bytes_read, 8192);
        assert_eq!(snap.edges_read, 10);
        assert_eq!(snap.d_entries, 3);
        assert_eq!(snap.e_entries, 5);
        assert_eq!(snap.cache_hits, 2);
        assert_eq!(snap.cache_misses, 1);
        assert_eq!(snap.cache_evictions, 4);
        assert_eq!(snap.cache_bytes_resident, 1024);
        assert_eq!(snap.files_opened, 1);
        assert_eq!(snap.remote_fetches, 2);
        assert_eq!(snap.remote_bytes, 128);
        assert_eq!(snap.remote_retries, 1);
        assert_eq!(snap.remote_errors, 1);
        s.reset();
        assert_eq!(s.snapshot(), IoSnapshot::default());
    }

    #[test]
    fn clones_share_counters() {
        let s = IoStats::new();
        let c = s.clone();
        c.add_edges(7);
        assert_eq!(s.snapshot().edges_read, 7);
    }

    #[test]
    fn since_subtracts_counters_and_carries_the_gauge() {
        let s = IoStats::new();
        s.add_edges(5);
        s.add_cache_miss();
        s.set_cache_resident(512);
        let a = s.snapshot();
        s.add_edges(3);
        s.add_cache_hit();
        s.set_cache_resident(256);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.edges_read, 3);
        assert_eq!(d.cache_hits, 1);
        assert_eq!(d.cache_misses, 0);
        assert_eq!(
            d.cache_bytes_resident, 256,
            "gauge: later value, not a diff"
        );
    }
}
