//! Sharded (format v4) snapshot suite: multi-file writes routed by the
//! CRC'd MANIFEST, lazy per-shard file opens sharing one block cache,
//! `open_store_auto` dispatch, and whole-snapshot scrubbing.

use ktpm_closure::ClosureTables;
use ktpm_graph::fixtures::paper_graph;
use ktpm_graph::{GraphBuilder, LabeledGraph, NodeId};
use ktpm_storage::{
    open_store_auto, write_store_sharded, ClosureSource, EdgeCursor, MemStore, ShardSpec,
    ShardedStore, StorageError,
};
use std::path::PathBuf;

fn tempdir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("ktpm-sharded-test-{}-{}", std::process::id(), name));
    std::fs::remove_dir_all(&p).ok();
    p
}

/// A deterministic multi-label weighted graph big enough for several
/// label pairs, multi-block groups, and cache churn.
fn dense_graph(n: usize, labels: usize) -> LabeledGraph {
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut b = GraphBuilder::new();
    let nodes: Vec<_> = (0..n)
        .map(|i| b.add_node(&format!("L{}", i % labels)))
        .collect();
    for u in 0..n {
        for _ in 0..4 {
            let v = (next() % n as u64) as usize;
            if v != u {
                b.add_edge(nodes[u], nodes[v], (next() % 5 + 1) as u32);
            }
        }
    }
    b.build().unwrap()
}

fn drain(c: &mut Box<dyn EdgeCursor + Send>) -> Vec<(NodeId, u32)> {
    let mut all = Vec::new();
    loop {
        let blk = c.next_block();
        if blk.is_empty() {
            break;
        }
        all.extend(blk);
    }
    all
}

/// Element-for-element equivalence of `other` against the in-memory
/// oracle: labels, tables, cursors (content, not block geometry), and
/// point lookups.
fn check_equivalent(mem: &MemStore, other: &dyn ClosureSource) {
    assert_eq!(mem.num_nodes(), other.num_nodes());
    for i in 0..mem.num_nodes() {
        let v = NodeId(i as u32);
        assert_eq!(mem.node_label(v), other.node_label(v));
    }
    assert_eq!(mem.pair_keys(), other.pair_keys());
    for (a, b) in mem.pair_keys() {
        assert_eq!(mem.load_d(a, b), other.load_d(a, b), "D table {a:?}->{b:?}");
        assert_eq!(mem.load_e(a, b), other.load_e(a, b), "E table {a:?}->{b:?}");
        let mut pm = mem.load_pair(a, b);
        let mut po = other.load_pair(a, b);
        pm.sort_unstable();
        po.sort_unstable();
        assert_eq!(pm, po, "L table {a:?}->{b:?}");
    }
    for (a, _) in mem.pair_keys() {
        for i in 0..mem.num_nodes() {
            let v = NodeId(i as u32);
            let mut cm = mem.incoming_cursor(a, v);
            let mut co = other.incoming_cursor(a, v);
            assert_eq!(cm.remaining(), co.remaining());
            assert_eq!(drain(&mut cm), drain(&mut co), "cursor {a:?} -> {v:?}");
        }
    }
    for u in 0..mem.num_nodes() {
        for v in 0..mem.num_nodes() {
            let (u, v) = (NodeId(u as u32), NodeId(v as u32));
            assert_eq!(mem.lookup_dist(u, v), other.lookup_dist(u, v));
        }
    }
}

#[test]
fn sharded_roundtrips_against_mem_across_shard_counts_and_block_sizes() {
    let g = dense_graph(40, 5);
    let tables = ClosureTables::compute(&g);
    let mem = MemStore::new(tables.clone());
    for shards in [1u32, 2, 3, 7] {
        for be in [1usize, 4, 256] {
            let dir = tempdir(&format!("rt-{shards}-{be}"));
            let manifest =
                write_store_sharded(&tables, &dir, &ShardSpec::new(0, shards), be).unwrap();
            assert_eq!(manifest.shards.len(), shards as usize);
            let store = ShardedStore::open(&dir.join("MANIFEST")).unwrap();
            store.verify().unwrap();
            check_equivalent(&mem, &store);
            assert!(store.take_error().is_none(), "no swallowed errors");
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

#[test]
fn tight_cache_budget_spans_all_shard_files() {
    // One shared budget across files: with room for a single block,
    // residency never exceeds it no matter how many files are touched.
    let g = dense_graph(40, 5);
    let tables = ClosureTables::compute(&g);
    let mem = MemStore::new(tables.clone());
    let dir = tempdir("budget");
    write_store_sharded(&tables, &dir, &ShardSpec::new(0, 4), 2).unwrap();
    let store = ShardedStore::open_with_cache_bytes(&dir.join("MANIFEST"), 1).unwrap();
    check_equivalent(&mem, &store);
    let io = store.io();
    assert!(io.cache_evictions > 0, "a 1-byte budget must churn");
    assert!(
        io.cache_bytes_resident <= io.bytes_read,
        "residency is bounded"
    );
    assert_eq!(store.files_open(), 4, "a full scan touches every file");
    assert_eq!(io.files_opened, 4);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn queries_open_only_the_files_their_pairs_route_to() {
    let g = dense_graph(40, 5);
    let tables = ClosureTables::compute(&g);
    let dir = tempdir("lazy");
    let manifest = write_store_sharded(&tables, &dir, &ShardSpec::new(0, 3), 64).unwrap();
    let store = ShardedStore::open(&dir.join("MANIFEST")).unwrap();
    assert_eq!(store.files_open(), 0, "opening the manifest opens no shard");

    // Touch exactly the pairs routed to shard 0: only that file opens.
    let owned: Vec<_> = manifest
        .routing
        .iter()
        .filter(|(_, &s)| s == 0)
        .map(|(&k, _)| k)
        .collect();
    assert!(!owned.is_empty());
    for (a, b) in owned {
        store.load_d(a, b);
        store.load_e(a, b);
    }
    assert_eq!(store.files_open(), 1, "only the owning shard file opened");
    assert_eq!(store.io().files_opened, 1);

    // An unrouted pair degrades to empty without opening anything.
    let absent = ktpm_graph::LabelId(manifest.num_labels);
    assert!(store.load_d(absent, absent).is_empty());
    assert_eq!(store.files_open(), 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn open_store_auto_dispatches_on_manifest_file_and_directory() {
    let g = paper_graph();
    let tables = ClosureTables::compute(&g);
    let mem = MemStore::new(tables.clone());
    let dir = tempdir("auto");
    write_store_sharded(&tables, &dir, &ShardSpec::new(0, 2), 64).unwrap();
    // Both the MANIFEST path and the directory itself open the same
    // sharded snapshot.
    for p in [dir.join("MANIFEST"), dir.clone()] {
        let store = open_store_auto(&p, None).unwrap();
        check_equivalent(&mem, store.as_ref());
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn directory_without_manifest_is_a_pointed_error() {
    let dir = tempdir("empty-dir");
    std::fs::create_dir_all(&dir).unwrap();
    assert!(ShardedStore::open(&dir.join("nope")).is_err());
    let Err(err) = open_store_auto(&dir, None) else {
        panic!("a directory without a MANIFEST must not open");
    };
    let msg = err.to_string();
    assert!(
        msg.contains("MANIFEST") && msg.contains("did you mean"),
        "the error must point at the manifest path: {msg}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn scrub_names_the_corrupt_shard_file() {
    let g = dense_graph(30, 4);
    let tables = ClosureTables::compute(&g);
    let dir = tempdir("scrub");
    write_store_sharded(&tables, &dir, &ShardSpec::new(0, 3), 4).unwrap();
    let store = ShardedStore::open(&dir.join("MANIFEST")).unwrap();
    store.verify().unwrap();

    // Flip one payload byte in the middle of shard 1: the scrub must
    // fail and name that file, not merely "something is corrupt".
    let victim = dir.join("shard-0001.tc");
    let mut bytes = std::fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&victim, &bytes).unwrap();
    let err = store.verify().unwrap_err();
    match &err {
        StorageError::CorruptShard { file, .. } => {
            assert_eq!(file, "shard-0001.tc", "{err}")
        }
        other => panic!("expected CorruptShard, got {other}"),
    }

    // Truncation is caught too (length check before any CRC pass).
    std::fs::write(&victim, &bytes[..bytes.len() - 1]).unwrap();
    assert!(matches!(
        store.verify(),
        Err(StorageError::CorruptShard { .. })
    ));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_manifest_never_opens_and_never_panics() {
    let g = paper_graph();
    let tables = ClosureTables::compute(&g);
    let dir = tempdir("trunc");
    write_store_sharded(&tables, &dir, &ShardSpec::new(0, 2), 64).unwrap();
    let manifest_path = dir.join("MANIFEST");
    let full = std::fs::read(&manifest_path).unwrap();
    for cut in 0..full.len() {
        std::fs::write(&manifest_path, &full[..cut]).unwrap();
        assert!(
            ShardedStore::open(&manifest_path).is_err(),
            "a manifest truncated to {cut} byte(s) must not open"
        );
    }
    // Restored, it opens again.
    std::fs::write(&manifest_path, &full).unwrap();
    ShardedStore::open(&manifest_path).unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_shard_file_degrades_to_empty_with_a_sticky_error() {
    // Reads are infallible by contract: a vanished shard file yields
    // empty tables, and the first swallowed error is retrievable once.
    let g = dense_graph(30, 4);
    let tables = ClosureTables::compute(&g);
    let dir = tempdir("missing");
    let manifest = write_store_sharded(&tables, &dir, &ShardSpec::new(0, 3), 64).unwrap();
    std::fs::remove_file(dir.join("shard-0002.tc")).unwrap();
    let store = ShardedStore::open(&dir.join("MANIFEST")).unwrap();
    let lost: Vec<_> = manifest
        .routing
        .iter()
        .filter(|(_, &s)| s == 2)
        .map(|(&k, _)| k)
        .collect();
    assert!(!lost.is_empty());
    for (a, b) in lost {
        assert!(store.load_d(a, b).is_empty());
        assert!(store.load_pair(a, b).is_empty());
    }
    let err = store.take_error().expect("first failure is retrievable");
    assert!(err.to_string().contains("shard"), "{err}");
    assert!(store.take_error().is_none(), "take_error drains the slot");
    // Pairs on healthy shards still answer.
    let ok: Vec<_> = manifest
        .routing
        .iter()
        .filter(|(_, &s)| s == 0)
        .map(|(&k, _)| k)
        .collect();
    let mem = MemStore::new(tables);
    for (a, b) in ok {
        assert_eq!(store.load_d(a, b), mem.load_d(a, b));
    }
    std::fs::remove_dir_all(&dir).ok();
}
