//! Paged (format v3) store suite: lazy verified block fetch, the LRU
//! block cache, shard-aligned placement, and corruption handling.

use ktpm_closure::ClosureTables;
use ktpm_graph::fixtures::paper_graph;
use ktpm_graph::{GraphBuilder, LabeledGraph, NodeId};
use ktpm_storage::{
    open_store_auto, write_store, write_store_v3, write_store_versioned, ClosureSource,
    FormatVersion, MemStore, PagedStore, ShardSpec, StorageError,
};

fn tempfile(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("ktpm-paged-test-{}-{}", std::process::id(), name));
    p
}

/// A deterministic multi-label weighted graph big enough for multi-block
/// groups and cache churn.
fn dense_graph(n: usize, labels: usize) -> LabeledGraph {
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut b = GraphBuilder::new();
    let nodes: Vec<_> = (0..n)
        .map(|i| b.add_node(&format!("L{}", i % labels)))
        .collect();
    for u in 0..n {
        for _ in 0..4 {
            let v = (next() % n as u64) as usize;
            if v != u {
                b.add_edge(nodes[u], nodes[v], (next() % 5 + 1) as u32);
            }
        }
    }
    b.build().unwrap()
}

fn check_equivalent(mem: &MemStore, paged: &PagedStore) {
    assert_eq!(mem.num_nodes(), paged.num_nodes());
    for i in 0..mem.num_nodes() {
        let v = NodeId(i as u32);
        assert_eq!(mem.node_label(v), paged.node_label(v));
    }
    assert_eq!(mem.pair_keys(), paged.pair_keys());
    for (a, b) in mem.pair_keys() {
        assert_eq!(mem.load_d(a, b), paged.load_d(a, b), "D table {a:?}->{b:?}");
        assert_eq!(mem.load_e(a, b), paged.load_e(a, b), "E table {a:?}->{b:?}");
        let mut pm = mem.load_pair(a, b);
        let mut pp = paged.load_pair(a, b);
        pm.sort_unstable();
        pp.sort_unstable();
        assert_eq!(pm, pp, "L table {a:?}->{b:?}");
    }
    // Cursors stream identical *content* (block sizes may differ — the
    // paged cursor is aligned to on-disk blocks), and point lookups
    // agree everywhere.
    for (a, _) in mem.pair_keys() {
        for i in 0..mem.num_nodes() {
            let v = NodeId(i as u32);
            let mut cm = mem.incoming_cursor(a, v);
            let mut cp = paged.incoming_cursor(a, v);
            assert_eq!(cm.remaining(), cp.remaining());
            let drain = |c: &mut Box<dyn ktpm_storage::EdgeCursor + Send>| {
                let mut all = Vec::new();
                loop {
                    let blk = c.next_block();
                    if blk.is_empty() {
                        break;
                    }
                    all.extend(blk);
                }
                all
            };
            assert_eq!(drain(&mut cm), drain(&mut cp), "cursor {a:?} -> {v:?}");
        }
    }
    for u in 0..mem.num_nodes() {
        for v in 0..mem.num_nodes() {
            let (u, v) = (NodeId(u as u32), NodeId(v as u32));
            assert_eq!(mem.lookup_dist(u, v), paged.lookup_dist(u, v));
        }
    }
}

#[test]
fn v3_is_the_default_and_roundtrips_against_mem() {
    let g = paper_graph();
    let tables = ClosureTables::compute(&g);
    let path = tempfile("default-roundtrip");
    write_store(&tables, &path).unwrap();
    let paged = PagedStore::open(&path).unwrap();
    assert_eq!(paged.version(), FormatVersion::V3);
    paged.verify().unwrap();
    let mem = MemStore::new(tables);
    check_equivalent(&mem, &paged);
    std::fs::remove_file(&path).ok();
}

#[test]
fn tiny_blocks_roundtrip_across_block_boundaries() {
    // block_entries=1..3 force every group across many blocks; content
    // must still be identical to memory, including resumed cursors.
    let g = dense_graph(48, 5);
    let tables = ClosureTables::compute(&g);
    for be in 1..=3usize {
        let path = tempfile(&format!("tiny-{be}"));
        write_store_v3(&tables, &path, be).unwrap();
        let paged = PagedStore::open(&path).unwrap();
        assert_eq!(paged.block_entries(), be);
        paged.verify().unwrap();
        let mem = MemStore::new(tables.clone());
        check_equivalent(&mem, &paged);
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn writer_rejects_zero_block_capacity() {
    let tables = ClosureTables::compute(&paper_graph());
    let path = tempfile("zero-capacity");
    assert!(matches!(
        write_store_v3(&tables, &path, 0),
        Err(StorageError::InvalidConfig(_))
    ));
    assert!(!path.exists(), "no file may be created for a bad config");
}

#[test]
fn cache_counters_flow_and_warm_reads_skip_disk() {
    let g = dense_graph(40, 4);
    let tables = ClosureTables::compute(&g);
    let path = tempfile("warm");
    write_store_v3(&tables, &path, 4).unwrap();
    // Unlimited budget: after one cold pass every block is resident.
    let paged = PagedStore::open_with_cache_bytes(&path, 0).unwrap();
    let keys = paged.pair_keys();
    for &(a, b) in &keys {
        let _ = paged.load_pair(a, b);
    }
    let cold = paged.io();
    assert!(cold.cache_misses > 0, "cold pass must miss");
    assert_eq!(cold.cache_hits, 0);
    assert_eq!(cold.cache_evictions, 0, "unlimited budget never evicts");
    assert!(cold.cache_bytes_resident > 0);
    paged.reset_io();
    for &(a, b) in &keys {
        let _ = paged.load_pair(a, b);
    }
    let warm = paged.io();
    assert_eq!(warm.cache_misses, 0, "warm pass must be all hits");
    assert!(warm.cache_hits >= cold.cache_misses);
    assert_eq!(
        warm.block_reads, 0,
        "a warm cache serves group reads with zero disk fetches"
    );
    assert_eq!(warm.bytes_read, 0);
    std::fs::remove_file(&path).ok();
}

#[test]
fn tight_budget_bounds_resident_bytes_but_stays_correct() {
    let g = dense_graph(60, 4);
    let tables = ClosureTables::compute(&g);
    let path = tempfile("budget");
    write_store_v3(&tables, &path, 2).unwrap();
    // Budget of 4 blocks' payload (2 entries * 8B each): far below the
    // closure size, forcing constant eviction.
    let budget = 4 * 2 * 8;
    let paged = PagedStore::open_with_cache_bytes(&path, budget).unwrap();
    let mem = MemStore::new(tables);
    check_equivalent(&mem, &paged);
    let io = paged.io();
    assert!(io.cache_evictions > 0, "a tight budget must evict");
    assert!(
        io.cache_bytes_resident <= budget,
        "resident {res} exceeds budget {budget}",
        res = io.cache_bytes_resident
    );
    assert!(paged.cache_resident_bytes() <= budget);
    assert!(paged.cache_blocks() <= 4);
    std::fs::remove_file(&path).ok();
}

#[test]
fn groups_never_share_blocks_so_shards_touch_disjoint_ranges() {
    let g = dense_graph(50, 3);
    let tables = ClosureTables::compute(&g);
    let path = tempfile("shard-disjoint");
    write_store_v3(&tables, &path, 3).unwrap();
    let paged = PagedStore::open(&path).unwrap();
    let shards = ShardSpec::split(4);
    for (a, b) in paged.pair_keys() {
        let ranges = paged.group_block_ranges(a, b).unwrap();
        // Each group occupies whole blocks, non-overlapping with every
        // other group (of any pair table — offsets are absolute).
        let bb = 3 * 8 + 4;
        let mut per_shard: Vec<Vec<std::ops::Range<u64>>> = vec![Vec::new(); shards.len()];
        for (v, r) in &ranges {
            assert_eq!((r.end - r.start) % bb, 0, "group of {v:?} is whole blocks");
            let owner = shards.iter().position(|s| s.contains(*v)).unwrap();
            per_shard[owner].push(r.clone());
        }
        // Root partitions by shard touch disjoint block ranges.
        for i in 0..per_shard.len() {
            for j in i + 1..per_shard.len() {
                for x in &per_shard[i] {
                    for y in &per_shard[j] {
                        assert!(
                            x.end <= y.start || y.end <= x.start,
                            "shard {i} range {x:?} overlaps shard {j} range {y:?}"
                        );
                    }
                }
            }
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn bit_rot_in_every_block_is_surfaced_never_panics() {
    // Flip a byte in EVERY v3 group block (payload and CRC positions):
    // the scrub must report Corrupt each time, and all read paths must
    // degrade (empty/partial/exhausted cursor) without panicking.
    let g = paper_graph();
    let tables = ClosureTables::compute(&g);
    let src = tempfile("bitrot-src");
    write_store_v3(&tables, &src, 2).unwrap();
    let bytes = std::fs::read(&src).unwrap();
    std::fs::remove_file(&src).ok();

    // Collect every block's byte range up front from a clean open.
    let clean = tempfile("bitrot-clean");
    std::fs::write(&clean, &bytes).unwrap();
    let paged = PagedStore::open(&clean).unwrap();
    let bb = 2 * 8 + 4;
    let mut block_offsets = Vec::new();
    for (a, b) in paged.pair_keys() {
        for (_, range) in paged.group_block_ranges(a, b).unwrap() {
            let mut off = range.start;
            while off < range.end {
                block_offsets.push(off);
                off += bb;
            }
        }
    }
    drop(paged);
    std::fs::remove_file(&clean).ok();
    assert!(block_offsets.len() > 10, "fixture too small to mean much");

    let path = tempfile("bitrot");
    for &off in &block_offsets {
        // One flip in the payload, one in the block's CRC.
        for delta in [1u64, bb - 2] {
            let mut corrupt = bytes.clone();
            corrupt[(off + delta) as usize] ^= 0x40;
            std::fs::write(&path, &corrupt).unwrap();
            let store = PagedStore::open(&path).expect("block rot never breaks open");
            assert!(
                matches!(store.verify(), Err(StorageError::Corrupt { .. })),
                "flip at block {off}+{delta} must fail the scrub"
            );
            for (a, b) in store.pair_keys() {
                let _ = store.load_d(a, b);
                let _ = store.load_e(a, b);
                let _ = store.load_pair(a, b);
            }
            for v in 0..store.num_nodes() {
                let v = NodeId(v as u32);
                let mut cur = store.incoming_cursor(store.node_label(v), v);
                while !cur.next_block().is_empty() {}
            }
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncation_at_every_byte_errors_never_panics() {
    let g = paper_graph();
    let tables = ClosureTables::compute(&g);
    let src = tempfile("trunc-src");
    write_store(&tables, &src).unwrap();
    let bytes = std::fs::read(&src).unwrap();
    std::fs::remove_file(&src).ok();
    let path = tempfile("trunc");
    for cut in 0..bytes.len() {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let res = PagedStore::open(&path);
        assert!(
            res.is_err(),
            "truncation at {cut}/{} must fail",
            bytes.len()
        );
        if cut >= 36 {
            assert!(
                matches!(res, Err(StorageError::Corrupt { .. })),
                "truncation at {cut} should be Corrupt, got {res:?}",
                res = res.err()
            );
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn paged_store_rejects_v1_and_v2_files() {
    let tables = ClosureTables::compute(&paper_graph());
    for version in [FormatVersion::V1, FormatVersion::V2] {
        let path = tempfile(&format!("reject-{version:?}"));
        write_store_versioned(&tables, &path, version).unwrap();
        assert!(
            matches!(
                PagedStore::open(&path),
                Err(StorageError::BadFormat(m)) if m.contains("FileStore")
            ),
            "{version:?} must be BadFormat for PagedStore"
        );
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn open_store_auto_dispatches_on_version() {
    let g = paper_graph();
    let tables = ClosureTables::compute(&g);
    for version in [FormatVersion::V1, FormatVersion::V2, FormatVersion::V3] {
        let path = tempfile(&format!("auto-{version:?}"));
        write_store_versioned(&tables, &path, version).unwrap();
        let store = open_store_auto(&path, Some(0)).unwrap();
        let mem = MemStore::new(tables.clone());
        assert_eq!(store.num_nodes(), mem.num_nodes());
        for (a, b) in mem.pair_keys() {
            let mut pm = mem.load_pair(a, b);
            let mut ps = store.load_pair(a, b);
            pm.sort_unstable();
            ps.sort_unstable();
            assert_eq!(pm, ps, "{version:?} {a:?}->{b:?}");
        }
        std::fs::remove_file(&path).ok();
    }
    // Garbage is still rejected.
    let path = tempfile("auto-garbage");
    std::fs::write(&path, b"clearly not a store file at all........").unwrap();
    assert!(open_store_auto(&path, None).is_err());
    std::fs::remove_file(&path).ok();
}

#[test]
fn undirected_mirror_serves_graph_patterns() {
    let g = paper_graph();
    let tables = ClosureTables::compute(&g);
    let path = tempfile("undirected");
    write_store(&tables, &path).unwrap();
    let paged = PagedStore::open(&path).unwrap().with_graph(g.clone());
    let mirror = paged.undirected().expect("graph attached");
    let mem = MemStore::new(tables).with_graph(g);
    let mem_mirror = mem.undirected().expect("graph attached");
    assert_eq!(mirror.pair_keys(), mem_mirror.pair_keys());
    for (a, b) in mirror.pair_keys() {
        let mut pp = mirror.load_pair(a, b);
        let mut pm = mem_mirror.load_pair(a, b);
        pp.sort_unstable();
        pm.sort_unstable();
        assert_eq!(pp, pm);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn verify_bypasses_and_does_not_pollute_the_cache() {
    let g = dense_graph(30, 3);
    let tables = ClosureTables::compute(&g);
    let path = tempfile("scrub-cache");
    write_store_v3(&tables, &path, 2).unwrap();
    let paged = PagedStore::open_with_cache_bytes(&path, 0).unwrap();
    paged.verify().unwrap();
    let io = paged.io();
    assert!(io.block_reads > 0, "the scrub reads from disk");
    assert_eq!(io.cache_hits, 0);
    assert_eq!(io.cache_misses, 0, "the scrub is not cache traffic");
    assert_eq!(paged.cache_blocks(), 0, "the scrub must not pollute");
    std::fs::remove_file(&path).ok();
}
