//! File store round-trip: everything readable from a [`MemStore`] must be
//! byte-identical when read back through a [`FileStore`].

use ktpm_closure::ClosureTables;
use ktpm_graph::fixtures::paper_graph;
use ktpm_graph::{GraphBuilder, NodeId};
use ktpm_storage::{write_store, ClosureSource, FileStore, MemStore};

fn tempfile(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("ktpm-store-test-{}-{}", std::process::id(), name));
    p
}

fn check_equivalent(mem: &MemStore, file: &FileStore) {
    assert_eq!(mem.num_nodes(), file.num_nodes());
    for i in 0..mem.num_nodes() {
        let v = NodeId(i as u32);
        assert_eq!(mem.node_label(v), file.node_label(v));
    }
    assert_eq!(mem.pair_keys(), file.pair_keys());
    for (a, b) in mem.pair_keys() {
        assert_eq!(mem.load_d(a, b), file.load_d(a, b), "D table {a:?}->{b:?}");
        assert_eq!(mem.load_e(a, b), file.load_e(a, b), "E table {a:?}->{b:?}");
        let mut pm = mem.load_pair(a, b);
        let mut pf = file.load_pair(a, b);
        pm.sort_unstable();
        pf.sort_unstable();
        assert_eq!(pm, pf, "L table {a:?}->{b:?}");
    }
    // Cursors stream identical content.
    for (a, _) in mem.pair_keys() {
        for i in 0..mem.num_nodes() {
            let v = NodeId(i as u32);
            let mut cm = mem.incoming_cursor(a, v);
            let mut cf = file.incoming_cursor(a, v);
            assert_eq!(cm.remaining(), cf.remaining());
            loop {
                let bm = cm.next_block();
                let bf = cf.next_block();
                assert_eq!(bm, bf);
                if bm.is_empty() {
                    break;
                }
            }
        }
    }
}

#[test]
fn paper_graph_roundtrip() {
    let g = paper_graph();
    let tables = ClosureTables::compute(&g);
    let path = tempfile("paper");
    write_store(&tables, &path).unwrap();
    let file = FileStore::open_with_block_edges(&path, 1).unwrap();
    let mem = MemStore::with_block_edges(tables, 1);
    check_equivalent(&mem, &file);
    std::fs::remove_file(&path).ok();
}

#[test]
fn random_graph_roundtrip() {
    // Deterministic pseudo-random graph, several labels, weighted edges.
    let mut state = 0xC0FFEE123456789u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let n = 60;
    let mut b = GraphBuilder::new();
    let nodes: Vec<_> = (0..n).map(|i| b.add_node(&format!("L{}", i % 7))).collect();
    for u in 0..n {
        for _ in 0..3 {
            let v = (next() % n as u64) as usize;
            if v != u {
                b.add_edge(nodes[u], nodes[v], (next() % 4 + 1) as u32);
            }
        }
    }
    let g = b.build().unwrap();
    let tables = ClosureTables::compute(&g);
    let path = tempfile("random");
    write_store(&tables, &path).unwrap();
    let file = FileStore::open_with_block_edges(&path, 7).unwrap();
    let mem = MemStore::with_block_edges(tables, 7);
    check_equivalent(&mem, &file);
    std::fs::remove_file(&path).ok();
}

#[test]
fn file_store_counts_real_io() {
    let g = paper_graph();
    let tables = ClosureTables::compute(&g);
    let path = tempfile("iocount");
    write_store(&tables, &path).unwrap();
    let file = FileStore::open(&path).unwrap();
    file.reset_io();
    let a = g.interner().get("a").unwrap();
    let c = g.interner().get("c").unwrap();
    let d = file.load_d(a, c);
    assert!(!d.is_empty());
    let io = file.io();
    assert!(io.block_reads >= 1);
    assert!(io.bytes_read > 0);
    assert_eq!(io.d_entries, d.len() as u64);
    std::fs::remove_file(&path).ok();
}

#[test]
fn lookup_dist_matches_mem() {
    let g = paper_graph();
    let tables = ClosureTables::compute(&g);
    let path = tempfile("dist");
    write_store(&tables, &path).unwrap();
    let file = FileStore::open(&path).unwrap();
    let mem = MemStore::new(ClosureTables::compute(&g));
    for u in 0..g.num_nodes() {
        for v in 0..g.num_nodes() {
            let (u, v) = (NodeId(u as u32), NodeId(v as u32));
            assert_eq!(mem.lookup_dist(u, v), file.lookup_dist(u, v));
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn open_rejects_garbage() {
    let path = tempfile("garbage");
    std::fs::write(&path, b"this is not a closure store, not at all....").unwrap();
    assert!(FileStore::open(&path).is_err());
    std::fs::remove_file(&path).ok();
}
