//! File store round-trip: everything readable from a [`MemStore`] must be
//! byte-identical when read back through a [`FileStore`].
//!
//! [`FileStore`] reads the v1/v2 layouts, so this suite writes those
//! versions explicitly ([`write_store`] emits v3 by default now — the
//! paged suite in `paged.rs` covers that reader).

use ktpm_closure::ClosureTables;
use ktpm_graph::fixtures::paper_graph;
use ktpm_graph::{GraphBuilder, NodeId};
use ktpm_storage::{
    write_store, write_store_versioned, ClosureSource, FileStore, FormatVersion, MemStore,
};

/// Writes `tables` in the v2 layout (the newest [`FileStore`] reads).
fn write_v2(tables: &ClosureTables, path: &std::path::Path) {
    write_store_versioned(tables, path, FormatVersion::V2).unwrap();
}

fn tempfile(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("ktpm-store-test-{}-{}", std::process::id(), name));
    p
}

fn check_equivalent(mem: &MemStore, file: &FileStore) {
    assert_eq!(mem.num_nodes(), file.num_nodes());
    for i in 0..mem.num_nodes() {
        let v = NodeId(i as u32);
        assert_eq!(mem.node_label(v), file.node_label(v));
    }
    assert_eq!(mem.pair_keys(), file.pair_keys());
    for (a, b) in mem.pair_keys() {
        assert_eq!(mem.load_d(a, b), file.load_d(a, b), "D table {a:?}->{b:?}");
        assert_eq!(mem.load_e(a, b), file.load_e(a, b), "E table {a:?}->{b:?}");
        let mut pm = mem.load_pair(a, b);
        let mut pf = file.load_pair(a, b);
        pm.sort_unstable();
        pf.sort_unstable();
        assert_eq!(pm, pf, "L table {a:?}->{b:?}");
    }
    // Cursors stream identical content.
    for (a, _) in mem.pair_keys() {
        for i in 0..mem.num_nodes() {
            let v = NodeId(i as u32);
            let mut cm = mem.incoming_cursor(a, v);
            let mut cf = file.incoming_cursor(a, v);
            assert_eq!(cm.remaining(), cf.remaining());
            loop {
                let bm = cm.next_block();
                let bf = cf.next_block();
                assert_eq!(bm, bf);
                if bm.is_empty() {
                    break;
                }
            }
        }
    }
}

#[test]
fn paper_graph_roundtrip() {
    let g = paper_graph();
    let tables = ClosureTables::compute(&g);
    let path = tempfile("paper");
    write_v2(&tables, &path);
    let file = FileStore::open_with_block_edges(&path, 1).unwrap();
    let mem = MemStore::with_block_edges(tables, 1);
    check_equivalent(&mem, &file);
    std::fs::remove_file(&path).ok();
}

#[test]
fn random_graph_roundtrip() {
    // Deterministic pseudo-random graph, several labels, weighted edges.
    let mut state = 0xC0FFEE123456789u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let n = 60;
    let mut b = GraphBuilder::new();
    let nodes: Vec<_> = (0..n).map(|i| b.add_node(&format!("L{}", i % 7))).collect();
    for u in 0..n {
        for _ in 0..3 {
            let v = (next() % n as u64) as usize;
            if v != u {
                b.add_edge(nodes[u], nodes[v], (next() % 4 + 1) as u32);
            }
        }
    }
    let g = b.build().unwrap();
    let tables = ClosureTables::compute(&g);
    let path = tempfile("random");
    write_v2(&tables, &path);
    let file = FileStore::open_with_block_edges(&path, 7).unwrap();
    let mem = MemStore::with_block_edges(tables, 7);
    check_equivalent(&mem, &file);
    std::fs::remove_file(&path).ok();
}

#[test]
fn file_store_counts_real_io() {
    let g = paper_graph();
    let tables = ClosureTables::compute(&g);
    let path = tempfile("iocount");
    write_v2(&tables, &path);
    let file = FileStore::open(&path).unwrap();
    file.reset_io();
    let a = g.interner().get("a").unwrap();
    let c = g.interner().get("c").unwrap();
    let d = file.load_d(a, c);
    assert!(!d.is_empty());
    let io = file.io();
    assert!(io.block_reads >= 1);
    assert!(io.bytes_read > 0);
    assert_eq!(io.d_entries, d.len() as u64);
    std::fs::remove_file(&path).ok();
}

#[test]
fn lookup_dist_matches_mem() {
    let g = paper_graph();
    let tables = ClosureTables::compute(&g);
    let path = tempfile("dist");
    write_v2(&tables, &path);
    let file = FileStore::open(&path).unwrap();
    let mem = MemStore::new(ClosureTables::compute(&g));
    for u in 0..g.num_nodes() {
        for v in 0..g.num_nodes() {
            let (u, v) = (NodeId(u as u32), NodeId(v as u32));
            assert_eq!(mem.lookup_dist(u, v), file.lookup_dist(u, v));
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn zero_block_edges_is_an_explicit_config_error() {
    // A cursor block size of 0 used to clamp silently to 1; it must be
    // reported as InvalidConfig so callers learn their knob was wrong.
    let g = paper_graph();
    let tables = ClosureTables::compute(&g);
    let path = tempfile("zero-block-edges");
    write_v2(&tables, &path);
    match FileStore::open_with_block_edges(&path, 0) {
        Err(ktpm_storage::StorageError::InvalidConfig(m)) => {
            assert!(m.contains("at least 1"), "unhelpful message: {m}")
        }
        other => panic!(
            "block_edges=0 must be InvalidConfig, got {err:?}",
            err = other.err()
        ),
    }
    // A size of 1 remains valid.
    assert!(FileStore::open_with_block_edges(&path, 1).is_ok());
    std::fs::remove_file(&path).ok();
}

#[test]
fn open_rejects_garbage() {
    let path = tempfile("garbage");
    std::fs::write(&path, b"this is not a closure store, not at all....").unwrap();
    assert!(FileStore::open(&path).is_err());
    std::fs::remove_file(&path).ok();
}

/// A valid store's bytes, for the corruption tests below. `name` must
/// be unique per test: tests run concurrently in one process, so a
/// shared scratch path would race write/read/delete.
fn store_bytes(name: &str) -> Vec<u8> {
    let g = paper_graph();
    let tables = ClosureTables::compute(&g);
    let path = tempfile(name);
    write_v2(&tables, &path);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    bytes
}

#[test]
fn open_truncated_at_every_byte_returns_err_never_panics() {
    // Truncate the snapshot at EVERY byte boundary — through the magic,
    // the header counts, the label table, every section and the footer.
    // Open must return Err (Corrupt once the header magic survives,
    // i.e. cut >= 8 and len >= the minimum) and never panic or abort.
    let bytes = store_bytes("bytes-truncated-src");
    let path = tempfile("truncated");
    for cut in 0..bytes.len() {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let res = FileStore::open(&path);
        assert!(
            res.is_err(),
            "truncation at {cut}/{} must fail",
            bytes.len()
        );
        if cut >= 32 {
            // Header magic intact and past the minimum length: the
            // failure must be diagnosed as corruption, not format.
            assert!(
                matches!(res, Err(ktpm_storage::StorageError::Corrupt { .. })),
                "truncation at {cut} should be Corrupt, got {res:?}",
                res = res.err()
            );
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupt_index_offset_is_rejected_not_followed() {
    // Point the footer's index offset past EOF: open must fail with
    // Corrupt instead of seeking into the void or allocating by a
    // garbage count.
    let mut bytes = store_bytes("bytes-badindex-src");
    let n = bytes.len();
    bytes[n - 16..n - 8].copy_from_slice(&(u64::MAX - 7).to_le_bytes());
    let path = tempfile("badindex");
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        FileStore::open(&path),
        Err(ktpm_storage::StorageError::Corrupt { .. })
    ));
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupt_section_counts_degrade_to_empty_tables_without_panic() {
    // Blow up the first pair's D-section count (the first 4 bytes after
    // the label table). Open succeeds — the header/index are intact —
    // and the poisoned reads return empty instead of allocating
    // count * 8 bytes or panicking.
    let g = paper_graph();
    let tables = ClosureTables::compute(&g);
    let path = tempfile("badcount");
    write_v2(&tables, &path);
    let mut bytes = std::fs::read(&path).unwrap();
    let d_off = 16 + g.num_nodes() * 4 + 4; // header + labels + header crc
    bytes[d_off..d_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    let store = FileStore::open(&path).unwrap();
    for (a, b) in store.pair_keys() {
        // The first pair's D read hits the corrupt count; all reads
        // must complete without panicking.
        let _ = store.load_d(a, b);
        let _ = store.load_e(a, b);
        let _ = store.load_pair(a, b);
    }
    // The scrub pinpoints the damaged section.
    assert!(matches!(
        store.verify(),
        Err(ktpm_storage::StorageError::Corrupt { .. })
    ));
    std::fs::remove_file(&path).ok();
}

#[test]
fn v1_files_without_checksums_still_open_and_read() {
    // Format-version compatibility: a store written in the legacy v1
    // layout (magic KTPMCLO1, no per-section checksums) must read back
    // byte-identically to the MemStore, and verify() is a no-op Ok.
    let g = paper_graph();
    let tables = ClosureTables::compute(&g);
    let path = tempfile("v1-compat");
    write_store_versioned(&tables, &path, FormatVersion::V1).unwrap();
    let file = FileStore::open_with_block_edges(&path, 1).unwrap();
    assert_eq!(file.version(), FormatVersion::V1);
    file.verify().unwrap();
    let mem = MemStore::with_block_edges(tables, 1);
    check_equivalent(&mem, &file);
    std::fs::remove_file(&path).ok();
}

#[test]
fn v2_files_open_and_verify_clean() {
    let g = paper_graph();
    let tables = ClosureTables::compute(&g);
    let path = tempfile("v2-clean");
    write_v2(&tables, &path);
    let file = FileStore::open(&path).unwrap();
    assert_eq!(file.version(), FormatVersion::V2);
    file.verify().unwrap();
    std::fs::remove_file(&path).ok();
}

#[test]
fn v3_default_output_is_rejected_with_a_pointer_to_paged_store() {
    // write_store now emits v3; FileStore must refuse it with a
    // BadFormat that names the right reader, not misparse it.
    let g = paper_graph();
    let tables = ClosureTables::compute(&g);
    let path = tempfile("v3-reject");
    write_store(&tables, &path).unwrap();
    match FileStore::open(&path) {
        Err(ktpm_storage::StorageError::BadFormat(m)) => {
            assert!(m.contains("PagedStore"), "unhelpful message: {m}")
        }
        other => panic!(
            "v3 store must be BadFormat for FileStore, got {other:?}",
            other = other.err()
        ),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn bit_rot_in_any_data_byte_is_caught_by_the_scrub() {
    // Flip one bit in every byte between the header and the index:
    // either open fails (header/label/index damage) or verify() — the
    // eager whole-store scrub — reports Corrupt. Data-section rot can
    // never go unnoticed on a v2 snapshot. (Step 7 keeps the loop
    // cheap; offsets cover all sections over the run.)
    let bytes = store_bytes("bytes-bitrot-src");
    let path = tempfile("bitrot");
    for pos in (8..bytes.len() - 16).step_by(7) {
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 0x10;
        std::fs::write(&path, &corrupt).unwrap();
        match FileStore::open(&path) {
            Err(_) => {}
            Ok(store) => {
                assert!(
                    matches!(
                        store.verify(),
                        Err(ktpm_storage::StorageError::Corrupt { .. })
                    ),
                    "bit flip at {pos} must be caught by open or verify"
                );
            }
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupt_v1_directories_never_panic_the_unchecked_read_paths() {
    // v1 snapshots have NO checksums, so corrupt directory offsets
    // reach the group-region arithmetic unverified. Flip bits at every
    // position (two masks, so high offset bytes get hit too) and drive
    // every read path: reads may degrade to empty/partial but must
    // never panic — including the off < base and end-overflow cases in
    // load_pair's region arithmetic.
    let g = paper_graph();
    let tables = ClosureTables::compute(&g);
    let path = tempfile("v1-bitrot-src");
    write_store_versioned(&tables, &path, FormatVersion::V1).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let path = tempfile("v1-bitrot");
    for mask in [0x01u8, 0x80] {
        for pos in (8..bytes.len() - 16).step_by(3) {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= mask;
            std::fs::write(&path, &corrupt).unwrap();
            let Ok(store) = FileStore::open(&path) else {
                continue;
            };
            let _ = store.verify();
            for (a, b) in store.pair_keys() {
                let _ = store.load_d(a, b);
                let _ = store.load_e(a, b);
                let _ = store.load_pair(a, b);
            }
            for v in 0..store.num_nodes() {
                let v = NodeId(v as u32);
                let mut cur = store.incoming_cursor(store.node_label(v), v);
                while !cur.next_block().is_empty() {}
            }
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn crc_mismatch_degrades_infallible_reads_to_empty() {
    // Corrupt a byte inside the first pair's D payload (past its
    // count): open succeeds, the poisoned D read returns empty rather
    // than garbage, and the other sections still read.
    let g = paper_graph();
    let tables = ClosureTables::compute(&g);
    let path = tempfile("crc-degrade");
    write_v2(&tables, &path);
    let mut bytes = std::fs::read(&path).unwrap();
    let d_payload = 16 + g.num_nodes() * 4 + 4 + 4; // header, labels, hdr crc, D count
    bytes[d_payload] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    let store = FileStore::open(&path).unwrap();
    let first = store.pair_keys()[0];
    assert!(
        store.load_d(first.0, first.1).is_empty(),
        "a checksum-failed D section must read as empty, not as garbage"
    );
    assert!(matches!(
        store.verify(),
        Err(ktpm_storage::StorageError::Corrupt { .. })
    ));
    std::fs::remove_file(&path).ok();
}
