//! Per-query-node candidate sets.
//!
//! Candidate discovery differs by loading mode:
//!
//! * **Full mode** ([`CandidateSets::from_labels`]) — every data node with
//!   the right label is a candidate (§3.2's `V_i`); wildcards admit every
//!   node.
//! * **Priority mode** ([`CandidateSets::from_d_tables`]) — non-root
//!   candidates come from the `Dᵅᵦ` tables (only nodes with at least one
//!   incoming closure edge from the parent label can ever be matched),
//!   which is both what §4.1 loads at initialization and a useful pruning.

use ktpm_graph::{Dist, NodeId};
use ktpm_query::{EdgeKind, QNodeId, QueryLabel, ResolvedQuery};
use ktpm_storage::{ClosureSource, ShardSpec};
use std::collections::HashMap;

/// Candidate sets `V_u` for every query node, with dense per-node indices.
#[derive(Debug, Clone)]
pub struct CandidateSets {
    /// `cands[u]` — candidate data nodes of query node `u`, ascending.
    cands: Vec<Vec<NodeId>>,
    /// `index[u]` — reverse map data node -> dense candidate index.
    index: Vec<HashMap<NodeId, u32>>,
}

impl CandidateSets {
    /// Full-mode discovery: all nodes carrying the query label.
    pub fn from_labels(query: &ResolvedQuery, source: &dyn ClosureSource) -> Self {
        let n_t = query.len();
        let mut cands: Vec<Vec<NodeId>> = vec![Vec::new(); n_t];
        for i in 0..source.num_nodes() {
            let v = NodeId(i as u32);
            let l = source.node_label(v);
            for u in query.tree().node_ids() {
                match query.label(u) {
                    QueryLabel::Label(ql) if ql == l => cands[u.index()].push(v),
                    QueryLabel::Wildcard => cands[u.index()].push(v),
                    _ => {}
                }
            }
        }
        Self::finish(cands)
    }

    /// Priority-mode discovery from `D` tables: the root keeps its full
    /// label bucket; every other node keeps only nodes with at least one
    /// incoming closure edge from the parent's label. Returns the sets and
    /// the initial `eᵥ` lower bounds (`dᵅᵥ`, §4.1) per candidate.
    pub fn from_d_tables(
        query: &ResolvedQuery,
        source: &dyn ClosureSource,
    ) -> (Self, Vec<Vec<Dist>>) {
        Self::from_d_tables_sharded(query, source, ShardSpec::full())
    }

    /// As [`Self::from_d_tables`] with the *root* bucket restricted to
    /// `shard`. Non-root sets are untouched: a shard owns every match
    /// whose root lies in it, and subtree nodes are unconstrained.
    pub fn from_d_tables_sharded(
        query: &ResolvedQuery,
        source: &dyn ClosureSource,
        shard: ShardSpec,
    ) -> (Self, Vec<Vec<Dist>>) {
        let n_t = query.len();
        let mut cands: Vec<Vec<NodeId>> = vec![Vec::new(); n_t];
        let mut evs: Vec<Vec<Dist>> = vec![Vec::new(); n_t];
        // Root: full label bucket (root nodes need no incoming edges),
        // restricted to the requested shard.
        for i in 0..source.num_nodes() {
            let v = NodeId(i as u32);
            if !shard.contains(v) {
                continue;
            }
            let l = source.node_label(v);
            match query.label(query.tree().root()) {
                QueryLabel::Label(ql) if ql == l => cands[0].push(v),
                QueryLabel::Wildcard => cands[0].push(v),
                _ => {}
            }
        }
        evs[0] = vec![0; cands[0].len()];
        // Non-root: D-table driven.
        for u in query.tree().node_ids().skip(1) {
            let p = query.tree().parent(u).expect("non-root");
            let direct_only = query.tree().edge_kind(u) == EdgeKind::Child;
            let mut merged: HashMap<NodeId, Dist> = HashMap::new();
            for (a, b) in label_pairs(query, source, p, u) {
                for (v, d) in source.load_d(a, b) {
                    merged
                        .entry(v)
                        .and_modify(|cur| *cur = (*cur).min(d))
                        .or_insert(d);
                }
            }
            let mut list: Vec<(NodeId, Dist)> = merged
                .into_iter()
                .filter(|&(_, d)| !direct_only || d == 1)
                .collect();
            list.sort_unstable_by_key(|&(v, _)| v);
            for (v, d) in list {
                cands[u.index()].push(v);
                evs[u.index()].push(d);
            }
        }
        (Self::finish(cands), evs)
    }

    /// Wraps externally discovered candidate lists (one per query node,
    /// each ascending by data node id), building the reverse indices.
    /// Used by setup caches that derive candidate sets from an already
    /// loaded run-time graph instead of re-sweeping storage.
    pub fn from_lists(cands: Vec<Vec<NodeId>>) -> Self {
        Self::finish(cands)
    }

    /// These sets with the *root* bucket restricted to `shard` (query
    /// node 0); every other set is copied unchanged, mirroring
    /// [`Self::from_d_tables_sharded`]. Each call deep-clones the lists
    /// and rebuilds the reverse indices — O(total candidates) — so that
    /// root candidate indices stay dense; callers taking many shards of
    /// one query pay that copy per shard (still far cheaper than the
    /// per-shard storage sweeps it replaces).
    pub fn restrict_root(&self, shard: ShardSpec) -> Self {
        let mut cands = self.cands.clone();
        cands[0].retain(|&v| shard.contains(v));
        Self::finish(cands)
    }

    fn finish(cands: Vec<Vec<NodeId>>) -> Self {
        let index = cands
            .iter()
            .map(|list| {
                list.iter()
                    .enumerate()
                    .map(|(i, &v)| (v, i as u32))
                    .collect()
            })
            .collect();
        CandidateSets { cands, index }
    }

    /// Candidates of query node `u`, ascending by data node id.
    #[inline]
    pub fn of(&self, u: QNodeId) -> &[NodeId] {
        &self.cands[u.index()]
    }

    /// Dense index of data node `v` within `u`'s candidate set.
    #[inline]
    pub fn index_of(&self, u: QNodeId, v: NodeId) -> Option<u32> {
        self.index[u.index()].get(&v).copied()
    }

    /// The data node at a dense index.
    #[inline]
    pub fn node(&self, u: QNodeId, idx: u32) -> NodeId {
        self.cands[u.index()][idx as usize]
    }

    /// Number of candidates of `u`.
    #[inline]
    pub fn len(&self, u: QNodeId) -> usize {
        self.cands[u.index()].len()
    }

    /// Whether any query node has an empty candidate set (no matches).
    pub fn any_empty(&self) -> bool {
        self.cands.iter().any(Vec::is_empty)
    }

    /// Total candidates across all query nodes (the paper's `n_R`, with
    /// per-query-node copies counted separately as §5 prescribes).
    pub fn total(&self) -> usize {
        self.cands.iter().map(Vec::len).sum()
    }
}

/// The closure label pairs feeding query edge `(p, u)`: the cross product
/// of the endpoint label sets, restricted to non-empty tables. Wildcards
/// expand to every label present in the store.
pub fn label_pairs(
    query: &ResolvedQuery,
    source: &dyn ClosureSource,
    p: QNodeId,
    u: QNodeId,
) -> Vec<(ktpm_graph::LabelId, ktpm_graph::LabelId)> {
    let keys = source.pair_keys();
    keys.into_iter()
        .filter(|&(a, b)| {
            let src_ok = match query.label(p) {
                QueryLabel::Label(l) => l == a,
                QueryLabel::Wildcard => true,
                QueryLabel::Unmatchable => false,
            };
            let dst_ok = match query.label(u) {
                QueryLabel::Label(l) => l == b,
                QueryLabel::Wildcard => true,
                QueryLabel::Unmatchable => false,
            };
            src_ok && dst_ok
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ktpm_closure::ClosureTables;
    use ktpm_graph::fixtures::paper_graph;
    use ktpm_query::TreeQuery;
    use ktpm_storage::MemStore;

    fn setup(query_text: &str) -> (MemStore, ResolvedQuery) {
        let g = paper_graph();
        let q = TreeQuery::parse(query_text).unwrap().resolve(g.interner());
        (MemStore::new(ClosureTables::compute(&g)), q)
    }

    #[test]
    fn full_mode_uses_label_buckets() {
        let (store, q) = setup("a -> b\na -> c\nc -> d\nc -> e");
        let sets = CandidateSets::from_labels(&q, &store);
        assert_eq!(sets.of(QNodeId(0)), &[NodeId(0), NodeId(1)]); // v1, v2
        assert_eq!(sets.total(), 10); // 2 per label, 5 query nodes
        assert!(!sets.any_empty());
        assert_eq!(sets.index_of(QNodeId(0), NodeId(1)), Some(1));
        assert_eq!(sets.node(QNodeId(0), 1), NodeId(1));
    }

    #[test]
    fn d_mode_prunes_unreachable_candidates() {
        let (store, q) = setup("a -> b\na -> c\nc -> d\nc -> e");
        let (sets, evs) = CandidateSets::from_d_tables(&q, &store);
        // Root keeps both a-nodes.
        assert_eq!(sets.len(QNodeId(0)), 2);
        // b-candidates reachable from a: v3 (dist 1) and v4 (dist 2).
        let b_node = q
            .tree()
            .node_ids()
            .find(|&u| q.tree().label_name(u) == Some("b"))
            .unwrap();
        assert_eq!(sets.of(b_node), &[NodeId(2), NodeId(3)]);
        // d^a_{v3} = 1 (v1->v3); d^a_{v4} = 2 (v1->v3->v4).
        assert_eq!(evs[b_node.index()], vec![1, 2]);
    }

    #[test]
    fn d_mode_child_edge_requires_distance_one() {
        // '/' edge from c to e: direct edges only. v9 has δ(v5,v9)=1 so it
        // stays; but with parent b -> e nothing is at distance 1.
        let (store, q) = setup("c => e");
        let (sets, _) = CandidateSets::from_d_tables(&q, &store);
        let e_node = QNodeId(1);
        assert_eq!(sets.of(e_node), &[NodeId(8)]); // only v9 (δ(v5,v9)=1)
    }

    #[test]
    fn sharded_d_mode_partitions_only_the_root_bucket() {
        let (store, q) = setup("a -> b\na -> c\nc -> d\nc -> e");
        let (full, full_evs) = CandidateSets::from_d_tables(&q, &store);
        let shards = ShardSpec::split(3);
        let mut roots_seen = Vec::new();
        for &s in &shards {
            let (part, evs) = CandidateSets::from_d_tables_sharded(&q, &store, s);
            // Root bucket: exactly the full bucket's members in this shard.
            let want: Vec<NodeId> = full
                .of(QNodeId(0))
                .iter()
                .copied()
                .filter(|&v| s.contains(v))
                .collect();
            assert_eq!(part.of(QNodeId(0)), want.as_slice());
            roots_seen.extend(want);
            // Every non-root set (and its bounds) is untouched.
            for u in q.tree().node_ids().skip(1) {
                assert_eq!(part.of(u), full.of(u));
                assert_eq!(evs[u.index()], full_evs[u.index()]);
            }
        }
        roots_seen.sort_unstable();
        assert_eq!(roots_seen, full.of(QNodeId(0)));
    }

    #[test]
    fn wildcard_admits_every_node() {
        let (store, q) = setup("a -> *#1");
        let sets = CandidateSets::from_labels(&q, &store);
        assert_eq!(sets.len(QNodeId(1)), 13);
    }

    #[test]
    fn unmatchable_label_is_empty() {
        let (store, q) = setup("a -> nosuchlabel");
        let sets = CandidateSets::from_labels(&q, &store);
        assert!(sets.any_empty());
    }

    #[test]
    fn label_pairs_for_wildcard_edges() {
        let (store, q) = setup("a -> *#1");
        let pairs = label_pairs(&q, &store, QNodeId(0), QNodeId(1));
        // Every pair key starting from label 'a'.
        let g = paper_graph();
        let a = g.interner().get("a").unwrap();
        assert!(!pairs.is_empty());
        assert!(pairs.iter().all(|&(x, _)| x == a));
    }
}
