//! The fully-loaded run-time graph.

use crate::candidates::{label_pairs, CandidateSets};
use ktpm_graph::{Dist, NodeId};
use ktpm_query::{EdgeKind, QNodeId, ResolvedQuery};
use ktpm_storage::ClosureSource;
use std::sync::Arc;

/// A run-time graph held either by borrow (one-shot queries) or by
/// shared ownership (session-resident enumerators that must be
/// `'static` and `Send`). `RuntimeGraph` is plain immutable data, so a
/// shared handle needs no locking.
pub enum GraphRef<'g> {
    /// Borrowed for the duration of one query.
    Borrowed(&'g RuntimeGraph),
    /// Shared ownership; the `'static` variant used by sessions.
    Shared(Arc<RuntimeGraph>),
}

impl GraphRef<'_> {
    /// The underlying graph.
    #[inline]
    pub fn get(&self) -> &RuntimeGraph {
        match self {
            GraphRef::Borrowed(g) => g,
            GraphRef::Shared(a) => a.as_ref(),
        }
    }
}

impl<'g> From<&'g RuntimeGraph> for GraphRef<'g> {
    fn from(g: &'g RuntimeGraph) -> Self {
        GraphRef::Borrowed(g)
    }
}

impl From<Arc<RuntimeGraph>> for GraphRef<'static> {
    fn from(g: Arc<RuntimeGraph>) -> Self {
        GraphRef::Shared(g)
    }
}

/// Size statistics of a run-time graph (Table 3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeStats {
    /// `n_R` — candidate count summed over query nodes.
    pub nodes: usize,
    /// `m_R` — edges of the run-time graph.
    pub edges: usize,
    /// `d_R` — maximum size of one `(parent candidate, child slot)` group.
    pub max_group: usize,
}

/// A fully-loaded run-time graph for one query.
///
/// Edges are grouped per `(child query node, parent candidate index)`:
/// `edges(u, i)` is the paper's `v.childrenᵅ` for `v = ` candidate `i` of
/// `parent(u)` and `α = l(u)`. Entries are `(child candidate index, dist)`.
#[derive(Debug, Clone)]
pub struct RuntimeGraph {
    query: ResolvedQuery,
    cands: CandidateSets,
    /// `adj[u][parent_idx]` for `u >= 1`; `adj[0]` is empty (root).
    adj: Vec<Vec<Vec<(u32, Dist)>>>,
    edges: usize,
}

impl RuntimeGraph {
    /// Loads the run-time graph for `query` from `source` (§3.1 "Run-Time
    /// Graph Identification": one table read per query edge's label pair).
    pub fn load(query: &ResolvedQuery, source: &dyn ClosureSource) -> Self {
        let cands = CandidateSets::from_labels(query, source);
        let n_t = query.len();
        let mut adj: Vec<Vec<Vec<(u32, Dist)>>> = Vec::with_capacity(n_t);
        for u in query.tree().node_ids() {
            match query.tree().parent(u) {
                // Groups are indexed by the *parent's* candidate index.
                Some(p) => adj.push(vec![Vec::new(); cands.len(p)]),
                None => adj.push(Vec::new()),
            }
        }
        let mut edges = 0;
        for u in query.tree().node_ids().skip(1) {
            let p = query.tree().parent(u).expect("non-root");
            let direct_only = query.tree().edge_kind(u) == EdgeKind::Child;
            for (a, b) in label_pairs(query, source, p, u) {
                for (src, dst, dist) in source.load_pair(a, b) {
                    if direct_only && dist != 1 {
                        continue;
                    }
                    let (Some(pi), Some(ci)) = (cands.index_of(p, src), cands.index_of(u, dst))
                    else {
                        continue;
                    };
                    adj[u.index()][pi as usize].push((ci, dist));
                    edges += 1;
                }
            }
        }
        // Deterministic group order (ascending child index).
        for groups in &mut adj {
            for g in groups {
                g.sort_unstable_by_key(|&(ci, d)| (d, ci));
            }
        }
        RuntimeGraph {
            query: query.clone(),
            cands,
            adj,
            edges,
        }
    }

    /// The query this graph serves.
    pub fn query(&self) -> &ResolvedQuery {
        &self.query
    }

    /// The candidate sets.
    pub fn candidates(&self) -> &CandidateSets {
        &self.cands
    }

    /// The edge group from candidate `parent_idx` of `parent(u)` into
    /// candidates of `u`, sorted by distance.
    #[inline]
    pub fn edges(&self, u: QNodeId, parent_idx: u32) -> &[(u32, Dist)] {
        &self.adj[u.index()][parent_idx as usize]
    }

    /// The data node behind candidate `idx` of query node `u`.
    #[inline]
    pub fn node(&self, u: QNodeId, idx: u32) -> NodeId {
        self.cands.node(u, idx)
    }

    /// Total run-time graph edges (`m_R`).
    pub fn num_edges(&self) -> usize {
        self.edges
    }

    /// Statistics for Table 3 style reporting.
    pub fn stats(&self) -> RuntimeStats {
        let max_group = self
            .adj
            .iter()
            .flat_map(|groups| groups.iter().map(Vec::len))
            .max()
            .unwrap_or(0);
        RuntimeStats {
            nodes: self.cands.total(),
            edges: self.edges,
            max_group,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ktpm_closure::ClosureTables;
    use ktpm_graph::fixtures::paper_graph;
    use ktpm_query::TreeQuery;
    use ktpm_storage::MemStore;

    fn rg(query_text: &str) -> RuntimeGraph {
        let g = paper_graph();
        let q = TreeQuery::parse(query_text).unwrap().resolve(g.interner());
        let store = MemStore::new(ClosureTables::compute(&g));
        RuntimeGraph::load(&q, &store)
    }

    #[test]
    fn fig2_runtime_graph_structure() {
        let g = rg("a -> b\na -> c\nc -> d\nc -> e");
        // Query BFS order: a(0), b(1), c(2), d(3), e(4).
        let stats = g.stats();
        assert_eq!(stats.nodes, 10);
        assert!(stats.edges > 0);
        // v1 (root cand 0) reaches both b-candidates: v3 at 1, v4 at 2.
        let b = QNodeId(1);
        let groups = g.edges(b, 0);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].1, 1);
        assert_eq!(groups[1].1, 2);
        // Groups sorted by distance.
        for u in g.query().tree().node_ids().skip(1) {
            let p = g.query().tree().parent(u).unwrap();
            for pi in 0..g.candidates().len(p) as u32 {
                let grp = g.edges(u, pi);
                assert!(grp.windows(2).all(|w| w[0].1 <= w[1].1));
            }
        }
    }

    #[test]
    fn child_edge_filters_distance() {
        let with_slash = rg("a => b");
        let with_desc = rg("a -> b");
        assert!(with_slash.num_edges() < with_desc.num_edges());
        // Only distance-1 entries survive.
        let b = QNodeId(1);
        for pi in 0..with_slash.candidates().len(QNodeId(0)) as u32 {
            for &(_, d) in with_slash.edges(b, pi) {
                assert_eq!(d, 1);
            }
        }
    }

    #[test]
    fn children_group_matches_paper_example() {
        // §3.1: "in Figure 2(d), v1.children_c = {v5, v6}".
        let g = rg("a -> c");
        let c = QNodeId(1);
        let v1 = 0u32; // candidate index of v1 within a-candidates
        let children: Vec<NodeId> = g
            .edges(c, v1)
            .iter()
            .map(|&(ci, _)| g.node(c, ci))
            .collect();
        assert_eq!(children, vec![NodeId(4), NodeId(5)]); // v5, v6 at dist 1 each
    }

    #[test]
    fn duplicate_labels_make_separate_candidate_sets() {
        let g = rg("a#1 -> a#2");
        // Both query nodes get both a-nodes as candidates.
        assert_eq!(g.candidates().len(QNodeId(0)), 2);
        assert_eq!(g.candidates().len(QNodeId(1)), 2);
        // Only v2 -> v1 exists among a-pairs.
        let child = QNodeId(1);
        let v2_idx = g.candidates().index_of(QNodeId(0), NodeId(1)).unwrap();
        assert_eq!(g.edges(child, v2_idx), &[(0, 1)]); // v2 -> v1 dist 1
        let v1_idx = g.candidates().index_of(QNodeId(0), NodeId(0)).unwrap();
        assert!(g.edges(child, v1_idx).is_empty());
    }

    #[test]
    fn wildcard_child_collects_all_labels() {
        let g = rg("c -> *#1");
        let star = QNodeId(1);
        let v5_idx = g.candidates().index_of(QNodeId(0), NodeId(4)).unwrap();
        // v5 reaches v7,v8,v9,v10,v11,v13 — 6 nodes of assorted labels.
        assert_eq!(g.edges(star, v5_idx).len(), 6);
    }

    #[test]
    fn empty_query_label_gives_empty_graph() {
        let g = rg("a -> nolabel");
        assert_eq!(g.num_edges(), 0);
        assert!(g.candidates().any_empty());
    }
}
