//! # ktpm-runtime
//!
//! Run-time graph construction (§3.1 of the paper).
//!
//! The run-time graph `G_R` is the subgraph of the transitive closure
//! induced by the query's label pairs: a closure edge `(v, v')` belongs to
//! `G_R` iff some query edge `(u, u')` has `l(u) = l(v)` and
//! `l(u') = l(v')`.
//!
//! This crate generalizes the paper's per-label formulation to a
//! **per-query-node** one: each query node `u` owns a candidate set
//! `V_u` (§3.2's `V_i`), and edges are grouped per `(parent candidate,
//! child query node)` — identical to the paper's `v.childrenᵅ` when node
//! labels are distinct, and exactly the "node copies per query level"
//! construction §5 prescribes for duplicate labels and wildcards. `/`
//! edges keep only closure entries of distance 1.
//!
//! [`RuntimeGraph`] is the fully-loaded form consumed by `Topk` and
//! `DP-B`; the priority-based algorithms assemble the same structures
//! lazily (see `ktpm-core`) and reuse [`CandidateSets`].

mod candidates;
mod rgraph;

pub use candidates::{label_pairs, CandidateSets};
pub use rgraph::{GraphRef, RuntimeGraph, RuntimeStats};
