//! Integration tests for the event-loop serving tier: pipelining (on
//! both front ends, byte-identical), explicit shedding, idle timeouts,
//! janitor cadence, and a many-session concurrency check.

use ktpm_closure::ClosureTables;
use ktpm_core::topk_full;
use ktpm_graph::fixtures::citation_graph;
use ktpm_graph::{LabeledGraph, Score};
use ktpm_net::{EventServer, NetConfig};
use ktpm_query::TreeQuery;
use ktpm_service::{QueryEngine, Server, ServiceConfig, ServiceHandle};
use ktpm_storage::MemStore;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::{Duration, Instant};

fn handle_with(config: ServiceConfig) -> ServiceHandle {
    let g = citation_graph();
    // Attach the data graph so `OPEN kgpm` sessions have an undirected
    // mirror to plan over; tree algorithms never look at it.
    let store = MemStore::new(ClosureTables::compute(&g))
        .with_graph(g.clone())
        .into_shared();
    QueryEngine::new(g.interner().clone(), store, config)
}

fn small_config() -> ServiceConfig {
    ServiceConfig::new().with_workers(2)
}

/// Oracle scores for the query both pipelining tests use.
fn oracle_scores(g: &LabeledGraph, query: &str, k: usize) -> Vec<Score> {
    let store = MemStore::new(ClosureTables::compute(g));
    let q = TreeQuery::parse(query).unwrap().resolve(g.interner());
    topk_full(&q, &store, k).iter().map(|m| m.score).collect()
}

/// Writes every line back-to-back without reading anything, half-closes
/// the write side, and returns the complete response stream. This is
/// pipelining in its purest form: if the server required a round-trip
/// per request, or answered out of order, the returned text would show
/// it.
fn pipeline_exchange(addr: SocketAddr, lines: &[&str]) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut batch = String::new();
    for l in lines {
        batch.push_str(l);
        batch.push('\n');
    }
    stream.write_all(batch.as_bytes()).unwrap();
    stream.flush().unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    out
}

/// The pipelined script both front ends must answer identically. A
/// fresh engine assigns session ids 1, 2, ... so the `NEXT`/`CLOSE`
/// lines can target the ids the `OPEN`s *will* return.
const SCRIPT: &[&str] = &[
    "OPEN topk-en C -> E; C -> S",
    "NEXT 1 2",
    "NEXT 1 2",
    "NEXT 1 10",
    "OPEN topk C -> S",
    "NEXT 2 5",
    "CLOSE 2",
    "CLOSE 1",
    "NEXT 1 1",
];

fn check_script_response(resp: &str) {
    let lines: Vec<&str> = resp.lines().collect();
    // 9 requests; the three-batch NEXT sequence over the 5-match result
    // adds 2 + 2 + 1 match lines, and `NEXT 2 5` adds its own matches.
    assert_eq!(lines[0], "OK 1", "first OPEN");
    assert!(lines[1].starts_with("OK 2 MORE"), "{resp:?}");
    assert!(lines[4].starts_with("OK 2 MORE"), "{resp:?}");
    assert!(lines[7].starts_with("OK 1 DONE"), "{resp:?}");
    let g = citation_graph();
    let expected = oracle_scores(&g, "C -> E\nC -> S", 10);
    let got: Vec<Score> = lines
        .iter()
        .take(9)
        .filter(|l| l.starts_with("M "))
        .map(|l| l.split_whitespace().nth(1).unwrap().parse().unwrap())
        .collect();
    assert_eq!(got, expected, "pipelined batches stream the oracle order");
    assert_eq!(lines[9], "OK 2", "second OPEN");
    assert!(lines[10].starts_with("OK "), "{resp:?}");
    assert_eq!(*lines.last().unwrap(), "ERR unknown-session 1");
    assert!(
        lines[lines.len() - 3..].starts_with(&["OK closed", "OK closed"]),
        "CLOSE responses arrive in order: {resp:?}"
    );
}

#[test]
fn pipelined_requests_answer_in_order_on_both_front_ends() {
    // Event loop.
    let ev = EventServer::spawn(
        handle_with(small_config()),
        ("127.0.0.1", 0),
        NetConfig::default(),
    )
    .unwrap();
    let ev_resp = pipeline_exchange(ev.local_addr(), SCRIPT);
    check_script_response(&ev_resp);

    // Legacy thread-per-connection path: same script, written fully
    // before any read.
    let legacy = Server::spawn(handle_with(small_config()), ("127.0.0.1", 0)).unwrap();
    let legacy_resp = pipeline_exchange(legacy.local_addr(), SCRIPT);
    check_script_response(&legacy_resp);

    // The acceptance bar: byte-identical response streams.
    assert_eq!(ev_resp, legacy_resp);

    ev.shutdown();
    legacy.shutdown();
}

#[test]
fn kgpm_patterns_stream_identically_on_both_front_ends() {
    // A cyclic graph pattern is not tree-parseable, so this exercises
    // the pattern branch of `OPEN` end to end over the wire. The
    // triangle has 12 matches on citation_graph; pull them in two
    // batches and drain.
    let script: &[&str] = &[
        "OPEN kgpm C -> E; E -> S; S -> C",
        "NEXT 1 4",
        "NEXT 1 100",
        "CLOSE 1",
    ];
    let ev = EventServer::spawn(
        handle_with(small_config()),
        ("127.0.0.1", 0),
        NetConfig::default(),
    )
    .unwrap();
    let ev_resp = pipeline_exchange(ev.local_addr(), script);

    let legacy = Server::spawn(handle_with(small_config()), ("127.0.0.1", 0)).unwrap();
    let legacy_resp = pipeline_exchange(legacy.local_addr(), script);

    assert_eq!(ev_resp, legacy_resp, "front ends agree byte-for-byte");

    let lines: Vec<&str> = ev_resp.lines().collect();
    assert_eq!(lines[0], "OK 1", "OPEN kgpm: {ev_resp:?}");
    let scores: Vec<Score> = lines
        .iter()
        .filter(|l| l.starts_with("M "))
        .map(|l| l.split_whitespace().nth(1).unwrap().parse().unwrap())
        .collect();
    assert_eq!(scores.len(), 12, "triangle matches: {ev_resp:?}");
    let mut sorted = scores.clone();
    sorted.sort();
    assert_eq!(scores, sorted, "ranked order over the wire");
    assert!(
        lines.iter().any(|l| l.starts_with("OK 8 DONE")),
        "drain reports DONE: {ev_resp:?}"
    );

    ev.shutdown();
    legacy.shutdown();
}

#[test]
fn stats_over_the_wire_reports_paged_store_io() {
    // A paged-store-backed engine behind the event front end: STATS
    // must carry the io_* fields, with the block-cache counters showing
    // real traffic after a query and hits after a warm replay.
    let g = citation_graph();
    let tables = ClosureTables::compute(&g);
    let mut path = std::env::temp_dir();
    path.push(format!("ktpm-net-paged-{}.bin", std::process::id()));
    ktpm_storage::write_store_v3(&tables, &path, 2).unwrap();
    let store = ktpm_storage::PagedStore::open(&path).unwrap().into_shared();
    let handle = QueryEngine::new(g.interner().clone(), store, small_config());
    let server = EventServer::spawn(handle, ("127.0.0.1", 0), NetConfig::new()).unwrap();
    // Same query, two algorithms: the lazy session streams some blocks
    // (misses); the full-loading session then fetches every block of
    // the same pair tables, re-hitting the streamed ones. (An identical
    // second session would be served from the result cache and never
    // touch storage at all.)
    let script = [
        "OPEN topk-en C -> E; C -> S",
        "NEXT 1 10",
        "OPEN topk C -> E; C -> S",
        "NEXT 2 10",
        "STATS",
    ];
    let resp = pipeline_exchange(server.local_addr(), &script);
    let stats = resp
        .lines()
        .find(|l| l.contains("io_block_reads="))
        .unwrap_or_else(|| panic!("no io_ fields in {resp}"));
    let field = |name: &str| -> u64 {
        stats
            .split(&format!(" {name}="))
            .nth(1)
            .and_then(|r| r.split_whitespace().next())
            .unwrap_or_else(|| panic!("{name} missing from {stats}"))
            .parse()
            .expect("numeric field")
    };
    assert!(field("io_block_reads") > 0, "{stats}");
    assert!(
        field("io_cache_misses") > 0,
        "cold streaming fetches blocks"
    );
    assert!(
        field("io_cache_hits") > 0,
        "the full load replays the lazily-streamed blocks warm: {stats}"
    );
    assert!(field("io_cache_bytes_resident") > 0);
    server.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn overload_sheds_in_order_with_err_overloaded() {
    let handle = handle_with(small_config());
    let server = EventServer::spawn(
        handle.clone(),
        ("127.0.0.1", 0),
        NetConfig::new().with_workers(1).with_max_pipeline(1),
    )
    .unwrap();
    // A burst can race the (fast) worker draining the queue, so sheds
    // are not guaranteed on any single attempt — but with a pipeline
    // bound of 1 and 300 requests landing in one segment, a handful of
    // attempts is plenty.
    let burst: Vec<&str> = std::iter::repeat_n("STATS", 300).collect();
    let mut shed_seen = false;
    for _ in 0..20 {
        let resp = pipeline_exchange(server.local_addr(), &burst);
        let lines: Vec<&str> = resp.lines().collect();
        // Completeness + order even under shedding: one response per
        // request, each either served or shed, nothing dropped.
        assert_eq!(lines.len(), burst.len(), "every request gets an answer");
        assert!(lines
            .iter()
            .all(|l| l.starts_with("OK sessions_active=") || *l == "ERR overloaded"));
        if resp.contains("ERR overloaded") {
            shed_seen = true;
            break;
        }
    }
    assert!(shed_seen, "bounded queue never shed across 20 floods");
    let m = handle.stats().metrics;
    assert!(m.shed_total > 0, "sheds are counted");
    assert_eq!(m.errors, 0, "sheds are not engine errors");
    server.shutdown();
}

#[test]
fn event_loop_closes_idle_connections_but_keeps_sessions() {
    let handle = handle_with(small_config().with_idle_timeout(Some(Duration::from_millis(150))));
    let server = EventServer::spawn(handle, ("127.0.0.1", 0), NetConfig::default()).unwrap();
    let mut first = TcpStream::connect(server.local_addr()).unwrap();
    first
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(first.try_clone().unwrap());
    writeln!(first, "OPEN topk-en C -> E; C -> S").unwrap();
    let mut resp = String::new();
    reader.read_line(&mut resp).unwrap();
    assert_eq!(resp.trim(), "OK 1");
    // Go quiet: the server must hang up (EOF, not a client timeout).
    let mut rest = String::new();
    let start = Instant::now();
    reader.read_to_string(&mut rest).unwrap();
    assert!(rest.is_empty());
    assert!(
        start.elapsed() < Duration::from_secs(8),
        "idle close must come from the server, not the read timeout"
    );
    // The session outlives its connection: resume it from a new one.
    let resp = pipeline_exchange(server.local_addr(), &["NEXT 1 100"]);
    assert!(resp.starts_with("OK 5 DONE"), "{resp:?}");
    server.shutdown();
}

#[test]
fn legacy_server_times_out_idle_connections() {
    // Satellite: the thread-per-connection path used to block in
    // `read_line` forever, pinning a thread per idle client. With
    // `idle_timeout` it must hang up on its own.
    let handle = handle_with(small_config().with_idle_timeout(Some(Duration::from_millis(150))));
    let server = Server::spawn(handle.clone(), ("127.0.0.1", 0)).unwrap();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    writeln!(stream, "STATS").unwrap();
    let mut resp = String::new();
    reader.read_line(&mut resp).unwrap();
    assert!(resp.starts_with("OK "), "{resp:?}");
    let mut rest = String::new();
    let start = Instant::now();
    reader.read_to_string(&mut rest).unwrap();
    assert!(rest.is_empty(), "server closes with no parting message");
    assert!(start.elapsed() < Duration::from_secs(8));
    // The handler thread released the connection gauge on its way out.
    let deadline = Instant::now() + Duration::from_secs(5);
    while handle.stats().metrics.connections_active != 0 {
        assert!(Instant::now() < deadline, "connection gauge never drained");
        std::thread::sleep(Duration::from_millis(10));
    }
    server.shutdown();
}

#[test]
fn janitor_sweep_interval_is_config_not_hardcoded() {
    // A sweep interval far beyond the test: sessions past their TTL
    // stay resident because the janitor never fires (the old hard-coded
    // 200 ms sweep would have evicted). Shutdown must still be prompt.
    let slow = handle_with(
        small_config()
            .with_session_ttl(Duration::from_millis(20))
            .with_sweep_interval(Duration::from_secs(3600)),
    );
    let server = Server::spawn(slow.clone(), ("127.0.0.1", 0)).unwrap();
    let resp = pipeline_exchange(server.local_addr(), &["OPEN topk C -> E"]);
    assert_eq!(resp.trim(), "OK 1");
    std::thread::sleep(Duration::from_millis(300));
    assert_eq!(
        slow.stats().sessions_active,
        1,
        "an hour-long sweep interval must not evict at 200 ms"
    );
    let shutdown_start = Instant::now();
    server.shutdown();
    assert!(
        shutdown_start.elapsed() < Duration::from_secs(5),
        "shutdown does not wait out the sweep interval"
    );

    // A tight interval evicts promptly — on the event loop's janitor
    // this time, which shares the config field.
    let fast = handle_with(
        small_config()
            .with_session_ttl(Duration::from_millis(20))
            .with_sweep_interval(Duration::from_millis(10)),
    );
    let server = EventServer::spawn(fast.clone(), ("127.0.0.1", 0), NetConfig::default()).unwrap();
    let resp = pipeline_exchange(server.local_addr(), &["OPEN topk C -> E"]);
    assert_eq!(resp.trim(), "OK 1");
    let deadline = Instant::now() + Duration::from_secs(5);
    while fast.stats().sessions_active != 0 {
        assert!(Instant::now() < deadline, "janitor never swept");
        std::thread::sleep(Duration::from_millis(10));
    }
    server.shutdown();
}

#[test]
fn oversized_request_lines_close_the_connection_with_an_error() {
    let server = EventServer::spawn(
        handle_with(small_config()),
        ("127.0.0.1", 0),
        NetConfig::new().with_max_line_len(256),
    )
    .unwrap();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(&[b'x'; 4096]).unwrap(); // no newline, ever
    stream.flush().unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    assert_eq!(out, "ERR line-too-long\n");
    server.shutdown();
}

/// The acceptance-criteria concurrency check: hundreds of concurrent
/// open sessions, all driven with pipelined `NEXT`, correct matches,
/// zero sheds, zero errors.
#[test]
fn five_hundred_concurrent_pipelined_sessions() {
    const CONNS: usize = 64;
    const SESSIONS_PER_CONN: usize = 8; // 512 concurrent sessions
    let handle = handle_with(ServiceConfig::new().with_workers(4));
    let server =
        EventServer::spawn(handle.clone(), ("127.0.0.1", 0), NetConfig::default()).unwrap();
    let addr = server.local_addr();
    let g = citation_graph();
    let expected = oracle_scores(&g, "C -> E\nC -> S", 10);

    let clients: Vec<_> = (0..CONNS)
        .map(|_| {
            let expected = expected.clone();
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).unwrap();
                stream
                    .set_read_timeout(Some(Duration::from_secs(60)))
                    .unwrap();
                let mut writer = stream.try_clone().unwrap();
                let mut reader = BufReader::new(stream);
                // Phase 1: pipeline all OPENs, then read the ids.
                let mut batch = String::new();
                for _ in 0..SESSIONS_PER_CONN {
                    batch.push_str("OPEN topk-en C -> E; C -> S\n");
                }
                writer.write_all(batch.as_bytes()).unwrap();
                let mut ids = Vec::new();
                for _ in 0..SESSIONS_PER_CONN {
                    let mut line = String::new();
                    reader.read_line(&mut line).unwrap();
                    ids.push(
                        line.trim()
                            .strip_prefix("OK ")
                            .unwrap_or_else(|| panic!("OPEN failed: {line:?}"))
                            .to_string(),
                    );
                }
                // Phase 2: rounds of pipelined NEXT across every
                // session; collect each session's score sequence.
                let mut scores: Vec<Vec<Score>> = vec![Vec::new(); ids.len()];
                for _round in 0..3 {
                    let mut batch = String::new();
                    for id in &ids {
                        batch.push_str(&format!("NEXT {id} 2\n"));
                    }
                    writer.write_all(batch.as_bytes()).unwrap();
                    for s in scores.iter_mut() {
                        let mut header = String::new();
                        reader.read_line(&mut header).unwrap();
                        let count: usize = header
                            .split_whitespace()
                            .nth(1)
                            .and_then(|c| c.parse().ok())
                            .unwrap_or_else(|| panic!("bad NEXT header {header:?}"));
                        for _ in 0..count {
                            let mut m = String::new();
                            reader.read_line(&mut m).unwrap();
                            s.push(m.split_whitespace().nth(1).unwrap().parse().unwrap());
                        }
                    }
                }
                for s in &scores {
                    assert_eq!(*s, expected, "pipelined session diverged from oracle");
                }
            })
        })
        .collect();
    for c in clients {
        c.join().unwrap();
    }

    let stats = handle.stats();
    assert_eq!(
        stats.sessions_active,
        CONNS * SESSIONS_PER_CONN,
        "all sessions concurrently open"
    );
    assert_eq!(stats.metrics.shed_total, 0, "nominal load must not shed");
    assert_eq!(stats.metrics.errors, 0);
    // Clients hung up; the reactor notices EOFs and drains the gauge.
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.stats().metrics.connections_active != 0 {
        assert!(Instant::now() < deadline, "connection gauge never drained");
        std::thread::sleep(Duration::from_millis(20));
    }
    server.shutdown();
}
