//! Block-server integration suite: a [`RemoteStore`] talking to an
//! in-process [`BlockServer`] over localhost must be element-for-element
//! identical to the local backends, survive a server crash mid-stream
//! with a clean [`StorageError::Remote`] (never a hang or panic), and
//! catch served bit flips with its client-side CRC.

use ktpm_closure::ClosureTables;
use ktpm_graph::{GraphBuilder, LabeledGraph, NodeId};
use ktpm_net::BlockServer;
use ktpm_storage::{
    open_store_uri, write_store, write_store_sharded, ClosureSource, MemStore, RemoteOptions,
    RemoteStore, ShardSpec, StorageError,
};
use std::path::PathBuf;
use std::time::Duration;

fn tempdir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("ktpm-blockd-test-{}-{}", std::process::id(), name));
    std::fs::remove_dir_all(&p).ok();
    std::fs::remove_file(&p).ok();
    p
}

/// Deterministic multi-label weighted graph with enough pairs and
/// blocks to exercise routing and the cache.
fn dense_graph(n: usize, labels: usize) -> LabeledGraph {
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut b = GraphBuilder::new();
    let nodes: Vec<_> = (0..n)
        .map(|i| b.add_node(&format!("L{}", i % labels)))
        .collect();
    for u in 0..n {
        for _ in 0..4 {
            let v = (next() % n as u64) as usize;
            if v != u {
                b.add_edge(nodes[u], nodes[v], (next() % 5 + 1) as u32);
            }
        }
    }
    b.build().unwrap()
}

/// Fast-failing client options so fault tests finish quickly.
fn fast_opts() -> RemoteOptions {
    RemoteOptions {
        connect_timeout: Duration::from_millis(300),
        request_timeout: Duration::from_millis(300),
        attempts: 2,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(5),
        ..RemoteOptions::default()
    }
}

fn check_equivalent(mem: &MemStore, other: &dyn ClosureSource) {
    assert_eq!(mem.num_nodes(), other.num_nodes());
    for i in 0..mem.num_nodes() {
        let v = NodeId(i as u32);
        assert_eq!(mem.node_label(v), other.node_label(v));
    }
    assert_eq!(mem.pair_keys(), other.pair_keys());
    for (a, b) in mem.pair_keys() {
        assert_eq!(mem.load_d(a, b), other.load_d(a, b), "D table {a:?}->{b:?}");
        assert_eq!(mem.load_e(a, b), other.load_e(a, b), "E table {a:?}->{b:?}");
        let mut pm = mem.load_pair(a, b);
        let mut po = other.load_pair(a, b);
        pm.sort_unstable();
        po.sort_unstable();
        assert_eq!(pm, po, "L table {a:?}->{b:?}");
    }
    for u in 0..mem.num_nodes() {
        for v in 0..mem.num_nodes() {
            let (u, v) = (NodeId(u as u32), NodeId(v as u32));
            assert_eq!(mem.lookup_dist(u, v), other.lookup_dist(u, v));
        }
    }
}

#[test]
fn remote_store_matches_mem_over_a_sharded_snapshot() {
    let g = dense_graph(36, 5);
    let tables = ClosureTables::compute(&g);
    let mem = MemStore::new(tables.clone());
    let dir = tempdir("equiv");
    write_store_sharded(&tables, &dir, &ShardSpec::new(0, 3), 4).unwrap();
    let server = BlockServer::spawn(&dir, ("127.0.0.1", 0)).unwrap();
    let store = RemoteStore::connect(&server.local_addr().to_string()).unwrap();
    check_equivalent(&mem, &store);
    assert!(store.take_error().is_none(), "no swallowed errors");
    let io = store.io();
    assert!(io.remote_fetches > 0 && io.remote_bytes > 0);
    assert_eq!(io.remote_retries, 0);
    assert_eq!(io.remote_errors, 0);
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn blockd_serves_a_plain_v3_file_too() {
    // `load_snapshot_manifest` synthesizes a one-shard manifest for a
    // single-file snapshot, so blockd can serve any store path.
    let g = dense_graph(24, 4);
    let tables = ClosureTables::compute(&g);
    let mem = MemStore::new(tables.clone());
    let path = tempdir("single.tc");
    write_store(&tables, &path).unwrap();
    let server = BlockServer::spawn(&path, ("127.0.0.1", 0)).unwrap();
    let store = RemoteStore::connect(&server.local_addr().to_string()).unwrap();
    assert_eq!(store.manifest().shards.len(), 1);
    check_equivalent(&mem, &store);
    server.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn warm_cache_answers_without_any_remote_reads() {
    let g = dense_graph(30, 4);
    let tables = ClosureTables::compute(&g);
    let dir = tempdir("warm");
    write_store_sharded(&tables, &dir, &ShardSpec::new(0, 2), 4).unwrap();
    let server = BlockServer::spawn(&dir, ("127.0.0.1", 0)).unwrap();
    // Unlimited budget: one cold pass makes every block resident.
    let store = RemoteStore::connect_with(
        &server.local_addr().to_string(),
        RemoteOptions {
            cache_bytes: 0,
            ..RemoteOptions::default()
        },
    )
    .unwrap();
    for (a, b) in store.pair_keys() {
        store.load_d(a, b);
        store.load_e(a, b);
        store.load_pair(a, b);
    }
    let cold = store.io().remote_fetches;
    assert!(cold > 0);
    for (a, b) in store.pair_keys() {
        store.load_d(a, b);
        store.load_e(a, b);
        store.load_pair(a, b);
    }
    let warm = store.io();
    assert_eq!(
        warm.remote_fetches, cold,
        "warm reads must not touch the network"
    );
    assert!(warm.cache_hits > 0);
    // The server agrees: its fetch counter matches what the client paid.
    let stats = store.server_stats().unwrap();
    assert!(stats.contains("fetches="), "{stats}");
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn killing_blockd_mid_stream_degrades_cleanly_and_recovers_nothing_stale() {
    let g = dense_graph(30, 4);
    let tables = ClosureTables::compute(&g);
    let dir = tempdir("kill");
    write_store_sharded(&tables, &dir, &ShardSpec::new(0, 2), 2).unwrap();
    let server = BlockServer::spawn(&dir, ("127.0.0.1", 0)).unwrap();
    let store = RemoteStore::connect_with(
        &server.local_addr().to_string(),
        RemoteOptions {
            cache_bytes: 1, // nothing stays resident: every read refetches
            ..fast_opts()
        },
    )
    .unwrap();
    let pairs = store.pair_keys();
    let (a, b) = pairs[0];
    assert!(!store.load_d(a, b).is_empty(), "server is up");

    server.shutdown();

    // Every further read returns empty — no panic, no hang — and the
    // first failure is retrievable as a Remote error.
    for &(a, b) in &pairs {
        let _ = store.load_d(a, b);
        let _ = store.load_pair(a, b);
    }
    let err = store.take_error().expect("failure must be recorded");
    match &err {
        StorageError::Remote { addr, detail } => {
            assert!(!addr.is_empty());
            assert!(detail.contains("attempt"), "{detail}");
        }
        other => panic!("expected StorageError::Remote, got {other}"),
    }
    assert!(store.io().remote_errors > 0);
    assert!(store.io().remote_retries > 0, "retries were attempted");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn served_bit_flip_is_caught_by_client_crc_retried_once_then_surfaced() {
    let g = dense_graph(30, 4);
    let tables = ClosureTables::compute(&g);
    let mem = MemStore::new(tables.clone());
    let dir = tempdir("flip");
    write_store_sharded(&tables, &dir, &ShardSpec::new(0, 2), 4).unwrap();
    let server = BlockServer::spawn(&dir, ("127.0.0.1", 0)).unwrap();
    // A 1-byte budget keeps nothing resident, so every group read goes
    // back to the network (the per-pair directory cache still warms).
    let store = RemoteStore::connect_with(
        &server.local_addr().to_string(),
        RemoteOptions {
            cache_bytes: 1,
            ..fast_opts()
        },
    )
    .unwrap();
    let (a, b) = store
        .pair_keys()
        .into_iter()
        .find(|&(a, b)| !mem.load_pair(a, b).is_empty())
        .expect("a nonempty pair");
    let oracle = {
        let mut p = mem.load_pair(a, b);
        p.sort_unstable();
        p
    };
    let sorted = |mut p: Vec<_>| {
        p.sort_unstable();
        p
    };
    assert_eq!(sorted(store.load_pair(a, b)), oracle, "clean server");

    // One poisoned response: the v3 block CRC catches it client-side
    // and the single paged-layer re-fetch gets clean bytes — the read
    // succeeds and matches the oracle.
    server.inject_bit_flips(1);
    assert_eq!(sorted(store.load_pair(a, b)), oracle);
    assert!(store.take_error().is_none(), "one flip is absorbed");
    assert!(store.io().remote_retries > 0, "the re-fetch is counted");

    // Persistent corruption: the retry budget exhausts, the read
    // degrades instead of returning wrong bytes, and the failure
    // surfaces through the error slot.
    server.inject_bit_flips(u32::MAX);
    assert_ne!(sorted(store.load_pair(a, b)), oracle);
    let err = store.take_error().expect("corruption is recorded");
    assert!(
        matches!(
            err,
            StorageError::Corrupt { .. } | StorageError::Remote { .. }
        ),
        "unexpected error {err}"
    );
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn open_store_uri_dispatches_tcp_and_local_paths() {
    let g = dense_graph(24, 4);
    let tables = ClosureTables::compute(&g);
    let mem = MemStore::new(tables.clone());
    let dir = tempdir("uri");
    write_store_sharded(&tables, &dir, &ShardSpec::new(0, 2), 64).unwrap();
    let server = BlockServer::spawn(&dir, ("127.0.0.1", 0)).unwrap();
    let remote = open_store_uri(&format!("tcp://{}", server.local_addr()), None).unwrap();
    check_equivalent(&mem, remote.as_ref());
    let local = open_store_uri(dir.join("MANIFEST").to_str().unwrap(), None).unwrap();
    check_equivalent(&mem, local.as_ref());
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();

    // A dead address fails fast with a Remote error, not a hang.
    let Err(err) = RemoteStore::connect_with("127.0.0.1:1", fast_opts()) else {
        panic!("a dead address must not connect");
    };
    assert!(matches!(err, StorageError::Remote { .. }), "{err}");
}
