//! The readiness loop ([`EventServer`]) and its executor workers.
//!
//! One reactor thread owns every socket: it accepts, reads, parses
//! request lines incrementally, and flushes response bytes — all
//! non-blocking. A fixed worker set executes queued requests against
//! the [`ServiceHandle`] and appends responses to the owning
//! connection's write buffer. Parked connections are just entries in
//! the reactor's vector: no thread, no stack, no kernel object beyond
//! the socket itself.

use crate::conn::{drain_lines, ConnState, Req, SharedConn};
use crate::NetConfig;
use ktpm_service::{respond, ServiceHandle};
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The executor job queue: a connection appears here at most once at a
/// time (guarded by its `in_flight` flag), and the worker that takes it
/// drains that connection's whole pending queue in request order.
#[derive(Default)]
struct ExecQueue {
    jobs: Mutex<VecDeque<SharedConn>>,
    ready: Condvar,
}

impl ExecQueue {
    fn push(&self, conn: SharedConn) {
        self.jobs.lock().expect("exec queue lock").push_back(conn);
        self.ready.notify_one();
    }

    /// Blocks for the next job; `None` once `stop` is raised. The wait
    /// is time-sliced so shutdown never needs a wakeup for every
    /// worker to notice.
    fn pop(&self, stop: &AtomicBool) -> Option<SharedConn> {
        let mut jobs = self.jobs.lock().expect("exec queue lock");
        loop {
            if let Some(conn) = jobs.pop_front() {
                return Some(conn);
            }
            if stop.load(Ordering::Relaxed) {
                return None;
            }
            let (guard, _) = self
                .ready
                .wait_timeout(jobs, Duration::from_millis(50))
                .expect("exec queue lock");
            jobs = guard;
        }
    }
}

/// The reactor-owned half of a connection: the socket, the raw read
/// buffer awaiting a newline, and the idle clock.
struct Connection {
    stream: TcpStream,
    read_buf: Vec<u8>,
    shared: SharedConn,
    last_activity: Instant,
}

/// An event-driven TCP server over a [`ServiceHandle`]: one reactor
/// thread multiplexes all connections (non-blocking readiness loop), a
/// fixed worker set executes requests, and a janitor drives session-TTL
/// eviction. Dropping it stops all three.
///
/// Compared to [`ktpm_service::Server`] (thread-per-connection, strict
/// request/response turns), parked sessions here hold **no thread**,
/// clients may pipeline requests (responses stream back in request
/// order), and overload is explicit: bounded per-connection request
/// queues and write buffers shed with `ERR overloaded`, counted in
/// `shed_total`. Responses are byte-identical to the legacy server —
/// both render through [`ktpm_service::respond`].
pub struct EventServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    queue: Arc<ExecQueue>,
    reactor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    janitor: Option<JoinHandle<()>>,
}

impl EventServer {
    /// Binds `addr` (port 0 for ephemeral) and serves `handle` on the
    /// reactor + `config.workers` executor threads. Idle-connection and
    /// session-sweep behavior come from the engine's
    /// [`ktpm_service::ServiceConfig`] (`idle_timeout`,
    /// `sweep_interval`).
    pub fn spawn(
        handle: ServiceHandle,
        addr: impl ToSocketAddrs,
        config: NetConfig,
    ) -> std::io::Result<EventServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(ExecQueue::default());

        let workers = (0..config.workers.max(1))
            .map(|i| {
                let queue = Arc::clone(&queue);
                let handle = handle.clone();
                let stop = Arc::clone(&stop);
                std::thread::Builder::new()
                    .name(format!("ktpm-net-exec-{i}"))
                    .spawn(move || worker_loop(&queue, &handle, &stop))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        let reactor = {
            let queue = Arc::clone(&queue);
            let handle = handle.clone();
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("ktpm-net-reactor".into())
                .spawn(move || reactor_loop(listener, &handle, &queue, &config, &stop))?
        };
        let janitor = {
            let stop = Arc::clone(&stop);
            let interval = handle.config().sweep_interval;
            std::thread::Builder::new()
                .name("ktpm-net-janitor".into())
                .spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        handle.sweep_expired();
                        sleep_interruptible(&stop, interval);
                    }
                })?
        };
        Ok(EventServer {
            addr,
            stop,
            queue,
            reactor: Some(reactor),
            workers,
            janitor: Some(janitor),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals shutdown and joins every thread. Established connections
    /// are dropped (clients observe EOF); in-flight requests finish.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        self.queue.ready.notify_all();
        if let Some(t) = self.reactor.take() {
            let _ = t.join();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
        if let Some(t) = self.janitor.take() {
            let _ = t.join();
        }
    }
}

impl Drop for EventServer {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

/// Sleeps `total`, returning early once `stop` is raised (checked every
/// 50 ms) — so large sweep intervals never delay shutdown.
fn sleep_interruptible(stop: &AtomicBool, total: Duration) {
    let deadline = Instant::now() + total;
    while !stop.load(Ordering::Relaxed) {
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return;
        }
        std::thread::sleep(left.min(Duration::from_millis(50)));
    }
}

fn reactor_loop(
    listener: TcpListener,
    handle: &ServiceHandle,
    queue: &Arc<ExecQueue>,
    cfg: &NetConfig,
    stop: &AtomicBool,
) {
    let idle_timeout = handle.config().idle_timeout;
    let mut conns: Vec<Connection> = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        let mut progress = false;
        // Accept everything ready (the listener is non-blocking).
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    // Responses are latency-sensitive single lines;
                    // never let Nagle hold them back.
                    let _ = stream.set_nodelay(true);
                    handle.metrics().connection_opened();
                    conns.push(Connection {
                        stream,
                        read_buf: Vec::new(),
                        shared: Arc::new(Mutex::new(ConnState::default())),
                        last_activity: Instant::now(),
                    });
                    progress = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                // Transient accept failures (EMFILE, ...): retry next
                // tick; the tick sleep below is the backoff.
                Err(_) => break,
            }
        }
        // One readiness sweep over every connection.
        let mut i = 0;
        while i < conns.len() {
            let (alive, progressed) = tick(&mut conns[i], handle, queue, cfg, idle_timeout);
            progress |= progressed;
            if alive {
                i += 1;
            } else {
                drop(conns.swap_remove(i));
                handle.metrics().connection_closed();
                progress = true;
            }
        }
        // Nothing moved: park instead of spinning. Worker completions
        // land in write buffers and are flushed next tick, so the park
        // interval bounds the added response latency.
        if !progress {
            std::thread::sleep(cfg.poll_interval);
        }
    }
    for _ in conns.drain(..) {
        handle.metrics().connection_closed();
    }
}

/// One readiness pass over one connection: read + parse, flush, decide
/// liveness. Returns `(alive, progressed)`.
fn tick(
    conn: &mut Connection,
    handle: &ServiceHandle,
    queue: &Arc<ExecQueue>,
    cfg: &NetConfig,
    idle_timeout: Option<Duration>,
) -> (bool, bool) {
    let mut progressed = false;
    // The hard pending bound (engine requests + shed markers): past it
    // the reactor stops reading the socket entirely, so a flooding
    // client is held by TCP flow control while its markers drain.
    let hard_cap = cfg.max_pipeline * 2 + 16;
    let paused = {
        let s = conn.shared.lock().expect("conn lock");
        s.closing || s.eof || s.pending.len() >= hard_cap
    };
    if !paused {
        let mut chunk = [0u8; 4096];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    // Client half-closed: serve what was pipelined,
                    // then close once drained.
                    conn.shared.lock().expect("conn lock").eof = true;
                    progressed = true;
                    break;
                }
                Ok(n) => {
                    progressed = true;
                    conn.last_activity = Instant::now();
                    conn.read_buf.extend_from_slice(&chunk[..n]);
                    parse_available(conn, handle, queue, cfg);
                    if conn.read_buf.len() > cfg.max_line_len {
                        let mut s = conn.shared.lock().expect("conn lock");
                        s.push_response(b"ERR line-too-long\n");
                        s.pending.clear();
                        s.closing = true;
                        break;
                    }
                    if conn.shared.lock().expect("conn lock").pending.len() >= hard_cap {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return (false, true),
            }
        }
    }
    // Flush whatever the workers owe this client.
    {
        let mut s = conn.shared.lock().expect("conn lock");
        while s.unsent() > 0 {
            match conn.stream.write(&s.write_buf[s.written..]) {
                Ok(0) => return (false, true),
                Ok(n) => {
                    s.written += n;
                    progressed = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return (false, true),
            }
        }
        if s.written > 0 && s.written == s.write_buf.len() {
            s.write_buf.clear();
            s.written = 0;
        }
        if (s.closing || s.eof) && s.drained() {
            return (false, true);
        }
    }
    // Idle connections (no request for the whole window, nothing owed)
    // are hung up on — they cost a sweep iteration, not a thread, but
    // sockets are still finite.
    if let Some(t) = idle_timeout {
        if conn.last_activity.elapsed() > t && conn.shared.lock().expect("conn lock").drained() {
            return (false, true);
        }
    }
    (true, progressed)
}

/// Splits complete request lines out of the connection's read buffer
/// and queues them — or sheds them, in order — applying the pipeline
/// and write-buffer bounds.
fn parse_available(
    conn: &mut Connection,
    handle: &ServiceHandle,
    queue: &Arc<ExecQueue>,
    cfg: &NetConfig,
) {
    let shared = &conn.shared;
    drain_lines(&mut conn.read_buf, |line| {
        if line.trim().is_empty() {
            return;
        }
        let mut s = shared.lock().expect("conn lock");
        // Shed-on-full: the request queue bound caps engine work in
        // flight per connection; the write-buffer bound caps memory a
        // slow-reading client can pin. Either way the client gets an
        // in-order `ERR overloaded` for this request.
        if s.depth() >= cfg.max_pipeline || s.unsent() > cfg.max_write_buffer {
            handle.metrics().shed();
            s.pending.push_back(Req::Shed);
        } else {
            s.pending.push_back(Req::Line(line.to_string()));
            handle.metrics().queue_depth_observed(s.depth() as u64);
        }
        if !s.in_flight {
            s.in_flight = true;
            drop(s);
            queue.push(Arc::clone(shared));
        }
    });
}

/// Executor worker: takes a connection off the queue and drains its
/// pending requests in order, appending each response to the write
/// buffer. `in_flight` exclusivity is what makes pipelined responses
/// come back in request order.
fn worker_loop(queue: &ExecQueue, handle: &ServiceHandle, stop: &AtomicBool) {
    while let Some(conn) = queue.pop(stop) {
        loop {
            let req = {
                let mut s = conn.lock().expect("conn lock");
                if s.closing {
                    s.pending.clear();
                    s.in_flight = false;
                    break;
                }
                match s.pending.pop_front() {
                    Some(r) => r,
                    None => {
                        s.in_flight = false;
                        break;
                    }
                }
            };
            let resp = match req {
                Req::Line(line) => respond(handle, &line),
                Req::Shed => "ERR overloaded\n".to_string(),
            };
            conn.lock()
                .expect("conn lock")
                .push_response(resp.as_bytes());
        }
    }
}
