//! `ktpm blockd` — the block server behind [`ktpm_storage::RemoteStore`].
//!
//! [`BlockServer`] serves the raw bytes of a snapshot's shard files
//! over the length-prefixed binary protocol in
//! [`ktpm_storage::blockproto`]: `FETCH file-id offset len`,
//! `MANIFEST`, and `STATS`. It is deliberately dumb — no closure
//! parsing, no query engine, just ranged reads with a CRC-32 over each
//! served payload — so one server scales to any number of query-side
//! [`ktpm_storage::RemoteStore`]s, each doing its own caching and
//! verification.
//!
//! The transport reuses the crate's reactor style: one thread owns the
//! non-blocking listener and every connection, buffering partial
//! frames, answering complete ones, and flushing responses — parking
//! briefly when nothing is ready. Shard files are opened lazily on
//! first `FETCH` and held open after that.
//!
//! For fault-injection tests, [`BlockServer::inject_bit_flips`] makes
//! the next *n* `FETCH` responses carry a single flipped payload bit
//! (with the frame CRC computed over the flipped bytes, so only the
//! client's v3 block verification can catch it).

use ktpm_storage::{blockproto, load_snapshot_manifest, Manifest, StorageError};
use std::fs::File;
use std::io::{ErrorKind, Read, Seek, SeekFrom, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// CRC-32 (IEEE, reflected — identical to the store format's) over
/// `bytes`, computed locally so the server does not need access to
/// storage-crate internals beyond the public protocol.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            crc = (crc >> 1) ^ (0xEDB8_8320 & (!(crc & 1)).wrapping_add(1));
        }
    }
    !crc
}

/// Server-side counters, reported by the `STATS` op.
#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    fetches: AtomicU64,
    fetch_bytes: AtomicU64,
    manifests: AtomicU64,
    stats: AtomicU64,
    errors: AtomicU64,
}

impl Counters {
    fn to_wire(&self) -> String {
        format!(
            "connections={}\nfetches={}\nfetch_bytes={}\nmanifests={}\nstats={}\nerrors={}\n",
            self.connections.load(Ordering::Relaxed),
            self.fetches.load(Ordering::Relaxed),
            self.fetch_bytes.load(Ordering::Relaxed),
            self.manifests.load(Ordering::Relaxed),
            self.stats.load(Ordering::Relaxed),
            self.errors.load(Ordering::Relaxed),
        )
    }
}

/// A running block server; see the module docs. Dropping it (or
/// calling [`BlockServer::shutdown`]) stops the reactor thread and
/// drops every connection — clients observe EOF, which
/// [`ktpm_storage::RemoteStore`] surfaces as a clean
/// [`StorageError::Remote`] after its retries, never a hang.
pub struct BlockServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    flip: Arc<AtomicU32>,
    thread: Option<JoinHandle<()>>,
}

impl BlockServer {
    /// Loads the snapshot at `store_path` (a sharded snapshot
    /// directory, its `MANIFEST` path, or a plain single v3 file — the
    /// latter gets a synthesized one-file manifest), binds `addr`
    /// (port 0 for ephemeral), and serves it until shutdown.
    pub fn spawn(
        store_path: &std::path::Path,
        addr: impl ToSocketAddrs,
    ) -> Result<BlockServer, StorageError> {
        let (manifest, dir) = load_snapshot_manifest(store_path)?;
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let flip = Arc::new(AtomicU32::new(0));
        let thread = {
            let stop = Arc::clone(&stop);
            let flip = Arc::clone(&flip);
            std::thread::Builder::new()
                .name("ktpm-blockd".into())
                .spawn(move || serve_loop(listener, manifest, dir, &stop, &flip))?
        };
        Ok(BlockServer {
            addr,
            stop,
            flip,
            thread: Some(thread),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Fault injection for tests: corrupt one payload bit in each of
    /// the next `n` `FETCH` responses.
    pub fn inject_bit_flips(&self, n: u32) {
        self.flip.fetch_add(n, Ordering::Relaxed);
    }

    /// Stops the reactor and joins it; every connection drops.
    pub fn shutdown(mut self) {
        self.stop_thread();
    }

    fn stop_thread(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for BlockServer {
    fn drop(&mut self) {
        self.stop_thread();
    }
}

/// One connection: the socket plus partial-frame read and unflushed
/// write buffers.
struct Conn {
    stream: TcpStream,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    written: usize,
    eof: bool,
}

impl Conn {
    fn drained(&self) -> bool {
        self.written == self.write_buf.len()
    }
}

/// Everything the request handler needs: the manifest, the shard-file
/// directory, lazily opened file handles, counters, and the
/// fault-injection counter.
struct Served {
    manifest: Manifest,
    manifest_bytes: Vec<u8>,
    dir: PathBuf,
    files: Vec<Option<File>>,
    counters: Counters,
}

fn serve_loop(
    listener: TcpListener,
    manifest: Manifest,
    dir: PathBuf,
    stop: &AtomicBool,
    flip: &AtomicU32,
) {
    let mut served = Served {
        manifest_bytes: manifest.encode(),
        files: (0..manifest.shards.len()).map(|_| None).collect(),
        manifest,
        dir,
        counters: Counters::default(),
    };
    let mut conns: Vec<Conn> = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        let mut progress = false;
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    served.counters.connections.fetch_add(1, Ordering::Relaxed);
                    conns.push(Conn {
                        stream,
                        read_buf: Vec::new(),
                        write_buf: Vec::new(),
                        written: 0,
                        eof: false,
                    });
                    progress = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        let mut i = 0;
        while i < conns.len() {
            let (alive, progressed) = tick(&mut conns[i], &mut served, flip);
            progress |= progressed;
            if alive {
                i += 1;
            } else {
                drop(conns.swap_remove(i));
                progress = true;
            }
        }
        if !progress {
            std::thread::sleep(Duration::from_micros(500));
        }
    }
}

/// One readiness pass over one connection. Returns `(alive, progressed)`.
fn tick(conn: &mut Conn, served: &mut Served, flip: &AtomicU32) -> (bool, bool) {
    let mut progressed = false;
    if !conn.eof {
        let mut chunk = [0u8; 4096];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.eof = true;
                    progressed = true;
                    break;
                }
                Ok(n) => {
                    progressed = true;
                    conn.read_buf.extend_from_slice(&chunk[..n]);
                    if !drain_frames(conn, served, flip) {
                        return (false, true);
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return (false, true),
            }
        }
    }
    while conn.written < conn.write_buf.len() {
        match conn.stream.write(&conn.write_buf[conn.written..]) {
            Ok(0) => return (false, true),
            Ok(n) => {
                conn.written += n;
                progressed = true;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return (false, true),
        }
    }
    if conn.drained() {
        conn.write_buf.clear();
        conn.written = 0;
        if conn.eof {
            return (false, true);
        }
    }
    (true, progressed)
}

/// Splits complete frames out of the read buffer and appends each
/// response frame to the write buffer. Returns `false` when the client
/// must be dropped (oversized frame — a desynced or hostile peer).
fn drain_frames(conn: &mut Conn, served: &mut Served, flip: &AtomicU32) -> bool {
    loop {
        if conn.read_buf.len() < 4 {
            return true;
        }
        let len = u32::from_le_bytes(conn.read_buf[..4].try_into().expect("4 bytes")) as usize;
        if len > blockproto::MAX_FRAME_BYTES {
            return false;
        }
        if conn.read_buf.len() < 4 + len {
            return true;
        }
        let payload: Vec<u8> = conn.read_buf[4..4 + len].to_vec();
        conn.read_buf.drain(..4 + len);
        let resp = handle_request(&payload, served, flip);
        conn.write_buf
            .extend_from_slice(&(resp.len() as u32).to_le_bytes());
        conn.write_buf.extend_from_slice(&resp);
    }
}

fn err_response(served: &Served, detail: &str) -> Vec<u8> {
    served.counters.errors.fetch_add(1, Ordering::Relaxed);
    let mut resp = vec![blockproto::STATUS_ERR];
    resp.extend_from_slice(detail.as_bytes());
    resp
}

/// Executes one request payload, returning the response payload
/// (status byte first).
fn handle_request(payload: &[u8], served: &mut Served, flip: &AtomicU32) -> Vec<u8> {
    match payload.first() {
        Some(&blockproto::OP_FETCH) => {
            let Some((file_id, offset, len)) = blockproto::decode_fetch(payload) else {
                return err_response(served, "malformed FETCH request");
            };
            if len as usize > blockproto::MAX_FRAME_BYTES - 5 {
                return err_response(served, "FETCH length exceeds the frame cap");
            }
            let Some(meta) = served.manifest.shards.get(file_id as usize) else {
                return err_response(served, &format!("no shard file with id {file_id}"));
            };
            if offset.saturating_add(u64::from(len)) > meta.file_len {
                return err_response(
                    served,
                    &format!("range {offset}+{len} is past the end of {}", meta.name),
                );
            }
            let name = meta.name.clone();
            let slot = &mut served.files[file_id as usize];
            if slot.is_none() {
                match File::open(served.dir.join(&name)) {
                    Ok(f) => *slot = Some(f),
                    Err(e) => return err_response(served, &format!("open {name}: {e}")),
                }
            }
            let file = slot.as_mut().expect("opened above");
            let mut data = vec![0u8; len as usize];
            let read = file
                .seek(SeekFrom::Start(offset))
                .and_then(|_| file.read_exact(&mut data));
            if let Err(e) = read {
                return err_response(served, &format!("read {name}@{offset}+{len}: {e}"));
            }
            if flip
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                .is_ok()
                && !data.is_empty()
            {
                // Injected fault: flip one payload bit *before* sealing
                // the frame CRC, so only client-side v3 block
                // verification can catch it.
                let mid = data.len() / 2;
                data[mid] ^= 0x01;
            }
            served.counters.fetches.fetch_add(1, Ordering::Relaxed);
            served
                .counters
                .fetch_bytes
                .fetch_add(u64::from(len), Ordering::Relaxed);
            let mut resp = Vec::with_capacity(5 + data.len());
            resp.push(blockproto::STATUS_OK);
            resp.extend_from_slice(&crc32(&data).to_le_bytes());
            resp.extend_from_slice(&data);
            resp
        }
        Some(&blockproto::OP_MANIFEST) if payload.len() == 1 => {
            served.counters.manifests.fetch_add(1, Ordering::Relaxed);
            let mut resp = Vec::with_capacity(1 + served.manifest_bytes.len());
            resp.push(blockproto::STATUS_OK);
            resp.extend_from_slice(&served.manifest_bytes);
            resp
        }
        Some(&blockproto::OP_STATS) if payload.len() == 1 => {
            served.counters.stats.fetch_add(1, Ordering::Relaxed);
            let mut resp = vec![blockproto::STATUS_OK];
            resp.extend_from_slice(served.counters.to_wire().as_bytes());
            resp
        }
        Some(op) => err_response(served, &format!("unknown op {op}")),
        None => err_response(served, "empty request"),
    }
}
