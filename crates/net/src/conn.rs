//! Per-connection state shared between the reactor (which owns the
//! socket and does all I/O) and the executor workers (which run
//! requests and append responses).

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// One queued unit of per-connection work, in client request order.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum Req {
    /// A parsed request line, headed for the engine.
    Line(String),
    /// A request shed at parse time (queue or write buffer full). The
    /// worker renders it as `ERR overloaded` *in sequence*, so shed
    /// responses occupy their request's position in the pipeline
    /// instead of jumping the queue.
    Shed,
}

/// The mutex-guarded half of a connection. The reactor appends parsed
/// requests and flushes `write_buf` to the socket; exactly one worker
/// at a time (guarded by `in_flight`) pops requests and appends
/// responses — which is what keeps pipelined responses in request
/// order.
#[derive(Debug, Default)]
pub(crate) struct ConnState {
    /// Queued requests (bounded by the reactor; see `Reactor::on_line`).
    pub pending: VecDeque<Req>,
    /// Bytes owed to the client; `written` of them are already flushed.
    pub write_buf: Vec<u8>,
    pub written: usize,
    /// A worker currently owns this connection's request sequence.
    pub in_flight: bool,
    /// Fatal protocol state (oversized line): close once drained.
    pub closing: bool,
    /// Client half-closed its write side: stop reading, serve what was
    /// pipelined, then close.
    pub eof: bool,
}

pub(crate) type SharedConn = Arc<Mutex<ConnState>>;

impl ConnState {
    /// Unflushed response bytes.
    pub fn unsent(&self) -> usize {
        self.write_buf.len() - self.written
    }

    /// Queued *engine* requests (shed markers are O(1) placeholders and
    /// do not count against the pipeline bound).
    pub fn depth(&self) -> usize {
        self.pending
            .iter()
            .filter(|r| matches!(r, Req::Line(_)))
            .count()
    }

    /// Appends a response, reclaiming the flushed prefix first so the
    /// buffer never grows unboundedly from long-lived traffic.
    pub fn push_response(&mut self, bytes: &[u8]) {
        if self.written > 0 {
            self.write_buf.drain(..self.written);
            self.written = 0;
        }
        self.write_buf.extend_from_slice(bytes);
    }

    /// Nothing queued, nothing owed, nothing running.
    pub fn drained(&self) -> bool {
        self.pending.is_empty() && !self.in_flight && self.unsent() == 0
    }
}

/// Splits complete `\n`-terminated lines off the front of `buf`
/// (lossy UTF-8, `\r` trimmed), leaving any partial tail in place.
pub(crate) fn drain_lines(buf: &mut Vec<u8>, mut on_line: impl FnMut(&str)) {
    let mut consumed = 0;
    while let Some(nl) = buf[consumed..].iter().position(|&b| b == b'\n') {
        let line = String::from_utf8_lossy(&buf[consumed..consumed + nl]);
        on_line(line.trim_end_matches('\r'));
        consumed += nl + 1;
    }
    if consumed > 0 {
        buf.drain(..consumed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_split_incrementally_across_reads() {
        let mut buf = Vec::new();
        let mut got: Vec<String> = Vec::new();
        buf.extend_from_slice(b"OPEN topk C -");
        drain_lines(&mut buf, |l| got.push(l.to_string()));
        assert!(got.is_empty(), "partial line must wait for its newline");
        buf.extend_from_slice(b"> E\r\nNEXT 1 2\nCLO");
        drain_lines(&mut buf, |l| got.push(l.to_string()));
        assert_eq!(got, ["OPEN topk C -> E", "NEXT 1 2"]);
        assert_eq!(buf, b"CLO", "tail stays buffered");
        buf.extend_from_slice(b"SE 1\n");
        drain_lines(&mut buf, |l| got.push(l.to_string()));
        assert_eq!(got.last().unwrap(), "CLOSE 1");
        assert!(buf.is_empty());
    }

    #[test]
    fn push_response_reclaims_flushed_prefix() {
        let mut s = ConnState::default();
        s.push_response(b"OK 1\n");
        s.written = 5;
        s.push_response(b"OK 2\n");
        assert_eq!(s.write_buf, b"OK 2\n");
        assert_eq!(s.written, 0);
        assert_eq!(s.unsent(), 5);
    }

    #[test]
    fn depth_counts_engine_requests_not_shed_markers() {
        let mut s = ConnState::default();
        s.pending.push_back(Req::Line("NEXT 1 1".into()));
        s.pending.push_back(Req::Shed);
        s.pending.push_back(Req::Line("NEXT 1 1".into()));
        assert_eq!(s.depth(), 2);
        assert_eq!(s.pending.len(), 3);
    }
}
