//! # ktpm-net
//!
//! The event-driven serving tier: a readiness-loop TCP front end for a
//! [`ktpm_service::ServiceHandle`] that replaces thread-per-connection
//! with a small fixed thread set.
//!
//! The paper's enumeration model already decouples *sessions* from
//! *connections*: a parked session is a `Box<dyn MatchStream>` in the
//! engine's session table, costing memory but no thread. The legacy
//! [`ktpm_service::Server`] squanders that — every connected client
//! pins an OS thread even while idle between `NEXT` calls, so
//! thousands of open-but-quiet dashboards exhaust threads long before
//! they exhaust sessions. This crate finishes the decoupling on the
//! transport side:
//!
//! * **One reactor thread** owns every socket. The listener and all
//!   connections are non-blocking; the reactor sweeps them in a
//!   readiness loop (accept → read/parse → flush), parking briefly
//!   ([`NetConfig::poll_interval`]) when nothing is ready. No external
//!   async runtime, no OS-specific poller — plain `std::net`
//!   non-blocking I/O, in keeping with the workspace's no-external-deps
//!   rule.
//! * **A fixed executor pool** ([`NetConfig::workers`]) runs requests.
//!   A connection is handed to at most one worker at a time, which
//!   drains its queued requests in order — that exclusivity is the
//!   whole pipelining-order guarantee.
//! * **Pipelining**: request parsing is incremental, so a client can
//!   write `OPEN` + several `NEXT` lines back-to-back and read the
//!   responses — complete, in request order, byte-identical to the
//!   legacy front end (both render via [`ktpm_service::respond`]) —
//!   without a round-trip between them.
//! * **Explicit backpressure**: each connection has a bounded request
//!   queue ([`NetConfig::max_pipeline`]) and write buffer
//!   ([`NetConfig::max_write_buffer`]). Requests beyond either bound
//!   are shed with an in-order `ERR overloaded` (counted in the
//!   `shed_total` STATS field) instead of queueing without limit; past
//!   a hard pending cap the reactor stops reading the socket entirely
//!   and TCP flow control holds the client.
//! * **Idle timeouts**: connections silent for
//!   [`ktpm_service::ServiceConfig::idle_timeout`] are closed. Their
//!   sessions survive (session TTL is separate) and can be resumed
//!   from a new connection.
//!
//! The crate also hosts the storage tier's block server
//! ([`BlockServer`], the `ktpm blockd` subcommand) — a second,
//! binary-protocol reactor serving raw snapshot blocks to
//! [`ktpm_storage::RemoteStore`] clients.
//!
//! ```no_run
//! use ktpm_net::{EventServer, NetConfig};
//! # fn handle() -> ktpm_service::ServiceHandle { unimplemented!() }
//! let server = EventServer::spawn(handle(), ("127.0.0.1", 0), NetConfig::default()).unwrap();
//! println!("serving on {}", server.local_addr());
//! # server.shutdown();
//! ```

mod blockd;
mod conn;
mod reactor;

pub use blockd::BlockServer;
pub use reactor::EventServer;

use std::time::Duration;

/// Tuning knobs for the event-loop front end. Engine-shared behavior
/// (idle timeout, sweep interval, session TTL) lives in
/// [`ktpm_service::ServiceConfig`] instead — both front ends read it
/// from the handle.
///
/// `#[non_exhaustive]`: construct via [`NetConfig::default`] (or
/// [`NetConfig::new`]) and refine with the builder-style `with_*`
/// methods, so future knobs land without breaking embedders.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct NetConfig {
    /// Executor worker threads running requests. This bounds engine
    /// concurrency from this front end regardless of connection count —
    /// the point of the event loop.
    pub workers: usize,
    /// Per-connection bound on queued (pipelined) engine requests;
    /// requests past it are shed with `ERR overloaded`.
    pub max_pipeline: usize,
    /// Per-connection bound on unflushed response bytes; while a
    /// slow-reading client is over it, further requests are shed.
    pub max_write_buffer: usize,
    /// How long the reactor parks when no socket made progress. Bounds
    /// the latency added to a response that became ready while the
    /// reactor slept; lower burns more idle CPU.
    pub poll_interval: Duration,
    /// Maximum bytes of a single request line; beyond it the connection
    /// gets `ERR line-too-long` and is closed (a newline-less flood
    /// must not grow the read buffer forever).
    pub max_line_len: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            workers: std::thread::available_parallelism().map_or(4, |n| n.get().clamp(2, 8)),
            max_pipeline: 64,
            max_write_buffer: 256 * 1024,
            poll_interval: Duration::from_micros(500),
            max_line_len: 64 * 1024,
        }
    }
}

impl NetConfig {
    /// The default configuration (alias of [`NetConfig::default`],
    /// reads better at the head of a builder chain).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets [`NetConfig::workers`].
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets [`NetConfig::max_pipeline`].
    pub fn with_max_pipeline(mut self, max: usize) -> Self {
        self.max_pipeline = max;
        self
    }

    /// Sets [`NetConfig::max_write_buffer`].
    pub fn with_max_write_buffer(mut self, bytes: usize) -> Self {
        self.max_write_buffer = bytes;
        self
    }

    /// Sets [`NetConfig::poll_interval`].
    pub fn with_poll_interval(mut self, interval: Duration) -> Self {
        self.poll_interval = interval;
        self
    }

    /// Sets [`NetConfig::max_line_len`].
    pub fn with_max_line_len(mut self, bytes: usize) -> Self {
        self.max_line_len = bytes;
        self
    }
}
