//! Integration tests for the serving layer.
//!
//! Everything cross-validates against `topk_full` (Algorithm 1 over a
//! fully-loaded run-time graph) — the same oracle the rest of the
//! workspace trusts. Ties: matches with equal scores may legally order
//! differently between *algorithms*, so exact-sequence assertions only
//! compare like with like and score-sequence assertions are used across
//! algorithms.

use ktpm_closure::ClosureTables;
use ktpm_core::{topk_full, ParallelPolicy, ScoredMatch, ShardEngine};
use ktpm_graph::fixtures::{citation_graph, paper_graph};
use ktpm_graph::{LabeledGraph, Score};
use ktpm_query::TreeQuery;
use ktpm_service::{protocol, Algo, QueryEngine, Server, ServiceConfig, ServiceHandle, SessionId};
use ktpm_storage::MemStore;
use ktpm_workload::{generate, GraphSpec};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn handle_for(g: &LabeledGraph, config: ServiceConfig) -> ServiceHandle {
    // Graph-attached store: the undirected mirror derives lazily, so
    // `Algo::Kgpm` sessions work alongside the tree algorithms.
    let store = MemStore::new(ClosureTables::compute(g))
        .with_graph(g.clone())
        .into_shared();
    QueryEngine::new(g.interner().clone(), store, config)
}

/// The oracle: top-k via Algorithm 1 on a private store.
fn oracle(g: &LabeledGraph, query: &str, k: usize) -> Vec<ScoredMatch> {
    let store = MemStore::new(ClosureTables::compute(g));
    let q = TreeQuery::parse(query).unwrap().resolve(g.interner());
    topk_full(&q, &store, k)
}

fn scores(ms: &[ScoredMatch]) -> Vec<Score> {
    ms.iter().map(|m| m.score).collect()
}

/// A moderately sized synthetic graph with enough matches to batch.
fn synthetic() -> (LabeledGraph, Vec<String>) {
    let g = generate(&GraphSpec {
        nodes: 600,
        labels: 8,
        label_skew: 0.3,
        avg_out_degree: 2.5,
        community: 300,
        cross_fraction: 0.1,
        weight_range: (1, 4),
        seed: 0x5EED,
    });
    // Queries over the small label alphabet (L1..L8 by construction).
    let queries = [
        "L1 -> L2",
        "L1 -> L2\nL1 -> L3",
        "L2 -> L1\nL2 -> L4",
        "L1 -> L3\nL3 -> L2",
        "L4 -> L1",
    ];
    (g, queries.iter().map(|q| q.to_string()).collect())
}

#[test]
fn concurrent_clients_cross_validate_against_topk_full() {
    let (g, queries) = synthetic();
    let handle = handle_for(
        &g,
        ServiceConfig::new()
            .with_workers(4)
            .with_parallel(ParallelPolicy {
                shards: 2,
                ..ParallelPolicy::default()
            }),
    );
    let expected: Vec<Vec<Score>> = queries.iter().map(|q| scores(&oracle(&g, q, 40))).collect();
    let expected = Arc::new(expected);
    let queries = Arc::new(queries);

    // N client threads hammer one engine, each opening sessions for
    // every query in a shifted order, pulling in odd-sized batches.
    let threads: Vec<_> = (0..8)
        .map(|t| {
            let handle = handle.clone();
            let queries = Arc::clone(&queries);
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                for round in 0..3 {
                    for qi in 0..queries.len() {
                        let qi = (qi + t + round) % queries.len();
                        let algo = match (t + round) % 3 {
                            0 => Algo::Topk,
                            1 => Algo::TopkEn,
                            _ => Algo::Par,
                        };
                        let id = handle.open(&queries[qi], algo).unwrap();
                        let mut got = Vec::new();
                        while got.len() < 40 {
                            let batch = handle.next(id, 7).unwrap();
                            got.extend(batch.matches);
                            if batch.exhausted {
                                break;
                            }
                        }
                        got.truncate(40);
                        assert_eq!(
                            scores(&got),
                            expected[qi],
                            "thread {t} round {round} query {qi} ({})",
                            algo.name()
                        );
                        handle.close(id).unwrap();
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let stats = handle.stats();
    assert_eq!(stats.sessions_active, 0);
    assert_eq!(stats.metrics.sessions_opened, 8 * 3 * 5);
    assert_eq!(stats.metrics.sessions_closed, 8 * 3 * 5);
    assert_eq!(stats.metrics.errors, 0);
}

#[test]
fn par_sessions_stream_exactly_topk_full() {
    // `par` sessions must be byte-identical to the oracle — order,
    // scores and witnesses — across batch boundaries and shard counts.
    let (g, queries) = synthetic();
    for shards in [1usize, 3] {
        let handle = handle_for(
            &g,
            ServiceConfig::new().with_parallel(ParallelPolicy {
                shards,
                batch: 8,
                engine: ShardEngine::Full,
            }),
        );
        for q in &queries {
            let want = oracle(&g, q, 40);
            let id = handle.open(q, Algo::Par).unwrap();
            let mut got = Vec::new();
            while got.len() < 40 {
                let b = handle.next(id, 7).unwrap();
                got.extend(b.matches);
                if b.exhausted {
                    break;
                }
            }
            got.truncate(40);
            assert_eq!(got, want, "query {q:?} shards {shards}");
            handle.close(id).unwrap();
        }
    }
}

#[test]
fn one_par_session_hammered_by_concurrent_clients() {
    // The race test: many threads pull batches from the SAME ParTopk
    // session. Concurrent `next` calls serialize on the session lock,
    // so the batches must partition the exact oracle stream — nothing
    // lost, nothing duplicated, no interleaving corruption — while the
    // shard jobs of the single ParTopk run race on the shard pool.
    let (g, queries) = synthetic();
    let handle = handle_for(
        &g,
        ServiceConfig::new()
            .with_workers(4)
            .with_parallel(ParallelPolicy {
                shards: 4,
                batch: 4,
                engine: ShardEngine::Full,
            }),
    );
    let query = &queries[1];
    let want = oracle(&g, query, 1_000_000);
    assert!(want.len() > 20, "race needs a non-trivial stream");
    let id = handle.open(query, Algo::Par).unwrap();
    let threads: Vec<_> = (0..8)
        .map(|t| {
            let handle = handle.clone();
            std::thread::spawn(move || {
                let mut mine = Vec::new();
                loop {
                    // Odd, per-thread batch sizes stress the cursor.
                    let batch = handle.next(id, 3 + t % 4).unwrap();
                    let done = batch.exhausted;
                    mine.extend(batch.matches);
                    if done {
                        return mine;
                    }
                }
            })
        })
        .collect();
    let mut got: Vec<ScoredMatch> = Vec::new();
    for t in threads {
        got.extend(t.join().unwrap());
    }
    handle.close(id).unwrap();
    assert_eq!(got.len(), want.len(), "stream must partition exactly");
    // The oracle is already in canonical (score, assignment) order, so
    // sorting the union must reproduce it exactly; any dropped or
    // double-served match would break the equality.
    got.sort_by(|a, b| (a.score, &a.assignment).cmp(&(b.score, &b.assignment)));
    assert_eq!(got, want);
    assert_eq!(handle.stats().metrics.errors, 0);
}

#[test]
fn session_resume_equals_one_take() {
    // NEXT k twice == one take(2k), exactly (same algorithm, same
    // engine: tie order must be reproduced, not just scores). Runs
    // every registry algorithm, kgpm included — the text parses as a
    // tree for the tree engines and as a (tree-shaped, undirected)
    // pattern for kgpm.
    let g = paper_graph();
    let handle = handle_for(&g, ServiceConfig::default());
    let query = "a -> b\na -> c\nc -> d\nc -> e";
    for algo in Algo::ALL {
        let k = 3;
        let one = handle.open(query, algo).unwrap();
        let whole = handle.next(one, 2 * k).unwrap();
        handle.close(one).unwrap();

        let two = handle.open(query, algo).unwrap();
        let first = handle.next(two, k).unwrap();
        let second = handle.next(two, k).unwrap();
        handle.close(two).unwrap();

        let stitched: Vec<ScoredMatch> = first.matches.into_iter().chain(second.matches).collect();
        assert_eq!(stitched, whole.matches, "algo {}", algo.name());
        assert_eq!(second.exhausted, whole.exhausted, "algo {}", algo.name());
    }
}

#[test]
fn resumed_sessions_agree_with_oracle_scores() {
    let (g, queries) = synthetic();
    let handle = handle_for(&g, ServiceConfig::default());
    for q in &queries {
        let want = scores(&oracle(&g, q, 25));
        let id = handle.open(q, Algo::TopkEn).unwrap();
        let mut got = Vec::new();
        for _ in 0..5 {
            let b = handle.next(id, 5).unwrap();
            got.extend(b.matches);
            if b.exhausted {
                break;
            }
        }
        got.truncate(25);
        assert_eq!(scores(&got), want, "query {q:?}");
        handle.close(id).unwrap();
    }
}

#[test]
fn cache_hits_serve_identical_results() {
    let g = citation_graph();
    let handle = handle_for(&g, ServiceConfig::default());
    let query = "C -> E\nC -> S";

    // Cold run: populates the cache (completes the stream).
    let cold_id = handle.open(query, Algo::TopkEn).unwrap();
    let cold = handle.next(cold_id, 100).unwrap();
    assert!(cold.exhausted);
    handle.close(cold_id).unwrap();
    assert_eq!(handle.stats().metrics.cache_misses, 1);
    assert_eq!(handle.stats().metrics.cache_hits, 0);

    // Warm runs: same query (even with scrambled whitespace) must be
    // cache hits and byte-identical, including across batch splits.
    for (i, text) in [query, "  C ->  E \n\n C   -> S "].iter().enumerate() {
        let id = handle.open(text, Algo::TopkEn).unwrap();
        let a = handle.next(id, 2).unwrap();
        let b = handle.next(id, 100).unwrap();
        assert!(b.exhausted);
        let warm: Vec<ScoredMatch> = a.matches.into_iter().chain(b.matches).collect();
        assert_eq!(warm, cold.matches, "warm run {i}");
        handle.close(id).unwrap();
        assert_eq!(handle.stats().metrics.cache_hits, i as u64 + 1);
    }

    // A different algorithm is a different cache key (scores must still
    // agree with the oracle).
    let id = handle.open(query, Algo::Topk).unwrap();
    let full = handle.next(id, 100).unwrap();
    handle.close(id).unwrap();
    assert_eq!(scores(&full.matches), scores(&cold.matches));
    assert_eq!(handle.stats().metrics.cache_misses, 2);
}

#[test]
fn outrunning_the_cached_prefix_falls_back_to_live_enumeration() {
    let g = citation_graph();
    let handle = handle_for(&g, ServiceConfig::default());
    let query = "C -> E\nC -> S";

    // Seed the cache with only a 2-match prefix (session closed early).
    let id = handle.open(query, Algo::TopkEn).unwrap();
    handle.next(id, 2).unwrap();
    handle.close(id).unwrap();

    // A cache-hit session that asks for more than the prefix.
    let id = handle.open(query, Algo::TopkEn).unwrap();
    assert_eq!(handle.stats().metrics.cache_hits, 1);
    let all = handle.next(id, 100).unwrap();
    assert!(all.exhausted);
    assert_eq!(scores(&all.matches), scores(&oracle(&g, query, 100)));
    handle.close(id).unwrap();

    // The cache now holds the complete stream.
    let id = handle.open(query, Algo::TopkEn).unwrap();
    let again = handle.next(id, 100).unwrap();
    assert_eq!(again.matches, all.matches);
    handle.close(id).unwrap();
}

#[test]
fn warm_opens_share_the_plan_across_algorithms_with_zero_discovery() {
    // The plan cache is keyed by query text alone: after one cold open
    // (any algorithm), every later open of the same query — same or
    // different algorithm — reuses the cached setup. For the
    // full-graph algorithms a warm open does zero storage I/O of any
    // kind; candidate-discovery sweeps (D/E entries) must be zero for
    // every warm open.
    let g = citation_graph();
    let store = MemStore::new(ClosureTables::compute(&g)).into_shared();
    let handle = QueryEngine::new(
        g.interner().clone(),
        Arc::clone(&store),
        ServiceConfig::default(),
    );
    let query = "C -> E\nC -> S";
    let want = oracle(&g, query, 100);

    // Cold open (Topk): builds the plan's full half.
    let id = handle.open(query, Algo::Topk).unwrap();
    let cold = handle.next(id, 100).unwrap();
    handle.close(id).unwrap();
    assert_eq!(cold.matches, want);
    let after_cold = store.io();
    assert!(
        after_cold.edges_read > 0,
        "cold open must have loaded the graph"
    );

    // Warm opens: different algorithms, different result-cache keys —
    // all plan hits, zero discovery sweeps, zero reads entirely for
    // the full-graph algorithms.
    for (i, algo) in [Algo::Par, Algo::Brute, Algo::Topk].into_iter().enumerate() {
        let id = handle.open(query, algo).unwrap();
        let warm = handle.next(id, 100).unwrap();
        handle.close(id).unwrap();
        assert_eq!(warm.matches, want, "warm {} stream", algo.name());
        let now = store.io();
        assert_eq!(
            now.since(&after_cold),
            ktpm_storage::IoSnapshot::default(),
            "warm {} open performed storage I/O",
            algo.name()
        );
        let m = handle.stats().metrics;
        assert_eq!(m.plan_hits, i as u64 + 1);
        assert_eq!(m.plan_misses, 1);
    }

    // Topk-EN reuses the plan's (derived) discovery: its cursors do
    // read edge blocks lazily, but candidate-discovery sweep counters
    // stay exactly where the cold open left them.
    let id = handle.open(query, Algo::TopkEn).unwrap();
    let warm = handle.next(id, 100).unwrap();
    handle.close(id).unwrap();
    assert_eq!(scores(&warm.matches), scores(&want));
    let now = store.io();
    assert_eq!(
        now.d_entries, after_cold.d_entries,
        "warm topk-en swept D tables"
    );
    assert_eq!(
        now.e_entries, after_cold.e_entries,
        "warm topk-en swept E tables"
    );
    assert_eq!(handle.stats().plan_entries, 1);
}

#[test]
fn concurrent_opens_of_one_query_share_one_plan() {
    // Eight clients race to open the same query on a cold engine: the
    // plan cache must register exactly one plan (1 miss, 7 hits) and
    // the plan's OnceLock must run exactly one build — verified by
    // comparing total storage I/O against a single cold run.
    let g = citation_graph();
    let query = "C -> E\nC -> S";
    let single_io = {
        let store = MemStore::new(ClosureTables::compute(&g)).into_shared();
        let handle = QueryEngine::new(
            g.interner().clone(),
            Arc::clone(&store),
            ServiceConfig::default(),
        );
        let id = handle.open(query, Algo::Topk).unwrap();
        handle.next(id, 100).unwrap();
        handle.close(id).unwrap();
        store.io()
    };
    let store = MemStore::new(ClosureTables::compute(&g)).into_shared();
    let handle = QueryEngine::new(
        g.interner().clone(),
        Arc::clone(&store),
        ServiceConfig::new().with_workers(4),
    );
    let want = oracle(&g, query, 100);
    let barrier = Arc::new(std::sync::Barrier::new(8));
    let threads: Vec<_> = (0..8)
        .map(|_| {
            let handle = handle.clone();
            let barrier = Arc::clone(&barrier);
            let want = want.clone();
            std::thread::spawn(move || {
                barrier.wait();
                let id = handle.open(query, Algo::Topk).unwrap();
                let got = handle.next(id, 100).unwrap();
                assert_eq!(got.matches, want);
                handle.close(id).unwrap();
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let m = handle.stats().metrics;
    assert_eq!(m.plan_misses, 1, "exactly one open may register the plan");
    assert_eq!(m.plan_hits, 7, "every other open must hit it");
    assert_eq!(
        store.io(),
        single_io,
        "8 racing sessions must pay exactly one plan build's worth of I/O"
    );
    assert_eq!(handle.stats().plan_entries, 1);
}

#[test]
fn session_cap_holds_under_concurrent_opens() {
    let g = citation_graph();
    let handle = handle_for(
        &g,
        ServiceConfig::new()
            .with_max_sessions(4)
            .with_session_ttl(Duration::from_secs(3600)), // nothing to reclaim
    );
    let threads: Vec<_> = (0..8)
        .map(|_| {
            let handle = handle.clone();
            std::thread::spawn(move || {
                (0..16)
                    .filter(|_| handle.open("C -> E", Algo::TopkEn).is_ok())
                    .count()
            })
        })
        .collect();
    let opened: usize = threads.into_iter().map(|t| t.join().unwrap()).sum();
    // Exactly the cap may be open; every other attempt must have
    // failed with SessionLimit, never overshooting.
    assert_eq!(opened, 4);
    assert_eq!(handle.stats().sessions_active, 4);
    assert!(matches!(
        handle.open("C -> E", Algo::TopkEn),
        Err(ktpm_service::ServiceError::SessionLimit(4))
    ));
}

#[test]
fn idle_sessions_are_evicted_and_publish_their_prefix() {
    let g = citation_graph();
    let handle = handle_for(
        &g,
        ServiceConfig::new().with_session_ttl(Duration::from_millis(30)),
    );
    let id = handle.open("C -> E\nC -> S", Algo::TopkEn).unwrap();
    handle.next(id, 2).unwrap();
    std::thread::sleep(Duration::from_millis(60));
    assert_eq!(handle.sweep_expired(), 1);
    assert!(matches!(
        handle.next(id, 1),
        Err(ktpm_service::ServiceError::UnknownSession(_))
    ));
    let stats = handle.stats();
    assert_eq!(stats.metrics.sessions_evicted, 1);
    assert_eq!(stats.sessions_active, 0);
    // The evicted session's progress reached the cache.
    let id = handle.open("C -> E\nC -> S", Algo::TopkEn).unwrap();
    assert_eq!(handle.stats().metrics.cache_hits, 1);
    handle.close(id).unwrap();
}

// ---------------------------------------------------------------------
// TCP end-to-end
// ---------------------------------------------------------------------

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn send_line(&mut self, line: &str) -> String {
        writeln!(self.writer, "{line}").unwrap();
        self.writer.flush().unwrap();
        let mut resp = String::new();
        self.reader.read_line(&mut resp).unwrap();
        resp
    }

    fn open(&mut self, algo: &str, query_semicolons: &str) -> SessionId {
        let resp = self.send_line(&format!("OPEN {algo} {query_semicolons}"));
        resp.trim()
            .strip_prefix("OK ")
            .unwrap_or_else(|| panic!("open failed: {resp:?}"))
            .parse()
            .unwrap()
    }

    fn next(&mut self, id: SessionId, n: usize) -> ktpm_service::NextBatch {
        writeln!(self.writer, "NEXT {id} {n}").unwrap();
        self.writer.flush().unwrap();
        let mut text = String::new();
        self.reader.read_line(&mut text).unwrap();
        let count: usize = text
            .split_whitespace()
            .nth(1)
            .and_then(|c| c.parse().ok())
            .unwrap_or_else(|| panic!("bad NEXT header {text:?}"));
        for _ in 0..count {
            self.reader.read_line(&mut text).unwrap();
        }
        protocol::parse_next_response(&text).unwrap()
    }

    fn close(&mut self, id: SessionId) {
        let resp = self.send_line(&format!("CLOSE {id}"));
        assert_eq!(resp.trim(), "OK closed");
    }
}

#[test]
fn tcp_end_to_end_with_two_concurrent_clients() {
    let g = citation_graph();
    let handle = handle_for(&g, ServiceConfig::default());
    let server = Server::spawn(handle.clone(), ("127.0.0.1", 0)).unwrap();
    let addr = server.local_addr();
    let want = oracle(&g, "C -> E\nC -> S", 100);
    assert_eq!(want.len(), 5);

    // The acceptance scenario: two concurrent clients each run
    // OPEN / NEXT / NEXT / CLOSE and must see exactly topk_full's
    // stream (same engine + same algorithm reproduces tie order).
    let threads: Vec<_> = (0..2)
        .map(|_| {
            let want = want.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(addr);
                let id = c.open("topk", "C -> E; C -> S");
                let first = c.next(id, 2);
                assert!(!first.exhausted);
                let rest = c.next(id, 100);
                assert!(rest.exhausted);
                let got: Vec<ScoredMatch> = first.matches.into_iter().chain(rest.matches).collect();
                assert_eq!(got, want);
                c.close(id);
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    // STATS over the wire reflects both clients.
    let mut c = Client::connect(addr);
    let stats = c.send_line("STATS");
    assert!(stats.contains("sessions_opened=2"), "{stats:?}");
    assert!(stats.contains("sessions_closed=2"), "{stats:?}");
    assert!(stats.contains("errors=0"), "{stats:?}");
    server.shutdown();
}

#[test]
fn tcp_sessions_are_isolated_between_clients() {
    let g = paper_graph();
    let handle = handle_for(&g, ServiceConfig::default());
    let server = Server::spawn(handle, ("127.0.0.1", 0)).unwrap();
    let addr = server.local_addr();

    let mut a = Client::connect(addr);
    let mut b = Client::connect(addr);
    let qa = a.open("topk-en", "a -> b; a -> c; c -> d; c -> e");
    let qb = b.open("topk-en", "a -> c");
    assert_ne!(qa, qb);

    // Interleave: each client advances its own cursor only.
    let a1 = a.next(qa, 1);
    let b1 = b.next(qb, 1);
    let a2 = a.next(qa, 1);
    let b2 = b.next(qb, 1);
    let want_a = oracle(&g, "a -> b\na -> c\nc -> d\nc -> e", 2);
    let want_b = oracle(&g, "a -> c", 2);
    assert_eq!(scores(&[a1.matches, a2.matches].concat()), scores(&want_a));
    assert_eq!(scores(&[b1.matches, b2.matches].concat()), scores(&want_b));

    // Closing one session must not affect the other.
    a.close(qa);
    let b3 = b.next(qb, 100);
    assert!(b3.exhausted);
    server.shutdown();
}

#[test]
fn tcp_kgpm_sessions_stream_park_and_resume() {
    // Graph patterns over the wire: OPEN kgpm with a cyclic edge list,
    // pull across batch boundaries (the session parks the KgpmStream
    // between requests), and a second client's re-open of the same
    // pattern is a plan hit.
    let g = citation_graph();
    let handle = handle_for(&g, ServiceConfig::default());
    let server = Server::spawn(handle.clone(), ("127.0.0.1", 0)).unwrap();
    let addr = server.local_addr();

    let mut c = Client::connect(addr);
    let id = c.open("kgpm", "C -> E; E -> S; S -> C");
    let first = c.next(id, 4);
    assert_eq!(first.matches.len(), 4);
    assert!(!first.exhausted);
    let rest = c.next(id, 100);
    assert!(rest.exhausted);
    let all: Vec<ScoredMatch> = first.matches.into_iter().chain(rest.matches).collect();
    assert_eq!(all.len(), 12, "3 C × 2 E × 2 S pairwise-connected triples");
    assert!(all.windows(2).all(|w| w[0].score <= w[1].score));
    c.close(id);

    let mut d = Client::connect(addr);
    let id = d.open("kgpm", "C -> E; E -> S; S -> C");
    let again = d.next(id, 100);
    assert!(again.exhausted);
    assert_eq!(again.matches, all, "warm kgpm open streams identical bytes");
    d.close(id);
    let stats = handle.stats().metrics;
    assert_eq!(stats.plan_hits, 1, "second open hit the pattern plan");
    assert_eq!(stats.errors, 0);
    server.shutdown();
}

// ---------------------------------------------------------------------
// Live graph updates through the public API
// ---------------------------------------------------------------------

#[test]
fn graph_update_invalidates_delta_aware_through_the_public_api() {
    use ktpm_graph::{GraphDelta, NodeId};
    use ktpm_storage::LiveStore;

    let g = citation_graph();
    let handle = QueryEngine::new(
        g.interner().clone(),
        LiveStore::new(g.clone()).into_shared(),
        ServiceConfig::new(),
    );
    let unaffected = "C -> E"; // reads only the (C,E) closure table
    let affected = "C -> E\nC -> S"; // reads (C,S), which the delta touches

    // Warm both queries to completion so plans and prefixes are cached.
    for q in [unaffected, affected] {
        let id = handle.open(q, Algo::Topk).unwrap();
        assert!(handle.next(id, 100).unwrap().exhausted);
        handle.close(id).unwrap();
    }

    // v1 -> v4 carries weight 5: only the (C,S) table changes.
    let delta = GraphDelta::new().set_weight(NodeId(0), NodeId(3), 5);
    let report = handle.apply_delta(&delta).unwrap();
    assert_eq!(report.version, 1);
    assert_eq!(report.plans_invalidated, 1);
    assert_eq!(report.prefix_entries_invalidated, 1);
    assert_eq!(handle.stats().graph_version, 1);

    // The unaffected query survives warm: plan hit + cache hit.
    let before = handle.stats().metrics;
    let id = handle.open(unaffected, Algo::Topk).unwrap();
    handle.next(id, 100).unwrap();
    handle.close(id).unwrap();
    let after = handle.stats().metrics;
    assert_eq!(after.plan_hits, before.plan_hits + 1);
    assert_eq!(after.cache_hits, before.cache_hits + 1);

    // The affected query rebuilds and streams the post-delta oracle.
    let (mutated, _) = g.apply_delta(&delta).unwrap();
    let want = oracle(&mutated, affected, 100);
    let id = handle.open(affected, Algo::Topk).unwrap();
    let got = handle.next(id, 100).unwrap();
    handle.close(id).unwrap();
    assert_eq!(got.matches, want);
    assert_eq!(
        handle.stats().metrics.plan_misses,
        3,
        "affected re-open rebuilt"
    );
}
