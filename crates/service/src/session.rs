//! Resumable enumeration sessions and the TTL-evicting session table.
//!
//! A [`Session`] is the server-side half of a client's cursor over one
//! query's match stream. It owns:
//!
//! * an `Arc` to the query's shared [`QueryPlan`] (from the engine's
//!   plan cache) and, once the client outruns the result cache, a live
//!   [`ktpm_core::MatchStream`] built *from* that plan by the single
//!   [`ktpm_core::build_stream`] dispatch — so a session of a hot
//!   query never repeats candidate discovery, run-time-graph
//!   construction or the `bs` pass, and the stream (`'static + Send`)
//!   can hop between worker threads between requests. Each `NEXT` is
//!   served by **one** batched `next_batch` pull, not a per-match
//!   virtual call;
//! * a `buffer` of every match produced so far for this query, and a
//!   client cursor `pos` into it. The buffer exists so a session opened
//!   on a cached prefix can serve from it immediately and only start
//!   the (lazily created) enumerator when the client outruns the
//!   cache — in which case the enumerator fast-forwards past the
//!   already-served prefix to stay aligned.
//!
//! [`SessionTable`] maps ids to sessions behind one mutex; each session
//! has its own lock, so concurrent requests to *different* sessions
//! only contend for the map lookup. Idle sessions are reclaimed by
//! [`SessionTable::sweep`].

use crate::cache::{CacheKey, CachedPrefix};
use crate::engine::Algo;
use ktpm_core::{build_stream, BoxedMatchStream, ParallelPolicy, QueryPlan, ScoredMatch};
use ktpm_exec::WorkerPool;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A client-visible session identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::str::FromStr for SessionId {
    type Err = std::num::ParseIntError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        s.parse().map(SessionId)
    }
}

/// One resumable enumeration cursor; see module docs.
pub struct Session {
    algo: Algo,
    /// Canonicalized query text (the session's cache-key half).
    canonical: String,
    /// The shared per-query setup plan; holding the `Arc` keeps the
    /// plan alive even if the engine's plan cache evicts it.
    plan: Arc<QueryPlan>,
    /// Shard policy + pool for `Algo::Par` sessions (engine-wide).
    parallel: ParallelPolicy,
    shard_pool: Arc<WorkerPool>,
    /// The parked live stream ([`ktpm_core::build_stream`] — the one
    /// canonical algorithm dispatch), created on first demand the
    /// buffer cannot satisfy. Every algorithm streams the canonical
    /// `(score, assignment)` order, so `par` sessions, cached prefixes
    /// and resumed cursors mix freely.
    iter: Option<BoxedMatchStream>,
    /// All matches produced for this query so far (cached prefix +
    /// live); grows monotonically.
    buffer: Vec<ScoredMatch>,
    /// How many of `buffer` the client has consumed.
    pos: usize,
    /// Whether `buffer` is the entire match stream.
    complete: bool,
    /// Buffer length at the last cache publish (starts at the cached
    /// prefix length: what the cache gave us needs no republishing).
    published_len: usize,
    /// Set when a graph delta invalidated this session's plan: the
    /// store version the session fell behind at. A fenced session
    /// answers every further `next` with `stale-version` (its parked
    /// stream and buffer describe the pre-delta graph) and never
    /// publishes to the result cache again.
    fenced_at: Option<u64>,
    /// Set when the store degraded mid-read under this session (a
    /// swallowed storage failure recovered via
    /// `ClosureSource::take_error`): the stable error-code word plus
    /// detail text. A poisoned session answers every further `next`
    /// with that error (its buffer may silently miss matches) and
    /// never publishes to the result cache.
    failed: Option<(&'static str, String)>,
}

/// One batch of session progress, as reported to the engine.
pub(crate) struct Advance {
    pub matches: Vec<ScoredMatch>,
    pub exhausted: bool,
    /// The buffer grew (or completed): the engine should republish the
    /// prefix to the result cache.
    pub publish: Option<CachedPrefix>,
}

impl Session {
    /// A fresh session, optionally starting on a cached prefix.
    pub(crate) fn new(
        algo: Algo,
        canonical: String,
        plan: Arc<QueryPlan>,
        cached: Option<&CachedPrefix>,
        parallel: ParallelPolicy,
        shard_pool: Arc<WorkerPool>,
    ) -> Self {
        let (buffer, complete) = match cached {
            Some(p) => (p.matches.as_ref().clone(), p.complete),
            None => (Vec::new(), false),
        };
        Session {
            algo,
            canonical,
            plan,
            parallel,
            shard_pool,
            iter: None,
            published_len: buffer.len(),
            buffer,
            pos: 0,
            complete,
            fenced_at: None,
            failed: None,
        }
    }

    /// The result-cache key this session reads and publishes.
    pub(crate) fn cache_key(&self) -> CacheKey {
        (self.algo.name(), self.canonical.clone())
    }

    /// The shared plan this session enumerates from (the invalidation
    /// walk checks its affectedness).
    pub(crate) fn plan(&self) -> &Arc<QueryPlan> {
        &self.plan
    }

    /// Fences the session at store version `version`: its plan was
    /// invalidated by a graph delta, so its stream can no longer be
    /// extended consistently. Fencing is sticky and idempotent (the
    /// first fencing version is kept — that is when the session's view
    /// diverged).
    pub(crate) fn fence(&mut self, version: u64) {
        self.fenced_at.get_or_insert(version);
    }

    /// The store version this session fell behind at, if fenced.
    pub(crate) fn fenced_at(&self) -> Option<u64> {
        self.fenced_at
    }

    /// Poisons the session after a storage failure surfaced under it.
    /// Sticky and idempotent like fencing — the first failure is kept
    /// (that is where the stream's completeness guarantee broke).
    pub(crate) fn poison(&mut self, code: &'static str, detail: String) {
        if self.failed.is_none() {
            self.failed = Some((code, detail));
        }
    }

    /// The storage failure this session was poisoned with, if any.
    pub(crate) fn failure(&self) -> Option<(&'static str, &str)> {
        self.failed.as_ref().map(|(c, d)| (*c, d.as_str()))
    }

    /// The graph version the session's plan was stamped against.
    pub(crate) fn plan_version(&self) -> u64 {
        self.plan.graph_version()
    }

    /// Produces the next `n` matches (fewer at stream end), advancing
    /// the cursor. Resuming is O(new work): earlier batches are never
    /// recomputed.
    pub(crate) fn advance(&mut self, n: usize) -> Advance {
        // `n == 0` is pinned by the wire protocol: report "0 more,
        // stream not finished" without touching (or even creating) the
        // enumerator — a zero-sized probe must never trigger setup.
        if n == 0 {
            return Advance {
                matches: Vec::new(),
                exhausted: false,
                publish: None,
            };
        }
        let want = self.pos.saturating_add(n);
        let was_complete = self.complete;
        if self.buffer.len() < want && !self.complete {
            let (algo, plan, parallel, shard_pool) =
                (self.algo, &self.plan, &self.parallel, &self.shard_pool);
            let prefix = self.buffer.len();
            let it = self.iter.get_or_insert_with(|| {
                // First live pull: fast-forward past the prefix the
                // buffer already covers so the streams stay aligned.
                // Skipped matches are discarded in bounded chunks —
                // a cached prefix can be arbitrarily long, and holding
                // it all in one throwaway Vec would spike memory.
                const SKIP_CHUNK: usize = 1024;
                let mut it = build_stream(algo, plan, parallel, Arc::clone(shard_pool));
                let mut skip = Vec::with_capacity(prefix.min(SKIP_CHUNK));
                let mut remaining = prefix;
                while remaining > 0 {
                    skip.clear();
                    if it
                        .next_batch(remaining.min(SKIP_CHUNK), &mut skip)
                        .is_done()
                    {
                        break;
                    }
                    remaining -= remaining.min(SKIP_CHUNK);
                }
                it
            });
            // One batched pull per request: `NEXT <s> n` is a single
            // `next_batch` call end to end (the loop re-enters only if
            // a stream under-fills a non-final batch, which the
            // `MatchStream` contract rules out).
            while self.buffer.len() < want && !self.complete {
                let need = want - self.buffer.len();
                let before = self.buffer.len();
                if it.next_batch(need, &mut self.buffer).is_done() {
                    self.complete = true;
                } else {
                    debug_assert_eq!(
                        self.buffer.len() - before,
                        need,
                        "MatchStream contract: More implies a full batch"
                    );
                }
            }
        }
        let end = want.min(self.buffer.len());
        let matches = self.buffer[self.pos..end].to_vec();
        self.pos = end;
        let exhausted = self.complete && self.pos == self.buffer.len();
        // Publish on completion, else only once the buffer has doubled
        // since the last publish: each publish deep-clones the whole
        // buffer, so publishing every batch would make paginated
        // streaming quadratic. Geometric spacing keeps the total copy
        // cost O(n); close/eviction publishes whatever is left.
        let publish_now = (self.complete && !was_complete)
            || (self.buffer.len() > self.published_len
                && self.buffer.len() >= self.published_len.max(1) * 2);
        if publish_now {
            self.published_len = self.buffer.len();
        }
        Advance {
            matches,
            exhausted,
            publish: publish_now.then(|| CachedPrefix {
                matches: Arc::new(self.buffer.clone()),
                complete: self.complete,
            }),
        }
    }

    /// The final prefix to publish when the session ends. `None` when
    /// the session produced nothing: an empty *incomplete* prefix
    /// carries no information, and caching it would turn later opens
    /// into spurious cache hits. (Empty + complete — a query with no
    /// matches at all — is real information and is kept.)
    pub(crate) fn final_prefix(&self) -> Option<CachedPrefix> {
        // A fenced session's buffer describes the pre-delta graph;
        // publishing it would resurrect exactly the entries the
        // invalidation pass just dropped. A poisoned session's buffer
        // may silently miss matches (the store degraded mid-read) —
        // caching it would serve a wrong prefix as truth.
        if self.fenced_at.is_some() || self.failed.is_some() {
            return None;
        }
        if self.buffer.is_empty() && !self.complete {
            return None;
        }
        Some(CachedPrefix {
            matches: Arc::new(self.buffer.clone()),
            complete: self.complete,
        })
    }
}

/// One table slot: the session plus its idle clock. Separate locks so
/// the TTL sweep never blocks behind a long-running query batch.
pub struct SessionSlot {
    /// The session, locked for the duration of each batch.
    pub(crate) session: Mutex<Session>,
    last_touch: Mutex<Instant>,
}

impl SessionSlot {
    fn new(session: Session) -> Self {
        SessionSlot {
            session: Mutex::new(session),
            last_touch: Mutex::new(Instant::now()),
        }
    }

    fn touch(&self) {
        *self.last_touch.lock().expect("touch lock") = Instant::now();
    }

    fn idle_for(&self) -> Duration {
        self.last_touch.lock().expect("touch lock").elapsed()
    }
}

/// The concurrent id → session map with TTL eviction.
#[derive(Default)]
pub struct SessionTable {
    slots: Mutex<HashMap<SessionId, Arc<SessionSlot>>>,
}

impl SessionTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a session under `id` unless the table already holds
    /// `max` sessions, in which case the session is handed back. Check
    /// and insert happen under one lock, so concurrent opens cannot
    /// overshoot the cap.
    ///
    /// The `Err` payload *is* the rejected session (for the caller's
    /// retry after a sweep); boxing it would buy nothing on the
    /// overwhelmingly common `Ok` path.
    #[allow(clippy::result_large_err)]
    pub(crate) fn insert_capped(
        &self,
        id: SessionId,
        session: Session,
        max: usize,
    ) -> Result<(), Session> {
        let mut slots = self.slots.lock().expect("session table lock");
        if slots.len() >= max {
            return Err(session);
        }
        slots.insert(id, Arc::new(SessionSlot::new(session)));
        Ok(())
    }

    /// Fetches a session slot, refreshing its TTL clock.
    pub(crate) fn get(&self, id: SessionId) -> Option<Arc<SessionSlot>> {
        let slot = self
            .slots
            .lock()
            .expect("session table lock")
            .get(&id)
            .cloned();
        if let Some(s) = &slot {
            s.touch();
        }
        slot
    }

    /// Removes and returns a session slot.
    pub(crate) fn remove(&self, id: SessionId) -> Option<Arc<SessionSlot>> {
        self.slots.lock().expect("session table lock").remove(&id)
    }

    /// A snapshot of every live slot (the delta-invalidation walk;
    /// TTL clocks are not touched).
    pub(crate) fn all_slots(&self) -> Vec<Arc<SessionSlot>> {
        self.slots
            .lock()
            .expect("session table lock")
            .values()
            .cloned()
            .collect()
    }

    /// Evicts sessions idle longer than `ttl`, returning the evicted
    /// slots (the engine publishes their prefixes before dropping).
    pub(crate) fn sweep(&self, ttl: Duration) -> Vec<Arc<SessionSlot>> {
        let mut slots = self.slots.lock().expect("session table lock");
        let dead: Vec<SessionId> = slots
            .iter()
            .filter(|(_, s)| s.idle_for() > ttl)
            .map(|(&id, _)| id)
            .collect();
        dead.into_iter()
            .filter_map(|id| slots.remove(&id))
            .collect()
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.slots.lock().expect("session table lock").len()
    }

    /// Whether no sessions are open.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ktpm_closure::ClosureTables;
    use ktpm_graph::fixtures::citation_graph;
    use ktpm_query::TreeQuery;
    use ktpm_storage::MemStore;

    fn pol() -> ParallelPolicy {
        ParallelPolicy::default()
    }

    fn pool() -> Arc<WorkerPool> {
        ktpm_exec::default_pool()
    }

    fn plan() -> Arc<QueryPlan> {
        let g = citation_graph();
        let q = TreeQuery::parse("C -> E\nC -> S")
            .unwrap()
            .resolve(g.interner());
        Arc::new(QueryPlan::new(
            q,
            MemStore::new(ClosureTables::compute(&g)).into_shared(),
        ))
    }

    #[test]
    fn sessions_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Session>();
        assert_send::<SessionTable>();
    }

    #[test]
    fn batched_advance_equals_one_shot() {
        let p = plan();
        let mut a = Session::new(
            Algo::TopkEn,
            "C -> E\nC -> S".into(),
            Arc::clone(&p),
            None,
            pol(),
            pool(),
        );
        let mut b = Session::new(
            Algo::TopkEn,
            "C -> E\nC -> S".into(),
            p,
            None,
            pol(),
            pool(),
        );
        let mut batched = Vec::new();
        loop {
            let adv = a.advance(2);
            batched.extend(adv.matches);
            if adv.exhausted {
                break;
            }
        }
        let oneshot = b.advance(100);
        assert!(oneshot.exhausted);
        assert_eq!(batched, oneshot.matches);
        assert_eq!(batched.len(), 5); // Figure 1: five matches total
    }

    #[test]
    fn cached_prefix_serves_then_falls_back_to_live() {
        let p = plan();
        // Produce the full stream once.
        let mut warm = Session::new(
            Algo::TopkEn,
            "C -> E\nC -> S".into(),
            Arc::clone(&p),
            None,
            pol(),
            pool(),
        );
        let all = warm.advance(100).matches;
        // New session with only the first two matches cached.
        let cached = CachedPrefix {
            matches: Arc::new(all[..2].to_vec()),
            complete: false,
        };
        let mut s = Session::new(
            Algo::TopkEn,
            "C -> E\nC -> S".into(),
            p,
            Some(&cached),
            pol(),
            pool(),
        );
        let first = s.advance(2);
        assert_eq!(first.matches, all[..2].to_vec());
        assert!(s.iter.is_none(), "cache must satisfy the first batch");
        let rest = s.advance(100);
        assert!(rest.exhausted);
        assert_eq!(rest.matches, all[2..].to_vec());
    }

    #[test]
    fn advance_publishes_growing_prefixes() {
        let mut s = Session::new(
            Algo::TopkEn,
            "C -> E\nC -> S".into(),
            plan(),
            None,
            pol(),
            pool(),
        );
        let a = s.advance(2);
        let p = a.publish.expect("new matches must be published");
        assert_eq!(p.matches.len(), 2);
        assert!(!p.complete);
        let b = s.advance(100);
        let p = b.publish.expect("completion must be published");
        assert_eq!(p.matches.len(), 5);
        assert!(p.complete);
    }

    #[test]
    fn parked_arena_survives_ttl_eviction_of_unrelated_sessions() {
        // A session's live enumerator owns its deviation arena. Park it
        // mid-stream, let the TTL sweep reclaim a *different* idle
        // session, and the survivor must resume off its parked arena —
        // no re-enumeration, stream identical to an uninterrupted run.
        let p = plan();
        let mut oneshot = Session::new(
            Algo::Topk,
            "C -> E\nC -> S".into(),
            Arc::clone(&p),
            None,
            pol(),
            pool(),
        );
        let want = oneshot.advance(100).matches;
        assert_eq!(want.len(), 5);

        let table = SessionTable::new();
        table
            .insert_capped(
                SessionId(1),
                Session::new(
                    Algo::Topk,
                    "C -> E\nC -> S".into(),
                    Arc::clone(&p),
                    None,
                    pol(),
                    pool(),
                ),
                10,
            )
            .unwrap_or_else(|_| panic!("table has room"));
        table
            .insert_capped(
                SessionId(2),
                Session::new(Algo::Topk, "C -> E\nC -> S".into(), p, None, pol(), pool()),
                10,
            )
            .unwrap_or_else(|_| panic!("table has room"));
        // Session 1 produces a prefix (its enumerator + arena go live),
        // then parks.
        let slot = table.get(SessionId(1)).expect("live");
        let first = slot.session.lock().unwrap().advance(2).matches;
        assert_eq!(first, want[..2].to_vec());
        assert!(slot.session.lock().unwrap().iter.is_some());
        // Session 2 idles past the TTL; session 1 stays fresh.
        std::thread::sleep(Duration::from_millis(30));
        table.get(SessionId(1));
        let evicted = table.sweep(Duration::from_millis(20));
        assert_eq!(evicted.len(), 1);
        assert!(table.get(SessionId(2)).is_none());
        // The survivor resumes exactly where its arena left off.
        let slot = table.get(SessionId(1)).expect("survived the sweep");
        let mut s = slot.session.lock().unwrap();
        let rest = s.advance(100);
        assert!(rest.exhausted);
        assert_eq!(rest.matches, want[2..].to_vec());
    }

    #[test]
    fn table_sweep_evicts_only_idle_sessions() {
        let p = plan();
        let table = SessionTable::new();
        table
            .insert_capped(
                SessionId(1),
                Session::new(
                    Algo::TopkEn,
                    "C -> E\nC -> S".into(),
                    Arc::clone(&p),
                    None,
                    pol(),
                    pool(),
                ),
                10,
            )
            .unwrap_or_else(|_| panic!("table has room"));
        table
            .insert_capped(
                SessionId(2),
                Session::new(
                    Algo::TopkEn,
                    "C -> E\nC -> S".into(),
                    p,
                    None,
                    pol(),
                    pool(),
                ),
                10,
            )
            .unwrap_or_else(|_| panic!("table has room"));
        std::thread::sleep(Duration::from_millis(30));
        table.get(SessionId(2)); // refresh
        let evicted = table.sweep(Duration::from_millis(20));
        assert_eq!(evicted.len(), 1);
        assert!(table.get(SessionId(1)).is_none());
        assert!(table.get(SessionId(2)).is_some());
    }
}
