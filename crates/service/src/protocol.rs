//! The line-based wire protocol spoken by `ktpm serve`.
//!
//! Requests are single lines, UTF-8, `\n`-terminated:
//!
//! ```text
//! OPEN <algo> <query>      algo: topk | topk-en | par | brute |
//!                          dp-b | dp-p | kgpm (one const list,
//!                          [`crate::Algo::ALL`] — the canonical
//!                          registry in `ktpm_core`, shared with the
//!                          CLI and the `ktpm::api` facade; names are
//!                          case-insensitive like the verbs, so
//!                          `OPEN TOPK …` works). The query is the
//!                          twig text format with `;` standing in for
//!                          newlines, e.g. `OPEN topk-en C -> E; C -> S`.
//!                          Every tree algorithm streams the identical
//!                          canonical order; `par` just runs it
//!                          root-sharded on the engine's shard pool,
//!                          and `dp-b` / `dp-p` are the ICDE'13
//!                          baselines behind the same stream surface.
//!                          `kgpm` reads the same edge-list text as an
//!                          **undirected graph pattern** (cycles
//!                          allowed; `=>`, `*` and `#` are not),
//!                          planned over the store's undirected
//!                          mirror — stores without a data graph
//!                          attached answer `ERR pattern-unsupported`.
//! NEXT <session> <n>       next n matches of the session. Sessions
//!                          run `Box<dyn MatchStream>` cursors with
//!                          batched pull: the n matches arrive from
//!                          ONE `next_batch` call on the parked
//!                          stream, not n single-item pulls.
//! CLOSE <session>          end the session
//! STATS                    engine counters
//! UPDATE <op>[; <op>...]   apply a graph delta to a live store. Ops:
//!                          `set <u> <v> <w>` (re-weight an existing
//!                          edge), `ins <u> <v> <w>` (insert an edge),
//!                          `del <u> <v>` (delete an edge); node ids
//!                          and weights are numeric, ops apply in
//!                          order as ONE atomic batch (a rejected op
//!                          rejects the whole delta, nothing changes).
//!                          Snapshot-backed servers answer
//!                          `ERR update-unsupported …`.
//! ```
//!
//! ## Pipelining
//!
//! Requests on one connection are answered **in request order**, and a
//! client does not have to wait for a response before sending the next
//! request: writing several lines back-to-back (e.g. an `OPEN` followed
//! immediately by `NEXT`s against the session id it *will* return —
//! ids are assigned sequentially per engine) is valid on both front
//! ends. The legacy thread-per-connection server interleaves
//! read/respond per line; the `ktpm-net` event-loop server parses
//! requests incrementally off the socket, queues them per connection
//! (bounded), and streams the responses back in order — several `NEXT`
//! batches can be in the pipe at once, so consecutive answers arrive
//! without a full client round-trip between them. Responses are
//! byte-identical between the two front ends: both render through the
//! same [`crate::Server`]-level `respond` path.
//!
//! ## Backpressure: `ERR overloaded`
//!
//! The event-loop front end bounds each connection's pending-request
//! queue and write buffer. A request that arrives while either bound
//! is exceeded is **shed**: it is answered `ERR overloaded` (in order,
//! like any response) without reaching the engine, and counted in the
//! `shed_total` STATS field. The legacy front end sheds whole
//! connections instead: if it cannot spawn a handler thread (fd/thread
//! exhaustion), the new connection receives `ERR overloaded` and is
//! closed. Clients should treat `ERR overloaded` as retryable after
//! draining in-flight responses.
//!
//! ## Idle timeouts
//!
//! Connections with no client request for
//! [`crate::ServiceConfig::idle_timeout`] (default 300 s, `--idle-timeout`
//! on `ktpm serve`, `None` = never) are closed by the server: the
//! legacy path via a socket read timeout, the event loop via its
//! readiness sweep. Idle *sessions* are independent — they live until
//! the session TTL and survive their connection, so a client may
//! reconnect and resume a session by id.
//!
//! ## The `;` → newline rewrite
//!
//! Requests are single lines, but the twig text format is
//! newline-separated — so the parser rewrites **every** `;` in the
//! `OPEN` query text to a newline, unconditionally. `;` is therefore
//! *not* valid inside label text: a label containing one is split into
//! separate query lines and (in general) fails to parse as a rooted
//! tree, which the engine reports as `ERR bad query ...`. A query that
//! is empty after the rewrite (e.g. `OPEN topk ;;;`) never reaches the
//! engine: the parser answers `ERR empty query after ';' rewrite ...`
//! directly.
//!
//! ## `NEXT <session> 0`
//!
//! A zero-sized batch is a liveness probe, pinned to answer
//! `OK 0 MORE` — never `DONE`, even on a drained or known-empty
//! stream — and to never touch (or lazily create) the session's
//! enumerator. Stream termination is only ever reported by a `NEXT`
//! with `n >= 1`.
//!
//! ## Graph versions and sessions
//!
//! Every applied `UPDATE` bumps the store's monotonic graph version
//! (`graph_version` in `STATS`). Query plans and cached result
//! prefixes are invalidated **delta-aware**: only state whose query
//! reads a closure table the delta actually changed is dropped;
//! everything else survives with a version re-stamp, so an `OPEN` of
//! an unaffected hot query after an update is still a plan hit with
//! zero candidate-discovery work. Open *sessions* follow the same
//! rule: a session whose plan survives keeps streaming across the
//! update (its answers were bit-for-bit unaffected); a session whose
//! plan was invalidated is **fenced** — every further `NEXT` answers
//! `ERR stale-version …` (its parked stream describes the pre-update
//! graph and cannot be extended consistently), while `CLOSE` still
//! works. Clients should re-`OPEN` fenced queries to stream against
//! the current graph.
//!
//! Responses:
//!
//! ```text
//! OK <session>                          for OPEN
//! OK <j> MORE|DONE                      for NEXT, followed by j lines:
//! M <score> <node> <node> ...             one per match, nodes in query
//!                                         BFS order
//! OK closed                             for CLOSE
//! OK <key>=<value> ...                  for STATS (one line)
//! OK version=<v> touched_pairs=<t> plans_invalidated=<p>
//!    prefix_entries_invalidated=<q> sessions_fenced=<s>
//!                                       for UPDATE (one line)
//! ERR <code> <detail>                   any failure; the connection
//!                                       stays usable
//! ```
//!
//! ## Error-code taxonomy
//!
//! Every `ERR` reply starts with exactly one stable, machine-readable
//! code word from [`ERROR_CODES`] (locked by a wire test so codes
//! cannot drift), followed by free-form human detail:
//!
//! ```text
//! bad-request          malformed request line (unknown verb, bad
//!                      usage, unparseable id/count/op, empty query
//!                      after the ';' rewrite)
//! bad-query            well-formed OPEN whose query text failed to
//!                      parse or resolve as a rooted tree
//! unknown-algo         OPEN with an algorithm not in the registry
//! unknown-session      NEXT/CLOSE on a missing/closed/evicted session
//! session-limit        session table full even after TTL eviction
//! stale-version        NEXT on a session fenced by a graph update;
//!                      re-OPEN the query
//! pattern-unsupported  OPEN kgpm against a store with no data graph
//!                      attached (no undirected mirror to plan the
//!                      pattern over)
//! update-unsupported   UPDATE against an immutable snapshot store
//! update-rejected      UPDATE refused by validation (unknown node,
//!                      zero weight, missing/duplicate edge, ...);
//!                      nothing changed
//! update-failed        UPDATE failed in the storage layer
//! remote-unavailable   the remote block store behind the engine
//!                      degraded mid-read (blockd unreachable, retries
//!                      exhausted, corrupt responses); the observing
//!                      session is poisoned — re-OPEN once it recovers
//! storage-failed       a local storage failure degraded a read
//!                      (corrupt block, lost shard file, ...); the
//!                      observing session is poisoned — re-OPEN
//! overloaded           request or connection shed by backpressure;
//!                      retry after draining in-flight responses
//! line-too-long        request line exceeded the front end's limit
//! ```
//!
//! `STATS` includes the serving-tier fields `connections_active` (a
//! gauge across both front ends), `queue_depth_max` (the deepest
//! pending-request queue any pipelined connection reached on the event
//! loop) and `shed_total` (requests or connections refused with
//! `ERR overloaded`), alongside the engine counters.
//!
//! It also reports the store's cumulative I/O as `io_*` fields:
//! `io_block_reads`, `io_bytes_read`, `io_edges_read`, `io_d_entries`,
//! `io_e_entries`, and — live only on the paged (format-v3) backend —
//! the block-cache counters `io_cache_hits`, `io_cache_misses`,
//! `io_cache_evictions` and the `io_cache_bytes_resident` gauge. The
//! sharded and remote tiers add `io_files_opened` (shard files opened
//! lazily) and the remote-fetch counters `io_remote_fetches`,
//! `io_remote_bytes`, `io_remote_retries`, `io_remote_errors`.
//!
//! Verbs are case-insensitive; everything else is verbatim.

use crate::engine::NextBatch;
use crate::session::SessionId;
use ktpm_graph::{Dist, GraphDelta, NodeId};

/// Every error-code word an `ERR` reply may start with — the wire
/// contract of the taxonomy table in the module docs. A test drives
/// each failure path and asserts its first token is listed here, so a
/// new or renamed code that skips the documentation fails the build.
pub const ERROR_CODES: &[&str] = &[
    "bad-request",
    "bad-query",
    "unknown-algo",
    "unknown-session",
    "session-limit",
    "stale-version",
    "pattern-unsupported",
    "update-unsupported",
    "update-rejected",
    "update-failed",
    "remote-unavailable",
    "storage-failed",
    "overloaded",
    "line-too-long",
];

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// `OPEN <algo> <query>` (query `;`-separated).
    Open {
        /// Algorithm name (validated by the engine).
        algo: String,
        /// Query text with `;` already translated to newlines.
        query: String,
    },
    /// `NEXT <session> <n>`.
    Next {
        /// Target session.
        id: SessionId,
        /// Batch size.
        n: usize,
    },
    /// `CLOSE <session>`.
    Close {
        /// Target session.
        id: SessionId,
    },
    /// `STATS`.
    Stats,
    /// `UPDATE <op>[; <op>...]` — a graph delta for the live store.
    Update {
        /// The parsed mutation batch, ops in request order.
        delta: GraphDelta,
    },
}

const UPDATE_USAGE: &str =
    "usage: UPDATE <set <u> <v> <w> | ins <u> <v> <w> | del <u> <v>>[; <op> ...]";

/// Parses one `;`-separated op list into a [`GraphDelta`].
fn parse_delta(rest: &str) -> Result<GraphDelta, String> {
    let node = |t: &str| -> Result<NodeId, String> {
        t.parse::<u32>()
            .map(NodeId)
            .map_err(|e| format!("bad node id {t:?}: {e}"))
    };
    let weight = |t: &str| -> Result<Dist, String> {
        t.parse::<Dist>()
            .map_err(|e| format!("bad weight {t:?}: {e}"))
    };
    let mut delta = GraphDelta::new();
    for op in rest.split(';') {
        let toks: Vec<&str> = op.split_whitespace().collect();
        let Some((&kind, args)) = toks.split_first() else {
            continue; // tolerate empty segments (trailing `;`)
        };
        match (kind.to_ascii_lowercase().as_str(), args) {
            ("set", [u, v, w]) => delta = delta.set_weight(node(u)?, node(v)?, weight(w)?),
            ("ins", [u, v, w]) => delta = delta.insert_edge(node(u)?, node(v)?, weight(w)?),
            ("del", [u, v]) => delta = delta.delete_edge(node(u)?, node(v)?),
            _ => return Err(format!("bad update op {:?} ({UPDATE_USAGE})", op.trim())),
        }
    }
    if delta.is_empty() {
        return Err(format!("empty update ({UPDATE_USAGE})"));
    }
    Ok(delta)
}

/// Parses one request line (without trailing newline).
pub fn parse_request(line: &str) -> Result<Request, String> {
    let line = line.trim();
    let (verb, rest) = match line.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r.trim()),
        None => (line, ""),
    };
    match verb.to_ascii_uppercase().as_str() {
        "OPEN" => {
            let (algo, query) = rest
                .split_once(char::is_whitespace)
                .ok_or("usage: OPEN <algo> <query>")?;
            // Unconditional rewrite; see the module docs — `;` cannot
            // appear inside label text.
            let query = query.replace(';', "\n");
            if query.trim().is_empty() {
                return Err("empty query after ';' rewrite (usage: OPEN <algo> <query>)".into());
            }
            Ok(Request::Open {
                algo: algo.to_string(),
                query,
            })
        }
        "NEXT" => {
            let mut it = rest.split_whitespace();
            let id: SessionId = it
                .next()
                .ok_or("usage: NEXT <session> <n>")?
                .parse()
                .map_err(|e| format!("bad session id: {e}"))?;
            let n: usize = it
                .next()
                .ok_or("usage: NEXT <session> <n>")?
                .parse()
                .map_err(|e| format!("bad count: {e}"))?;
            if it.next().is_some() {
                return Err("usage: NEXT <session> <n>".into());
            }
            Ok(Request::Next { id, n })
        }
        "CLOSE" => {
            let id: SessionId = rest
                .split_whitespace()
                .next()
                .ok_or("usage: CLOSE <session>")?
                .parse()
                .map_err(|e| format!("bad session id: {e}"))?;
            Ok(Request::Close { id })
        }
        "STATS" => Ok(Request::Stats),
        "UPDATE" => Ok(Request::Update {
            delta: parse_delta(rest)?,
        }),
        other => Err(format!(
            "unknown command {other:?} (expected OPEN | NEXT | CLOSE | STATS | UPDATE)"
        )),
    }
}

/// Renders a `NEXT` response (header + match lines).
pub fn render_next(batch: &NextBatch) -> String {
    let mut out = format!(
        "OK {} {}\n",
        batch.matches.len(),
        if batch.exhausted { "DONE" } else { "MORE" }
    );
    for m in &batch.matches {
        out.push_str("M ");
        out.push_str(&m.score.to_string());
        for v in &m.assignment {
            out.push(' ');
            out.push_str(&v.0.to_string());
        }
        out.push('\n');
    }
    out
}

/// Parses the body of a `NEXT` response (the client side; used by tests
/// and example clients). Input is the header line followed by match
/// lines, as produced by [`render_next`].
pub fn parse_next_response(text: &str) -> Result<NextBatch, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty response")?;
    let mut hp = header.split_whitespace();
    match hp.next() {
        Some("OK") => {}
        Some("ERR") => return Err(header[4.min(header.len())..].to_string()),
        _ => return Err(format!("bad header {header:?}")),
    }
    let count: usize = hp
        .next()
        .ok_or("missing count")?
        .parse()
        .map_err(|e| format!("bad count: {e}"))?;
    let exhausted = match hp.next() {
        Some("DONE") => true,
        Some("MORE") => false,
        other => return Err(format!("bad stream flag {other:?}")),
    };
    let mut matches = Vec::with_capacity(count);
    for _ in 0..count {
        let line = lines.next().ok_or("truncated response")?;
        let mut p = line.split_whitespace();
        if p.next() != Some("M") {
            return Err(format!("bad match line {line:?}"));
        }
        let score = p
            .next()
            .ok_or("missing score")?
            .parse()
            .map_err(|e| format!("bad score: {e}"))?;
        let assignment = p
            .map(|t| t.parse().map(ktpm_graph::NodeId))
            .collect::<Result<ktpm_graph::NodeRow, _>>()
            .map_err(|e| format!("bad node id: {e}"))?;
        matches.push(ktpm_core::ScoredMatch { score, assignment });
    }
    Ok(NextBatch { matches, exhausted })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ktpm_core::ScoredMatch;
    use ktpm_graph::NodeId;

    #[test]
    fn parses_every_verb() {
        assert_eq!(
            parse_request("OPEN topk-en C -> E; C -> S").unwrap(),
            Request::Open {
                algo: "topk-en".into(),
                query: "C -> E\n C -> S".into(),
            }
        );
        assert_eq!(
            parse_request("next 42 10").unwrap(),
            Request::Next {
                id: SessionId(42),
                n: 10
            }
        );
        assert_eq!(
            parse_request("CLOSE 7").unwrap(),
            Request::Close { id: SessionId(7) }
        );
        assert_eq!(parse_request("stats").unwrap(), Request::Stats);
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(parse_request("").is_err());
        assert!(parse_request("OPEN topk").is_err());
        assert!(parse_request("NEXT x 10").is_err());
        assert!(parse_request("NEXT 1").is_err());
        assert!(parse_request("NEXT 1 2 3").is_err());
        assert!(parse_request("CLOSE").is_err());
        assert!(parse_request("FETCH 1 2").is_err());
    }

    #[test]
    fn queries_empty_after_semicolon_rewrite_are_rejected() {
        // Semicolons become newlines unconditionally; a query that is
        // all separators parses to nothing and must ERR in the parser.
        for line in ["OPEN topk ;", "OPEN topk ;;;", "OPEN topk ; ; ;"] {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains("rewrite"), "{line:?} -> {err:?}");
        }
    }

    #[test]
    fn semicolons_inside_label_text_split_into_lines() {
        // The rewrite is blind to context: a `;` inside what the client
        // meant as one label yields two query lines. (Here they form a
        // two-root forest, which the engine rejects as a bad query.)
        assert_eq!(
            parse_request("OPEN topk A;B -> C").unwrap(),
            Request::Open {
                algo: "topk".into(),
                query: "A\nB -> C".into(),
            }
        );
    }

    #[test]
    fn parses_update_deltas() {
        assert_eq!(
            parse_request("UPDATE set 0 3 5; ins 1 4 2 ; del 2 3;").unwrap(),
            Request::Update {
                delta: GraphDelta::new()
                    .set_weight(NodeId(0), NodeId(3), 5)
                    .insert_edge(NodeId(1), NodeId(4), 2)
                    .delete_edge(NodeId(2), NodeId(3)),
            }
        );
        // Verbs and op names are case-insensitive alike.
        assert_eq!(
            parse_request("update DEL 1 2").unwrap(),
            Request::Update {
                delta: GraphDelta::new().delete_edge(NodeId(1), NodeId(2)),
            }
        );
    }

    #[test]
    fn rejects_malformed_updates() {
        for line in [
            "UPDATE",
            "UPDATE ;",
            "UPDATE set 1 2",
            "UPDATE ins 1 2 3 4",
            "UPDATE del x 2",
            "UPDATE set 1 2 -3",
            "UPDATE frob 1 2",
        ] {
            assert!(parse_request(line).is_err(), "{line:?}");
        }
    }

    #[test]
    fn error_code_list_is_sorted_unique_and_hyphenated() {
        // The taxonomy is a wire contract: no duplicates, no spaces
        // (codes must be single tokens), and every code is lowercase.
        let mut seen = std::collections::HashSet::new();
        for code in ERROR_CODES {
            assert!(seen.insert(code), "duplicate code {code:?}");
            assert!(
                code.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "code {code:?} must be a lowercase hyphenated token"
            );
        }
    }

    #[test]
    fn next_zero_is_a_valid_request() {
        assert_eq!(
            parse_request("NEXT 3 0").unwrap(),
            Request::Next {
                id: SessionId(3),
                n: 0
            }
        );
    }

    #[test]
    fn next_response_roundtrips() {
        let batch = NextBatch {
            matches: vec![
                ScoredMatch {
                    score: 2,
                    assignment: vec![NodeId(0), NodeId(4), NodeId(3)].into(),
                },
                ScoredMatch {
                    score: 3,
                    assignment: vec![NodeId(1), NodeId(4), NodeId(3)].into(),
                },
            ],
            exhausted: true,
        };
        let text = render_next(&batch);
        assert!(text.starts_with("OK 2 DONE\n"));
        assert_eq!(parse_next_response(&text).unwrap(), batch);
    }

    #[test]
    fn err_responses_surface_as_errors() {
        assert!(parse_next_response("ERR unknown session 9\n").is_err());
    }
}
